/** @file InvisiFence mechanism tests: speculation triggers, flash
 *  commit/abort, cleaning writebacks, store-buffer discipline, CoV,
 *  checkpoints, continuous chunks, ASO commit drain. */

#include <gtest/gtest.h>

#include "core/invisifence.hh"
#include "test_util.hh"

using namespace invisifence;
using namespace invisifence::test;

namespace {

SpeculativeImpl&
spec(System& sys, std::uint32_t core)
{
    auto* s = dynamic_cast<SpeculativeImpl*>(&sys.impl(core));
    EXPECT_NE(s, nullptr);
    return *s;
}

/** Test system with slow memory: store misses dominate run time. */
SystemParams
slowMem(std::uint32_t cores)
{
    SystemParams p = SystemParams::small(cores);
    p.dir.memLatency = 400;
    return p;
}

/** Warm blocks, then a long store miss followed by dependent work. */
std::vector<ScriptOp>
missThenWork(Addr missAddr, std::uint32_t work)
{
    std::vector<ScriptOp> s;
    for (std::uint32_t b = 0; b < 4; ++b)
        s.push_back(opLoad(taddr(30) + b * kBlockBytes));
    s.push_back(opAlu(250));
    s.push_back(opStore(missAddr, 1));
    for (std::uint32_t i = 0; i < work; ++i) {
        s.push_back(opLoad(taddr(30) + (i % 4) * kBlockBytes));
        s.push_back(opAlu(1));
    }
    return s;
}

} // namespace

TEST(SpecConfigTest, PresetsMatchThePaper)
{
    const SpecConfig sel = SpecConfig::selective(Model::SC);
    EXPECT_EQ(sel.numCheckpoints, 1u);
    EXPECT_EQ(sel.sbEntries, 8u);      // eight-entry coalescing SB
    EXPECT_FALSE(sel.continuous);

    const SpecConfig sel2 = SpecConfig::selective(Model::SC, 2);
    EXPECT_EQ(sel2.sbEntries, 32u);    // 32 entries with two checkpoints

    const SpecConfig cont = SpecConfig::continuousMode(false);
    EXPECT_TRUE(cont.continuous);
    EXPECT_EQ(cont.numCheckpoints, 2u);
    EXPECT_EQ(cont.minChunkSize, 100u);

    const SpecConfig aso = SpecConfig::aso();
    EXPECT_TRUE(aso.unboundedSb);
    EXPECT_EQ(aso.commitDrainPerStore, 1u);
}

TEST(SpecConfigTest, Names)
{
    EXPECT_EQ(SpecConfig::selective(Model::SC).name(), "invisi_sc");
    EXPECT_EQ(SpecConfig::selective(Model::RMO).name(), "invisi_rmo");
    EXPECT_EQ(SpecConfig::selective(Model::TSO, 2).name(),
              "invisi_tso_2ckpt");
    EXPECT_EQ(SpecConfig::continuousMode(true).name(), "invisi_cont_cov");
    EXPECT_EQ(SpecConfig::aso().name(), "aso_sc");
}

TEST(SelectiveSc, SpeculatesOnLoadBehindStoreMiss)
{
    // A store miss followed by loads: conventional SC stalls the loads;
    // Invisi_sc must instead start a speculation and commit it.
    auto sys = makeScripted({missThenWork(taddr(41), 20)},
                            ImplKind::InvisiSC, slowMem(2));
    // Make the store miss: the block's home is remote and unprimed.
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_GE(spec(*sys, 0).statSpeculations, 1u);
    EXPECT_GE(spec(*sys, 0).statCommits, 1u);
    EXPECT_EQ(spec(*sys, 0).statAborts, 0u);
    // After commit no speculative bits remain.
    EXPECT_EQ(sys->agent(0).specFootprint(), 0u);
}

TEST(SelectiveRmo, DoesNotSpeculateWithoutFencesOrAtomics)
{
    auto sys = makeScripted({missThenWork(taddr(42), 20)},
                            ImplKind::InvisiRMO, slowMem(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_EQ(spec(*sys, 0).statSpeculations, 0u);
}

TEST(SelectiveRmo, FenceBehindStoreMissTriggersSpeculation)
{
    std::vector<ScriptOp> s = {opStore(taddr(43), 1), opFence()};
    for (int i = 0; i < 10; ++i)
        s.push_back(opAlu(1));
    auto sys = makeScripted({s}, ImplKind::InvisiRMO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_GE(spec(*sys, 0).statSpeculations, 1u);
    EXPECT_GE(spec(*sys, 0).statCommits, 1u);
}

TEST(SelectiveTso, StoreBehindStoreMissTriggersSpeculation)
{
    // Two stores to distinct blocks: the second retires while the first
    // is still pending, which the unordered SB may only do speculatively
    // under TSO.
    std::vector<ScriptOp> s = {opStore(taddr(44), 1),
                               opStore(taddr(45), 2)};
    auto sys = makeScripted({s}, ImplKind::InvisiTSO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_GE(spec(*sys, 0).statSpeculations, 1u);
}

TEST(SelectiveSc, AbortRestoresPreSpeculativeMemory)
{
    // Core 0 speculates past a store miss and speculatively overwrites
    // block V (an L1 hit); core 1 then writes V, forcing a violation.
    // After the abort and re-execution, the final value of V must be
    // core 0's value written AFTER core 1's (program replays), and at
    // no point may core 1 observe a speculative value.
    std::vector<ScriptOp> t0;
    t0.push_back(opLoad(taddr(46)));          // warm V
    t0.push_back(opAlu(50));
    t0.push_back(opStore(taddr(47), 1));      // miss (remote home)
    t0.push_back(opStore(taddr(46), 111));    // speculative write to V
    for (int i = 0; i < 30; ++i)
        t0.push_back(opAlu(2));
    std::vector<ScriptOp> t1;
    t1.push_back(opAlu(100));
    t1.push_back(opStore(taddr(46), 222));    // conflicting write
    auto sys = makeScripted({t0, t1}, ImplKind::InvisiSC);
    ASSERT_TRUE(sys->runUntilDone(400000));
    // Core 0 re-executed its store after the abort, so the final
    // architectural value reflects a serializable outcome: whichever
    // store serialized last. Core 0 replays after core 1's write, so:
    std::uint64_t final_v = 0;
    for (std::uint32_t n = 0; n < sys->numCores(); ++n)
        if (sys->agent(n).l1Readable(taddr(46)))
            final_v = sys->agent(n).readWordL1(taddr(46));
    EXPECT_TRUE(final_v == 111 || final_v == 222);
    EXPECT_EQ(sys->agent(0).specFootprint(), 0u);
    EXPECT_EQ(sys->agent(1).specFootprint(), 0u);
}

TEST(SelectiveSc, ViolationCyclesAppearOnAbort)
{
    std::vector<ScriptOp> t0;
    t0.push_back(opLoad(taddr(48)));
    t0.push_back(opAlu(50));
    t0.push_back(opStore(taddr(49), 1));      // miss starts speculation
    for (int i = 0; i < 40; ++i) {
        t0.push_back(opLoad(taddr(48)));      // spec-read V repeatedly
        t0.push_back(opAlu(2));
    }
    std::vector<ScriptOp> t1 = {opAlu(120), opStore(taddr(48), 5)};
    auto sys = makeScripted({t0, t1}, ImplKind::InvisiSC);
    ASSERT_TRUE(sys->runUntilDone(400000));
    if (spec(*sys, 0).statAborts > 0) {
        EXPECT_GT(sys->core(0).breakdown().violation, 0u);
    }
}

TEST(Cleaning, DirtyBlockPreservedAcrossAbort)
{
    // Sequence on core 0: non-speculative store makes V dirty (value 7);
    // speculation starts; a speculative store to V requires a cleaning
    // writeback first; core 1's conflicting read of the speculatively
    // written block aborts core 0; the pre-speculative value 7 must
    // still be visible (from the L2), never the speculative 8.
    std::vector<ScriptOp> t0;
    t0.push_back(opStore(taddr(50), 7));      // dirty, non-speculative
    t0.push_back(opAlu(60));                  // let it land in the L1
    t0.push_back(opStore(taddr(51), 1));      // remote miss: speculate
    t0.push_back(opStore(taddr(50), 8));      // spec write needs cleaning
    for (int i = 0; i < 40; ++i)
        t0.push_back(opAlu(3));
    std::vector<ScriptOp> t1 = {opAlu(150), opLoad(taddr(50))};
    auto sys = makeScripted({t0, t1}, ImplKind::InvisiSC);
    ASSERT_TRUE(sys->runUntilDone(400000));
    const std::uint64_t seen = lastLoadOf(*sys, 1, taddr(50));
    // Core 1 may see 7 (pre-spec) or 8 (after commit/replay), and it may
    // defer behind the violation; it must never see garbage or cause a
    // hang. The speculative 8 is only legal once committed.
    EXPECT_TRUE(seen == 7 || seen == 8) << "saw " << seen;
    EXPECT_GE(sys->agent(0).statCleanWritebacks +
                  spec(*sys, 0).statCleanings,
              1u);
}

TEST(ForwardProgress, RepeatedConflictsStillComplete)
{
    // Two cores ping-pong conflicting speculative writes; bounded
    // timeouts and the one-instruction non-speculative rule must ensure
    // both programs finish.
    std::vector<std::vector<ScriptOp>> scripts;
    for (std::uint32_t t = 0; t < 2; ++t) {
        std::vector<ScriptOp> s;
        for (int i = 0; i < 30; ++i) {
            s.push_back(opStore(taddr(52), t * 100 + static_cast<std::uint32_t>(i)));
            s.push_back(opStore(taddr(53 + t), 1));
            s.push_back(opLoad(taddr(52)));
        }
        scripts.push_back(std::move(s));
    }
    auto sys = makeScripted(std::move(scripts), ImplKind::InvisiSC);
    EXPECT_TRUE(sys->runUntilDone(2000000));
}

TEST(CommitOnViolate, DeferredRequestEventuallyServed)
{
    std::vector<ScriptOp> t0;
    t0.push_back(opLoad(taddr(54)));
    t0.push_back(opAlu(40));
    t0.push_back(opStore(taddr(55), 1));      // speculate
    t0.push_back(opStore(taddr(54), 9));      // spec-written block
    for (int i = 0; i < 50; ++i)
        t0.push_back(opAlu(2));
    std::vector<ScriptOp> t1 = {opAlu(150), opLoad(taddr(54))};
    auto sys = makeScripted({t0, t1}, ImplKind::ContinuousCoV);
    ASSERT_TRUE(sys->runUntilDone(1000000));
    auto& s0 = spec(*sys, 0);
    // The external read conflicted with a speculatively-written block:
    // with CoV it must have been deferred, and the system still finished
    // with the reader seeing a committed value.
    if (s0.statConflicts > 0) {
        EXPECT_GE(s0.statCovDeferrals, 1u);
    }
    const std::uint64_t seen = lastLoadOf(*sys, 1, taddr(54));
    EXPECT_TRUE(seen == 0 || seen == 9) << seen;
}

TEST(CommitOnViolate, TimeoutBoundsDeferral)
{
    SystemParams params = SystemParams::small(2);
    params.covTimeout = 300;
    std::vector<ScriptOp> t0;
    t0.push_back(opLoad(taddr(56)));
    t0.push_back(opAlu(40));
    t0.push_back(opStore(taddr(57), 1));
    t0.push_back(opStore(taddr(56), 9));
    // Keep the speculation alive with a continuous store-miss stream so
    // it cannot commit before the timeout.
    for (std::uint32_t i = 0; i < 60; ++i)
        t0.push_back(opStore(taddr(58) + (i % 6) * kBlockBytes,
                             static_cast<std::uint64_t>(i)));
    std::vector<ScriptOp> t1 = {opAlu(150), opLoad(taddr(56))};
    auto sys = makeScripted({t0, t1}, ImplKind::ContinuousCoV, params);
    ASSERT_TRUE(sys->runUntilDone(2000000));
    // Either the speculation committed in time or the timeout aborted
    // it; both terminate the deferral.
    auto& s0 = spec(*sys, 0);
    EXPECT_EQ(sys->agent(0).hasDeferred(), false);
    (void)s0;
}

TEST(Continuous, EverythingRetiresSpeculatively)
{
    std::vector<ScriptOp> s;
    for (int i = 0; i < 300; ++i)
        s.push_back(opAlu(1));
    auto sys = makeScripted({s}, ImplKind::Continuous,
                            SystemParams::small(1));
    ASSERT_TRUE(sys->runUntilDone(200000));
    auto& sp = spec(*sys, 0);
    EXPECT_GE(sp.statSpeculations, 2u);      // chunking took checkpoints
    EXPECT_EQ(sp.statSpecRetired, 300u);     // all committed speculatively
    EXPECT_EQ(sp.statAborts, 0u);
}

TEST(Continuous, ChunksRespectMinimumSize)
{
    SystemParams params = SystemParams::small(1);
    params.minChunkSize = 50;
    std::vector<ScriptOp> s;
    for (int i = 0; i < 500; ++i)
        s.push_back(opAlu(1));
    auto sys = makeScripted({s}, ImplKind::Continuous, params);
    ASSERT_TRUE(sys->runUntilDone(200000));
    auto& sp = spec(*sys, 0);
    // 500 instructions in >=50-instruction chunks: at most ~11 chunks
    // (the final partial chunk commits at idle).
    EXPECT_LE(sp.statCommits, 11u);
    EXPECT_GE(sp.statCommits, 2u);
}

TEST(TwoCheckpoints, SelectiveUsesBoth)
{
    SystemParams params = slowMem(2);
    params.minChunkSize = 20;
    std::vector<ScriptOp> s;
    for (std::uint32_t b = 0; b < 3; ++b)
        s.push_back(opLoad(taddr(61) + b * kBlockBytes));
    s.push_back(opAlu(250));
    s.push_back(opStore(taddr(60), 1));   // miss: speculate
    for (std::uint32_t i = 0; i < 120; ++i) {
        s.push_back(opLoad(taddr(61) + (i % 3) * kBlockBytes));
        s.push_back(opAlu(1));
    }
    auto sys = makeScripted({s}, ImplKind::InvisiSC2Ckpt, params);
    ASSERT_TRUE(sys->runUntilDone(400000));
    EXPECT_GE(spec(*sys, 0).statSpeculations, 2u);
    EXPECT_EQ(spec(*sys, 0).statAborts, 0u);
}

TEST(Aso, CommitDrainBlocksExternalInterface)
{
    auto sys = makeScripted({missThenWork(taddr(62), 30)},
                            ImplKind::Aso, slowMem(2));
    ASSERT_TRUE(sys->runUntilDone(400000));
    auto& sp = spec(*sys, 0);
    EXPECT_GE(sp.statCommits, 1u);
    EXPECT_FALSE(sys->agent(0).externalBlocked());   // unblocked after
}

TEST(SpecBits, CommitLeavesDataAbortRemovesIt)
{
    // Direct mechanism check through a tiny system: speculative write
    // hits, commit publishes it, and the footprint counter tracks bits.
    std::vector<ScriptOp> s;
    s.push_back(opLoad(taddr(63)));       // warm (exclusive grant)
    s.push_back(opAlu(50));
    s.push_back(opStore(taddr(64), 1));   // miss: speculate
    s.push_back(opStore(taddr(63), 42));  // spec write, direct hit
    auto sys = makeScripted({s}, ImplKind::InvisiSC,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(400000));
    EXPECT_EQ(sys->agent(0).specFootprint(), 0u);
    EXPECT_EQ(sys->agent(0).readWordL1(taddr(63)), 42u);
    EXPECT_EQ(spec(*sys, 0).statAborts, 0u);
}

TEST(SpecOverflow, TinyL1ForcesResolutionWithoutHanging)
{
    // 2-way 1KB L1: a speculation touching many blocks must trigger the
    // overflow machinery (deferred fills, commit pressure) and still
    // complete correctly.
    SystemParams params = slowMem(2);
    params.agent.l1Size = 1024;
    std::vector<ScriptOp> s;
    for (std::uint32_t i = 0; i < 48; ++i)
        s.push_back(opLoad(taddr(66) + i * kBlockBytes));   // warm L2
    s.push_back(opAlu(250));
    s.push_back(opStore(taddr(65), 1));   // miss: speculate
    for (std::uint32_t i = 0; i < 48; ++i)
        s.push_back(opLoad(taddr(66) + i * kBlockBytes));
    auto sys = makeScripted({s}, ImplKind::InvisiSC, params);
    ASSERT_TRUE(sys->runUntilDone(2000000));
    EXPECT_GE(sys->agent(0).statForcedSpecEvictions +
                  sys->agent(0).statDeferredFills,
              1u);
    EXPECT_EQ(sys->agent(0).specFootprint(), 0u);
}

TEST(Quiesce, SpeculativeImplsReportQuiescedOnlyWhenClean)
{
    auto sys = makeScripted({missThenWork(taddr(67), 5)},
                            ImplKind::InvisiSC, slowMem(2));
    ASSERT_TRUE(sys->runUntilDone(400000));
    EXPECT_TRUE(sys->impl(0).quiesced());
    EXPECT_FALSE(sys->impl(0).speculating());
}
