/** @file Core pipeline tests: dispatch/retire, forwarding, squash and
 *  replay, journaling, halting. Single- and dual-core scripted systems. */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace invisifence;
using namespace invisifence::test;

TEST(CorePipeline, AluStreamRetiresAtFullWidth)
{
    std::vector<ScriptOp> ops;
    for (int i = 0; i < 400; ++i)
        ops.push_back(opAlu(1));
    auto sys = makeScripted({ops}, ImplKind::ConvRMO);
    ASSERT_TRUE(sys->runUntilDone(100000));
    // 400 single-cycle ops on a 4-wide core: ~100 cycles + small ramp.
    EXPECT_LT(sys->now(), 140u);
    EXPECT_EQ(sys->core(0).statRetired, 400u);
}

TEST(CorePipeline, LoadReturnsStoredValue)
{
    auto sys = makeScripted(
        {{opStore(taddr(0), 321), opLoad(taddr(0))}}, ImplKind::ConvRMO);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_EQ(lastLoadOf(*sys, 0, taddr(0)), 321u);
}

TEST(CorePipeline, InRobForwardingBeatsTheCache)
{
    // The store has not retired when the load issues; the value must
    // come from the window.
    auto sys = makeScripted(
        {{opStore(taddr(1), 5), opLoad(taddr(1)), opLoad(taddr(1))}},
        ImplKind::ConvSC);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_EQ(lastLoadOf(*sys, 0, taddr(1)), 5u);
    EXPECT_GE(sys->core(0).statLoadForwards, 1u);
}

TEST(CorePipeline, StoreBufferForwardingUnderTso)
{
    // Under TSO the store sits in the FIFO SB while the load retires:
    // classic same-core store-to-load forwarding.
    auto sys = makeScripted(
        {{opStore(taddr(2), 77),
          opAlu(1), opAlu(1), opAlu(1), opAlu(1), opAlu(1), opAlu(1),
          opAlu(1), opAlu(1), opAlu(1), opAlu(1), opAlu(1), opAlu(1),
          opLoad(taddr(2))}},
        ImplKind::ConvTSO);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_EQ(lastLoadOf(*sys, 0, taddr(2)), 77u);
}

TEST(CorePipeline, SpinLoadEventuallyObservesFlag)
{
    auto sys = makeScripted(
        {{opStore(taddr(3), 1)},
         {opSpinUntilEq(taddr(3), 1), opLoad(taddr(3))}},
        ImplKind::ConvRMO);
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_EQ(lastLoadOf(*sys, 1, taddr(3)), 1u);
}

TEST(CorePipeline, SpinMispredictsUntilSatisfied)
{
    // Thread 1 spins while thread 0 delays: at least one mispredict
    // (spin predicted the flag ready before it was).
    std::vector<ScriptOp> t0;
    for (int i = 0; i < 100; ++i)
        t0.push_back(opAlu(4));
    t0.push_back(opStore(taddr(4), 1));
    auto sys = makeScripted({t0, {opSpinUntilEq(taddr(4), 1)}},
                            ImplKind::ConvRMO);
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_GE(sys->core(1).statMispredicts, 1u);
}

TEST(CorePipeline, CasSucceedsAndWrites)
{
    auto sys = makeScripted(
        {{opStore(taddr(5), 10), opCas(taddr(5), 10, 20),
          opLoad(taddr(5))}},
        ImplKind::ConvRMO);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_EQ(lastLoadOf(*sys, 0, taddr(5)), 20u);
    EXPECT_EQ(sys->memory().readWord(taddr(5)), 0u);   // still cached
}

TEST(CorePipeline, FailedCasWritesNothing)
{
    auto sys = makeScripted(
        {{opStore(taddr(6), 10), opCas(taddr(6), 99, 20),
          opLoad(taddr(6))}},
        ImplKind::ConvRMO);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_EQ(lastLoadOf(*sys, 0, taddr(6)), 10u);
}

TEST(CorePipeline, FetchAddAccumulates)
{
    auto sys = makeScripted(
        {{opFetchAdd(taddr(7), 3), opFetchAdd(taddr(7), 4),
          opLoad(taddr(7))}},
        ImplKind::ConvRMO);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_EQ(lastLoadOf(*sys, 0, taddr(7)), 7u);
}

TEST(CorePipeline, JournalRecordsCommittedMemOpsInOrder)
{
    auto sys = makeScripted(
        {{opStore(taddr(8), 1), opLoad(taddr(8)), opFence(),
          opStore(taddr(9), 2)}},
        ImplKind::ConvSC);
    ASSERT_TRUE(sys->runUntilDone(100000));
    const auto& j = sys->core(0).journal();
    ASSERT_EQ(j.size(), 3u);   // fences are not memory ops
    EXPECT_EQ(j[0].type, OpType::Store);
    EXPECT_EQ(j[1].type, OpType::Load);
    EXPECT_EQ(j[1].result, 1u);
    EXPECT_EQ(j[2].addr, wordAlign(taddr(9)));
}

TEST(CorePipeline, DoneRequiresDrainedStoreBuffer)
{
    auto sys = makeScripted({{opStore(taddr(10), 1)}},
                            ImplKind::ConvTSO);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_TRUE(sys->core(0).done());
    // The store made it into the cache hierarchy.
    EXPECT_TRUE(sys->agent(0).l1Writable(taddr(10)));
    EXPECT_EQ(sys->agent(0).readWordL1(taddr(10)), 1u);
}

TEST(CorePipeline, HaltedEmptyProgramFinishesImmediately)
{
    auto sys = makeScripted({{}}, ImplKind::ConvRMO);
    EXPECT_TRUE(sys->runUntilDone(1000));
}

TEST(CorePipeline, DeterministicAcrossIdenticalRuns)
{
    const auto run = []() {
        std::vector<ScriptOp> t0, t1;
        for (std::uint32_t i = 0; i < 50; ++i) {
            t0.push_back(opStore(taddr(11) + (i % 7) * kBlockBytes,
                                 static_cast<std::uint64_t>(i)));
            t1.push_back(opLoad(taddr(11) + (i % 5) * kBlockBytes));
        }
        auto sys = makeScripted({t0, t1}, ImplKind::ConvTSO);
        sys->runUntilDone(200000);
        return sys->now();
    };
    EXPECT_EQ(run(), run());
}

TEST(CorePipeline, LoadQueueSnoopSquashesStaleLoad)
{
    // Core 1 reads X twice with work in between; core 0 writes X in the
    // middle. Any in-window reordering that read stale data must be
    // squashed, so the two loads never observe "new then old".
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        std::vector<ScriptOp> t0;
        for (std::uint64_t i = 0; i < 10 + seed * 7; ++i)
            t0.push_back(opAlu(2));
        t0.push_back(opStore(taddr(12), 1));
        std::vector<ScriptOp> t1 = {opLoad(taddr(12)), opAlu(8),
                                    opLoad(taddr(12))};
        auto sys = makeScripted({t0, t1}, ImplKind::ConvSC);
        ASSERT_TRUE(sys->runUntilDone(200000));
        const auto& j = sys->core(1).journal();
        std::vector<std::uint64_t> loads;
        for (const auto& r : j)
            if (r.type == OpType::Load)
                loads.push_back(r.result);
        ASSERT_EQ(loads.size(), 2u);
        EXPECT_FALSE(loads[0] == 1 && loads[1] == 0)
            << "coherence order violated (seed " << seed << ")";
    }
}
