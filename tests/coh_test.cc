/** @file Coherence substrate tests: torus network, directory protocol
 *  flows, and the cache agent, driven without cores. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coh/cache_agent.hh"
#include "coh/directory.hh"
#include "coh/network.hh"
#include "mem/functional_mem.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace invisifence;

namespace {

/** FillWaiter record that sets *@p flag when the fill completes. */
FillWaiter
flagWaiter(bool* flag)
{
    return {[](void* owner, std::uint64_t) {
                *static_cast<bool*>(owner) = true;
            },
            flag, 0};
}

/** FillWaiter record that bumps *@p count. @p tag keeps otherwise
 *  identical records distinct where the MSHR merge dedup would
 *  deliberately collapse them. */
FillWaiter
countWaiter(int* count, std::uint64_t tag = 0)
{
    return {[](void* owner, std::uint64_t) {
                ++*static_cast<int*>(owner);
            },
            count, tag};
}

/** A bare multiprocessor memory system: agents + directories, no cores. */
struct Rig
{
    explicit Rig(std::uint32_t nodes, AgentParams ap = AgentParams{},
                 DirectoryParams dp = DirectoryParams{40, 5})
        : numNodes(nodes),
          net(eq, NetworkParams{nodes, 1, 20, 1}, nodes)
    {
        ap.l2Size = 64 * 1024;
        ap.l1Size = 4 * 1024;
        for (NodeId n = 0; n < nodes; ++n) {
            dirs.push_back(std::make_unique<DirectorySlice>(
                n, nodes, net, eq, mem, dp));
            agents.push_back(
                std::make_unique<CacheAgent>(n, nodes, net, eq, ap));
        }
    }

    /** Run the event queue far enough for everything to settle. */
    void
    settle(Cycle horizon = 100000)
    {
        eq.advanceTo(eq.now() + horizon);
    }

    /** Blocking request helper: returns once the block is usable. */
    void
    fetch(NodeId n, Addr addr, bool write)
    {
        bool done = false;
        ASSERT_TRUE(agents[n]->request(addr, write, flagWaiter(&done)));
        settle();
        ASSERT_TRUE(done);
    }

    std::uint32_t numNodes;
    EventQueue eq;
    FunctionalMemory mem;
    Network net;
    std::vector<std::unique_ptr<DirectorySlice>> dirs;
    std::vector<std::unique_ptr<CacheAgent>> agents;
};

} // namespace

// ---------------------------------------------------------------- network

TEST(Network, TorusHopsWrapAround)
{
    EventQueue eq;
    Network net(eq, NetworkParams{4, 4, 25, 1}, 16);
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 3), 1u);    // wrap in x
    EXPECT_EQ(net.hops(0, 12), 1u);   // wrap in y
    EXPECT_EQ(net.hops(0, 5), 2u);
    EXPECT_EQ(net.hops(0, 10), 4u);   // opposite corner-ish
}

TEST(Network, DelayScalesWithHops)
{
    EventQueue eq;
    Network net(eq, NetworkParams{4, 4, 25, 1}, 16);
    EXPECT_EQ(net.delay(0, 0), 1u);      // local floor
    EXPECT_EQ(net.delay(0, 1), 25u);
    EXPECT_EQ(net.delay(0, 5), 50u);
}

TEST(Network, DeliversToAttachedSink)
{
    EventQueue eq;
    Network net(eq, NetworkParams{2, 1, 10, 1}, 2);
    int got = 0;
    net.attach(1, Unit::Agent, [&](const Msg& m) {
        EXPECT_EQ(m.type, MsgType::GetS);
        ++got;
    });
    Msg m;
    m.type = MsgType::GetS;
    m.src = 0;
    m.dst = 1;
    m.dstUnit = Unit::Agent;
    net.send(m);
    eq.advanceTo(9);
    EXPECT_EQ(got, 0);
    eq.advanceTo(10);
    EXPECT_EQ(got, 1);
}

TEST(Network, PerPairFifoOrder)
{
    EventQueue eq;
    Network net(eq, NetworkParams{2, 1, 10, 1}, 2);
    std::vector<int> order;
    net.attach(1, Unit::Agent, [&](const Msg& m) {
        order.push_back(static_cast<int>(m.blockAddr));
    });
    for (int i = 0; i < 4; ++i) {
        Msg m;
        m.blockAddr = static_cast<Addr>(i);
        m.src = 0;
        m.dst = 1;
        m.dstUnit = Unit::Agent;
        net.send(m);
    }
    eq.drain();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --------------------------------------------------------- protocol flows

TEST(Protocol, ColdGetSGrantsExclusive)
{
    Rig rig(2);
    rig.mem.writeWord(0x1000, 99);
    rig.fetch(0, 0x1000, false);
    EXPECT_TRUE(rig.agents[0]->l1Readable(0x1000));
    EXPECT_TRUE(rig.agents[0]->l1Writable(0x1000));   // E grant when idle
    EXPECT_EQ(rig.agents[0]->readWordL1(0x1000), 99u);
    const NodeId home = homeOf(0x1000, 2);
    EXPECT_EQ(rig.dirs[home]->inspect(0x1000).state,
              DirectorySlice::DirState::Owned);
}

TEST(Protocol, SecondReaderSharesAndDowngradesOwner)
{
    Rig rig(2);
    rig.fetch(0, 0x1000, true);
    rig.agents[0]->writeWordL1(0x1000, 7, false, 0);
    rig.fetch(1, 0x1000, false);
    EXPECT_EQ(rig.agents[1]->readWordL1(0x1000), 7u);
    EXPECT_TRUE(rig.agents[0]->l1Readable(0x1000));
    EXPECT_FALSE(rig.agents[0]->l1Writable(0x1000));   // downgraded to S
    const NodeId home = homeOf(0x1000, 2);
    EXPECT_EQ(rig.dirs[home]->inspect(0x1000).state,
              DirectorySlice::DirState::Shared);
    // The FwdGetS writeback also made memory current.
    EXPECT_EQ(rig.mem.readWord(0x1000), 7u);
}

TEST(Protocol, WriterInvalidatesSharers)
{
    Rig rig(3);
    rig.fetch(0, 0x2000, false);
    rig.fetch(1, 0x2000, false);
    rig.fetch(2, 0x2000, true);
    EXPECT_TRUE(rig.agents[2]->l1Writable(0x2000));
    EXPECT_FALSE(rig.agents[0]->l1Readable(0x2000));
    EXPECT_FALSE(rig.agents[1]->l1Readable(0x2000));
    const NodeId home = homeOf(0x2000, 3);
    const auto view = rig.dirs[home]->inspect(0x2000);
    EXPECT_EQ(view.state, DirectorySlice::DirState::Owned);
    EXPECT_EQ(view.owner, 2u);
}

TEST(Protocol, DirtyDataMigratesWriterToWriter)
{
    Rig rig(2);
    rig.fetch(0, 0x3000, true);
    rig.agents[0]->writeWordL1(0x3000, 123, false, 0);
    rig.fetch(1, 0x3000, true);
    EXPECT_EQ(rig.agents[1]->readWordL1(0x3000), 123u);
    EXPECT_FALSE(rig.agents[0]->l1Readable(0x3000));
}

TEST(Protocol, UpgradeFromSharedKeepsData)
{
    Rig rig(2);
    rig.fetch(0, 0x4000, false);
    rig.fetch(1, 0x4000, false);
    rig.fetch(0, 0x4000, true);    // S -> M upgrade
    EXPECT_TRUE(rig.agents[0]->l1Writable(0x4000));
    EXPECT_FALSE(rig.agents[1]->l1Readable(0x4000));
}

TEST(Protocol, SilentEToMUpgradeThenServe)
{
    Rig rig(2);
    rig.fetch(0, 0x5000, false);              // E grant
    ASSERT_TRUE(rig.agents[0]->l1Writable(0x5000));
    rig.agents[0]->writeWordL1(0x5000, 42, false, 0);   // silent E->M
    rig.fetch(1, 0x5000, false);
    EXPECT_EQ(rig.agents[1]->readWordL1(0x5000), 42u);
}

TEST(Protocol, RequestsMergeIntoOneFetch)
{
    Rig rig(2);
    int done = 0;
    ASSERT_TRUE(rig.agents[0]->request(0x6000, false,
                                       countWaiter(&done, 0)));
    ASSERT_TRUE(rig.agents[0]->request(0x6000, false,
                                       countWaiter(&done, 1)));
    EXPECT_TRUE(rig.agents[0]->fetchOutstanding(0x6000));
    rig.settle();
    EXPECT_EQ(done, 2);
}

TEST(Protocol, ReadThenWriteWaiterUpgrades)
{
    Rig rig(2);
    rig.fetch(1, 0x7000, false);   // someone else shares first
    rig.fetch(0, 0x7000, false);
    int write_ok = 0;
    ASSERT_TRUE(rig.agents[0]->request(0x7000, true,
                                       countWaiter(&write_ok)));
    rig.settle();
    EXPECT_EQ(write_ok, 1);
    EXPECT_TRUE(rig.agents[0]->l1Writable(0x7000));
}

TEST(Protocol, DirectoryQueuesConcurrentWriters)
{
    Rig rig(4);
    int done = 0;
    for (NodeId n = 0; n < 4; ++n)
        ASSERT_TRUE(rig.agents[n]->request(0x8000, true,
                                           countWaiter(&done, n)));
    rig.settle();
    EXPECT_EQ(done, 4);
    // Exactly one writable copy at the end.
    int writable = 0;
    for (NodeId n = 0; n < 4; ++n)
        writable += rig.agents[n]->l1Writable(0x8000);
    EXPECT_EQ(writable, 1);
    const NodeId home = homeOf(0x8000, 4);
    EXPECT_TRUE(rig.dirs[home]->quiescent());
}

TEST(Protocol, VictimCacheCatchesL1Conflict)
{
    Rig rig(1);
    // 4KB 2-way L1 => 32 sets; three blocks mapping to the same set.
    const Addr a = 0x0, b = 32 * kBlockBytes, c = 64 * kBlockBytes;
    rig.fetch(0, a, false);
    rig.fetch(0, b, false);
    rig.fetch(0, c, false);   // evicts one of a/b into the VC
    EXPECT_EQ(rig.agents[0]->victimCache().size(), 1u);
    rig.fetch(0, a, false);   // back, possibly via the VC
    EXPECT_TRUE(rig.agents[0]->l1Readable(a));
}

TEST(Protocol, CleanWritebackPreservesValueInL2)
{
    Rig rig(1);
    rig.fetch(0, 0x9000, true);
    rig.agents[0]->writeWordL1(0x9000, 5, false, 0);
    ASSERT_TRUE(rig.agents[0]->l1Dirty(0x9000));
    bool cleaned = false;
    ASSERT_TRUE(rig.agents[0]->cleanWriteback(0x9000,
                                              [&]() { cleaned = true; }));
    rig.settle();
    EXPECT_TRUE(cleaned);
    EXPECT_FALSE(rig.agents[0]->l1Dirty(0x9000));
    EXPECT_EQ(rig.agents[0]->l2().lookup(0x9000).data().readWord(
                  blockOffset(0x9000)),
              5u);
}

TEST(Protocol, ExternalBlockingDefersAndReplays)
{
    Rig rig(2);
    rig.fetch(0, 0xa000, true);
    rig.agents[0]->writeWordL1(0xa000, 9, false, 0);
    rig.agents[0]->setExternalBlocked(true);
    bool done = false;
    ASSERT_TRUE(rig.agents[1]->request(0xa000, false,
                                       flagWaiter(&done)));
    rig.settle();
    EXPECT_FALSE(done);    // parked behind the blocked interface
    EXPECT_TRUE(rig.agents[0]->hasDeferred());
    rig.agents[0]->setExternalBlocked(false);
    rig.settle();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.agents[1]->readWordL1(0xa000), 9u);
}

// --------------------------------------------------- random property test

namespace {

struct RandomParam
{
    std::uint32_t nodes;
    std::uint64_t seed;
};

class ProtocolRandom : public ::testing::TestWithParam<RandomParam>
{
};

} // namespace

TEST_P(ProtocolRandom, SingleWriterInvariantUnderRandomTraffic)
{
    const auto [nodes, seed] = GetParam();
    Rig rig(nodes);
    Rng rng(seed);
    constexpr std::uint32_t kBlocks = 24;

    for (int round = 0; round < 60; ++round) {
        // Burst of random requests.
        for (int k = 0; k < 12; ++k) {
            const NodeId n =
                static_cast<NodeId>(rng.below(nodes));
            const Addr addr = static_cast<Addr>(rng.below(kBlocks)) *
                              kBlockBytes;
            const bool write = rng.below(2) == 0;
            rig.agents[n]->request(addr, write);
        }
        rig.settle(50000);

        // Invariants at quiescence: at most one writable copy per block,
        // and every directory slice idle.
        for (std::uint32_t b = 0; b < kBlocks; ++b) {
            const Addr addr = static_cast<Addr>(b) * kBlockBytes;
            int writable = 0;
            for (NodeId n = 0; n < nodes; ++n)
                writable += rig.agents[n]->l1Writable(addr) ||
                            (rig.agents[n]->l2().lookup(addr) &&
                             isWritable(
                                 rig.agents[n]->l2().lookup(addr).state()));
            ASSERT_LE(writable, 1) << "block " << b;
            if (writable == 1) {
                // No other valid copies coexist with a writer.
                int readable = 0;
                for (NodeId n = 0; n < nodes; ++n) {
                    const CacheArray::Line l2 =
                        rig.agents[n]->l2().lookup(addr);
                    readable += static_cast<int>(l2 && l2.valid());
                }
                ASSERT_EQ(readable, 1) << "block " << b;
            }
        }
        for (NodeId n = 0; n < nodes; ++n)
            ASSERT_TRUE(rig.dirs[n]->quiescent());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolRandom,
    ::testing::Values(RandomParam{2, 1}, RandomParam{2, 7},
                      RandomParam{3, 11}, RandomParam{4, 3},
                      RandomParam{4, 13}, RandomParam{8, 5},
                      RandomParam{8, 17}, RandomParam{16, 23}));

// --------------------------------------- flat directory vs map oracle

TEST(DirectoryFlat, RandomizedFlatVsMapSystemEquivalence)
{
    // Two identical rigs, one with the flat per-block table forced on
    // (at a deliberately tiny capacity, so the table grows and
    // rehashes under live traffic) and one forced back to the
    // unordered_map, driven by the same deterministic request/prime
    // stream. Every directory slice must end bit-equivalent.
    constexpr std::uint32_t kNodes = 4;
    constexpr std::uint32_t kBlocks = 192;   // >> 16-slot initial table
    DirectoryParams flat_dp{40, 5};
    flat_dp.flatTable = 1;
    flat_dp.flatCapacity = 16;
    DirectoryParams map_dp{40, 5};
    map_dp.flatTable = 0;
    Rig flat_rig(kNodes, AgentParams{}, flat_dp);
    Rig map_rig(kNodes, AgentParams{}, map_dp);

    // Prime a slab of blocks outside the traffic range identically.
    for (std::uint32_t b = 0; b < 32; ++b) {
        const Addr addr =
            static_cast<Addr>(kBlocks + b) * kBlockBytes;
        for (Rig* rig : {&flat_rig, &map_rig}) {
            DirectorySlice& d = *rig->dirs[homeOf(addr, kNodes)];
            if (b % 2 == 0) {
                SharerSet sharers = SharerSet::single(b % kNodes);
                sharers.set(0);
                d.primeShared(addr, sharers);
            } else {
                d.primeOwned(addr, b % kNodes);
            }
        }
    }

    Rng rng(20090613);
    for (int round = 0; round < 60; ++round) {
        for (int burst = 0; burst < 8; ++burst) {
            const NodeId n = static_cast<NodeId>(rng.below(kNodes));
            const Addr addr =
                static_cast<Addr>(rng.below(kBlocks)) * kBlockBytes;
            const bool write = rng.below(2) == 0;
            // Identical accept/reject decisions are part of the
            // equivalence claim.
            ASSERT_EQ(flat_rig.agents[n]->request(addr, write),
                      map_rig.agents[n]->request(addr, write));
        }
        flat_rig.settle(2000);
        map_rig.settle(2000);
    }
    flat_rig.settle();
    map_rig.settle();

    for (std::uint32_t b = 0; b < kBlocks + 32; ++b) {
        const Addr addr = static_cast<Addr>(b) * kBlockBytes;
        const NodeId home = homeOf(addr, kNodes);
        const DirectorySlice::EntryView fv =
            flat_rig.dirs[home]->inspect(addr);
        const DirectorySlice::EntryView mv =
            map_rig.dirs[home]->inspect(addr);
        ASSERT_EQ(static_cast<int>(fv.state), static_cast<int>(mv.state))
            << "block " << b;
        ASSERT_EQ(fv.sharers, mv.sharers) << "block " << b;
        ASSERT_EQ(fv.owner, mv.owner) << "block " << b;
    }
    for (NodeId n = 0; n < kNodes; ++n) {
        ASSERT_TRUE(flat_rig.dirs[n]->quiescent());
        ASSERT_TRUE(map_rig.dirs[n]->quiescent());
        EXPECT_EQ(flat_rig.dirs[n]->statStaleWritebacks,
                  map_rig.dirs[n]->statStaleWritebacks);
        EXPECT_EQ(flat_rig.dirs[n]->statQueuedRequests,
                  map_rig.dirs[n]->statQueuedRequests);
    }
}

// --------------------------------------------- local-fill event batching

TEST(CacheAgentBatch, SameTickLocalFillsShareOneEvent)
{
    Rig rig(2);
    const Addr addr = 0xb000;
    rig.fetch(0, addr, false);   // make the block locally resident

    const std::uint64_t before = rig.eq.scheduledCount();
    constexpr int kLoads = 5;
    int done = 0;
    for (int i = 0; i < kLoads; ++i)
        ASSERT_TRUE(rig.agents[0]->request(
            addr, false, countWaiter(&done, static_cast<std::uint64_t>(i))));
    const std::uint64_t scheduled = rig.eq.scheduledCount() - before;
    if (rig.agents[0]->mshrs().indexEnabled()) {
        // One batch event carries all five waiters.
        EXPECT_EQ(scheduled, 1u);
    } else {
        // Escape hatch: the legacy one-event-per-request path.
        EXPECT_EQ(scheduled, static_cast<std::uint64_t>(kLoads));
    }
    rig.settle();
    EXPECT_EQ(done, kLoads);
}

TEST(CacheAgentBatch, DifferentBlocksDoNotMerge)
{
    Rig rig(2);
    rig.fetch(0, 0xc000, false);
    rig.fetch(0, 0xd000, false);

    const std::uint64_t before = rig.eq.scheduledCount();
    int done = 0;
    ASSERT_TRUE(rig.agents[0]->request(0xc000, false, countWaiter(&done, 0)));
    ASSERT_TRUE(rig.agents[0]->request(0xd000, false, countWaiter(&done, 1)));
    EXPECT_EQ(rig.eq.scheduledCount() - before, 2u);
    rig.settle();
    EXPECT_EQ(done, 2);
}
