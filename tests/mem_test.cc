/** @file Unit tests for memory structures: blocks, cache array, victim
 *  cache, MSHRs, store buffers, functional memory. */

#include <gtest/gtest.h>

#include "mem/block.hh"
#include "mem/cache_array.hh"
#include "mem/functional_mem.hh"
#include "mem/mshr.hh"
#include "mem/store_buffer.hh"
#include "mem/victim_cache.hh"

using namespace invisifence;

// ---------------------------------------------------------------- block

TEST(Block, WordReadWriteRoundTrip)
{
    BlockData b;
    b.writeWord(8, 0xdeadbeefcafef00dull);
    EXPECT_EQ(b.readWord(8), 0xdeadbeefcafef00dull);
    EXPECT_EQ(b.readWord(0), 0u);
}

TEST(Block, ByteMaskCoversRange)
{
    EXPECT_EQ(byteMaskFor(0, 8), 0xffull);
    EXPECT_EQ(byteMaskFor(8, 8), 0xff00ull);
    EXPECT_EQ(byteMaskFor(0, 64), ~ByteMask{0});
}

TEST(MaskedBlock, CoversAndRead)
{
    MaskedBlock m;
    EXPECT_TRUE(m.empty());
    m.write(16, 8, 0x1122334455667788ull);
    EXPECT_TRUE(m.covers(16, 8));
    EXPECT_FALSE(m.covers(8, 8));
    EXPECT_FALSE(m.covers(20, 8));
    EXPECT_EQ(m.read(16, 8), 0x1122334455667788ull);
}

TEST(MaskedBlock, ApplyOverlaysOnlyDefinedBytes)
{
    BlockData base;
    base.writeWord(0, 0xaaaaaaaaaaaaaaaaull);
    base.writeWord(8, 0xbbbbbbbbbbbbbbbbull);
    MaskedBlock m;
    m.write(8, 8, 0x1ull);
    m.applyTo(base);
    EXPECT_EQ(base.readWord(0), 0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(base.readWord(8), 0x1ull);
}

TEST(MaskedBlock, MergeYoungerWins)
{
    MaskedBlock older, younger;
    older.write(0, 8, 111);
    younger.write(0, 8, 222);
    older.merge(younger);
    EXPECT_EQ(older.read(0, 8), 222u);
}

TEST(MaskedBlock, FullAfterWholeBlockWrite)
{
    MaskedBlock m;
    for (std::uint32_t off = 0; off < kBlockBytes; off += 8)
        m.write(off, 8, off);
    EXPECT_TRUE(m.full());
}

// ----------------------------------------------------------- cache array

TEST(CacheArray, MissThenInsertHits)
{
    CacheArray c(4096, 2, "t");
    EXPECT_EQ(c.lookup(0x1000), nullptr);
    CacheLine& v = c.findVictim(0x1000);
    v.blockAddr = blockAlign(0x1000);
    v.state = CoherenceState::Exclusive;
    c.touch(v);
    ASSERT_NE(c.lookup(0x1000), nullptr);
    EXPECT_EQ(c.lookup(0x1010), c.lookup(0x1000));   // same block
}

TEST(CacheArray, SetIndexWrapsOnSets)
{
    CacheArray c(4096, 2, "t");   // 32 sets
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_EQ(c.setIndex(0), c.setIndex(32ull * kBlockBytes));
    EXPECT_NE(c.setIndex(0), c.setIndex(kBlockBytes));
}

TEST(CacheArray, LruVictimIsLeastRecentlyTouched)
{
    CacheArray c(4096, 2, "t");
    const Addr a = 0;
    const Addr b = 32ull * kBlockBytes;    // same set as a
    for (Addr addr : {a, b}) {
        CacheLine& v = c.findVictim(addr);
        v.blockAddr = addr;
        v.state = CoherenceState::Shared;
        c.touch(v);
    }
    c.touch(*c.lookup(a));   // b becomes LRU
    CacheLine& victim = c.findVictim(64ull * kBlockBytes);
    EXPECT_EQ(victim.blockAddr, b);
}

TEST(CacheArray, VictimAvoidsPredicate)
{
    CacheArray c(4096, 2, "t");
    const Addr a = 0, b = 32ull * kBlockBytes;
    for (Addr addr : {a, b}) {
        CacheLine& v = c.findVictim(addr);
        v.blockAddr = addr;
        v.state = CoherenceState::Shared;
        c.touch(v);
    }
    c.lookup(b)->specRead[0] = true;
    c.touch(*c.lookup(b));
    c.touch(*c.lookup(a));   // a is MRU; b is LRU but speculative
    bool forced = false;
    CacheLine& victim = c.findVictim(
        64ull * kBlockBytes,
        [](const CacheLine& l) { return l.speculative(); }, &forced);
    EXPECT_FALSE(forced);
    EXPECT_EQ(victim.blockAddr, a);
}

TEST(CacheArray, ForcedWhenAllWaysAvoided)
{
    CacheArray c(4096, 2, "t");
    const Addr a = 0, b = 32ull * kBlockBytes;
    for (Addr addr : {a, b}) {
        CacheLine& v = c.findVictim(addr);
        v.blockAddr = addr;
        v.state = CoherenceState::Shared;
        v.specWritten[0] = true;
        c.touch(v);
    }
    bool forced = false;
    c.findVictim(64ull * kBlockBytes,
                 [](const CacheLine& l) { return l.speculative(); },
                 &forced);
    EXPECT_TRUE(forced);
}

TEST(CacheArray, FlashClearSpecBits)
{
    CacheArray c(4096, 2, "t");
    CacheLine& v = c.findVictim(0);
    v.blockAddr = 0;
    v.state = CoherenceState::Modified;
    v.specRead[0] = v.specWritten[0] = true;
    v.specRead[1] = true;
    c.flashClearSpecBits(0);
    EXPECT_FALSE(v.specRead[0]);
    EXPECT_FALSE(v.specWritten[0]);
    EXPECT_TRUE(v.specRead[1]);    // other context untouched
    EXPECT_TRUE(v.valid());        // commit does not invalidate
}

TEST(CacheArray, FlashInvalidateOnlySpecWritten)
{
    CacheArray c(4096, 2, "t");
    CacheLine& w = c.findVictim(0);
    w.blockAddr = 0;
    w.state = CoherenceState::Modified;
    w.specWritten[0] = true;
    CacheLine& r = c.findVictim(kBlockBytes);
    r.blockAddr = kBlockBytes;
    r.state = CoherenceState::Shared;
    r.specRead[0] = true;

    c.flashInvalidateSpecWritten(0);
    EXPECT_FALSE(c.lookup(0));              // written block invalidated
    ASSERT_TRUE(c.lookup(kBlockBytes));     // read block survives...
    EXPECT_FALSE(c.lookup(kBlockBytes)->specRead[0]);   // ...bit cleared
}

TEST(CacheArray, CountSpeculative)
{
    CacheArray c(4096, 2, "t");
    for (int i = 0; i < 4; ++i) {
        CacheLine& v = c.findVictim(static_cast<Addr>(i) * kBlockBytes);
        v.blockAddr = static_cast<Addr>(i) * kBlockBytes;
        v.state = CoherenceState::Shared;
        if (i < 3)
            v.specRead[0] = true;
    }
    EXPECT_EQ(c.countSpeculative(0), 3u);
    EXPECT_EQ(c.countSpeculative(1), 0u);
}

TEST(CacheArray, InvalidateClearsEverything)
{
    CacheLine l;
    l.state = CoherenceState::Modified;
    l.dirty = true;
    l.specRead[0] = l.specWritten[1] = true;
    l.invalidate();
    EXPECT_FALSE(l.valid());
    EXPECT_FALSE(l.dirty);
    EXPECT_FALSE(l.speculative());
}

// ---------------------------------------------------------- victim cache

TEST(VictimCache, InsertExtractRoundTrip)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0x4000;
    e.state = CoherenceState::Shared;
    vc.insert(e);
    VictimCache::Entry out;
    EXPECT_TRUE(vc.extract(0x4000, &out));
    EXPECT_EQ(out.blockAddr, 0x4000u);
    EXPECT_FALSE(vc.extract(0x4000, &out));   // removed on extract
}

TEST(VictimCache, FifoDisplacement)
{
    VictimCache vc(2);
    for (Addr a : {Addr{0x100 * 64}, Addr{0x200 * 64}, Addr{0x300 * 64}}) {
        VictimCache::Entry e;
        e.blockAddr = a;
        e.state = CoherenceState::Shared;
        vc.insert(e);
    }
    EXPECT_EQ(vc.size(), 2u);
    EXPECT_EQ(vc.probe(0x100 * 64), nullptr);    // oldest displaced
    EXPECT_NE(vc.probe(0x200 * 64), nullptr);
    EXPECT_NE(vc.probe(0x300 * 64), nullptr);
}

TEST(VictimCache, ReinsertReplaces)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0x40;
    e.state = CoherenceState::Shared;
    e.data.writeWord(0, 1);
    vc.insert(e);
    e.data.writeWord(0, 2);
    vc.insert(e);
    EXPECT_EQ(vc.size(), 1u);
    EXPECT_EQ(vc.probe(0x40)->data.readWord(0), 2u);
}

TEST(VictimCache, InvalidateRemoves)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0x80;
    e.state = CoherenceState::Exclusive;
    vc.insert(e);
    EXPECT_TRUE(vc.invalidate(0x80));
    EXPECT_FALSE(vc.invalidate(0x80));
    EXPECT_EQ(vc.probe(0x80), nullptr);
}

TEST(VictimCache, HitMissStats)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0xc0;
    e.state = CoherenceState::Shared;
    vc.insert(e);
    vc.extract(0xc0, nullptr);
    vc.extract(0xc0, nullptr);
    EXPECT_EQ(vc.statHits, 1u);
    EXPECT_EQ(vc.statMisses, 1u);
}

// ------------------------------------------------------------------ mshr

TEST(Mshr, AllocateLookupFree)
{
    MshrFile f(2);
    Mshr* a = f.allocate(0x1000, Mshr::Kind::Fetch);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(f.lookup(0x1008), a);   // same block
    EXPECT_EQ(f.lookup(0x2000), nullptr);
    f.free(a);
    EXPECT_EQ(f.lookup(0x1000), nullptr);
    EXPECT_EQ(f.inUse(), 0u);
}

TEST(Mshr, CapacityEnforced)
{
    MshrFile f(2);
    EXPECT_NE(f.allocate(0x0, Mshr::Kind::Fetch), nullptr);
    EXPECT_NE(f.allocate(0x40, Mshr::Kind::Fetch), nullptr);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.allocate(0x80, Mshr::Kind::Fetch), nullptr);
    EXPECT_EQ(f.statFullStalls, 1u);
}

TEST(Mshr, KindsCoexistPerBlock)
{
    MshrFile f(4);
    Mshr* fetch = f.allocate(0x100, Mshr::Kind::Fetch);
    Mshr* wb = f.allocate(0x100, Mshr::Kind::Writeback);
    EXPECT_EQ(f.lookup(0x100, Mshr::Kind::Fetch), fetch);
    EXPECT_EQ(f.lookup(0x100, Mshr::Kind::Writeback), wb);
}

TEST(Mshr, WaitersAccumulate)
{
    MshrFile f(4);
    Mshr* m = f.allocate(0x100, Mshr::Kind::Fetch);
    int fired = 0;
    f.pushWaiter(m->readWaiters, [&]() { ++fired; });
    f.pushWaiter(m->readWaiters, [&]() { ++fired; });
    std::uint32_t idx = f.takeWaiters(m->readWaiters);
    while (idx != kNoWaiter) {
        FillCallback cb = f.takeWaiterAndAdvance(idx);
        cb();
    }
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(m->readWaiters.empty());
}

TEST(Mshr, WaiterSlabRecyclesNodes)
{
    // Waiter nodes come from one shared free-listed slab: a second
    // burst of the same size must reuse the first burst's nodes.
    MshrFile f(4);
    for (int round = 0; round < 2; ++round) {
        Mshr* m = f.allocate(0x200, Mshr::Kind::Fetch);
        int fired = 0;
        for (int i = 0; i < 8; ++i)
            f.pushWaiter(m->readWaiters, [&]() { ++fired; });
        std::uint32_t idx = f.takeWaiters(m->readWaiters);
        while (idx != kNoWaiter) {
            FillCallback cb = f.takeWaiterAndAdvance(idx);
            cb();
        }
        EXPECT_EQ(fired, 8);
        f.free(m);
    }
}

// -------------------------------------------------------- FIFO store buf

TEST(FifoSb, PushPopInOrder)
{
    FifoStoreBuffer sb(4);
    sb.push(0x1000, 1, 1);
    sb.push(0x2000, 2, 2);
    EXPECT_EQ(sb.front().addr, 0x1000u);
    sb.popFront();
    EXPECT_EQ(sb.front().addr, 0x2000u);
}

TEST(FifoSb, CapacityAndSpace)
{
    FifoStoreBuffer sb(2);
    EXPECT_TRUE(sb.hasSpace());
    sb.push(0x0, 1, 1);
    sb.push(0x8, 2, 2);
    EXPECT_TRUE(sb.full());
    EXPECT_FALSE(sb.hasSpace());
}

TEST(FifoSb, ForwardYoungestMatch)
{
    FifoStoreBuffer sb(8);
    sb.push(0x1000, 11, 1);
    sb.push(0x2000, 22, 2);
    sb.push(0x1000, 33, 3);    // younger store to same word
    const auto v = sb.forward(0x1000);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 33u);
    EXPECT_FALSE(sb.forward(0x3000).has_value());
}

TEST(FifoSb, ForwardIsWordGranular)
{
    FifoStoreBuffer sb(8);
    sb.push(0x1000, 11, 1);
    EXPECT_FALSE(sb.forward(0x1008).has_value());   // next word
    EXPECT_TRUE(sb.forward(0x1004).has_value());    // same word
}

TEST(FifoSb, ContainsBlock)
{
    FifoStoreBuffer sb(8);
    sb.push(0x1008, 1, 1);
    EXPECT_TRUE(sb.containsBlock(0x1000));
    EXPECT_TRUE(sb.containsBlock(0x1038));
    EXPECT_FALSE(sb.containsBlock(0x1040));
}

TEST(FifoSb, PeakOccupancyTracked)
{
    FifoStoreBuffer sb(8);
    for (int i = 0; i < 5; ++i)
        sb.push(static_cast<Addr>(i) * 8, 0, static_cast<InstSeq>(i));
    sb.popFront();
    EXPECT_EQ(sb.statPeakOccupancy, 5u);
    EXPECT_EQ(sb.size(), 4u);
}

// -------------------------------------------------- coalescing store buf

TEST(CoalSb, MergesSameBlockSameLabel)
{
    CoalescingStoreBuffer sb(4);
    EXPECT_EQ(sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1),
              CoalescingStoreBuffer::StoreResult::NewEntry);
    EXPECT_EQ(sb.store(0x1008, 8, 2, false, kNonSpecCtx, 2),
              CoalescingStoreBuffer::StoreResult::Merged);
    EXPECT_EQ(sb.size(), 1u);
}

TEST(CoalSb, NoCoalesceAcrossSpecBoundary)
{
    // Section 3.1: "the store buffer does not perform coalescing between
    // speculative and non-speculative stores for a given block."
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    EXPECT_EQ(sb.store(0x1008, 8, 2, true, 0, 2),
              CoalescingStoreBuffer::StoreResult::NewEntry);
    EXPECT_EQ(sb.size(), 2u);
}

TEST(CoalSb, NoCoalesceAcrossCheckpoints)
{
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 8, 1, true, 0, 1);
    EXPECT_EQ(sb.store(0x1008, 8, 2, true, 1, 2),
              CoalescingStoreBuffer::StoreResult::NewEntry);
    EXPECT_EQ(sb.size(), 2u);
}

TEST(CoalSb, FullWhenNoCompatibleEntry)
{
    CoalescingStoreBuffer sb(1);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    EXPECT_EQ(sb.store(0x2000, 8, 2, false, kNonSpecCtx, 2),
              CoalescingStoreBuffer::StoreResult::Full);
    // ...but a merge into the existing entry still succeeds.
    EXPECT_EQ(sb.store(0x1010, 8, 3, false, kNonSpecCtx, 3),
              CoalescingStoreBuffer::StoreResult::Merged);
}

TEST(CoalSb, GatherOverlaysOldestToYoungest)
{
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x1000, 8, 2, true, 0, 2);   // younger spec entry, same word
    const MaskedBlock view = sb.gatherBlock(0x1000);
    EXPECT_EQ(view.read(0, 8), 2u);       // younger wins
}

TEST(CoalSb, ForwardRequiresFullCoverage)
{
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 4, 0xabcd, false, kNonSpecCtx, 1);   // half a word
    EXPECT_FALSE(sb.forward(0x1000).has_value());
    sb.store(0x1004, 4, 0x1234, false, kNonSpecCtx, 2);
    EXPECT_TRUE(sb.forward(0x1000).has_value());
}

TEST(CoalSb, FlashInvalidateSpeculativeOnly)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x2000, 8, 2, true, 0, 2);
    sb.store(0x3000, 8, 3, true, 1, 3);
    sb.flashInvalidateSpeculative();
    EXPECT_EQ(sb.size(), 1u);
    EXPECT_FALSE(sb.emptyOfCtx(kNonSpecCtx));
    EXPECT_TRUE(sb.emptyOfCtx(0));
    EXPECT_TRUE(sb.emptyOfCtx(1));
}

TEST(CoalSb, EmptyOfSpeculative)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    EXPECT_TRUE(sb.emptyOfSpeculative());
    sb.store(0x2000, 8, 2, true, 0, 2);
    EXPECT_FALSE(sb.emptyOfSpeculative());
}

TEST(CoalSb, EraseSpecificEntry)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x2000, 8, 2, false, kNonSpecCtx, 2);
    sb.erase(sb.entries()[0]);
    ASSERT_EQ(sb.size(), 1u);
    EXPECT_EQ(sb.entries()[0].blockAddr, 0x2000u);
}

TEST(CoalSb, MergeStats)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x1008, 8, 2, false, kNonSpecCtx, 2);
    sb.store(0x1010, 8, 3, false, kNonSpecCtx, 3);
    EXPECT_EQ(sb.statStores, 3u);
    EXPECT_EQ(sb.statMerges, 2u);
}

// ------------------------------------------------------ functional mem

TEST(FunctionalMem, ZeroFillDefault)
{
    FunctionalMemory m;
    EXPECT_EQ(m.readWord(0x123456789abcull & ~7ull), 0u);
    EXPECT_EQ(m.touchedBlocks(), 0u);
}

TEST(FunctionalMem, WordRoundTrip)
{
    FunctionalMemory m;
    m.writeWord(0x1008, 77);
    EXPECT_EQ(m.readWord(0x1008), 77u);
    EXPECT_EQ(m.readWord(0x1000), 0u);
    EXPECT_EQ(m.touchedBlocks(), 1u);
}

TEST(FunctionalMem, BlockRoundTrip)
{
    FunctionalMemory m;
    BlockData b;
    b.writeWord(24, 0x55);
    m.writeBlock(0x2000, b);
    EXPECT_EQ(m.readBlock(0x2010).readWord(24), 0x55u);
}
