/** @file Unit tests for memory structures: blocks, cache array, victim
 *  cache, MSHRs, store buffers, functional memory. */

#include <gtest/gtest.h>

#include <vector>

#include <unordered_map>

#include "mem/block.hh"
#include "mem/cache_array.hh"
#include "mem/functional_mem.hh"
#include "mem/mshr.hh"
#include "mem/store_buffer.hh"
#include "mem/victim_cache.hh"
#include "sim/flat_map.hh"
#include "sim/rng.hh"

using namespace invisifence;

// ---------------------------------------------------------------- block

TEST(Block, WordReadWriteRoundTrip)
{
    BlockData b;
    b.writeWord(8, 0xdeadbeefcafef00dull);
    EXPECT_EQ(b.readWord(8), 0xdeadbeefcafef00dull);
    EXPECT_EQ(b.readWord(0), 0u);
}

TEST(Block, ByteMaskCoversRange)
{
    EXPECT_EQ(byteMaskFor(0, 8), 0xffull);
    EXPECT_EQ(byteMaskFor(8, 8), 0xff00ull);
    EXPECT_EQ(byteMaskFor(0, 64), ~ByteMask{0});
}

TEST(MaskedBlock, CoversAndRead)
{
    MaskedBlock m;
    EXPECT_TRUE(m.empty());
    m.write(16, 8, 0x1122334455667788ull);
    EXPECT_TRUE(m.covers(16, 8));
    EXPECT_FALSE(m.covers(8, 8));
    EXPECT_FALSE(m.covers(20, 8));
    EXPECT_EQ(m.read(16, 8), 0x1122334455667788ull);
}

TEST(MaskedBlock, ApplyOverlaysOnlyDefinedBytes)
{
    BlockData base;
    base.writeWord(0, 0xaaaaaaaaaaaaaaaaull);
    base.writeWord(8, 0xbbbbbbbbbbbbbbbbull);
    MaskedBlock m;
    m.write(8, 8, 0x1ull);
    m.applyTo(base);
    EXPECT_EQ(base.readWord(0), 0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(base.readWord(8), 0x1ull);
}

TEST(MaskedBlock, MergeYoungerWins)
{
    MaskedBlock older, younger;
    older.write(0, 8, 111);
    younger.write(0, 8, 222);
    older.merge(younger);
    EXPECT_EQ(older.read(0, 8), 222u);
}

TEST(MaskedBlock, FullAfterWholeBlockWrite)
{
    MaskedBlock m;
    for (std::uint32_t off = 0; off < kBlockBytes; off += 8)
        m.write(off, 8, off);
    EXPECT_TRUE(m.full());
}

// ----------------------------------------------------------- cache array

namespace {

/** Install @p addr into @p c the way the agent does (victim, install,
 *  touch) and return the line. */
CacheArray::Line
install(CacheArray& c, Addr addr,
        CoherenceState state = CoherenceState::Shared)
{
    CacheArray::Line v = c.findVictim(addr);
    if (v.valid())
        v.invalidate();
    v.install(addr, state);
    c.touch(v);
    return v;
}

} // namespace

TEST(CacheArray, MissThenInsertHits)
{
    CacheArray c(4096, 2, "t");
    EXPECT_FALSE(c.lookup(0x1000));
    install(c, 0x1000, CoherenceState::Exclusive);
    ASSERT_TRUE(c.lookup(0x1000));
    EXPECT_EQ(c.lookup(0x1010), c.lookup(0x1000));   // same block
}

TEST(CacheArray, SetIndexWrapsOnSets)
{
    CacheArray c(4096, 2, "t");   // 32 sets
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_EQ(c.setIndex(0), c.setIndex(32ull * kBlockBytes));
    EXPECT_NE(c.setIndex(0), c.setIndex(kBlockBytes));
}

TEST(CacheArray, TagLaneStaysCompact)
{
    // The whole point of the split layout: a set's tags scan within one
    // or two host cache lines, block data untouched.
    EXPECT_EQ(sizeof(CacheTag), 16u);
}

TEST(CacheArray, LruVictimIsLeastRecentlyTouched)
{
    CacheArray c(4096, 2, "t");
    const Addr a = 0;
    const Addr b = 32ull * kBlockBytes;    // same set as a
    install(c, a);
    install(c, b);
    c.touch(c.lookup(a));   // b becomes LRU
    CacheArray::Line victim = c.findVictim(64ull * kBlockBytes);
    EXPECT_EQ(victim.blockAddr(), b);
}

TEST(CacheArray, VictimAvoidsPredicate)
{
    CacheArray c(4096, 2, "t");
    const Addr a = 0, b = 32ull * kBlockBytes;
    install(c, a);
    install(c, b);
    c.lookup(b).setSpecRead(0);
    c.touch(c.lookup(b));
    c.touch(c.lookup(a));   // a is MRU; b is LRU but speculative
    bool forced = false;
    CacheArray::Line victim = c.findVictim(
        64ull * kBlockBytes,
        [](const CacheArray::Line& l) { return l.speculative(); },
        &forced);
    EXPECT_FALSE(forced);
    EXPECT_EQ(victim.blockAddr(), a);
}

TEST(CacheArray, ForcedWhenAllWaysAvoided)
{
    CacheArray c(4096, 2, "t");
    const Addr a = 0, b = 32ull * kBlockBytes;
    for (Addr addr : {a, b}) {
        CacheArray::Line v =
            install(c, addr, CoherenceState::Modified);
        v.setSpecWritten(0);
    }
    bool forced = false;
    c.findVictim(
        64ull * kBlockBytes,
        [](const CacheArray::Line& l) { return l.speculative(); },
        &forced);
    EXPECT_TRUE(forced);
}

TEST(CacheArray, FlashClearSpecBits)
{
    CacheArray c(4096, 2, "t");
    CacheArray::Line v = install(c, 0, CoherenceState::Modified);
    v.setSpecRead(0);
    v.setSpecWritten(0);
    v.setSpecRead(1);
    c.flashClearSpecBits(0);
    EXPECT_FALSE(v.specRead(0));
    EXPECT_FALSE(v.specWritten(0));
    EXPECT_TRUE(v.specRead(1));    // other context untouched
    EXPECT_TRUE(v.valid());        // commit does not invalidate
}

TEST(CacheArray, FlashInvalidateOnlySpecWritten)
{
    CacheArray c(4096, 2, "t");
    install(c, 0, CoherenceState::Modified).setSpecWritten(0);
    install(c, kBlockBytes).setSpecRead(0);

    c.flashInvalidateSpecWritten(0);
    EXPECT_FALSE(c.lookup(0));              // written block invalidated
    ASSERT_TRUE(c.lookup(kBlockBytes));     // read block survives...
    EXPECT_FALSE(c.lookup(kBlockBytes).specRead(0));   // ...bit cleared
}

TEST(CacheArray, CountSpeculativeIsIncremental)
{
    CacheArray c(4096, 2, "t");
    for (int i = 0; i < 4; ++i) {
        CacheArray::Line v =
            install(c, static_cast<Addr>(i) * kBlockBytes);
        if (i < 3)
            v.setSpecRead(0);
    }
    EXPECT_EQ(c.countSpeculative(0), 3u);
    EXPECT_EQ(c.countSpeculative(1), 0u);
    c.lookup(0).setSpecWritten(1);
    EXPECT_EQ(c.countSpeculative(1), 1u);
    c.lookup(0).invalidate();               // leaves both indices
    EXPECT_EQ(c.countSpeculative(0), 2u);
    EXPECT_EQ(c.countSpeculative(1), 0u);
    c.flashClearSpecBits(0);
    EXPECT_EQ(c.countSpeculative(0), 0u);
}

TEST(CacheArray, InvalidateClearsEverything)
{
    CacheArray c(4096, 2, "t");
    CacheArray::Line l = install(c, 0, CoherenceState::Modified);
    l.setDirty(true);
    l.setSpecRead(0);
    l.setSpecWritten(1);
    l.invalidate();
    EXPECT_FALSE(l.valid());
    EXPECT_FALSE(l.dirty());
    EXPECT_FALSE(l.speculative());
    EXPECT_FALSE(c.lookup(0));
}

// ------------------------------------------- handle/generation semantics

TEST(CacheArrayHandle, SurvivesStateAndLruChanges)
{
    CacheArray c(4096, 2, "t");
    CacheArray::Line l = install(c, 0x2000, CoherenceState::Exclusive);
    const CacheArray::Handle h = l.handle();
    l.setState(CoherenceState::Modified);
    l.setDirty(true);
    l.setSpecRead(0);
    c.touch(l);
    c.flashClearSpecBits(0);     // commit: identity unchanged
    CacheArray::Line r = c.resolve(h);
    ASSERT_TRUE(r);
    EXPECT_EQ(r.blockAddr(), blockAlign(0x2000));
    EXPECT_TRUE(r.dirty());      // reads see current line contents
}

TEST(CacheArrayHandle, InvalidateKillsHandle)
{
    CacheArray c(4096, 2, "t");
    const CacheArray::Handle h = install(c, 0x2000).handle();
    c.lookup(0x2000).invalidate();
    EXPECT_FALSE(c.resolve(h));
}

TEST(CacheArrayHandle, ReinstallDoesNotResurrectHandle)
{
    CacheArray c(4096, 1, "t");   // direct-mapped: same frame reused
    const CacheArray::Handle h = install(c, 0x2000).handle();
    c.lookup(0x2000).invalidate();
    install(c, 0x2000);           // same block, same frame, new life
    EXPECT_FALSE(c.resolve(h));   // the pin was to the old incarnation
    EXPECT_TRUE(c.resolve(c.lookup(0x2000).handle()));
}

TEST(CacheArrayHandle, VictimInstallKillsDisplacedHandle)
{
    CacheArray c(4096, 1, "t");   // 64 sets, direct-mapped
    const CacheArray::Handle h = install(c, 0).handle();
    // Same set, different block: displaces the pinned line.
    CacheArray::Line v = c.findVictim(64ull * kBlockBytes);
    ASSERT_TRUE(v.valid());
    v.invalidate();
    v.install(64ull * kBlockBytes, CoherenceState::Shared);
    EXPECT_FALSE(c.resolve(h));
}

TEST(CacheArrayHandle, FlashInvalidateKillsSpecWrittenHandle)
{
    CacheArray c(4096, 2, "t");
    CacheArray::Line w = install(c, 0, CoherenceState::Modified);
    w.setSpecWritten(0);
    CacheArray::Line r = install(c, kBlockBytes);
    r.setSpecRead(0);
    const CacheArray::Handle hw = w.handle();
    const CacheArray::Handle hr = r.handle();
    c.flashInvalidateSpecWritten(0);
    EXPECT_FALSE(c.resolve(hw));   // abort invalidated the written block
    EXPECT_TRUE(c.resolve(hr));    // read-only block kept its identity
}

TEST(CacheArrayHandle, NullHandleResolvesNull)
{
    CacheArray c(4096, 2, "t");
    EXPECT_FALSE(c.resolve(CacheArray::Handle{}));
}

TEST(CacheArrayHandle, InvalidFrameNeverResolves)
{
    // A handle pinned to a frame with no live block (an empty victim
    // frame, or taken after an invalidate bumped the generation) must
    // not resolve, even though the generation stamp matches.
    CacheArray c(4096, 2, "t");
    const CacheArray::Line empty = c.findVictim(0x3000);
    ASSERT_FALSE(empty.valid());
    EXPECT_FALSE(c.resolve(empty.handle()));

    CacheArray::Line l = install(c, 0x3000);
    l.invalidate();
    EXPECT_FALSE(c.resolve(l.handle()));   // taken after invalidation
}

// --------------------------------------- randomized reference-model test

namespace {

/** Naive oracle: the pre-split CacheLine struct-of-everything layout
 *  with O(lines) scans and 64-bit LRU stamps that never renormalize. */
struct OracleArray
{
    struct Line
    {
        Addr blockAddr = 0;
        CoherenceState state = CoherenceState::Invalid;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
        bool specRead[kMaxCheckpoints] = {false, false};
        bool specWritten[kMaxCheckpoints] = {false, false};

        bool valid() const { return isValidState(state); }
        bool
        speculative() const
        {
            return specRead[0] || specRead[1] || specWritten[0] ||
                   specWritten[1];
        }
        void
        invalidate()
        {
            state = CoherenceState::Invalid;
            dirty = false;
            for (std::uint32_t ctx = 0; ctx < kMaxCheckpoints; ++ctx)
                specRead[ctx] = specWritten[ctx] = false;
        }
    };

    std::uint32_t sets, ways;
    std::vector<Line> lines;
    std::uint64_t lruCounter = 0;

    OracleArray(std::uint32_t s, std::uint32_t w)
        : sets(s), ways(w), lines(s * w)
    {
    }

    std::uint32_t
    setIndex(Addr a) const
    {
        return static_cast<std::uint32_t>((a >> kBlockShift) &
                                          (sets - 1));
    }

    int
    lookup(Addr a) const
    {
        const Addr blk = blockAlign(a);
        const std::uint32_t base = setIndex(a) * ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (lines[base + w].valid() &&
                lines[base + w].blockAddr == blk) {
                return static_cast<int>(base + w);
            }
        }
        return -1;
    }

    int
    findVictim(Addr a, bool avoid_speculative, bool* forced)
    {
        const std::uint32_t base = setIndex(a) * ways;
        if (forced)
            *forced = false;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!lines[base + w].valid())
                return static_cast<int>(base + w);
        }
        int best = -1, best_any = -1;
        for (std::uint32_t w = 0; w < ways; ++w) {
            const Line& l = lines[base + w];
            if (best_any < 0 ||
                l.lruStamp <
                    lines[static_cast<std::size_t>(best_any)].lruStamp) {
                best_any = static_cast<int>(base + w);
            }
            if (avoid_speculative && l.speculative())
                continue;
            if (best < 0 ||
                l.lruStamp <
                    lines[static_cast<std::size_t>(best)].lruStamp) {
                best = static_cast<int>(base + w);
            }
        }
        if (best >= 0)
            return best;
        if (forced)
            *forced = true;
        return best_any;
    }

    void
    flashClear(std::uint32_t ctx)
    {
        for (Line& l : lines)
            l.specRead[ctx] = l.specWritten[ctx] = false;
    }

    void
    flashInvalidate(std::uint32_t ctx)
    {
        for (Line& l : lines) {
            if (l.specWritten[ctx])
                l.invalidate();
            l.specRead[ctx] = l.specWritten[ctx] = false;
        }
    }

    std::uint32_t
    countSpeculative(std::uint32_t ctx) const
    {
        std::uint32_t n = 0;
        for (const Line& l : lines) {
            if (l.valid() && (l.specRead[ctx] || l.specWritten[ctx]))
                ++n;
        }
        return n;
    }
};

struct ModelParam
{
    std::uint32_t ways;
    std::uint64_t seed;
    bool nearLruWrap;   //!< start the 32-bit stamp counter near its max
};

class CacheArrayModel : public ::testing::TestWithParam<ModelParam>
{
};

} // namespace

/**
 * Drive the split tag/data structure and the naive oracle through ~10k
 * mixed lookup / install / evict / spec-mark / flash / touch steps and
 * demand identical observable behavior throughout: hit/miss, victim
 * frame choice (including forced speculative evictions), per-line
 * state/dirty/spec bits, and both contexts' speculative counts. The
 * near-wrap variants force LRU-stamp renormalization mid-run, which
 * must not change any victim decision.
 */
TEST_P(CacheArrayModel, MatchesNaiveScanOracle)
{
    const auto [ways, seed, near_wrap] = GetParam();
    const std::uint32_t sets = 16;
    CacheArray fast(static_cast<std::uint64_t>(sets) * ways * kBlockBytes,
                    ways, "model");
    OracleArray oracle(sets, ways);
    if (near_wrap)
        fast.debugSetLruCounter(~std::uint32_t{0} - 700);
    Rng rng(seed);
    constexpr std::uint32_t kBlocks = 96;   // ~2-6x capacity pressure

    const auto check_line = [&](Addr a) {
        const CacheArray::Line l = fast.lookup(a);
        const int o = oracle.lookup(a);
        ASSERT_EQ(static_cast<bool>(l), o >= 0) << "addr " << a;
        if (o < 0)
            return;
        const OracleArray::Line& ol =
            oracle.lines[static_cast<std::size_t>(o)];
        EXPECT_EQ(l.handle().frame, static_cast<std::uint32_t>(o));
        EXPECT_EQ(l.blockAddr(), ol.blockAddr);
        EXPECT_EQ(l.state(), ol.state);
        EXPECT_EQ(l.dirty(), ol.dirty);
        for (std::uint32_t ctx = 0; ctx < kMaxCheckpoints; ++ctx) {
            EXPECT_EQ(l.specRead(ctx), ol.specRead[ctx]);
            EXPECT_EQ(l.specWritten(ctx), ol.specWritten[ctx]);
        }
    };

    for (int step = 0; step < 10000; ++step) {
        const Addr addr =
            static_cast<Addr>(rng.below(kBlocks)) * kBlockBytes;
        const std::uint32_t ctx = static_cast<std::uint32_t>(
            rng.below(kMaxCheckpoints));
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2: {   // install (agent-style, avoiding speculative ways)
            if (fast.lookup(addr))
                break;
            bool forced = false, oforced = false;
            CacheArray::Line v = fast.findVictim(
                addr,
                [](const CacheArray::Line& l) {
                    return l.speculative();
                },
                &forced);
            const int ov = oracle.findVictim(addr, true, &oforced);
            ASSERT_GE(ov, 0);
            OracleArray::Line& ol =
                oracle.lines[static_cast<std::size_t>(ov)];
            ASSERT_EQ(v.handle().frame, static_cast<std::uint32_t>(ov));
            ASSERT_EQ(forced, oforced);
            if (forced)
                break;   // the agent would resolve the speculation first
            if (v.valid())
                v.invalidate();
            ol.invalidate();
            const CoherenceState st = rng.below(2) == 0
                                          ? CoherenceState::Shared
                                          : CoherenceState::Exclusive;
            v.install(addr, st);
            ol.blockAddr = blockAlign(addr);
            ol.state = st;
            ol.dirty = false;
            fast.touch(v);
            ol.lruStamp = ++oracle.lruCounter;
            break;
          }
          case 3: {   // touch
            CacheArray::Line l = fast.lookup(addr);
            const int o = oracle.lookup(addr);
            ASSERT_EQ(static_cast<bool>(l), o >= 0);
            if (l) {
                fast.touch(l);
                oracle.lines[static_cast<std::size_t>(o)].lruStamp =
                    ++oracle.lruCounter;
            }
            break;
          }
          case 4: {   // spec-mark
            CacheArray::Line l = fast.lookup(addr);
            const int o = oracle.lookup(addr);
            ASSERT_EQ(static_cast<bool>(l), o >= 0);
            if (l) {
                OracleArray::Line& ol =
                    oracle.lines[static_cast<std::size_t>(o)];
                if (rng.below(2) == 0) {
                    l.setSpecRead(ctx);
                    ol.specRead[ctx] = true;
                } else {
                    l.setSpecWritten(ctx);
                    ol.specWritten[ctx] = true;
                    l.setDirty(true);
                    ol.dirty = true;
                }
            }
            break;
          }
          case 5: {   // dirty toggle + data round trip
            CacheArray::Line l = fast.lookup(addr);
            const int o = oracle.lookup(addr);
            ASSERT_EQ(static_cast<bool>(l), o >= 0);
            if (l && !l.speculative()) {
                const bool d = rng.below(2) == 0;
                l.setDirty(d);
                oracle.lines[static_cast<std::size_t>(o)].dirty = d;
                l.data().writeWord(0, addr ^ 0xabcdu);
                EXPECT_EQ(l.data().readWord(0), addr ^ 0xabcdu);
            }
            break;
          }
          case 6: {   // invalidate (external request)
            CacheArray::Line l = fast.lookup(addr);
            const int o = oracle.lookup(addr);
            ASSERT_EQ(static_cast<bool>(l), o >= 0);
            if (l) {
                l.invalidate();
                oracle.lines[static_cast<std::size_t>(o)].invalidate();
            }
            break;
          }
          case 7:     // commit
            fast.flashClearSpecBits(ctx);
            oracle.flashClear(ctx);
            break;
          case 8:     // abort
            fast.flashInvalidateSpecWritten(ctx);
            oracle.flashInvalidate(ctx);
            break;
          case 9:     // pure lookups must not disturb anything
            check_line(addr);
            check_line(addr + kBlockBytes);
            break;
        }
        for (std::uint32_t c = 0; c < kMaxCheckpoints; ++c) {
            ASSERT_EQ(fast.countSpeculative(c), oracle.countSpeculative(c))
                << "step " << step << " ctx " << c;
        }
        check_line(addr);
    }

    // Full sweep at the end: every block agrees.
    for (std::uint32_t b = 0; b < kBlocks; ++b)
        check_line(static_cast<Addr>(b) * kBlockBytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheArrayModel,
    ::testing::Values(ModelParam{1, 11, false},    // direct-mapped
                      ModelParam{1, 12, true},
                      ModelParam{2, 21, false},    // L1 shape
                      ModelParam{2, 22, true},
                      ModelParam{8, 81, false},    // L2 shape
                      ModelParam{8, 82, true}));

// ---------------------------------------------------------- victim cache

TEST(VictimCache, InsertExtractRoundTrip)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0x4000;
    e.state = CoherenceState::Shared;
    vc.insert(e);
    VictimCache::Entry out;
    EXPECT_TRUE(vc.extract(0x4000, &out));
    EXPECT_EQ(out.blockAddr, 0x4000u);
    EXPECT_FALSE(vc.extract(0x4000, &out));   // removed on extract
}

TEST(VictimCache, FifoDisplacement)
{
    VictimCache vc(2);
    for (Addr a : {Addr{0x100 * 64}, Addr{0x200 * 64}, Addr{0x300 * 64}}) {
        VictimCache::Entry e;
        e.blockAddr = a;
        e.state = CoherenceState::Shared;
        vc.insert(e);
    }
    EXPECT_EQ(vc.size(), 2u);
    EXPECT_FALSE(vc.contains(0x100 * 64));    // oldest displaced
    EXPECT_TRUE(vc.contains(0x200 * 64));
    EXPECT_TRUE(vc.contains(0x300 * 64));
}

TEST(VictimCache, ReinsertReplaces)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0x40;
    e.state = CoherenceState::Shared;
    e.data.writeWord(0, 1);
    vc.insert(e);
    e.data.writeWord(0, 2);
    vc.insert(e);
    EXPECT_EQ(vc.size(), 1u);
    ASSERT_NE(vc.peekData(0x40), nullptr);
    EXPECT_EQ(vc.peekData(0x40)->readWord(0), 2u);
}

TEST(VictimCache, InvalidateRemoves)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0x80;
    e.state = CoherenceState::Exclusive;
    vc.insert(e);
    EXPECT_TRUE(vc.invalidate(0x80));
    EXPECT_FALSE(vc.invalidate(0x80));
    EXPECT_FALSE(vc.contains(0x80));
}

TEST(VictimCache, HitMissStats)
{
    VictimCache vc(4);
    VictimCache::Entry e;
    e.blockAddr = 0xc0;
    e.state = CoherenceState::Shared;
    vc.insert(e);
    vc.extract(0xc0, nullptr);
    vc.extract(0xc0, nullptr);
    EXPECT_EQ(vc.statHits, 1u);
    EXPECT_EQ(vc.statMisses, 1u);
}

// ------------------------------------------------------------------ mshr

TEST(Mshr, AllocateLookupFree)
{
    MshrFile f(2);
    Mshr* a = f.allocate(0x1000, Mshr::Kind::Fetch);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(f.lookup(0x1008), a);   // same block
    EXPECT_EQ(f.lookup(0x2000), nullptr);
    f.free(a);
    EXPECT_EQ(f.lookup(0x1000), nullptr);
    EXPECT_EQ(f.inUse(), 0u);
}

TEST(Mshr, CapacityEnforced)
{
    MshrFile f(2);
    EXPECT_NE(f.allocate(0x0, Mshr::Kind::Fetch), nullptr);
    EXPECT_NE(f.allocate(0x40, Mshr::Kind::Fetch), nullptr);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.allocate(0x80, Mshr::Kind::Fetch), nullptr);
    EXPECT_EQ(f.statFullStalls, 1u);
}

TEST(Mshr, KindsCoexistPerBlock)
{
    MshrFile f(4);
    Mshr* fetch = f.allocate(0x100, Mshr::Kind::Fetch);
    Mshr* wb = f.allocate(0x100, Mshr::Kind::Writeback);
    EXPECT_EQ(f.lookup(0x100, Mshr::Kind::Fetch), fetch);
    EXPECT_EQ(f.lookup(0x100, Mshr::Kind::Writeback), wb);
}

namespace {

/** FillWaiter that bumps *@p count; @p tag keeps records distinct so
 *  the merge dedup does not collapse them where a test counts calls. */
FillWaiter
bumpWaiter(int* count, std::uint64_t tag = 0)
{
    return {[](void* owner, std::uint64_t) {
                ++*static_cast<int*>(owner);
            },
            count, tag};
}

} // namespace

TEST(Mshr, WaitersAccumulate)
{
    MshrFile f(4);
    Mshr* m = f.allocate(0x100, Mshr::Kind::Fetch);
    int fired = 0;
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 0));
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 1));
    std::uint32_t idx = f.takeWaiters(m->readWaiters);
    while (idx != kNoWaiter) {
        FillWaiter cb = f.takeWaiterAndAdvance(idx);
        cb();
    }
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(m->readWaiters.empty());
}

TEST(Mshr, WaiterSlabRecyclesNodes)
{
    // Waiter nodes come from one shared free-listed slab: a second
    // burst of the same size must reuse the first burst's nodes.
    MshrFile f(4);
    for (int round = 0; round < 2; ++round) {
        Mshr* m = f.allocate(0x200, Mshr::Kind::Fetch);
        int fired = 0;
        for (int i = 0; i < 8; ++i)
            f.pushWaiter(m->readWaiters,
                         bumpWaiter(&fired, static_cast<std::uint64_t>(i)));
        std::uint32_t idx = f.takeWaiters(m->readWaiters);
        while (idx != kNoWaiter) {
            FillWaiter cb = f.takeWaiterAndAdvance(idx);
            cb();
        }
        EXPECT_EQ(fired, 8);
        f.free(m);
    }
}

// -------------------------------------------------------- FIFO store buf

TEST(FifoSb, PushPopInOrder)
{
    FifoStoreBuffer sb(4);
    sb.push(0x1000, 1, 1);
    sb.push(0x2000, 2, 2);
    EXPECT_EQ(sb.front().addr, 0x1000u);
    sb.popFront();
    EXPECT_EQ(sb.front().addr, 0x2000u);
}

TEST(FifoSb, CapacityAndSpace)
{
    FifoStoreBuffer sb(2);
    EXPECT_TRUE(sb.hasSpace());
    sb.push(0x0, 1, 1);
    sb.push(0x8, 2, 2);
    EXPECT_TRUE(sb.full());
    EXPECT_FALSE(sb.hasSpace());
}

TEST(FifoSb, ForwardYoungestMatch)
{
    FifoStoreBuffer sb(8);
    sb.push(0x1000, 11, 1);
    sb.push(0x2000, 22, 2);
    sb.push(0x1000, 33, 3);    // younger store to same word
    const auto v = sb.forward(0x1000);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 33u);
    EXPECT_FALSE(sb.forward(0x3000).has_value());
}

TEST(FifoSb, ForwardIsWordGranular)
{
    FifoStoreBuffer sb(8);
    sb.push(0x1000, 11, 1);
    EXPECT_FALSE(sb.forward(0x1008).has_value());   // next word
    EXPECT_TRUE(sb.forward(0x1004).has_value());    // same word
}

TEST(FifoSb, ContainsBlock)
{
    FifoStoreBuffer sb(8);
    sb.push(0x1008, 1, 1);
    EXPECT_TRUE(sb.containsBlock(0x1000));
    EXPECT_TRUE(sb.containsBlock(0x1038));
    EXPECT_FALSE(sb.containsBlock(0x1040));
}

TEST(FifoSb, PeakOccupancyTracked)
{
    FifoStoreBuffer sb(8);
    for (int i = 0; i < 5; ++i)
        sb.push(static_cast<Addr>(i) * 8, 0, static_cast<InstSeq>(i));
    sb.popFront();
    EXPECT_EQ(sb.statPeakOccupancy, 5u);
    EXPECT_EQ(sb.size(), 4u);
}

// -------------------------------------------------- coalescing store buf

TEST(CoalSb, MergesSameBlockSameLabel)
{
    CoalescingStoreBuffer sb(4);
    EXPECT_EQ(sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1),
              CoalescingStoreBuffer::StoreResult::NewEntry);
    EXPECT_EQ(sb.store(0x1008, 8, 2, false, kNonSpecCtx, 2),
              CoalescingStoreBuffer::StoreResult::Merged);
    EXPECT_EQ(sb.size(), 1u);
}

TEST(CoalSb, NoCoalesceAcrossSpecBoundary)
{
    // Section 3.1: "the store buffer does not perform coalescing between
    // speculative and non-speculative stores for a given block."
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    EXPECT_EQ(sb.store(0x1008, 8, 2, true, 0, 2),
              CoalescingStoreBuffer::StoreResult::NewEntry);
    EXPECT_EQ(sb.size(), 2u);
}

TEST(CoalSb, NoCoalesceAcrossCheckpoints)
{
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 8, 1, true, 0, 1);
    EXPECT_EQ(sb.store(0x1008, 8, 2, true, 1, 2),
              CoalescingStoreBuffer::StoreResult::NewEntry);
    EXPECT_EQ(sb.size(), 2u);
}

TEST(CoalSb, FullWhenNoCompatibleEntry)
{
    CoalescingStoreBuffer sb(1);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    EXPECT_EQ(sb.store(0x2000, 8, 2, false, kNonSpecCtx, 2),
              CoalescingStoreBuffer::StoreResult::Full);
    // ...but a merge into the existing entry still succeeds.
    EXPECT_EQ(sb.store(0x1010, 8, 3, false, kNonSpecCtx, 3),
              CoalescingStoreBuffer::StoreResult::Merged);
}

TEST(CoalSb, GatherOverlaysOldestToYoungest)
{
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x1000, 8, 2, true, 0, 2);   // younger spec entry, same word
    const MaskedBlock view = sb.gatherBlock(0x1000);
    EXPECT_EQ(view.read(0, 8), 2u);       // younger wins
}

TEST(CoalSb, ForwardRequiresFullCoverage)
{
    CoalescingStoreBuffer sb(4);
    sb.store(0x1000, 4, 0xabcd, false, kNonSpecCtx, 1);   // half a word
    EXPECT_FALSE(sb.forward(0x1000).has_value());
    sb.store(0x1004, 4, 0x1234, false, kNonSpecCtx, 2);
    EXPECT_TRUE(sb.forward(0x1000).has_value());
}

TEST(CoalSb, FlashInvalidateSpeculativeOnly)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x2000, 8, 2, true, 0, 2);
    sb.store(0x3000, 8, 3, true, 1, 3);
    sb.flashInvalidateSpeculative();
    EXPECT_EQ(sb.size(), 1u);
    EXPECT_FALSE(sb.emptyOfCtx(kNonSpecCtx));
    EXPECT_TRUE(sb.emptyOfCtx(0));
    EXPECT_TRUE(sb.emptyOfCtx(1));
}

TEST(CoalSb, EmptyOfSpeculative)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    EXPECT_TRUE(sb.emptyOfSpeculative());
    sb.store(0x2000, 8, 2, true, 0, 2);
    EXPECT_FALSE(sb.emptyOfSpeculative());
}

TEST(CoalSb, EraseSpecificEntry)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x2000, 8, 2, false, kNonSpecCtx, 2);
    sb.erase(sb.entries()[0]);
    ASSERT_EQ(sb.size(), 1u);
    EXPECT_EQ(sb.entries()[0].blockAddr, 0x2000u);
}

TEST(CoalSb, MergeStats)
{
    CoalescingStoreBuffer sb(8);
    sb.store(0x1000, 8, 1, false, kNonSpecCtx, 1);
    sb.store(0x1008, 8, 2, false, kNonSpecCtx, 2);
    sb.store(0x1010, 8, 3, false, kNonSpecCtx, 3);
    EXPECT_EQ(sb.statStores, 3u);
    EXPECT_EQ(sb.statMerges, 2u);
}

// ------------------------------------------------------ functional mem

TEST(FunctionalMem, ZeroFillDefault)
{
    FunctionalMemory m;
    EXPECT_EQ(m.readWord(0x123456789abcull & ~7ull), 0u);
    EXPECT_EQ(m.touchedBlocks(), 0u);
}

TEST(FunctionalMem, WordRoundTrip)
{
    FunctionalMemory m;
    m.writeWord(0x1008, 77);
    EXPECT_EQ(m.readWord(0x1008), 77u);
    EXPECT_EQ(m.readWord(0x1000), 0u);
    EXPECT_EQ(m.touchedBlocks(), 1u);
}

TEST(FunctionalMem, BlockRoundTrip)
{
    FunctionalMemory m;
    BlockData b;
    b.writeWord(24, 0x55);
    m.writeBlock(0x2000, b);
    EXPECT_EQ(m.readBlock(0x2010).readWord(24), 0x55u);
}

// ------------------------------------------------------------- flat map

TEST(FlatMap, InsertFindEraseBasics)
{
    FlatAddrMap<int> m(16);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(0x40), nullptr);
    bool created = false;
    m.getOrCreate(0x40, &created) = 7;
    EXPECT_TRUE(created);
    ASSERT_NE(m.find(0x40), nullptr);
    EXPECT_EQ(*m.find(0x40), 7);
    m.getOrCreate(0x40, &created);
    EXPECT_FALSE(created);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.erase(0x40));
    EXPECT_FALSE(m.erase(0x40));
    EXPECT_EQ(m.find(0x40), nullptr);
    EXPECT_EQ(m.size(), 0u);
}

TEST(FlatMap, RandomizedOracleWithGrowthAndErase)
{
    // Drive the open-addressed table and an unordered_map oracle with
    // the same interleaved insert/update/erase stream, starting from a
    // deliberately tiny capacity so the table rehashes many times, and
    // with a narrow key universe so backward-shift erase constantly
    // relocates probe chains.
    FlatAddrMap<std::uint64_t> flat(4);
    std::unordered_map<Addr, std::uint64_t> oracle;
    Rng rng(20090609);
    for (std::uint64_t step = 0; step < 20000; ++step) {
        const Addr key = (rng.below(512) + 1) << 6;
        const std::uint64_t op = rng.below(10);
        if (op < 6) {
            bool created = false;
            flat.getOrCreate(key, &created) = step;
            EXPECT_EQ(created, oracle.find(key) == oracle.end());
            oracle[key] = step;
        } else if (op < 8) {
            const std::uint64_t* v = flat.find(key);
            auto it = oracle.find(key);
            if (it == oracle.end()) {
                EXPECT_EQ(v, nullptr);
            } else {
                ASSERT_NE(v, nullptr);
                EXPECT_EQ(*v, it->second);
            }
        } else {
            EXPECT_EQ(flat.erase(key), oracle.erase(key) == 1);
        }
        ASSERT_EQ(flat.size(), oracle.size());
    }
    // Full sweep both ways: forEach hits exactly the oracle's entries.
    std::size_t seen = 0;
    flat.forEach([&](Addr k, const std::uint64_t& v) {
        ++seen;
        auto it = oracle.find(k);
        ASSERT_NE(it, oracle.end());
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(seen, oracle.size());
    for (const auto& [k, v] : oracle) {
        ASSERT_NE(flat.find(k), nullptr);
        EXPECT_EQ(*flat.find(k), v);
    }
}

// -------------------------------------------------- MSHR index + dedup

TEST(MshrIndex, OnOffLookupEquivalence)
{
    // The same allocate/lookup/free stream through an indexed file and
    // a forced-scan file must agree call for call.
    MshrFile indexed(8, /*use_index=*/1);
    MshrFile scanned(8, /*use_index=*/0);
    ASSERT_TRUE(indexed.indexEnabled());
    ASSERT_FALSE(scanned.indexEnabled());
    Rng rng(42);
    for (int step = 0; step < 4000; ++step) {
        const Addr blk = (rng.below(24) + 1) << 6;
        const auto kind = rng.below(2) == 0 ? Mshr::Kind::Fetch
                                            : Mshr::Kind::Writeback;
        switch (rng.below(3)) {
          case 0: {
            Mshr* a = indexed.lookup(blk, kind) == nullptr
                          ? indexed.allocate(blk, kind)
                          : nullptr;
            Mshr* b = scanned.lookup(blk, kind) == nullptr
                          ? scanned.allocate(blk, kind)
                          : nullptr;
            EXPECT_EQ(a == nullptr, b == nullptr);
            break;
          }
          case 1:
            EXPECT_EQ(indexed.lookup(blk, kind) == nullptr,
                      scanned.lookup(blk, kind) == nullptr);
            EXPECT_EQ(indexed.lookup(blk) == nullptr,
                      scanned.lookup(blk) == nullptr);
            break;
          case 2:
            if (Mshr* a = indexed.lookup(blk, kind)) {
                Mshr* b = scanned.lookup(blk, kind);
                ASSERT_NE(b, nullptr);
                indexed.free(a);
                scanned.free(b);
            }
            break;
        }
        ASSERT_EQ(indexed.inUse(), scanned.inUse());
    }
}

TEST(MshrIndex, IdenticalWaitersDedupWithStat)
{
    MshrFile f(4, /*use_index=*/1);
    Mshr* m = f.allocate(0x300, Mshr::Kind::Fetch);
    int fired = 0;
    // Three pushes of the same record collapse to one waiter node;
    // a distinct-arg record still chains separately.
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 7));
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 7));
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 7));
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 8));
    EXPECT_EQ(f.statWaiterDedups, 2u);
    std::uint32_t idx = f.takeWaiters(m->readWaiters);
    while (idx != kNoWaiter) {
        FillWaiter cb = f.takeWaiterAndAdvance(idx);
        cb();
    }
    EXPECT_EQ(fired, 2);
}

TEST(MshrIndex, ScanModeKeepsDuplicateWaiters)
{
    // The escape hatch restores the legacy chain: no dedup.
    MshrFile f(4, /*use_index=*/0);
    Mshr* m = f.allocate(0x300, Mshr::Kind::Fetch);
    int fired = 0;
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 7));
    f.pushWaiter(m->readWaiters, bumpWaiter(&fired, 7));
    EXPECT_EQ(f.statWaiterDedups, 0u);
    std::uint32_t idx = f.takeWaiters(m->readWaiters);
    while (idx != kNoWaiter) {
        FillWaiter cb = f.takeWaiterAndAdvance(idx);
        cb();
    }
    EXPECT_EQ(fired, 2);
}

#ifndef NDEBUG
using MshrDeathTest = ::testing::Test;

TEST(MshrDeathTest, FreeWithLiveWaitersAsserts)
{
    // Freeing an MSHR that still holds waiter records silently lost
    // wakeups before; in debug builds it is now fatal.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            MshrFile f(4);
            Mshr* m = f.allocate(0x400, Mshr::Kind::Fetch);
            int fired = 0;
            f.pushWaiter(m->readWaiters, bumpWaiter(&fired));
            f.free(m);
        },
        "waiter");
}
#endif
