/**
 * @file
 * Quiescence-aware fast-forward equivalence suite.
 *
 * The System's event-driven scheduler (INVISIFENCE_FASTFWD, default on)
 * must be an invisible optimization: for every implementation kind,
 * workload, and seed, running with the per-cycle legacy loop and with
 * fast-forward enabled must produce bit-identical RunResults — same
 * retired counts, same cycle breakdowns, same speculation statistics.
 * This file also pins the runUntilDone completion contract (the event
 * queue must be drained before completion is declared) and the
 * Section 6.6 sweep configuration of makeImpl (commit-on-violate applied
 * uniformly to every selective variant, including two-checkpoint).
 */

#include <gtest/gtest.h>

#include "core/invisifence.hh"
#include "harness/runner.hh"
#include "test_util.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

using test::allImplKinds;
using test::expectIdenticalResults;
using test::makeScripted;
using test::taddr;

RunConfig
ffConfig(std::uint64_t seed, int fast_forward)
{
    RunConfig cfg;
    cfg.warmupCycles = 400;
    cfg.measureCycles = 2500;
    cfg.seed = seed;
    cfg.system = SystemParams::small(4);
    cfg.system.fastForward = fast_forward;
    return cfg;
}

TEST(FastForward, BitIdenticalResultsAcrossAllImplKindsAndSeeds)
{
    const Workload& wl = workloadSuite().front();
    for (const ImplKind kind : allImplKinds()) {
        for (const std::uint64_t seed : {1ull, 23ull, 456ull}) {
            SCOPED_TRACE(std::string(implKindName(kind)) + " seed=" +
                         std::to_string(seed));
            const RunResult off =
                runExperiment(wl, kind, ffConfig(seed, 0));
            const RunResult on =
                runExperiment(wl, kind, ffConfig(seed, 1));
            expectIdenticalResults(off, on);
        }
    }
}

TEST(FastForward, BitIdenticalResultsAcrossWorkloads)
{
    for (const Workload& wl : workloadSuite()) {
        SCOPED_TRACE(wl.name);
        const RunResult off =
            runExperiment(wl, ImplKind::ConvSC, ffConfig(7, 0));
        const RunResult on =
            runExperiment(wl, ImplKind::ConvSC, ffConfig(7, 1));
        expectIdenticalResults(off, on);
    }
}

TEST(FastForward, SkipsCyclesOnStallDominatedRuns)
{
    // Guard against the optimization silently disabling itself: under
    // conventional SC the store-buffer drain stalls must produce
    // dormant core cycles.
    const Workload& wl = workloadSuite().front();
    RunConfig cfg = ffConfig(1, 1);
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (std::uint32_t t = 0; t < cfg.system.numCores; ++t) {
        programs.push_back(std::make_unique<SyntheticProgram>(
            wl.params, t, cfg.seed));
    }
    System sys(cfg.system, std::move(programs), ImplKind::ConvSC);
    warmSystem(sys, wl.params);
    sys.run(4000);
    EXPECT_GT(sys.statFastForwardedCycles, 0u);
    EXPECT_TRUE(sys.fastForwardEnabled());
}

TEST(FastForward, EnvOverrideViaSystemParams)
{
    const std::vector<std::vector<ScriptOp>> scripts{{opStore(taddr(0), 1)}};
    {
        SystemParams p = SystemParams::small(1);
        p.fastForward = 0;
        auto sys = makeScripted(scripts, ImplKind::ConvSC, p);
        EXPECT_FALSE(sys->fastForwardEnabled());
    }
    {
        SystemParams p = SystemParams::small(1);
        p.fastForward = 1;
        auto sys = makeScripted(scripts, ImplKind::ConvSC, p);
        EXPECT_TRUE(sys->fastForwardEnabled());
    }
}

// ---------------------------------------------------------------------
// runUntilDone completion contract
// ---------------------------------------------------------------------

/**
 * A store sweep that overflows a deliberately tiny L2, so the final
 * eviction writebacks (PutM -> WbAck round trips) are still in flight
 * when the last core retires and drains. The old completion condition
 * (cores done, queue ignored) returned true at that instant with the
 * acks pending; requiring eq.empty() closes the gap.
 */
TEST(RunUntilDone, CompletionRequiresDrainedEventQueue)
{
    for (const int ff : {0, 1}) {
        SCOPED_TRACE(ff ? "fastfwd" : "legacy");
        SystemParams params = SystemParams::small(2);
        params.fastForward = ff;
        params.agent.l1Size = 2 * 1024;
        params.agent.l2Size = 8 * 1024;   // 128 blocks: evictions at tail
        std::vector<std::vector<ScriptOp>> scripts(2);
        for (std::uint32_t b = 0; b < 200; ++b)
            scripts[0].push_back(opStore(taddr(b), b + 1));
        scripts[1].push_back(opLoad(taddr(0)));
        auto sys = makeScripted(std::move(scripts), ImplKind::ConvTSO,
                                params);
        ASSERT_TRUE(sys->runUntilDone(300000));
        // The fix under test: completion implies no in-flight events.
        EXPECT_TRUE(sys->eventQueue().empty())
            << "runUntilDone returned with coherence traffic in flight";
        for (std::uint32_t i = 0; i < sys->numCores(); ++i) {
            EXPECT_TRUE(sys->core(i).done());
            EXPECT_TRUE(sys->impl(i).quiesced());
        }
        // Stats sampled at this instant are final: running further must
        // not change any retirement counter.
        const std::uint64_t retired = sys->totalRetired();
        const Breakdown bd = sys->totalBreakdown();
        sys->run(500);
        EXPECT_EQ(sys->totalRetired(), retired);
        EXPECT_EQ(sys->totalBreakdown().busy, bd.busy);
        EXPECT_EQ(sys->totalBreakdown().violation, bd.violation);
    }
}

TEST(RunUntilDone, LegacyAndFastForwardAgreeOnCompletionTime)
{
    const auto finish = [](int ff) {
        SystemParams params = SystemParams::small(2);
        params.fastForward = ff;
        std::vector<std::vector<ScriptOp>> scripts(2);
        for (std::uint32_t b = 0; b < 12; ++b) {
            scripts[0].push_back(opStore(taddr(b), b + 1));
            scripts[1].push_back(opLoad(taddr(b)));
        }
        auto sys = makeScripted(std::move(scripts), ImplKind::ConvSC,
                                params);
        EXPECT_TRUE(sys->runUntilDone(300000));
        return sys->now();
    };
    EXPECT_EQ(finish(0), finish(1));
}

// ---------------------------------------------------------------------
// Section 6.6 sweep configuration (makeImpl uniformity)
// ---------------------------------------------------------------------

TEST(MakeImpl, SelectiveCovAppliesToEverySelectiveVariant)
{
    const std::vector<ImplKind> selective = {
        ImplKind::InvisiSC, ImplKind::InvisiTSO, ImplKind::InvisiRMO,
        ImplKind::InvisiSC2Ckpt};
    for (const bool cov : {false, true}) {
        SystemParams params = SystemParams::small(1);
        params.selectiveCov = cov;
        for (const ImplKind kind : selective) {
            SCOPED_TRACE(std::string(implKindName(kind)) +
                         (cov ? " cov" : " plain"));
            auto sys = makeScripted({{opStore(taddr(0), 1)}}, kind,
                                    params);
            const auto* spec =
                dynamic_cast<const SpeculativeImpl*>(&sys->impl(0));
            ASSERT_NE(spec, nullptr);
            EXPECT_EQ(spec->config().commitOnViolate, cov);
        }
    }
}

TEST(MakeImpl, TwoCheckpointSelectiveKeepsItsShape)
{
    // The CoV fix must not disturb the rest of the Figure 11 preset.
    SystemParams params = SystemParams::small(1);
    params.selectiveCov = true;
    auto sys =
        makeScripted({{opStore(taddr(0), 1)}}, ImplKind::InvisiSC2Ckpt,
                     params);
    const auto* spec =
        dynamic_cast<const SpeculativeImpl*>(&sys->impl(0));
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->config().numCheckpoints, 2u);
    EXPECT_EQ(spec->config().sbEntries, 32u);
    EXPECT_EQ(spec->config().model, Model::SC);
    EXPECT_FALSE(spec->config().continuous);
}

} // namespace
} // namespace invisifence
