/** @file System/harness tests: Figure-6 configuration, determinism,
 *  warm start, the experiment runner, and a full-matrix smoke sweep. */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "test_util.hh"

using namespace invisifence;
using namespace invisifence::test;

TEST(SystemConfig, PaperParametersMatchFigure6)
{
    const SystemParams p = SystemParams::paper();
    EXPECT_EQ(p.numCores, 16u);
    EXPECT_EQ(p.core.width, 4u);
    EXPECT_EQ(p.core.robSize, 96u);
    EXPECT_EQ(p.agent.l1Size, 64u * 1024);
    EXPECT_EQ(p.agent.l1Ways, 2u);
    EXPECT_EQ(p.agent.l1Latency, 2u);          // 2-cycle load-to-use
    EXPECT_EQ(p.agent.l2Size, 8u * 1024 * 1024);
    EXPECT_EQ(p.agent.l2Ways, 8u);
    EXPECT_EQ(p.agent.l2Latency, 25u);
    EXPECT_EQ(p.agent.victimEntries, 16u);     // 16-entry victim cache
    EXPECT_EQ(p.agent.mshrs, 32u);
    const TorusDims dims = torusDims(p.net, p.numCores);
    EXPECT_EQ(dims.x, 4u);                     // 4x4 torus (derived)
    EXPECT_EQ(dims.y, 4u);
    EXPECT_EQ(p.dir.memLatency, 160u);         // 40 ns at 4 GHz
    EXPECT_EQ(p.covTimeout, 4000u);            // CoV timeout interval
    EXPECT_EQ(p.minChunkSize, 100u);           // ~100-instruction chunks
}

TEST(SystemConfig, StorageOverheadIsAboutOneKilobyte)
{
    // The paper's headline: ~1KB of additional state (Section 1).
    const SystemParams p = SystemParams::paper();
    const std::uint64_t l1_blocks = p.agent.l1Size / kBlockBytes;
    const std::uint64_t bits = 2 * l1_blocks;            // read+written
    const std::uint64_t sb_bytes = 8 * (kBlockBytes + 8);  // 8 entries
    const std::uint64_t ckpt_bytes = ProgSnapshot::kMaxBytes;
    const std::uint64_t total = bits / 8 + sb_bytes + ckpt_bytes;
    EXPECT_EQ(bits, 2048u);                    // 2k bits (Section 3.1)
    EXPECT_LT(total, 1200u);                   // ~1KB
}

TEST(SystemDeterminism, IdenticalRunsProduceIdenticalStats)
{
    const auto run = [](ImplKind kind) {
        RunConfig cfg;
        cfg.warmupCycles = 2000;
        cfg.measureCycles = 6000;
        cfg.system = SystemParams::small(4);
        cfg.system.net.dimX = 2;
        cfg.system.net.dimY = 2;
        return runExperiment(workloadByName("Apache"), kind, cfg);
    };
    for (ImplKind kind : {ImplKind::ConvSC, ImplKind::InvisiSC,
                          ImplKind::Continuous}) {
        const RunResult a = run(kind);
        const RunResult b = run(kind);
        EXPECT_EQ(a.retired, b.retired) << implKindName(kind);
        EXPECT_EQ(a.breakdown.busy, b.breakdown.busy);
        EXPECT_EQ(a.breakdown.sbDrain, b.breakdown.sbDrain);
        EXPECT_EQ(a.speculatingCycles, b.speculatingCycles);
    }
}

TEST(SystemDeterminism, SeedsChangeResults)
{
    RunConfig a;
    a.warmupCycles = 2000;
    a.measureCycles = 6000;
    a.system = SystemParams::small(4);
    a.system.net.dimX = 2;
    a.system.net.dimY = 2;
    RunConfig b = a;
    b.seed = 99;
    const RunResult ra =
        runExperiment(workloadByName("Apache"), ImplKind::ConvRMO, a);
    const RunResult rb =
        runExperiment(workloadByName("Apache"), ImplKind::ConvRMO, b);
    EXPECT_NE(ra.retired, rb.retired);
}

TEST(Runner, SharesSumToOne)
{
    RunConfig cfg;
    cfg.warmupCycles = 3000;
    cfg.measureCycles = 8000;
    cfg.system = SystemParams::small(4);
    cfg.system.net.dimX = 2;
    cfg.system.net.dimY = 2;
    const RunResult r =
        runExperiment(workloadByName("Barnes"), ImplKind::InvisiSC, cfg);
    const BreakdownShares s = shares(r);
    // In-flight speculative cycles at window edges smear; aborts can
    // reclassify pre-window cycles into Violation.
    EXPECT_NEAR(s.busy + s.other + s.sbFull + s.sbDrain + s.violation,
                1.0, 0.12);
}

TEST(Runner, NormalizedSharesScaleWithThroughputRatio)
{
    RunResult fast, slow;
    fast.retired = 2000;
    fast.coreCycles = 1000;
    fast.breakdown.busy = 500;
    fast.breakdown.other = 500;
    slow.retired = 1000;
    slow.coreCycles = 1000;
    slow.breakdown.busy = 400;
    slow.breakdown.other = 600;
    const BreakdownShares n = normalizedShares(fast, slow);
    // fast is 2x the baseline throughput: its normalized runtime is 0.5.
    EXPECT_NEAR(n.busy + n.other, 0.5, 1e-9);
}

TEST(Runner, WarmStartReducesColdMisses)
{
    RunConfig cold;
    cold.warmupCycles = 1000;
    cold.measureCycles = 5000;
    cold.warmStart = false;
    cold.system = SystemParams::small(4);
    cold.system.net.dimX = 2;
    cold.system.net.dimY = 2;
    cold.system.agent.l2Size = 2 * 1024 * 1024;
    cold.system.agent.l1Size = 64 * 1024;
    RunConfig warm = cold;
    warm.warmStart = true;
    const auto& wl = workloadByName("Barnes");
    const RunResult rc = runExperiment(wl, ImplKind::ConvRMO, cold);
    const RunResult rw = runExperiment(wl, ImplKind::ConvRMO, warm);
    EXPECT_GT(rw.throughput(), rc.throughput());
}

TEST(Runner, MshrFullStallsSurfaceWhenMshrsAreScarce)
{
    // One fetch MSHR per node: concurrent misses must hit the full
    // condition, and the stall episodes must flow through the stat
    // registry into the RunResult (JSON schema v2 fields).
    RunConfig scarce;
    scarce.warmupCycles = 1000;
    scarce.measureCycles = 8000;
    scarce.system = SystemParams::small(4);
    scarce.system.net.dimX = 2;
    scarce.system.net.dimY = 2;
    scarce.system.agent.mshrs = 1;
    scarce.warmStart = false;   // cold caches: plenty of misses
    const RunResult r = runExperiment(workloadByName("Barnes"),
                                      ImplKind::ConvRMO, scarce);
    EXPECT_GT(r.mshrFullStalls, 0u);

    // With the paper's 32 MSHRs the same run should stall rarely, if
    // at all — the counter must not be an artifact of the wiring.
    RunConfig ample = scarce;
    ample.system.agent.mshrs = 32;
    const RunResult ra = runExperiment(workloadByName("Barnes"),
                                       ImplKind::ConvRMO, ample);
    EXPECT_LT(ra.mshrFullStalls, r.mshrFullStalls);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", Table::num(1.5, 2)});
    t.addRow({"b", Table::pct(0.123)});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("12.3%"), std::string::npos);
}

TEST(Table, NumbersRound)
{
    EXPECT_EQ(Table::num(1.005, 1), "1.0");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(1.0), "100.0%");
}

// ----------------------------- full matrix smoke sweep -------------------

namespace {

struct SmokeParam
{
    const char* workload;
    ImplKind kind;
};

std::string
smokeName(const ::testing::TestParamInfo<SmokeParam>& info)
{
    std::string n = std::string(info.param.workload) + "_" +
                    implKindName(info.param.kind);
    for (auto& c : n)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

class SmokeMatrix : public ::testing::TestWithParam<SmokeParam>
{
};

} // namespace

TEST_P(SmokeMatrix, RunsCleanAndAccountsEveryCycle)
{
    RunConfig cfg;
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 4000;
    cfg.system.numCores = 8;
    cfg.system.net.dimX = 4;
    cfg.system.net.dimY = 2;
    cfg.system.agent.l2Size = 1024 * 1024;
    const RunResult r = runExperiment(workloadByName(GetParam().workload),
                                      GetParam().kind, cfg);
    EXPECT_GT(r.retired, 0u);
    // In-flight speculative cycles at the window edges fold in when
    // their checkpoint commits/aborts, so allow a small smear.
    const double total = static_cast<double>(r.breakdown.total());
    EXPECT_NEAR(total, static_cast<double>(r.coreCycles),
                0.15 * static_cast<double>(r.coreCycles));
    EXPECT_GT(r.throughput(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SmokeMatrix,
    ::testing::ValuesIn([] {
        std::vector<SmokeParam> v;
        for (const char* w : {"Apache", "Zeus", "OLTP-Oracle", "OLTP-DB2",
                              "DSS-DB2", "Barnes", "Ocean"}) {
            for (ImplKind k : allImplKinds())
                v.push_back({w, k});
        }
        return v;
    }()),
    smokeName);
