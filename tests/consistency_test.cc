/** @file Conventional implementation tests: the retirement rules of
 *  Figure 2, stall classification, and store-buffer behaviors. */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace invisifence;
using namespace invisifence::test;

namespace {

/** A remote-ish store miss then @p loads loads that hit. */
std::vector<ScriptOp>
storeMissThenLoads(Addr missAddr, Addr hitAddr, int loads)
{
    std::vector<ScriptOp> s;
    s.push_back(opLoad(hitAddr));       // warm the hit block
    s.push_back(opAlu(30));
    s.push_back(opStore(missAddr, 1));
    for (int i = 0; i < loads; ++i)
        s.push_back(opLoad(hitAddr));
    return s;
}

} // namespace

TEST(ConvSc, LoadsWaitForStoreMisses)
{
    auto sys = makeScripted({storeMissThenLoads(taddr(70), taddr(71), 8)},
                            ImplKind::ConvSC, SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    // The loads could not retire past the outstanding store: SB-drain
    // stall cycles must appear.
    EXPECT_GT(sys->core(0).breakdown().sbDrain, 5u);
}

TEST(ConvTso, LoadsRetirePastStoreMisses)
{
    auto scripted = storeMissThenLoads(taddr(72), taddr(73), 8);
    auto sc = makeScripted({scripted}, ImplKind::ConvSC,
                           SystemParams::small(2));
    auto tso = makeScripted({scripted}, ImplKind::ConvTSO,
                            SystemParams::small(2));
    ASSERT_TRUE(sc->runUntilDone(200000));
    ASSERT_TRUE(tso->runUntilDone(200000));
    EXPECT_LT(tso->core(0).breakdown().sbDrain,
              sc->core(0).breakdown().sbDrain);
}

TEST(ConvTso, FifoCapacityCausesSbFull)
{
    // More distinct-block stores than the FIFO holds, all behind one
    // slow head miss.
    std::vector<ScriptOp> s;
    for (std::uint32_t i = 0; i < 80; ++i)
        s.push_back(opStore(taddr(74) + i * kBlockBytes,
                            static_cast<std::uint64_t>(i)));
    auto sys = makeScripted({s}, ImplKind::ConvTSO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(400000));
    EXPECT_GT(sys->core(0).breakdown().sbFull, 0u);
}

TEST(ConvTso, AtomicsDrainTheStoreBuffer)
{
    std::vector<ScriptOp> s;
    s.push_back(opStore(taddr(75), 1));           // miss
    s.push_back(opFetchAdd(taddr(76), 1));        // must drain first
    auto sys = makeScripted({s}, ImplKind::ConvTSO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_GT(sys->core(0).breakdown().sbDrain, 0u);
}

TEST(ConvTso, AcquireFencesAreFree)
{
    // An acquire/release (non-full) fence behind a store miss must not
    // stall under TSO.
    std::vector<ScriptOp> with_fence;
    with_fence.push_back(opStore(taddr(77), 1));
    ScriptOp acq = opFence();
    acq.inst.fullFence = false;
    with_fence.push_back(acq);
    for (int i = 0; i < 10; ++i)
        with_fence.push_back(opAlu(1));

    auto sys = makeScripted({with_fence}, ImplKind::ConvTSO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    // Retirement continued immediately: nearly no SB-drain cycles.
    EXPECT_LT(sys->core(0).breakdown().sbDrain, 3u);
}

TEST(ConvTso, FullFencesDrain)
{
    std::vector<ScriptOp> s;
    s.push_back(opStore(taddr(78), 1));
    s.push_back(opFence());                        // full fence
    for (int i = 0; i < 10; ++i)
        s.push_back(opAlu(1));
    auto sys = makeScripted({s}, ImplKind::ConvTSO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_GT(sys->core(0).breakdown().sbDrain, 5u);
}

TEST(ConvRmo, StoresAndLoadsUnordered)
{
    auto sys = makeScripted({storeMissThenLoads(taddr(79), taddr(80), 8)},
                            ImplKind::ConvRMO, SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_EQ(sys->core(0).breakdown().sbDrain, 0u);
}

TEST(ConvRmo, FencesDrainEvenAcquireOnes)
{
    std::vector<ScriptOp> s;
    s.push_back(opStore(taddr(81), 1));
    ScriptOp acq = opFence();
    acq.inst.fullFence = false;
    s.push_back(acq);
    for (int i = 0; i < 10; ++i)
        s.push_back(opAlu(1));
    auto sys = makeScripted({s}, ImplKind::ConvRMO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_GT(sys->core(0).breakdown().sbDrain, 5u);
}

TEST(ConvRmo, StoreHitsRetireDirectlyIntoL1)
{
    std::vector<ScriptOp> s;
    s.push_back(opLoad(taddr(82)));     // warm: exclusive grant
    s.push_back(opAlu(30));
    for (int i = 0; i < 10; ++i)
        s.push_back(opStore(taddr(82), static_cast<std::uint64_t>(i)));
    auto sys = makeScripted({s}, ImplKind::ConvRMO,
                            SystemParams::small(1));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_EQ(sys->agent(0).readWordL1(taddr(82)), 9u);
}

TEST(ConvRmo, AtomicWaitsForWritePermissionOnly)
{
    // Atomic to a missing block with an empty SB: stall is the block
    // fetch only (SB-drain classified), and other stores can be pending
    // without forcing a full drain.
    std::vector<ScriptOp> s;
    s.push_back(opStore(taddr(83), 1));            // miss, pending
    s.push_back(opFetchAdd(taddr(84), 1));         // other block atomic
    auto sys = makeScripted({s}, ImplKind::ConvRMO,
                            SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    EXPECT_TRUE(sys->core(0).done());
}

TEST(ConvAll, AtomicityOfRmw)
{
    // Two cores increment one counter 25 times each; conventional
    // implementations execute the RMW at the head with the block held
    // writable, so increments can never be lost.
    for (ImplKind kind :
         {ImplKind::ConvSC, ImplKind::ConvTSO, ImplKind::ConvRMO}) {
        std::vector<std::vector<ScriptOp>> scripts;
        for (int t = 0; t < 2; ++t) {
            std::vector<ScriptOp> s;
            for (int i = 0; i < 25; ++i)
                s.push_back(opFetchAdd(taddr(85), 1));
            scripts.push_back(std::move(s));
        }
        auto sys = makeScripted(std::move(scripts), kind);
        ASSERT_TRUE(sys->runUntilDone(2000000));
        std::uint64_t v = 0;
        for (std::uint32_t n = 0; n < sys->numCores(); ++n)
            if (sys->agent(n).l1Readable(taddr(85)))
                v = sys->agent(n).readWordL1(taddr(85));
        EXPECT_EQ(v, 50u) << implKindName(kind);
    }
}

TEST(ConvSc, StallClassificationSumsToCycles)
{
    auto sys = makeScripted({storeMissThenLoads(taddr(86), taddr(87), 4)},
                            ImplKind::ConvSC, SystemParams::small(2));
    ASSERT_TRUE(sys->runUntilDone(200000));
    const Breakdown& b = sys->core(0).breakdown();
    EXPECT_EQ(b.total(), sys->core(0).statCycles);
}
