/** @file Sharer-precise warm start (INVISIFENCE_WARM_SHARERS).
 *
 *  warmSystem's sharer_fraction knob primes shared-region and lock
 *  blocks at a deterministic subset of nodes instead of
 *  Shared-everywhere. These tests pin the mask semantics, show the
 *  intended effect (fewer invalidations per store burst), and — most
 *  importantly — prove the memory-model invariants still hold when a
 *  run starts from sparse sharer sets: litmus forbidden outcomes stay
 *  forbidden, and fastfwd on/off stays bit-identical under the knob.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/runner.hh"
#include "test_util.hh"
#include "workload/litmus.hh"
#include "workload/synthetic.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

using test::allImplKinds;
using test::expectIdenticalResults;
using test::lastLoadOf;
using test::makeScripted;

TEST(WarmSharerMask, FractionControlsPopcountDeterministically)
{
    const std::uint32_t n = 16;
    for (const double frac : {0.25, 0.5, 0.75}) {
        for (std::uint32_t b = 0; b < 64; ++b) {
            const Addr block = kSharedRegion + b * kBlockBytes;
            const SharerSet mask = warmSharerMask(block, n, frac);
            EXPECT_EQ(mask, warmSharerMask(block, n, frac));
            const std::uint32_t expect = static_cast<std::uint32_t>(
                frac * n + 0.999999);
            EXPECT_EQ(mask.count(), expect)
                << "frac=" << frac << " block=" << b;
        }
    }
    // Degenerate fractions produce the legacy everywhere mask.
    EXPECT_EQ(warmSharerMask(kSharedRegion, n, 0.0), SharerSet::firstN(n));
    EXPECT_EQ(warmSharerMask(kSharedRegion, n, 1.0), SharerSet::firstN(n));
    // Tiny fractions never yield an empty sharer set.
    EXPECT_EQ(warmSharerMask(kSharedRegion, n, 0.001).count(), 1u);
}

TEST(WarmSharerMask, ScalesPastThirtyTwoNodes)
{
    // The old uint32 mask silently truncated above node 31: nodes 32+
    // could never be primed as sharers. SharerSet must cover the whole
    // 64-node range and keep the fraction contract exact.
    const std::uint32_t n = 64;
    EXPECT_EQ(warmSharerMask(kSharedRegion, n, 0.0), SharerSet::firstN(n));
    EXPECT_EQ(warmSharerMask(kSharedRegion, n, 0.0).count(), 64u);
    bool high_node_seen = false;
    for (std::uint32_t b = 0; b < 256; ++b) {
        const Addr block = kSharedRegion + b * kBlockBytes;
        const SharerSet mask = warmSharerMask(block, n, 0.5);
        EXPECT_EQ(mask.count(), 32u);
        mask.forEach([&](NodeId node) {
            ASSERT_LT(node, n);
            if (node >= 32)
                high_node_seen = true;
        });
    }
    EXPECT_TRUE(high_node_seen)
        << "no sharer above node 31 across 256 blocks";
}

TEST(WarmSharers, DirectoryAndAgentsAgreeOnTheSubset)
{
    // 64 cores exercises the multi-word SharerSet path the old uint32
    // mask could not represent.
    for (const std::uint32_t cores : {4u, 64u}) {
        SCOPED_TRACE("cores=" + std::to_string(cores));
        SyntheticParams params;
        params.privateBlocks = 8;
        params.sharedBlocks = 8;
        params.numLocks = 2;
        SystemParams sp = SystemParams::small(cores);
        std::vector<std::unique_ptr<ThreadProgram>> programs;
        for (std::uint32_t t = 0; t < sp.numCores; ++t) {
            programs.push_back(
                std::make_unique<SyntheticProgram>(params, t, 1));
        }
        System sys(sp, std::move(programs), ImplKind::ConvSC);
        warmSystem(sys, params, 0.5);

        for (std::uint32_t b = 0; b < params.sharedBlocks; ++b) {
            const Addr block = kSharedRegion + b * kBlockBytes;
            const SharerSet mask =
                warmSharerMask(block, sys.numCores(), 0.5);
            const auto view =
                sys.directory(sys.homeMap().homeOf(block)).inspect(block);
            EXPECT_EQ(view.sharers, mask);
            for (std::uint32_t t = 0; t < sys.numCores(); ++t) {
                const bool primed = sys.agent(t).probe(block) !=
                                    CacheAgent::Where::Remote;
                EXPECT_EQ(primed, mask.test(t))
                    << "agent " << t << " block " << b;
            }
        }
    }
}

TEST(WarmSharers, CutsInvalidationsVersusEverywherePriming)
{
    // A store to a shared block invalidates every primed sharer: with a
    // quarter of the sharers primed, the Inv traffic for the same
    // program must shrink.
    const auto invalidations = [](double frac) {
        SyntheticParams params;
        params.privateBlocks = 8;
        params.sharedBlocks = 32;
        params.numLocks = 2;
        SystemParams sp = SystemParams::small(8);
        std::vector<std::vector<ScriptOp>> scripts(8);
        for (std::uint32_t b = 0; b < 32; ++b)
            scripts[0].push_back(
                opStore(kSharedRegion + b * kBlockBytes, b + 1));
        std::vector<std::unique_ptr<ThreadProgram>> programs;
        for (auto& s : scripts)
            programs.push_back(
                std::make_unique<ScriptedProgram>(std::move(s)));
        System sys(sp, std::move(programs), ImplKind::ConvTSO);
        warmSystem(sys, params, frac);
        EXPECT_TRUE(sys.runUntilDone(200000));
        std::uint64_t invs = 0;
        for (std::uint32_t n = 0; n < sys.numCores(); ++n)
            invs += sys.directory(n).statInvalidationsSent;
        return invs;
    };
    const std::uint64_t everywhere = invalidations(0.0);
    const std::uint64_t quarter = invalidations(0.25);
    EXPECT_LT(quarter, everywhere);
    EXPECT_GT(everywhere, 0u);
}

// ---------------------------------------------------------------------
// Litmus invariants under sparse warm sharer sets.
// ---------------------------------------------------------------------

/** Run @p test with its blocks warm-primed at @p frac of the nodes. */
std::unique_ptr<System>
runWarmLitmus(const LitmusTest& test, ImplKind kind, double frac,
              std::uint32_t jitter)
{
    std::vector<std::vector<ScriptOp>> scripts;
    std::uint32_t t = 0;
    for (const auto& thread : test.threads) {
        std::vector<ScriptOp> s;
        const std::uint32_t delay = (jitter * (t + 3) * 7) % 40;
        for (std::uint32_t d = 0; d < delay; ++d)
            s.push_back(opAlu(1));
        for (const auto& op : thread)
            s.push_back(op);
        scripts.push_back(std::move(s));
        ++t;
    }
    auto sys = makeScripted(std::move(scripts), kind);
    // Prime every address the test touches Shared at the sharer-precise
    // subset (in place of runLitmus's warming loads).
    const BlockData zero{};
    const std::uint32_t n = sys->numCores();
    for (const auto& thread : test.threads) {
        for (const auto& op : thread) {
            if (!isMemOp(op.inst.type))
                continue;
            const Addr block = blockAlign(op.inst.addr);
            if (sys->directory(homeOf(block, n)).inspect(block).state !=
                DirectorySlice::DirState::Idle) {
                continue;   // already primed
            }
            const SharerSet mask = warmSharerMask(block, n, frac);
            mask.forEach([&](NodeId node) {
                sys->agent(node).primeBlock(
                    block, CoherenceState::Shared, zero);
            });
            sys->directory(homeOf(block, n)).primeShared(block, mask);
        }
    }
    EXPECT_TRUE(sys->runUntilDone(500000));
    return sys;
}

TEST(WarmSharers, LitmusInvariantsHoldUnderSparsePriming)
{
    for (const ImplKind kind : allImplKinds()) {
        for (const double frac : {0.25, 0.5}) {
            for (std::uint32_t jitter = 0; jitter < 4; ++jitter) {
                SCOPED_TRACE(std::string(implKindName(kind)) + " frac=" +
                             std::to_string(frac) + " jitter=" +
                             std::to_string(jitter));
                {
                    // Dekker with full fences: (0, 0) stays forbidden
                    // under every model.
                    const LitmusTest t = litmusSbFenced();
                    auto sys = runWarmLitmus(t, kind, frac, jitter);
                    const auto r0 =
                        lastLoadOf(*sys, t.probes[0].thread,
                                   t.probes[0].addr);
                    const auto r1 =
                        lastLoadOf(*sys, t.probes[1].thread,
                                   t.probes[1].addr);
                    EXPECT_FALSE(r0 == 0 && r1 == 0)
                        << "fenced Dekker failure";
                }
                {
                    // Fenced message passing: the data load must see
                    // the payload.
                    const LitmusTest t = litmusMpFenced();
                    auto sys = runWarmLitmus(t, kind, frac, jitter);
                    EXPECT_EQ(lastLoadOf(*sys, t.probes[0].thread,
                                         t.probes[0].addr),
                              1u)
                        << "fenced MP failure";
                }
            }
        }
    }
}

TEST(WarmSharers, FastForwardStaysBitIdenticalUnderTheKnob)
{
    // The knob changes the initial coherence state, not the scheduling
    // contract: fastfwd on/off equivalence must survive it.
    const Workload& wl = workloadSuite().front();
    const auto run = [&](int ff) {
        RunConfig cfg;
        cfg.warmupCycles = 400;
        cfg.measureCycles = 2500;
        cfg.seed = 11;
        cfg.system = SystemParams::small(4);
        cfg.system.fastForward = ff;
        cfg.warmStart = false;   // prime manually with the knob instead
        std::vector<std::unique_ptr<ThreadProgram>> programs;
        for (std::uint32_t t = 0; t < cfg.system.numCores; ++t) {
            programs.push_back(std::make_unique<SyntheticProgram>(
                wl.params, t, cfg.seed));
        }
        System sys(cfg.system, std::move(programs), ImplKind::InvisiSC);
        warmSystem(sys, wl.params, 0.5);
        sys.run(cfg.warmupCycles + cfg.measureCycles);
        return sys.totalRetired();
    };
    EXPECT_EQ(run(0), run(1));
}

} // namespace
} // namespace invisifence
