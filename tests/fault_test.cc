/**
 * @file
 * Fault-injection and liveness suite.
 *
 * The coherence fabric must mask every fault the FaultPlan can inject:
 * dropped requests recover through timeout/retry, duplicated requests
 * are squashed by the directory's (src, txnId) dedup record, and extra
 * delay jitters timing without reordering ordered pairs. Under every
 * implementation kind the architecturally observable outcome (journals,
 * final values, litmus matrices) must be identical to a clean run —
 * only the timing and the fault counters may differ. Fault decisions
 * come from a dedicated seeded Rng, so a fixed {workload, kind, config,
 * fault seed} is bit-identical across reruns and across fast-forward
 * on/off. When recovery is impossible (a planted drop with retries
 * disabled), the liveness watchdog must dump the in-flight transactions
 * and fail fast instead of spinning to the cycle budget.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "test_util.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

using test::allImplKinds;
using test::expectIdenticalResults;
using test::lastLoadOf;
using test::makeScripted;
using test::modelOf;
using test::taddr;

constexpr std::uint32_t kTokenCores = 4;

/** Token word: cores take turns bumping it t -> t+1. */
Addr
tokenAddr()
{
    return taddr(40);
}

/**
 * Deterministic-outcome workload with real cross-core traffic: each
 * core writes two private words, waits for the shared token to reach
 * its id, passes the token on, and reads its private words back. The
 * committed journal values are invariant under any timing perturbation
 * the injector can produce, so every fault plan must reproduce them.
 */
std::vector<std::vector<ScriptOp>>
tokenScripts()
{
    std::vector<std::vector<ScriptOp>> scripts;
    for (std::uint32_t t = 0; t < kTokenCores; ++t) {
        std::vector<ScriptOp> s;
        s.push_back(opStore(taddr(50 + t), 0xA0 + t));
        s.push_back(opStore(taddr(60 + t), 0xB0 + t));
        s.push_back(opSpinUntilEq(tokenAddr(), t));
        s.push_back(opStore(tokenAddr(), t + 1));
        s.push_back(opLoad(taddr(50 + t)));
        s.push_back(opLoad(taddr(60 + t)));
        scripts.push_back(std::move(s));
    }
    return scripts;
}

/** Small system with @p plan active and recovery armed. The watchdog
 *  rides along far above the retry backoff cap, proving that recovery
 *  traffic never looks like a hang. */
SystemParams
faultParams(const FaultPlan& plan, Cycle retry_timeout = 800)
{
    SystemParams p = SystemParams::small(kTokenCores);
    p.fault = plan;
    p.agent.retryTimeout = retry_timeout;
    p.agent.retryBackoffCap = 8000;
    p.watchdog = 100000;
    return p;
}

void
expectTokenOutcome(System& sys)
{
    for (std::uint32_t t = 0; t < kTokenCores; ++t) {
        EXPECT_EQ(lastLoadOf(sys, t, tokenAddr()), t)
            << "core " << t << " token spin exit";
        EXPECT_EQ(lastLoadOf(sys, t, taddr(50 + t)), 0xA0 + t)
            << "core " << t << " private word A";
        EXPECT_EQ(lastLoadOf(sys, t, taddr(60 + t)), 0xB0 + t)
            << "core " << t << " private word B";
    }
}

} // namespace

// ---------------------------------------------------------------------
// Fault matrix: every kind x every fault class -> identical outcome
// ---------------------------------------------------------------------

TEST(FaultMatrix, IdenticalFinalStateAcrossAllKindsAndFaultClasses)
{
    struct PlanRow
    {
        const char* name;
        FaultPlan plan;
    };
    std::vector<PlanRow> rows;
    rows.push_back({"none", FaultPlan{}});
    {
        FaultPlan drop;
        drop.seed = 11;
        drop.dropPer64k = 4000;
        rows.push_back({"drop", drop});
    }
    {
        FaultPlan delay;
        delay.seed = 12;
        delay.delayPer64k = 20000;
        delay.maxExtraDelay = 300;
        rows.push_back({"delay", delay});
    }
    {
        FaultPlan dup;
        dup.seed = 13;
        dup.dupPer64k = 8000;
        rows.push_back({"dup", dup});
    }
    for (const ImplKind kind : allImplKinds()) {
        for (const PlanRow& row : rows) {
            SCOPED_TRACE(std::string(implKindName(kind)) + " / " +
                         row.name);
            auto sys = makeScripted(tokenScripts(), kind,
                                    faultParams(row.plan));
            ASSERT_TRUE(sys->runUntilDone(3'000'000));
            expectTokenOutcome(*sys);
        }
    }
}

// ---------------------------------------------------------------------
// Scheduled one-shot faults: guaranteed injection, guaranteed recovery
// ---------------------------------------------------------------------

TEST(FaultInjection, OneShotDropIsRecoveredByRetry)
{
    FaultPlan plan;
    plan.oneShots.push_back({1, FaultPlan::Kind::Drop, 0});
    auto sys =
        makeScripted(tokenScripts(), ImplKind::ConvSC, faultParams(plan));
    ASSERT_TRUE(sys->runUntilDone(3'000'000));
    EXPECT_EQ(sys->totalDropsInjected(), 1u);
    EXPECT_GE(sys->totalRetries(), 1u);
    EXPECT_GE(sys->maxRetryBackoff(), 1u);
    expectTokenOutcome(*sys);
}

TEST(FaultInjection, OneShotDuplicateIsSquashedByDirectory)
{
    // The first message any agent sends is a request; its injected twin
    // reaches the home after the original's transaction completed, hits
    // the (src, txnId) dedup record, and is squashed without a second
    // grant — visible as exactly one dups_squashed count.
    FaultPlan plan;
    plan.oneShots.push_back({1, FaultPlan::Kind::Duplicate, 0});
    auto sys = makeScripted(tokenScripts(), ImplKind::InvisiTSO,
                            faultParams(plan));
    ASSERT_TRUE(sys->runUntilDone(3'000'000));
    EXPECT_EQ(sys->totalDupsSquashed(), 1u);
    expectTokenOutcome(*sys);
}

TEST(FaultInjection, OneShotDelayPerturbsOnlyTiming)
{
    FaultPlan plan;
    plan.oneShots.push_back({2, FaultPlan::Kind::Delay, 5000});
    auto sys = makeScripted(tokenScripts(), ImplKind::Continuous,
                            faultParams(plan));
    ASSERT_TRUE(sys->runUntilDone(3'000'000));
    EXPECT_EQ(sys->totalDropsInjected(), 0u);
    expectTokenOutcome(*sys);
}

// ---------------------------------------------------------------------
// Determinism: same fault seed -> same faults -> same run
// ---------------------------------------------------------------------

TEST(FaultDeterminism, SameSeedReproducesTheExactFaultSequence)
{
    FaultPlan plan;
    plan.seed = 1234;
    plan.dropPer64k = 8000;
    plan.delayPer64k = 16000;
    plan.dupPer64k = 8000;
    const auto run = [&] {
        auto sys = makeScripted(tokenScripts(), ImplKind::InvisiSC,
                                faultParams(plan));
        EXPECT_TRUE(sys->runUntilDone(3'000'000));
        return sys;
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a->now(), b->now());
    EXPECT_EQ(a->totalRetired(), b->totalRetired());
    EXPECT_EQ(a->totalRetries(), b->totalRetries());
    EXPECT_EQ(a->totalDropsInjected(), b->totalDropsInjected());
    EXPECT_EQ(a->totalDupsSquashed(), b->totalDupsSquashed());
    EXPECT_EQ(a->maxRetryBackoff(), b->maxRetryBackoff());
    // The plan actually did something, or the test proves nothing.
    EXPECT_GT(a->totalDropsInjected() + a->totalDupsSquashed(), 0u);
}

namespace {

RunConfig
faultCfg(std::uint64_t seed, int fast_forward)
{
    RunConfig cfg;
    cfg.warmupCycles = 400;
    cfg.measureCycles = 2500;
    cfg.seed = seed;
    cfg.system = SystemParams::small(4);
    cfg.system.fastForward = fast_forward;
    cfg.system.fault.seed = 99;
    cfg.system.fault.dropPer64k = 1500;
    cfg.system.fault.delayPer64k = 4000;
    cfg.system.fault.dupPer64k = 1500;
    cfg.system.agent.retryTimeout = 800;
    cfg.system.agent.retryBackoffCap = 8000;
    return cfg;
}

} // namespace

TEST(FaultDeterminism, BitIdenticalAcrossFastForwardAndReruns)
{
    // The fast-forward equivalence contract extends to fault runs: the
    // injector draws per observed message, the message sequence is
    // bit-identical across scheduler modes, so every RunResult field —
    // including the new fault counters — must match, and a rerun of the
    // identical config must reproduce it exactly.
    const Workload& wl = workloadSuite().front();
    for (const ImplKind kind : allImplKinds()) {
        SCOPED_TRACE(implKindName(kind));
        const RunResult off = runExperiment(wl, kind, faultCfg(5, 0));
        const RunResult on = runExperiment(wl, kind, faultCfg(5, 1));
        const RunResult again = runExperiment(wl, kind, faultCfg(5, 1));
        expectIdenticalResults(off, on);
        expectIdenticalResults(on, again);
    }
}

// ---------------------------------------------------------------------
// Litmus matrix under drops: ordering survives loss and retry
// ---------------------------------------------------------------------

namespace {

/** runLitmus (see litmus_test.cc) with a drop+dup plan and retries. */
std::unique_ptr<System>
runLitmusFaulty(const LitmusTest& test, ImplKind kind,
                std::uint32_t jitter)
{
    std::vector<std::vector<ScriptOp>> scripts;
    std::uint32_t t = 0;
    for (const auto& thread : test.threads) {
        std::vector<ScriptOp> s;
        for (const auto& th : test.threads)
            for (const auto& op : th)
                if (isMemOp(op.inst.type))
                    s.push_back(opLoad(op.inst.addr));
        s.push_back(opAlu(200));
        const std::uint32_t delay = (jitter * (t + 3) * 7) % 40;
        for (std::uint32_t d = 0; d < delay; ++d)
            s.push_back(opAlu(1));
        for (const auto& op : thread)
            s.push_back(op);
        scripts.push_back(std::move(s));
        ++t;
    }
    SystemParams params =
        SystemParams::small(static_cast<std::uint32_t>(scripts.size()));
    params.fault.seed = 17 + jitter;
    params.fault.dropPer64k = 3000;
    params.fault.dupPer64k = 1500;
    params.agent.retryTimeout = 600;
    params.agent.retryBackoffCap = 6000;
    params.watchdog = 100000;
    auto sys = makeScripted(std::move(scripts), kind, params);
    EXPECT_TRUE(sys->runUntilDone(2'000'000));
    return sys;
}

std::vector<std::uint64_t>
observeProbes(System& sys, const LitmusTest& test)
{
    std::vector<std::uint64_t> out;
    for (const auto& p : test.probes)
        out.push_back(lastLoadOf(sys, p.thread, p.addr));
    return out;
}

struct FaultMatrixRow
{
    const char* name;
    LitmusTest (*make)();
    bool (*relaxed)(const std::vector<std::uint64_t>&);
    std::optional<Model> weakestAllowing;
};

const std::vector<FaultMatrixRow>&
faultLitmusMatrix()
{
    // Same rows and predicates as litmus_test.cc's matrix: SB relaxes
    // from TSO down, MP from RMO down, LB/IRIW are forbidden
    // everywhere (no value speculation; fenced IRIW readers).
    static const std::vector<FaultMatrixRow> rows = {
        {"SB", litmusSb,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 0 && r[1] == 0;
         },
         Model::TSO},
        {"MP", litmusMp,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 0;
         },
         Model::RMO},
        {"LB", litmusLb,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 1;
         },
         std::nullopt},
        {"IRIW", litmusIriw,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0;
         },
         std::nullopt},
    };
    return rows;
}

} // namespace

TEST(FaultLitmus, ForbiddenOutcomesStayForbiddenUnderDropsAndRetries)
{
    // Retried requests and squashed duplicates must not weaken the
    // memory model: a retry that re-granted a line twice, or a
    // duplicate that slipped past dedup, would surface here as a
    // forbidden litmus outcome.
    constexpr std::uint32_t kIterations = 6;
    for (const ImplKind kind : allImplKinds()) {
        const Model model = modelOf(kind);
        for (const FaultMatrixRow& row : faultLitmusMatrix()) {
            if (row.weakestAllowing &&
                static_cast<int>(model) >=
                    static_cast<int>(*row.weakestAllowing)) {
                continue;   // relaxed outcome legal for this kind
            }
            SCOPED_TRACE(std::string(implKindName(kind)) + " / " +
                         row.name);
            const LitmusTest t = row.make();
            for (std::uint32_t i = 0; i < kIterations; ++i) {
                auto sys = runLitmusFaulty(t, kind, i);
                EXPECT_FALSE(row.relaxed(observeProbes(*sys, t)))
                    << row.name << " forbidden outcome under "
                    << implKindName(kind) << " with faults, iteration "
                    << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Liveness watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, PlantedDeadlockFailsFastWithDiagnostic)
{
    // Drop the very first request with retries DISABLED: the protocol
    // has no recovery path (exactly the unrecoverable-loss class the
    // injector refuses to create via rates), the queue drains, and the
    // system wedges. The watchdog must fire its structured dump and
    // exit instead of burning the 5M-cycle budget.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    FaultPlan plan;
    plan.oneShots.push_back({1, FaultPlan::Kind::Drop, 0});
    SystemParams params = SystemParams::small(2);
    params.fault = plan;   // retryTimeout stays 0: no recovery
    params.watchdog = 20000;
    const std::vector<std::vector<ScriptOp>> scripts{
        {opStore(taddr(70), 1), opLoad(taddr(70))},
        {opStore(taddr(71), 2)}};
    EXPECT_DEATH(
        {
            auto sys = makeScripted(scripts, ImplKind::ConvSC, params);
            sys->runUntilDone(5'000'000);
        },
        "LIVENESS WATCHDOG");
}

TEST(Watchdog, DoesNotFireOnCompletionOrPostCompletionIdle)
{
    SystemParams params = SystemParams::small(2);
    params.watchdog = 5000;
    const std::vector<std::vector<ScriptOp>> scripts{
        {opStore(taddr(72), 7), opLoad(taddr(72))}, {opLoad(taddr(73))}};
    auto sys = makeScripted(scripts, ImplKind::InvisiSC, params);
    ASSERT_TRUE(sys->runUntilDone(1'000'000));
    // Idle far past the threshold: a finished system is quiet, not
    // stuck, and must not trip the watchdog.
    sys->run(30000);
    EXPECT_EQ(lastLoadOf(*sys, 0, taddr(72)), 7u);
}

} // namespace invisifence
