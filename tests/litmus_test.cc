/** @file Litmus tests: every implementation must enforce exactly its
 *  memory model. Forbidden outcomes must never appear under any timing
 *  the simulator produces; relaxed implementations must be able to show
 *  the relaxed outcomes. */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <utility>

#include "test_util.hh"

using namespace invisifence;
using namespace invisifence::test;

namespace {

/** Run @p test under @p kind with timing perturbation @p jitter. */
std::unique_ptr<System>
runLitmus(const LitmusTest& test, ImplKind kind, std::uint32_t jitter)
{
    std::vector<std::vector<ScriptOp>> scripts;
    std::uint32_t t = 0;
    for (const auto& thread : test.threads) {
        std::vector<ScriptOp> s;
        // Warm every address the test touches so the body runs against
        // hit-latency caches (the interesting orderings need fast loads
        // against slow store upgrades), then stagger thread starts per
        // iteration to explore interleavings deterministically.
        for (const auto& th : test.threads)
            for (const auto& op : th)
                if (isMemOp(op.inst.type))
                    s.push_back(opLoad(op.inst.addr));
        s.push_back(opAlu(200));
        const std::uint32_t delay = (jitter * (t + 3) * 7) % 40;
        for (std::uint32_t d = 0; d < delay; ++d)
            s.push_back(opAlu(1));
        for (const auto& op : thread)
            s.push_back(op);
        scripts.push_back(std::move(s));
        ++t;
    }
    auto sys = makeScripted(std::move(scripts), kind);
    EXPECT_TRUE(sys->runUntilDone(500000));
    return sys;
}

/** Observed probe values for one run. */
std::vector<std::uint64_t>
observe(System& sys, const LitmusTest& test)
{
    std::vector<std::uint64_t> out;
    for (const auto& p : test.probes)
        out.push_back(lastLoadOf(sys, p.thread, p.addr));
    return out;
}

constexpr std::uint32_t kIterations = 12;

struct LitmusParam
{
    ImplKind kind;
};

std::string
paramName(const ::testing::TestParamInfo<LitmusParam>& info)
{
    std::string n = implKindName(info.param.kind);
    for (auto& c : n)
        if (c == '-')
            c = '_';
    return n;
}

class LitmusAllImpls : public ::testing::TestWithParam<LitmusParam>
{
};

class LitmusTsoPlus : public ::testing::TestWithParam<LitmusParam>
{
};

class LitmusScOnly : public ::testing::TestWithParam<LitmusParam>
{
};

} // namespace

// ---- properties that hold under EVERY model ----------------------------

TEST_P(LitmusAllImpls, SbWithFencesForbidsBothZero)
{
    const LitmusTest t = litmusSbFenced();
    for (std::uint32_t i = 0; i < kIterations; ++i) {
        auto sys = runLitmus(t, GetParam().kind, i);
        const auto r = observe(*sys, t);
        EXPECT_FALSE(r[0] == 0 && r[1] == 0)
            << "Dekker failure with full fences, iteration " << i;
    }
}

TEST_P(LitmusAllImpls, MpWithFencesAlwaysSeesData)
{
    const LitmusTest t = litmusMpFenced();
    for (std::uint32_t i = 0; i < kIterations; ++i) {
        auto sys = runLitmus(t, GetParam().kind, i);
        EXPECT_EQ(observe(*sys, t)[0], 1u) << "iteration " << i;
    }
}

TEST_P(LitmusAllImpls, CoherenceReadReadNeverGoesBackwards)
{
    const LitmusTest t = litmusCoRR();
    for (std::uint32_t i = 0; i < kIterations; ++i) {
        auto sys = runLitmus(t, GetParam().kind, i);
        const auto& j = sys->core(1).journal();
        std::vector<std::uint64_t> loads;
        for (const auto& rec : j)
            if (rec.type == OpType::Load)
                loads.push_back(rec.result);
        // The last two loads are the litmus body (earlier ones warmed
        // the caches).
        ASSERT_GE(loads.size(), 2u);
        const auto r0 = loads[loads.size() - 2];
        const auto r1 = loads[loads.size() - 1];
        EXPECT_FALSE(r0 == 1 && r1 == 0)
            << "CoRR violated, iteration " << i;
    }
}

TEST_P(LitmusAllImpls, LoadBufferingOutcomeNeverAppears)
{
    // No implementation performs value speculation, so LB's cyclic
    // outcome must be unobservable everywhere.
    const LitmusTest t = litmusLb();
    for (std::uint32_t i = 0; i < kIterations; ++i) {
        auto sys = runLitmus(t, GetParam().kind, i);
        const auto r = observe(*sys, t);
        EXPECT_FALSE(r[0] == 1 && r[1] == 1) << "iteration " << i;
    }
}

TEST_P(LitmusAllImpls, AtomicIncrementsNeverLost)
{
    // 4 threads x 20 fetch-and-adds on one counter.
    std::vector<std::vector<ScriptOp>> scripts;
    for (int t = 0; t < 4; ++t) {
        std::vector<ScriptOp> s;
        for (int i = 0; i < 20; ++i) {
            s.push_back(opFetchAdd(taddr(20), 1));
            s.push_back(opAlu(static_cast<std::uint8_t>(1 + (t + i) % 5)));
        }
        scripts.push_back(std::move(s));
    }
    auto sys = makeScripted(std::move(scripts), GetParam().kind);
    ASSERT_TRUE(sys->runUntilDone(2000000));
    // Read back through any agent's committed view via a fresh probe:
    // all caches have drained, so functional memory + owner agree; use
    // a one-op reader program instead of trusting internals.
    std::uint64_t final_value = 0;
    for (std::uint32_t n = 0; n < sys->numCores(); ++n) {
        if (sys->agent(n).l1Readable(taddr(20)))
            final_value = sys->agent(n).readWordL1(taddr(20));
    }
    if (final_value == 0)
        final_value = sys->memory().readWord(taddr(20));
    EXPECT_EQ(final_value, 80u);
}

TEST_P(LitmusAllImpls, SpinlockProvidesMutualExclusion)
{
    // Each thread: acquire -> write OWNER=tid -> delay -> read OWNER
    // (must still be tid) -> release. A broken atomic/ordering path
    // shows up as a foreign owner observed inside the critical section.
    const Addr lock = taddr(21), owner = taddr(22);
    constexpr int kRounds = 6;
    std::vector<std::vector<ScriptOp>> scripts;
    for (std::uint32_t t = 0; t < 4; ++t) {
        std::vector<ScriptOp> s;
        for (int r = 0; r < kRounds; ++r) {
            // Spin-CAS acquire: retries until the swap wins.
            s.push_back(opCasLoop(lock, 0, t + 1));
            s.push_back(opFence());
            s.push_back(opStore(owner, t + 1));
            s.push_back(opAlu(5));
            s.push_back(opLoad(owner));
            s.push_back(opFence());
            s.push_back(opStore(lock, 0));
        }
        scripts.push_back(std::move(s));
    }
    auto sys = makeScripted(std::move(scripts), GetParam().kind);
    ASSERT_TRUE(sys->runUntilDone(4000000));
    for (std::uint32_t t = 0; t < 4; ++t) {
        const auto& j = sys->core(t).journal();
        for (const auto& rec : j) {
            if (rec.type == OpType::Load &&
                wordAlign(rec.addr) == wordAlign(owner)) {
                EXPECT_EQ(rec.result, t + 1)
                    << "mutual exclusion violated in thread " << t;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllImpls, LitmusAllImpls,
                         ::testing::ValuesIn([] {
                             std::vector<LitmusParam> v;
                             for (auto k : allImplKinds())
                                 v.push_back({k});
                             return v;
                         }()),
                         paramName);

// ---- properties of TSO and stronger -------------------------------------

TEST_P(LitmusTsoPlus, MessagePassingForbiddenWithoutFences)
{
    // MP's relaxed outcome (flag seen, data stale) violates TSO.
    const LitmusTest t = litmusMp();
    for (std::uint32_t i = 0; i < kIterations; ++i) {
        auto sys = runLitmus(t, GetParam().kind, i);
        const auto r = observe(*sys, t);
        EXPECT_FALSE(r[0] == 1 && r[1] == 0)
            << implKindName(GetParam().kind) << " iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(TsoPlus, LitmusTsoPlus,
                         ::testing::ValuesIn([] {
                             std::vector<LitmusParam> v;
                             for (auto k : tsoOrStrongerKinds())
                                 v.push_back({k});
                             return v;
                         }()),
                         paramName);

// ---- properties of SC only ----------------------------------------------

TEST_P(LitmusScOnly, StoreBufferingForbidden)
{
    // Dekker without fences: r0 == r1 == 0 violates SC.
    const LitmusTest t = litmusSb();
    for (std::uint32_t i = 0; i < kIterations; ++i) {
        auto sys = runLitmus(t, GetParam().kind, i);
        const auto r = observe(*sys, t);
        EXPECT_FALSE(r[0] == 0 && r[1] == 0)
            << implKindName(GetParam().kind) << " iteration " << i;
    }
}

TEST_P(LitmusScOnly, IriwObserversAgreeOnWriteOrder)
{
    const LitmusTest t = litmusIriw();
    for (std::uint32_t i = 0; i < kIterations; ++i) {
        auto sys = runLitmus(t, GetParam().kind, i);
        const auto r = observe(*sys, t);
        // forbidden: T2 sees X=1,Y=0 while T3 sees Y=1,X=0.
        EXPECT_FALSE(r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0)
            << implKindName(GetParam().kind) << " iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(ScOnly, LitmusScOnly,
                         ::testing::ValuesIn([] {
                             std::vector<LitmusParam> v;
                             for (auto k : scKinds())
                                 v.push_back({k});
                             return v;
                         }()),
                         paramName);

// ---- relaxed implementations can actually relax -------------------------

TEST(LitmusRelaxation, ConventionalTsoShowsStoreBuffering)
{
    // Under TSO, both loads retiring past the buffered stores is the
    // expected behavior; with simultaneous starts it shows immediately.
    const LitmusTest t = litmusSb();
    bool saw_relaxed = false;
    for (std::uint32_t i = 0; i < kIterations && !saw_relaxed; ++i) {
        auto sys = runLitmus(t, ImplKind::ConvTSO, i);
        const auto r = observe(*sys, t);
        saw_relaxed = (r[0] == 0 && r[1] == 0);
    }
    EXPECT_TRUE(saw_relaxed)
        << "TSO never exhibited store buffering; the store buffer is "
           "not doing its job";
}

TEST(LitmusRelaxation, InvisiTsoShowsStoreBufferingToo)
{
    const LitmusTest t = litmusSb();
    bool saw_relaxed = false;
    for (std::uint32_t i = 0; i < kIterations && !saw_relaxed; ++i) {
        auto sys = runLitmus(t, ImplKind::InvisiTSO, i);
        const auto r = observe(*sys, t);
        saw_relaxed = (r[0] == 0 && r[1] == 0);
    }
    EXPECT_TRUE(saw_relaxed);
}

// ---- the classic four-litmus matrix, WiredTiger-style -------------------
//
// One table drives SB, MP, LB, and IRIW under EVERY implementation kind.
// Each row names the litmus, the predicate recognizing its relaxed
// outcome, and the weakest model class that may legally exhibit it.
// Forbidden outcomes must never appear under any timing jitter; relaxed
// outcomes must be reachable on the conventional implementation of the
// weakest model (speculative Invisi* variants may legitimately mask
// them, so reachability is only demanded where the hardware has no
// speculation to hide behind).

namespace {

using RelaxedPredicate = bool (*)(const std::vector<std::uint64_t>&);

struct MatrixRow
{
    const char* name;
    LitmusTest (*make)();
    RelaxedPredicate relaxed;
    /** Weakest model that may exhibit the relaxed outcome, or nullopt
     *  when it is forbidden under every model (no value speculation). */
    std::optional<Model> weakestAllowing;
    /** Whether the shared uniform-warming harness can demonstrate the
     *  relaxed outcome (MP needs the clogged-SB scenario below). */
    bool harnessReachable = true;
};

const std::vector<MatrixRow>&
litmusMatrix()
{
    static const std::vector<MatrixRow> rows = {
        {"SB", litmusSb,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 0 && r[1] == 0;
         },
         Model::TSO},
        {"MP", litmusMp,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 0;
         },
         Model::RMO, /*harnessReachable=*/false},
        {"LB", litmusLb,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 1;
         },
         std::nullopt},
        // IRIW's readers are fenced, so with a write-atomic directory
        // protocol the split outcome is forbidden under every model.
        {"IRIW", litmusIriw,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0;
         },
         std::nullopt},
    };
    return rows;
}

/** True when @p model may exhibit an outcome allowed from @p weakest. */
bool
modelAllows(Model model, std::optional<Model> weakest)
{
    if (!weakest)
        return false;
    return static_cast<int>(model) >= static_cast<int>(*weakest);
}

class LitmusMatrix : public ::testing::TestWithParam<LitmusParam>
{
};

} // namespace

TEST_P(LitmusMatrix, ForbiddenOutcomesNeverAppear)
{
    const ImplKind kind = GetParam().kind;
    const Model model = modelOf(kind);
    for (const MatrixRow& row : litmusMatrix()) {
        if (modelAllows(model, row.weakestAllowing))
            continue;   // relaxed outcome is legal for this kind
        SCOPED_TRACE(row.name);
        const LitmusTest t = row.make();
        for (std::uint32_t i = 0; i < kIterations; ++i) {
            auto sys = runLitmus(t, kind, i);
            EXPECT_FALSE(row.relaxed(observe(*sys, t)))
                << row.name << " forbidden outcome under "
                << implKindName(kind) << ", iteration " << i;
        }
    }
}

TEST_P(LitmusMatrix, RelaxedOutcomesReachableOnConventionalHardware)
{
    // Only the conventional (non-speculative) weak implementations are
    // required to exhibit their model's relaxed outcomes via the shared
    // harness: ConvTSO and ConvRMO must both show SB. MP's relaxed
    // outcome needs a cache-ownership setup the uniform-warming harness
    // cannot express (see MpRelaxation below), so it is excluded here.
    const ImplKind kind = GetParam().kind;
    if (kind != ImplKind::ConvTSO && kind != ImplKind::ConvRMO)
        GTEST_SKIP() << "reachability only demanded of conventional "
                        "relaxed hardware";
    const Model model = modelOf(kind);
    for (const MatrixRow& row : litmusMatrix()) {
        if (!modelAllows(model, row.weakestAllowing))
            continue;
        if (!row.harnessReachable)
            continue;
        SCOPED_TRACE(row.name);
        const LitmusTest t = row.make();
        bool reached = false;
        for (std::uint32_t i = 0; i < 2 * kIterations && !reached; ++i) {
            auto sys = runLitmus(t, kind, i);
            reached = row.relaxed(observe(*sys, t));
        }
        EXPECT_TRUE(reached)
            << row.name << " relaxed outcome unreachable under "
            << implKindName(kind);
    }
}

namespace {

/**
 * MP with the store buffer clogged: the writer owns the flag block
 * exclusively (so its flag store direct-hits the L1 and is visible at
 * once) while the data store is buried in the coalescing store buffer
 * behind @p clog dummy store misses fighting over two MSHRs. Under RMO
 * the flag becomes visible long before the data drains; any model that
 * orders stores must make the (flag=1, data=0) outcome unobservable.
 * Returns the (flag, data) values the reader committed.
 */
std::pair<std::uint64_t, std::uint64_t>
runCloggedMp(ImplKind kind, std::uint32_t readerDelay)
{
    auto params = SystemParams::small(2);
    params.agent.mshrs = 2;
    const Addr d = taddr(80), f = taddr(81), dummy = taddr(90);
    std::vector<ScriptOp> writer = {opStore(f, 0), opFence(), opAlu(250)};
    for (std::uint32_t k = 0; k < 4; ++k)
        writer.push_back(opStore(dummy + k * kBlockBytes, 7));
    writer.push_back(opStore(d, 1));
    writer.push_back(opStore(f, 1));
    std::vector<ScriptOp> reader = {opLoad(d), opAlu(250)};
    for (std::uint32_t k = 0; k < readerDelay; ++k)
        reader.push_back(opAlu(1));
    reader.push_back(opLoad(f));
    reader.push_back(opLoad(d));
    auto sys = makeScripted({std::move(writer), std::move(reader)}, kind,
                            params);
    EXPECT_TRUE(sys->runUntilDone(800000));
    return {lastLoadOf(*sys, 1, f), lastLoadOf(*sys, 1, d)};
}

} // namespace

TEST(LitmusRelaxation, ConvRmoShowsMessagePassingWithCloggedSb)
{
    bool saw_relaxed = false;
    for (std::uint32_t delay = 60; delay <= 240 && !saw_relaxed;
         delay += 6) {
        const auto [rf, rd] = runCloggedMp(ImplKind::ConvRMO, delay);
        saw_relaxed = (rf == 1 && rd == 0);
    }
    EXPECT_TRUE(saw_relaxed)
        << "RMO never exhibited MP's relaxed outcome; the coalescing "
           "store buffer is not draining out of order";
}

TEST(LitmusRelaxation, CloggedMpStaysForbiddenUnderTsoAndStronger)
{
    for (const ImplKind kind : tsoOrStrongerKinds()) {
        SCOPED_TRACE(implKindName(kind));
        for (std::uint32_t delay = 60; delay <= 240; delay += 18) {
            const auto [rf, rd] = runCloggedMp(kind, delay);
            EXPECT_FALSE(rf == 1 && rd == 0)
                << implKindName(kind) << " delay " << delay;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Matrix, LitmusMatrix,
                         ::testing::ValuesIn([] {
                             std::vector<LitmusParam> v;
                             for (auto k : allImplKinds())
                                 v.push_back({k});
                             return v;
                         }()),
                         paramName);
