/** @file Golden-figure regression: a fixed small-cycle-budget sweep over
 *  the Figure 8/9 configuration grid must (a) reproduce the committed
 *  golden JSON byte-for-byte — the simulator is a pure function of the
 *  seed, so any diff is a behavioral change that needs review — and
 *  (b) keep the paper's headline invariants: InvisiFence-SC at least
 *  matches conventional SC, conventional RMO at least matches
 *  conventional SC, and the cycle-breakdown categories account for
 *  roughly all measured cycles.
 *
 *  The config here deliberately ignores the INVISIFENCE_BENCH_* env
 *  overrides so the golden bytes cannot depend on the tier running the
 *  suite. Regenerate after an intentional change with:
 *      INVISIFENCE_REGOLD=1 ./golden_figures_test
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

constexpr std::uint32_t kSeeds = 2;

std::string
goldenPath()
{
    return std::string(INVISIFENCE_GOLDEN_DIR) + "/fig0809_small.json";
}

RunConfig
goldenConfig()
{
    RunConfig cfg;
    cfg.warmupCycles = 250;
    cfg.measureCycles = 1500;
    cfg.seed = 20090620;   // ISCA'09 vintage; never overridden by env
    cfg.system = SystemParams::bench();
    return cfg;
}

const std::vector<ImplKind>&
goldenKinds()
{
    static const std::vector<ImplKind> kinds = {
        ImplKind::ConvSC,   ImplKind::ConvTSO,   ImplKind::ConvRMO,
        ImplKind::InvisiSC, ImplKind::InvisiTSO, ImplKind::InvisiRMO};
    return kinds;
}

/** The sweep is deterministic; run it once and share across tests. */
const std::vector<SweepStats>&
goldenStats()
{
    static const std::vector<SweepStats> stats = SweepRunner().runStats(
        workloadSuite(), goldenKinds(), goldenConfig(), kSeeds);
    return stats;
}

std::string
renderJson()
{
    std::ostringstream os;
    writeSweepJson(os, goldenStats(), goldenConfig(), kSeeds);
    return os.str();
}

double
geomeanSpeedup(const std::string& impl, const std::string& baseline)
{
    std::vector<double> thr_impl, thr_base;
    for (const SweepStats& s : goldenStats()) {
        if (s.impl == impl)
            thr_impl.push_back(s.primary().throughput());
        if (s.impl == baseline)
            thr_base.push_back(s.primary().throughput());
    }
    EXPECT_EQ(thr_impl.size(), workloadSuite().size());
    EXPECT_EQ(thr_impl.size(), thr_base.size());
    double log_sum = 0;
    for (std::size_t i = 0; i < thr_impl.size(); ++i)
        log_sum += std::log(thr_impl[i] / thr_base[i]);
    return std::exp(log_sum / static_cast<double>(thr_impl.size()));
}

TEST(GoldenFigures, JsonMatchesCommittedGolden)
{
    const std::string json = renderJson();
    if (std::getenv("INVISIFENCE_REGOLD") != nullptr) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << json;
        std::cout << "regenerated " << goldenPath() << std::endl;
        return;
    }
    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << "; create it with INVISIFENCE_REGOLD=1";
    std::stringstream committed;
    committed << in.rdbuf();
    EXPECT_EQ(json, committed.str())
        << "sweep output diverged from the committed golden; if the "
           "change is intentional, rerun with INVISIFENCE_REGOLD=1 and "
           "commit the new golden";
}

// ---------------------------------------------------------------------
// 64-core scale golden: server-shaped workloads, hashed home placement,
// schema 2 (which records the machine topology). Separate file so the
// 16-core fig0809 golden stays byte-identical.
// ---------------------------------------------------------------------

std::string
scaleGoldenPath()
{
    return std::string(INVISIFENCE_GOLDEN_DIR) + "/fig_scale64_small.json";
}

RunConfig
scaleGoldenConfig()
{
    RunConfig cfg;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1000;
    cfg.seed = 20090620;
    cfg.system = SystemParams::bench();
    cfg.system.numCores = 64;            // derived 8x8 torus
    cfg.system.dirHashHome = true;       // sharded home placement
    cfg.system.agent.l2Size = 512 * 1024;   // bounds the 64-agent footprint
    return cfg;
}

const std::vector<ImplKind>&
scaleGoldenKinds()
{
    static const std::vector<ImplKind> kinds = {
        ImplKind::ConvSC, ImplKind::ConvRMO, ImplKind::InvisiSC,
        ImplKind::Continuous};
    return kinds;
}

const std::vector<SweepStats>&
scaleGoldenStats()
{
    static const std::vector<SweepStats> stats = SweepRunner().runStats(
        serverSuite(), scaleGoldenKinds(), scaleGoldenConfig(), 1);
    return stats;
}

TEST(GoldenFigures, ScaleJsonMatchesCommittedGolden)
{
    std::ostringstream os;
    writeSweepJson(os, scaleGoldenStats(), scaleGoldenConfig(), 1,
                   /*schema=*/2);
    const std::string json = os.str();
    if (std::getenv("INVISIFENCE_REGOLD") != nullptr) {
        std::ofstream out(scaleGoldenPath());
        ASSERT_TRUE(out) << "cannot write " << scaleGoldenPath();
        out << json;
        std::cout << "regenerated " << scaleGoldenPath() << std::endl;
        return;
    }
    std::ifstream in(scaleGoldenPath());
    ASSERT_TRUE(in) << "missing golden file " << scaleGoldenPath()
                    << "; create it with INVISIFENCE_REGOLD=1";
    std::stringstream committed;
    committed << in.rdbuf();
    EXPECT_EQ(json, committed.str())
        << "64-core sweep output diverged from the committed golden; if "
           "the change is intentional, rerun with INVISIFENCE_REGOLD=1 "
           "and commit the new golden";
}

TEST(GoldenFigures, ScaleGoldenRecordsTheTopology)
{
    std::ostringstream os;
    writeSweepJson(os, scaleGoldenStats(), scaleGoldenConfig(), 1,
                   /*schema=*/2);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"num_cores\": 64"), std::string::npos);
    EXPECT_NE(json.find("\"dim_x\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"dim_y\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"dir_hash\": true"), std::string::npos);
}

TEST(GoldenFigures, InvisiScAtLeastMatchesConventionalSc)
{
    EXPECT_GE(geomeanSpeedup("Invisi_sc", "sc"), 1.0);
}

TEST(GoldenFigures, ConventionalRmoAtLeastMatchesConventionalSc)
{
    EXPECT_GE(geomeanSpeedup("rmo", "sc"), 1.0);
}

TEST(GoldenFigures, BreakdownSharesAccountForMeasuredCycles)
{
    for (const SweepStats& s : goldenStats()) {
        SCOPED_TRACE(s.workload + "/" + s.impl);
        for (const RunResult& r : s.runs) {
            const BreakdownShares sh = shares(r);
            const double sum =
                sh.busy + sh.other + sh.sbFull + sh.sbDrain + sh.violation;
            // In-flight speculation cycles are attributed only at
            // commit/abort, so a window boundary mid-episode can shift
            // a sliver of cycles across windows; at this budget the
            // clamps cancel and the sum is 1 to within rounding.
            EXPECT_GE(sum, 0.98);
            EXPECT_LE(sum, 1.02);
        }
    }
}

} // namespace
} // namespace invisifence
