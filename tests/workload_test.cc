/** @file Workload generator tests: determinism, snapshot/replay, lock
 *  protocol shape, instruction mix calibration, address regions. */

#include <gtest/gtest.h>

#include <map>

#include "workload/synthetic.hh"
#include "workload/workloads.hh"

using namespace invisifence;

namespace {

std::vector<Instruction>
fetchN(SyntheticProgram& p, int n)
{
    std::vector<Instruction> out;
    for (int i = 0; i < n; ++i)
        out.push_back(p.fetchNext());
    return out;
}

bool
sameInst(const Instruction& a, const Instruction& b)
{
    return a.type == b.type && a.addr == b.addr && a.value == b.value &&
           a.expect == b.expect && a.latency == b.latency &&
           a.feedsBack == b.feedsBack;
}

} // namespace

TEST(Synthetic, DeterministicForSeedAndTid)
{
    const SyntheticParams p = workloadByName("Apache").params;
    SyntheticProgram a(p, 3, 42), b(p, 3, 42);
    const auto va = fetchN(a, 500), vb = fetchN(b, 500);
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(sameInst(va[static_cast<std::size_t>(i)],
                             vb[static_cast<std::size_t>(i)]))
            << "diverged at " << i;
}

TEST(Synthetic, DifferentTidsProduceDifferentStreams)
{
    const SyntheticParams p = workloadByName("Apache").params;
    SyntheticProgram a(p, 0, 42), b(p, 1, 42);
    const auto va = fetchN(a, 200), vb = fetchN(b, 200);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += sameInst(va[static_cast<std::size_t>(i)],
                         vb[static_cast<std::size_t>(i)]);
    EXPECT_LT(same, 150);
}

TEST(Synthetic, SnapshotRestoreReplaysExactly)
{
    const SyntheticParams p = workloadByName("OLTP-DB2").params;
    SyntheticProgram prog(p, 5, 7);
    fetchN(prog, 137);
    ProgSnapshot snap;
    prog.snapshotTo(snap);
    const auto first = fetchN(prog, 100);
    prog.restoreFrom(snap);
    const auto second = fetchN(prog, 100);
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(sameInst(first[static_cast<std::size_t>(i)],
                             second[static_cast<std::size_t>(i)]))
            << "replay diverged at " << i;
}

TEST(Synthetic, MispredictPathDivergesAfterSetLastResult)
{
    // Drive the program to a CAS, then replay it with the opposite
    // outcome: the streams must differ (spin path vs critical section).
    const SyntheticParams p = workloadByName("Apache").params;
    SyntheticProgram prog(p, 2, 9);
    Instruction cas;
    ProgSnapshot after_cas;
    for (int i = 0; i < 100000; ++i) {
        const Instruction inst = prog.fetchNext();
        if (inst.type == OpType::Cas) {
            cas = inst;
            prog.snapshotTo(after_cas);
            break;
        }
    }
    ASSERT_EQ(cas.type, OpType::Cas);
    ASSERT_TRUE(cas.feedsBack);

    prog.restoreFrom(after_cas);
    prog.setLastResult(0);                    // success: acquired
    const Instruction success_next = prog.fetchNext();
    EXPECT_EQ(success_next.type, OpType::Fence);   // acquire barrier

    prog.restoreFrom(after_cas);
    prog.setLastResult(99);                   // failure: lock held
    const Instruction fail_next = prog.fetchNext();
    EXPECT_EQ(fail_next.type, OpType::Alu);        // backoff
}

TEST(Synthetic, LockSequenceShape)
{
    // After a successful acquire: fence, then csLength body ops within
    // the lock's data region, then the release store of 0 to the lock.
    SyntheticParams p = workloadByName("Apache").params;
    p.lockPer64k = 65535;    // lock immediately
    SyntheticProgram prog(p, 1, 3);
    Instruction inst = prog.fetchNext();
    ASSERT_EQ(inst.type, OpType::Cas);
    const Addr lock = inst.addr;
    EXPECT_GE(lock, kLockRegion);
    EXPECT_LT(lock, kLockDataRegion);

    prog.setLastResult(0);   // pretend success (no core involved here)
    // Note: the automaton already assumed success at fetch; proceed.
    inst = prog.fetchNext();
    EXPECT_EQ(inst.type, OpType::Fence);
    int body = 0;
    while (true) {
        inst = prog.fetchNext();
        if (inst.type == OpType::Store && inst.addr == lock &&
            inst.value == 0) {
            break;   // release store
        }
        ASSERT_TRUE(inst.type == OpType::Load ||
                    inst.type == OpType::Store);
        EXPECT_GE(inst.addr, kLockDataRegion);
        EXPECT_LT(inst.addr, kSharedRegion);
        ++body;
        ASSERT_LT(body, 200);
    }
    EXPECT_EQ(body, static_cast<int>(p.csLength));
}

TEST(Synthetic, InstructionMixRoughlyCalibrated)
{
    const SyntheticParams p = workloadByName("DSS-DB2").params;
    SyntheticProgram prog(p, 0, 11);
    std::map<OpType, int> counts;
    constexpr int kN = 60000;
    for (int i = 0; i < kN; ++i)
        ++counts[prog.fetchNext().type];
    const double alu = counts[OpType::Alu] / double(kN);
    const double load = counts[OpType::Load] / double(kN);
    EXPECT_NEAR(alu, p.aluPermille / 1000.0, 0.05);
    EXPECT_NEAR(load, p.loadPermille / 1000.0, 0.06);
    EXPECT_GT(counts[OpType::Store], 0);
    EXPECT_GT(counts[OpType::Fence], 0);
}

TEST(Synthetic, PrivateAddressesStayInOwnCarveOut)
{
    const SyntheticParams p = workloadByName("Barnes").params;
    SyntheticProgram prog(p, 4, 13);
    const Addr lo = kPrivateRegion + 4 * kPrivateStride;
    const Addr hi = lo + kPrivateStride;
    for (int i = 0; i < 20000; ++i) {
        const Instruction inst = prog.fetchNext();
        if (!isMemOp(inst.type) || inst.addr < kPrivateRegion)
            continue;
        EXPECT_GE(inst.addr, lo);
        EXPECT_LT(inst.addr, hi);
    }
}

TEST(Synthetic, SharedAddressesInSharedRegion)
{
    const SyntheticParams p = workloadByName("Apache").params;
    SyntheticProgram prog(p, 0, 17);
    int shared_ops = 0;
    for (int i = 0; i < 60000; ++i) {
        const Instruction inst = prog.fetchNext();
        if (!isMemOp(inst.type))
            continue;
        if (inst.addr >= kSharedRegion && inst.addr < kPrivateRegion) {
            ++shared_ops;
            EXPECT_LT(inst.addr, kSharedRegion +
                                     static_cast<Addr>(p.sharedBlocks) *
                                         kBlockBytes);
        }
    }
    EXPECT_GT(shared_ops, 50);
}

TEST(Synthetic, StandaloneFencesAreFullFences)
{
    SyntheticParams p;
    p.fencePer64k = 65535;
    p.lockPer64k = 0;
    SyntheticProgram prog(p, 0, 1);
    const Instruction inst = prog.fetchNext();
    ASSERT_EQ(inst.type, OpType::Fence);
    EXPECT_TRUE(inst.fullFence);
}

TEST(Synthetic, LockFencesAreAcquireFences)
{
    SyntheticParams p;
    p.lockPer64k = 65535;
    SyntheticProgram prog(p, 0, 1);
    ASSERT_EQ(prog.fetchNext().type, OpType::Cas);
    const Instruction fence = prog.fetchNext();
    ASSERT_EQ(fence.type, OpType::Fence);
    EXPECT_FALSE(fence.fullFence);   // free under SC/TSO (Section 6.1)
}

TEST(WorkloadSuite, HasThePapersSevenWorkloads)
{
    const auto& suite = workloadSuite();
    ASSERT_EQ(suite.size(), 7u);
    EXPECT_EQ(suite[0].name, "Apache");
    EXPECT_EQ(suite[1].name, "Zeus");
    EXPECT_EQ(suite[2].name, "OLTP-Oracle");
    EXPECT_EQ(suite[3].name, "OLTP-DB2");
    EXPECT_EQ(suite[4].name, "DSS-DB2");
    EXPECT_EQ(suite[5].name, "Barnes");
    EXPECT_EQ(suite[6].name, "Ocean");
}

TEST(WorkloadSuite, ScientificWorkloadsSyncLess)
{
    const auto& web = workloadByName("Apache").params;
    const auto& sci = workloadByName("Ocean").params;
    EXPECT_GT(web.lockPer64k, 10 * sci.lockPer64k);
    EXPECT_GT(web.fencePer64k, 10 * sci.fencePer64k);
}
