/**
 * @file
 * Determinism regression: the simulator must be a pure function of its
 * seed. Two runs of runExperiment with identical RunConfig must produce
 * bit-identical RunResult counters, for every implementation kind, and
 * changing the seed must (for at least one kind) change the outcome —
 * guarding against a seed that is silently ignored.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "test_util.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

RunConfig
smallConfig(std::uint64_t seed)
{
    RunConfig cfg;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.seed = seed;
    cfg.system = SystemParams::small(4);
    return cfg;
}

void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.impl, b.impl);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.speculatingCycles, b.speculatingCycles);
    EXPECT_EQ(a.aborts, b.aborts);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.breakdown.busy, b.breakdown.busy);
    EXPECT_EQ(a.breakdown.other, b.breakdown.other);
    EXPECT_EQ(a.breakdown.sbFull, b.breakdown.sbFull);
    EXPECT_EQ(a.breakdown.sbDrain, b.breakdown.sbDrain);
    EXPECT_EQ(a.breakdown.violation, b.breakdown.violation);
}

TEST(Determinism, SameSeedBitIdenticalAcrossAllImplKinds)
{
    const Workload& wl = workloadSuite().front();
    for (const ImplKind kind : test::allImplKinds()) {
        SCOPED_TRACE(implKindName(kind));
        const RunResult a = runExperiment(wl, kind, smallConfig(42));
        const RunResult b = runExperiment(wl, kind, smallConfig(42));
        expectIdentical(a, b);
    }
}

TEST(Determinism, SameSeedBitIdenticalAcrossWorkloads)
{
    for (const Workload& wl : workloadSuite()) {
        SCOPED_TRACE(wl.name);
        const RunResult a =
            runExperiment(wl, ImplKind::InvisiSC, smallConfig(7));
        const RunResult b =
            runExperiment(wl, ImplKind::InvisiSC, smallConfig(7));
        expectIdentical(a, b);
    }
}

TEST(Determinism, DifferentSeedsPerturbAtLeastOneCounter)
{
    const Workload& wl = workloadSuite().front();
    bool any_diff = false;
    for (std::uint64_t seed = 1; seed <= 8 && !any_diff; ++seed) {
        const RunResult a =
            runExperiment(wl, ImplKind::ConvTSO, smallConfig(seed));
        const RunResult b =
            runExperiment(wl, ImplKind::ConvTSO, smallConfig(seed + 100));
        any_diff = a.retired != b.retired ||
                   a.breakdown.busy != b.breakdown.busy ||
                   a.breakdown.other != b.breakdown.other;
    }
    EXPECT_TRUE(any_diff) << "seed appears to be ignored by runExperiment";
}

} // namespace
} // namespace invisifence
