/**
 * @file
 * Determinism regression: the simulator must be a pure function of its
 * seed. Two runs of runExperiment with identical RunConfig must produce
 * bit-identical RunResult counters, for every implementation kind, and
 * changing the seed must (for at least one kind) change the outcome —
 * guarding against a seed that is silently ignored.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "test_util.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

RunConfig
smallConfig(std::uint64_t seed)
{
    RunConfig cfg;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.seed = seed;
    cfg.system = SystemParams::small(4);
    return cfg;
}

using test::expectIdenticalResults;

TEST(Determinism, SameSeedBitIdenticalAcrossAllImplKinds)
{
    const Workload& wl = workloadSuite().front();
    for (const ImplKind kind : test::allImplKinds()) {
        SCOPED_TRACE(implKindName(kind));
        const RunResult a = runExperiment(wl, kind, smallConfig(42));
        const RunResult b = runExperiment(wl, kind, smallConfig(42));
        expectIdenticalResults(a, b);
    }
}

TEST(Determinism, SameSeedBitIdenticalAcrossWorkloads)
{
    for (const Workload& wl : workloadSuite()) {
        SCOPED_TRACE(wl.name);
        const RunResult a =
            runExperiment(wl, ImplKind::InvisiSC, smallConfig(7));
        const RunResult b =
            runExperiment(wl, ImplKind::InvisiSC, smallConfig(7));
        expectIdenticalResults(a, b);
    }
}

TEST(Determinism, DifferentSeedsPerturbAtLeastOneCounter)
{
    const Workload& wl = workloadSuite().front();
    bool any_diff = false;
    for (std::uint64_t seed = 1; seed <= 8 && !any_diff; ++seed) {
        const RunResult a =
            runExperiment(wl, ImplKind::ConvTSO, smallConfig(seed));
        const RunResult b =
            runExperiment(wl, ImplKind::ConvTSO, smallConfig(seed + 100));
        any_diff = a.retired != b.retired ||
                   a.breakdown.busy != b.breakdown.busy ||
                   a.breakdown.other != b.breakdown.other;
    }
    EXPECT_TRUE(any_diff) << "seed appears to be ignored by runExperiment";
}

} // namespace
} // namespace invisifence
