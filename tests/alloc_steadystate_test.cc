/** @file Zero-allocation steady state: after warmup, simulating any of
 *  the 10 implementation kinds must perform no heap allocation at all —
 *  the typed pooled event path, Msg slab recycling, MSHR/ROB/store-
 *  buffer pooling, and the directory's recycled transaction map leave
 *  nothing that touches the heap per cycle. The test binary replaces
 *  global operator new/delete with counting versions; on failure it
 *  prints deduplicated backtraces of the offending allocation sites
 *  (link with -rdynamic for symbol names).
 *
 *  Also pins the pooled event path's behavioral invisibility in
 *  fastforward_test.cc style: fastfwd on vs off stays bit-identical for
 *  every kind x seed x workload now that events are pooled and
 *  dispatched through the devirtualized table.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <new>

#if defined(__GLIBC__)
#include <execinfo.h>
#define INVISIFENCE_HAVE_BACKTRACE 1
#endif

#include "core/invisifence.hh"
#include "harness/runner.hh"
#include "test_util.hh"
#include "workload/synthetic.hh"
#include "workload/workloads.hh"

// ---------------------------------------------------------------------
// Counting operator new/delete with allocation-site capture.
// ---------------------------------------------------------------------

namespace {

std::uint64_t g_allocCount = 0;
bool g_captureSites = false;

constexpr int kSiteDepth = 8;
constexpr int kMaxSites = 64;

struct AllocSite
{
    void* frames[kSiteDepth];
    int depth = 0;
    std::uint64_t count = 0;
};

AllocSite g_sites[kMaxSites];
int g_numSites = 0;

void
recordSite()
{
#ifdef INVISIFENCE_HAVE_BACKTRACE
    void* frames[kSiteDepth];
    // Re-entrancy guard: backtrace() may itself allocate on first use.
    static bool in_capture = false;
    if (in_capture)
        return;
    in_capture = true;
    const int depth = backtrace(frames, kSiteDepth);
    in_capture = false;
    for (int s = 0; s < g_numSites; ++s) {
        AllocSite& site = g_sites[s];
        if (site.depth != depth)
            continue;
        bool same = true;
        for (int f = 0; f < depth && same; ++f)
            same = site.frames[f] == frames[f];
        if (same) {
            ++site.count;
            return;
        }
    }
    if (g_numSites < kMaxSites) {
        AllocSite& site = g_sites[g_numSites++];
        site.depth = depth;
        site.count = 1;
        for (int f = 0; f < depth; ++f)
            site.frames[f] = frames[f];
    }
#endif
}

void
dumpSites()
{
#ifdef INVISIFENCE_HAVE_BACKTRACE
    for (int s = 0; s < g_numSites; ++s) {
        AllocSite& site = g_sites[s];
        std::fprintf(stderr, "alloc site %d (%llu allocations):\n", s,
                     static_cast<unsigned long long>(site.count));
        char** symbols = backtrace_symbols(site.frames, site.depth);
        for (int f = 0; f < site.depth; ++f)
            std::fprintf(stderr, "    %s\n",
                         symbols ? symbols[f] : "?");
        std::free(symbols);
    }
#endif
}

} // namespace

// GCC's mismatched-new-delete heuristic cannot see that new and delete
// are replaced as a pair here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void*
operator new(std::size_t size)
{
    ++g_allocCount;
    if (g_captureSites)
        recordSite();
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace invisifence {
namespace {

using test::allImplKinds;
using test::expectIdenticalResults;

/**
 * A small-footprint sharing-heavy workload whose full working set fits
 * the small system's caches, so the warmup window really does converge
 * (every block the run will ever touch gets its functional-memory and
 * directory entries populated before measurement starts).
 */
SyntheticParams
smallParams()
{
    SyntheticParams p;
    p.privateBlocks = 24;
    p.sharedBlocks = 16;
    p.numLocks = 3;
    p.lockDataBlocks = 2;
    p.lockPer64k = 2000;     // heavy locking: plenty of Inv traffic
    p.atomicPer64k = 400;
    p.fencePer64k = 400;
    return p;
}

/** Pre-touch every block the workload can address, so first-touch
 *  functional-memory inserts happen before the measured window. */
void
touchFootprint(System& sys, const SyntheticParams& p)
{
    FunctionalMemory& mem = sys.memory();
    const auto touch_range = [&](Addr base, std::uint32_t blocks) {
        for (std::uint32_t b = 0; b < blocks; ++b)
            mem.writeWord(base + static_cast<Addr>(b) * kBlockBytes, 0);
    };
    for (std::uint32_t t = 0; t < sys.numCores(); ++t)
        touch_range(kPrivateRegion + t * kPrivateStride, p.privateBlocks);
    touch_range(kSharedRegion, p.sharedBlocks);
    for (std::uint32_t l = 0; l < p.numLocks; ++l) {
        touch_range(lockAddr(l), 1);
        touch_range(kLockDataRegion +
                        static_cast<Addr>(l) * p.lockDataBlocks *
                            kBlockBytes,
                    p.lockDataBlocks);
    }
}

TEST(SteadyStateAllocs, ZeroPerCycleAcrossAllImplKinds)
{
    const SyntheticParams params = smallParams();
    for (const ImplKind kind : allImplKinds()) {
        SCOPED_TRACE(implKindName(kind));
        SystemParams sp = SystemParams::small(4);
        std::vector<std::unique_ptr<ThreadProgram>> programs;
        for (std::uint32_t t = 0; t < sp.numCores; ++t) {
            programs.push_back(
                std::make_unique<SyntheticProgram>(params, t, 7));
        }
        System sys(sp, std::move(programs), kind);
        warmSystem(sys, params);
        touchFootprint(sys, params);

        // Warmup: long enough for every pool (events, MSHRs, directory
        // transaction nodes, scratch buffers, ring capacities) to reach
        // its high-water mark and for the eviction/abort machinery to
        // have fired.
        sys.run(200000);

        const std::uint64_t before = g_allocCount;
        g_numSites = 0;
        g_captureSites = true;
        sys.run(8000);
        g_captureSites = false;
        const std::uint64_t after = g_allocCount;

        if (after != before)
            dumpSites();
        EXPECT_EQ(after - before, 0u)
            << (after - before) << " heap allocations in an 8000-cycle "
            << "steady-state window under " << implKindName(kind);
    }
}

TEST(SteadyStateAllocs, ZeroPerCycleWithFaultInjectionEnabled)
{
    // The fault machinery rides the hottest paths in the simulator: the
    // injector decides every Network::send, retry timers arm on every
    // request, the directory tags a dedup record per completed
    // transaction, and the watchdog check runs once per loop iteration.
    // All of it must be allocation-free at steady state. The dedup ring
    // is shrunk so it wraps (and its RecyclingMap pool warms) inside
    // the warmup window; production capacity only delays the wrap.
    const SyntheticParams params = smallParams();
    for (const ImplKind kind : {ImplKind::ConvSC, ImplKind::Continuous}) {
        SCOPED_TRACE(implKindName(kind));
        SystemParams sp = SystemParams::small(4);
        sp.fault.seed = 11;
        sp.fault.dropPer64k = 1000;
        sp.fault.delayPer64k = 4000;
        sp.fault.dupPer64k = 1000;
        sp.agent.retryTimeout = 1000;
        sp.agent.retryBackoffCap = 16000;
        sp.dir.dedupCapacity = 256;
        sp.watchdog = 150000;
        std::vector<std::unique_ptr<ThreadProgram>> programs;
        for (std::uint32_t t = 0; t < sp.numCores; ++t) {
            programs.push_back(
                std::make_unique<SyntheticProgram>(params, t, 7));
        }
        System sys(sp, std::move(programs), kind);
        warmSystem(sys, params);
        touchFootprint(sys, params);
        sys.run(200000);

        const std::uint64_t before = g_allocCount;
        g_numSites = 0;
        g_captureSites = true;
        sys.run(8000);
        g_captureSites = false;
        const std::uint64_t after = g_allocCount;

        if (after != before)
            dumpSites();
        EXPECT_EQ(after - before, 0u)
            << (after - before) << " heap allocations in an 8000-cycle "
            << "faults-enabled window under " << implKindName(kind);
    }
}

TEST(SteadyStateAllocs, ZeroPerCycleAt64And256Cores)
{
    // The scale work (SharerSet entries, sharded wake tracking, the
    // derived torus) must not reintroduce per-cycle heap traffic at the
    // machine sizes it enables. One conventional and one speculative
    // kind keep the runtime bounded; the 4-core test above already
    // sweeps all ten, locks included. Locks are deliberately absent
    // here: hundreds of cores spinning on a shared lock set ever-deeper
    // waiter-chain depth records (each one pool-growth allocation) for
    // millions of cycles — a statistical tail of the workload, not a
    // per-cycle path. The wide read-shared footprint below still drives
    // multi-word SharerSet fan-out, the sharded wake tracking, and
    // cross-torus traffic, which are the paths this test pins.
    SyntheticParams params = smallParams();
    params.sharedBlocks = 64;
    params.numLocks = 0;
    params.lockPer64k = 0;
    params.atomicPer64k = 0;
    for (const std::uint32_t cores : {64u, 256u}) {
        for (const ImplKind kind :
             {ImplKind::ConvTSO, ImplKind::Continuous}) {
            SCOPED_TRACE(std::to_string(cores) + " cores, " +
                         implKindName(kind));
            SystemParams sp = SystemParams::small(cores);
            std::vector<std::unique_ptr<ThreadProgram>> programs;
            for (std::uint32_t t = 0; t < sp.numCores; ++t) {
                programs.push_back(
                    std::make_unique<SyntheticProgram>(params, t, 7));
            }
            System sys(sp, std::move(programs), kind);
            warmSystem(sys, params);
            touchFootprint(sys, params);
            // Pool high-water marks converge slowly on the big machines
            // (more in-flight messages, waiters, and queued directory
            // requests can coexist, and each new concurrency record is
            // one pool growth): warm in chunks and demand a measured
            // 3000-cycle window with zero allocations. A residual
            // high-water record may fall in a warmup chunk — that is
            // amortized pool growth, not per-cycle traffic — but a
            // regression to per-cycle allocation dirties every window
            // and fails all rounds.
            bool clean_window = false;
            for (int round = 0; round < 12 && !clean_window; ++round) {
                sys.run(200000);
                const std::uint64_t before = g_allocCount;
                g_numSites = 0;
                g_captureSites = true;
                sys.run(3000);
                g_captureSites = false;
                clean_window = g_allocCount == before;
            }
            if (!clean_window)
                dumpSites();
            EXPECT_TRUE(clean_window)
                << "no allocation-free 3000-cycle steady-state window "
                << "in 2.4M post-warmup cycles at " << cores
                << " cores under " << implKindName(kind);
        }
    }
}

// ---------------------------------------------------------------------
// Pooled event path equivalence: kinds x seeds x workloads.
// ---------------------------------------------------------------------

RunConfig
eqConfig(std::uint64_t seed, int fast_forward)
{
    RunConfig cfg;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1800;
    cfg.seed = seed;
    cfg.system = SystemParams::small(4);
    cfg.system.fastForward = fast_forward;
    return cfg;
}

TEST(PooledEvents, BitIdenticalAcrossKindsSeedsAndWorkloads)
{
    for (const Workload& wl : workloadSuite()) {
        for (const ImplKind kind : allImplKinds()) {
            for (const std::uint64_t seed : {3ull, 91ull}) {
                SCOPED_TRACE(wl.name + "/" + implKindName(kind) +
                             "/seed=" + std::to_string(seed));
                const RunResult off =
                    runExperiment(wl, kind, eqConfig(seed, 0));
                const RunResult on =
                    runExperiment(wl, kind, eqConfig(seed, 1));
                expectIdenticalResults(off, on);
            }
        }
    }
}

} // namespace
} // namespace invisifence
