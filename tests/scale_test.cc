/** @file Scale suite: the machine past 32 cores.
 *
 *  The directory used to track sharers in a bare uint32 (`1u << n` is
 *  undefined behavior at n >= 32) and the torus hardcoded 4x4, so
 *  nothing above 16 cores was trustworthy. This file pins the lifted
 *  ceiling: SharerSet semantics (including the fatal bounds check),
 *  derived torus dimensions and hop distances at 16 and 64 nodes, and
 *  the full correctness battery — determinism, the litmus matrix, and
 *  fastfwd on/off bit-identity — at 64 cores across every
 *  implementation kind, plus shard-level quiescence actually skipping
 *  dormant shards on a 256-core mostly-idle machine.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "coh/network.hh"
#include "coh/sharer_set.hh"
#include "harness/runner.hh"
#include "sim/event_queue.hh"
#include "test_util.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

using test::allImplKinds;
using test::expectIdenticalResults;
using test::makeScripted;
using test::modelOf;

// ---------------------------------------------------------------------
// SharerSet semantics.
// ---------------------------------------------------------------------

TEST(SharerSet, StartsEmptyAndTracksMembership)
{
    SharerSet s;
    EXPECT_TRUE(s.none());
    EXPECT_EQ(s.count(), 0u);
    s.set(0);
    s.set(31);
    s.set(32);    // first bit the old uint32 mask could not hold
    s.set(255);
    EXPECT_TRUE(s.any());
    EXPECT_EQ(s.count(), 4u);
    EXPECT_TRUE(s.test(32));
    EXPECT_FALSE(s.test(33));
    s.clear(32);
    EXPECT_FALSE(s.test(32));
    EXPECT_EQ(s.count(), 3u);
    s.reset();
    EXPECT_TRUE(s.none());
}

TEST(SharerSet, ForEachVisitsAscendingAcrossWords)
{
    SharerSet s;
    const std::vector<NodeId> members = {3, 31, 32, 63, 64, 200, 255};
    for (const NodeId n : members)
        s.set(n);
    std::vector<NodeId> seen;
    s.forEach([&](NodeId n) { seen.push_back(n); });
    EXPECT_EQ(seen, members);   // ascending order is a golden-stability
                                // contract, not a convenience
}

TEST(SharerSet, FirstNFillsExactPrefix)
{
    for (const std::uint32_t n : {1u, 16u, 32u, 33u, 64u, 100u, 256u}) {
        const SharerSet s = SharerSet::firstN(n);
        EXPECT_EQ(s.count(), n);
        EXPECT_TRUE(s.test(n - 1));
        if (n < SharerSet::kMaxNodes) {
            EXPECT_FALSE(s.test(n));
        }
    }
}

TEST(SharerSet, SingleAndEquality)
{
    const SharerSet a = SharerSet::single(200);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_TRUE(a.test(200));
    SharerSet b;
    b.set(200);
    EXPECT_EQ(a, b);
    b.set(0);
    EXPECT_NE(a, b);
}

TEST(SharerSetDeathTest, OutOfRangeNodeIsFatalInEveryBuild)
{
    // The bug this type exists to fix: `1u << 32` silently truncated.
    // The check is IF_FATAL, not assert, so it fires in the Release
    // builds the tier-1 suite runs.
    SharerSet s;
    EXPECT_DEATH(s.set(SharerSet::kMaxNodes),
                 "exceeds SharerSet capacity");
    EXPECT_DEATH(s.clear(SharerSet::kMaxNodes),
                 "exceeds SharerSet capacity");
}

// ---------------------------------------------------------------------
// Parametric torus: derived dimensions and hop distances.
// ---------------------------------------------------------------------

TEST(TorusDims, NearSquareDerivationFromNodeCount)
{
    const auto derived = [](std::uint32_t nodes) {
        return torusDims(NetworkParams{}, nodes);
    };
    EXPECT_EQ(derived(16).x, 4u);
    EXPECT_EQ(derived(16).y, 4u);
    EXPECT_EQ(derived(64).x, 8u);
    EXPECT_EQ(derived(64).y, 8u);
    EXPECT_EQ(derived(256).x, 16u);
    EXPECT_EQ(derived(256).y, 16u);
    EXPECT_EQ(derived(12).x, 4u);   // non-square counts still tile
    EXPECT_EQ(derived(12).y, 3u);
    EXPECT_EQ(derived(2).x, 2u);
    EXPECT_EQ(derived(2).y, 1u);
    EXPECT_EQ(derived(1).x, 1u);
    EXPECT_EQ(derived(1).y, 1u);
}

TEST(TorusDims, OneExplicitDimensionDividesTheOtherOut)
{
    NetworkParams p;
    p.dimX = 16;
    const TorusDims a = torusDims(p, 64);
    EXPECT_EQ(a.x, 16u);
    EXPECT_EQ(a.y, 4u);
    NetworkParams q;
    q.dimY = 2;
    const TorusDims b = torusDims(q, 64);
    EXPECT_EQ(b.x, 32u);
    EXPECT_EQ(b.y, 2u);
}

TEST(TorusDimsDeathTest, NonRectangularDimensionsAreFatal)
{
    // The old code silently computed wrong coordinates when
    // dimX * dimY != numNodes; now it refuses to build.
    NetworkParams p;
    p.dimX = 5;
    p.dimY = 5;
    EXPECT_DEATH(torusDims(p, 16), "does not tile");
    NetworkParams q;
    q.dimX = 3;   // 3 does not divide 16
    EXPECT_DEATH(torusDims(q, 16), "does not tile");
}

TEST(TorusHops, KnownDistancesAndSymmetryAt16And64Nodes)
{
    for (const std::uint32_t nodes : {16u, 64u}) {
        SCOPED_TRACE("nodes=" + std::to_string(nodes));
        EventQueue eq;
        Network net(eq, NetworkParams{}, nodes);
        const std::uint32_t dim = nodes == 16 ? 4 : 8;
        EXPECT_EQ(net.dimX(), dim);
        EXPECT_EQ(net.dimY(), dim);
        // Known distances on the derived square torus.
        EXPECT_EQ(net.hops(0, 0), 0u);
        EXPECT_EQ(net.hops(0, 1), 1u);
        EXPECT_EQ(net.hops(0, dim - 1), 1u);         // x wraparound
        EXPECT_EQ(net.hops(0, dim), 1u);             // one row down
        EXPECT_EQ(net.hops(0, nodes - dim), 1u);     // y wraparound
        EXPECT_EQ(net.hops(0, dim + 1), 2u);
        // The farthest node sits half the ring away in both axes.
        const std::uint32_t far = (dim / 2) * dim + dim / 2;
        EXPECT_EQ(net.hops(0, far), dim);
        // Symmetry and range over every pair.
        for (NodeId a = 0; a < nodes; ++a) {
            for (NodeId b = 0; b < nodes; ++b) {
                const std::uint32_t h = net.hops(a, b);
                EXPECT_EQ(h, net.hops(b, a));
                EXPECT_LE(h, dim);   // 2 * (dim/2) on a square torus
                EXPECT_EQ(h == 0, a == b);
            }
        }
    }
}

TEST(TorusHops, SixtyFourNodeDistancesNeedTheDerivedDims)
{
    // Regression for the mis-mapping bug: with the old hardcoded 4x4
    // coordinate math, node 63 of a 64-node machine landed at (3, 15)
    // of a 4-wide torus and hops(0, 63) came out 2 + min(15, ...) —
    // nonsense. On the correct 8x8 torus it is 1 + 1.
    EventQueue eq;
    Network net(eq, NetworkParams{}, 64);
    EXPECT_EQ(net.hops(0, 63), 2u);
    EXPECT_EQ(net.hops(0, 36), 8u);   // (4,4): the 8x8 antipode
}

// ---------------------------------------------------------------------
// Correctness battery at 64 cores, across all 10 implementation kinds.
// ---------------------------------------------------------------------

RunConfig
scaleConfig(std::uint64_t seed, int fast_forward)
{
    RunConfig cfg;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1200;
    cfg.seed = seed;
    cfg.system = SystemParams::small(64);
    cfg.system.fastForward = fast_forward;
    return cfg;
}

TEST(Scale64, DeterministicAcrossAllImplKinds)
{
    // 64 cores exercises the multi-word sharer path and the derived
    // 64x1 small-system torus; repeat runs must be bit-identical.
    const Workload& wl = serverSuite().front();   // ZipfKV: hot keys
    for (const ImplKind kind : allImplKinds()) {
        SCOPED_TRACE(implKindName(kind));
        const RunResult a = runExperiment(wl, kind, scaleConfig(5, 1));
        const RunResult b = runExperiment(wl, kind, scaleConfig(5, 1));
        expectIdenticalResults(a, b);
    }
}

TEST(Scale64, FastForwardStaysBitIdentical)
{
    for (const ImplKind kind : allImplKinds()) {
        SCOPED_TRACE(implKindName(kind));
        const RunResult off = runExperiment(serverSuite().front(), kind,
                                            scaleConfig(9, 0));
        const RunResult on = runExperiment(serverSuite().front(), kind,
                                           scaleConfig(9, 1));
        expectIdenticalResults(off, on);
    }
}

/** Run @p test on a 64-core machine (idle cores halt immediately). */
std::unique_ptr<System>
runLitmus64(const LitmusTest& test, ImplKind kind, std::uint32_t jitter)
{
    std::vector<std::vector<ScriptOp>> scripts;
    std::uint32_t t = 0;
    for (const auto& thread : test.threads) {
        std::vector<ScriptOp> s;
        for (const auto& th : test.threads)
            for (const auto& op : th)
                if (isMemOp(op.inst.type))
                    s.push_back(opLoad(op.inst.addr));
        s.push_back(opAlu(200));
        const std::uint32_t delay = (jitter * (t + 3) * 7) % 40;
        for (std::uint32_t d = 0; d < delay; ++d)
            s.push_back(opAlu(1));
        for (const auto& op : thread)
            s.push_back(op);
        scripts.push_back(std::move(s));
        ++t;
    }
    auto sys = makeScripted(std::move(scripts), kind,
                            SystemParams::small(64));
    EXPECT_TRUE(sys->runUntilDone(500000));
    return sys;
}

std::vector<std::uint64_t>
observe(System& sys, const LitmusTest& test)
{
    std::vector<std::uint64_t> out;
    for (const auto& p : test.probes)
        out.push_back(test::lastLoadOf(sys, p.thread, p.addr));
    return out;
}

TEST(Scale64, LitmusMatrixForbiddenOutcomesNeverAppear)
{
    // The SB/MP/LB/IRIW matrix of litmus_test.cc, re-run on a 64-core
    // machine: the ordering guarantees must not depend on the machine
    // being small. Rows mirror litmus_test.cc's weakest-allowing table.
    struct Row
    {
        const char* name;
        LitmusTest (*make)();
        bool (*relaxed)(const std::vector<std::uint64_t>&);
        std::optional<Model> weakestAllowing;
    };
    const std::vector<Row> rows = {
        {"SB", litmusSb,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 0 && r[1] == 0;
         },
         Model::TSO},
        {"MP", litmusMp,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 0;
         },
         Model::RMO},
        {"LB", litmusLb,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 1;
         },
         std::nullopt},
        {"IRIW", litmusIriw,
         [](const std::vector<std::uint64_t>& r) {
             return r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0;
         },
         std::nullopt},
    };
    for (const ImplKind kind : allImplKinds()) {
        const Model model = modelOf(kind);
        for (const Row& row : rows) {
            if (row.weakestAllowing &&
                static_cast<int>(model) >=
                    static_cast<int>(*row.weakestAllowing)) {
                continue;   // relaxed outcome is legal for this kind
            }
            SCOPED_TRACE(std::string(implKindName(kind)) + "/" + row.name);
            const LitmusTest t = row.make();
            for (std::uint32_t i = 0; i < 4; ++i) {
                auto sys = runLitmus64(t, kind, i);
                EXPECT_FALSE(row.relaxed(observe(*sys, t)))
                    << "iteration " << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shard-level quiescence on a mostly-dormant 256-core machine.
// ---------------------------------------------------------------------

TEST(ShardQuiescence, DormantShardsAreSkippedAt256Cores)
{
    // One busy core on an otherwise idle 256-core machine: the
    // fast-forward loop must handle the 15 all-dormant shards with one
    // compare each instead of walking their 240 cores. The skip counter
    // is the guard against the optimization silently disabling itself
    // (fastforward_test.cc's SkipsCyclesOnStallDominatedRuns pattern).
    SystemParams sp = SystemParams::small(256);
    sp.fastForward = 1;
    std::vector<std::vector<ScriptOp>> scripts(256);
    for (std::uint32_t i = 0; i < 300; ++i)
        scripts[0].push_back(opAlu(1));   // keeps shard 0 ticking
    auto sys = makeScripted(std::move(scripts), ImplKind::ConvSC, sp);
    ASSERT_TRUE(sys->runUntilDone(100000));
    EXPECT_GT(sys->statShardSkips, 0u);
    EXPECT_TRUE(sys->fastForwardEnabled());
}

TEST(ShardQuiescence, SkippingIsInvisibleAt256Cores)
{
    // Shard skipping must be a pure optimization: a sharing-heavy run
    // with it (fastfwd on) and without (legacy loop) stays
    // bit-identical even at 256 cores.
    const Workload& wl = serverSuite().back();   // ReaderHotLock
    RunConfig cfg;
    cfg.warmupCycles = 150;
    cfg.measureCycles = 700;
    cfg.seed = 3;
    cfg.system = SystemParams::small(256);
    cfg.system.fastForward = 0;
    const RunResult off = runExperiment(wl, ImplKind::InvisiSC, cfg);
    cfg.system.fastForward = 1;
    const RunResult on = runExperiment(wl, ImplKind::InvisiSC, cfg);
    expectIdenticalResults(off, on);
}

} // namespace
} // namespace invisifence
