/**
 * @file
 * Planted-wedge fixtures, run as WILL_FAIL ctest entries.
 *
 * Each mode constructs a system that can never finish and checks that
 * the corresponding safety net converts the silent hang into a fast,
 * diagnosed failure (process exit code 1 via IF_FATAL):
 *
 *  - "deadlock": the first coherence request is dropped with retries
 *    disabled — an unrecoverable loss the rate-based injector refuses
 *    to create — so the system wedges with work pending. The liveness
 *    watchdog must fire its transaction dump and abort.
 *  - "maxcycles": a core spins forever on a value that never arrives
 *    (endless progress, so the watchdog correctly stays quiet) and
 *    INVISIFENCE_MAX_CYCLES must cut the run short with a fatal.
 *
 * A plain main (not gtest): the "maxcycles" mode must set the
 * environment knob before anything parses benchEnv(), which a gtest
 * death test cannot guarantee once the parent process warmed the
 * magic static.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "harness/system.hh"
#include "workload/litmus.hh"

using namespace invisifence;

namespace {

std::unique_ptr<System>
build(const SystemParams& params, std::vector<std::vector<ScriptOp>> scripts,
      ImplKind kind)
{
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (auto& s : scripts)
        programs.push_back(std::make_unique<ScriptedProgram>(std::move(s)));
    return std::make_unique<System>(params, std::move(programs), kind);
}

int
runDeadlock()
{
    FaultPlan plan;
    plan.oneShots.push_back({1, FaultPlan::Kind::Drop, 0});
    SystemParams params = SystemParams::small(2);
    params.fault = plan;   // retryTimeout stays 0: no recovery path
    params.watchdog = 20000;
    auto sys = build(params,
                     {{opStore(0x0900'0000, 1), opLoad(0x0900'0000)},
                      {opStore(0x0900'0040, 2)}},
                     ImplKind::ConvSC);
    // Wedged: the watchdog must fatal long before this budget.
    const bool done = sys->runUntilDone(50'000'000);
    std::fprintf(stderr,
                 "fixture error: watchdog never fired (done=%d, now=%llu)\n",
                 done ? 1 : 0,
                 static_cast<unsigned long long>(sys->now()));
    return 0;   // reaching here at all is the failure (WILL_FAIL inverts)
}

int
runMaxCycles()
{
    // Must precede the first benchEnv() parse anywhere in the process.
    setenv("INVISIFENCE_MAX_CYCLES", "30000", 1);
    SystemParams params = SystemParams::small(2);
    auto sys = build(params,
                     {{opSpinUntilEq(0x0900'0000, 7)},   // never satisfied
                      {opStore(0x0900'0040, 2)}},
                     ImplKind::InvisiSC);
    const bool done = sys->runUntilDone(50'000'000);
    std::fprintf(stderr,
                 "fixture error: budget never tripped (done=%d, now=%llu)\n",
                 done ? 1 : 0,
                 static_cast<unsigned long long>(sys->now()));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 2 && std::strcmp(argv[1], "deadlock") == 0)
        return runDeadlock();
    if (argc == 2 && std::strcmp(argv[1], "maxcycles") == 0)
        return runMaxCycles();
    std::fprintf(stderr, "usage: %s deadlock|maxcycles\n", argv[0]);
    return 0;   // usage error must also read as "did not fail as planned"
}
