/** @file Sweep-equivalence suite: the parallel sharded runner must be a
 *  drop-in replacement for the serial loop it deleted. For the same grid
 *  the RunResults must be bit-identical to serial execution for 1, 2,
 *  and 8 worker threads (any divergence means a worker leaked state into
 *  another's simulator instance), and the generic map() fan-out must
 *  preserve index order and propagate exceptions. Runs under the
 *  ASan/UBSan unit tier; INVISIFENCE_BENCH_CYCLES scales the grid for
 *  the stress tier. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "harness/sweep.hh"
#include "test_util.hh"
#include "workload/workloads.hh"

namespace invisifence {
namespace {

RunConfig
smallConfig()
{
    RunConfig cfg;
    // Stress tier raises the window via INVISIFENCE_BENCH_CYCLES; the
    // default keeps the unit tier fast.
    const Cycle cycles =
        benchEnv().measureCycles > 0 ? benchEnv().measureCycles : 1000;
    cfg.warmupCycles = cycles / 5;
    cfg.measureCycles = cycles;
    cfg.seed = 5;
    cfg.system = SystemParams::small(4);
    return cfg;
}

std::vector<SweepPoint>
smallGrid(std::uint32_t numSeeds)
{
    const std::vector<Workload> workloads = {workloadSuite()[0],
                                             workloadSuite()[3]};
    const std::vector<ImplKind> kinds = {
        ImplKind::ConvSC, ImplKind::ConvTSO, ImplKind::InvisiSC,
        ImplKind::Continuous};
    return sweepGrid(workloads, kinds, smallConfig(), numSeeds);
}

using test::expectIdenticalResults;

TEST(Sweep, ParallelBitIdenticalToSerialFor1And2And8Workers)
{
    const std::vector<SweepPoint> grid = smallGrid(2);
    std::vector<RunResult> serial;
    for (const SweepPoint& p : grid)
        serial.push_back(runExperiment(p.workload, p.kind, p.cfg));

    for (const std::uint32_t jobs : {1u, 2u, 8u}) {
        SCOPED_TRACE(testing::Message() << jobs << " workers");
        const SweepRunner runner(jobs);
        EXPECT_EQ(runner.jobs(), jobs);
        const std::vector<RunResult> parallel = runner.run(grid);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE(testing::Message() << "grid point " << i);
            expectIdenticalResults(parallel[i], serial[i]);
        }
    }
}

TEST(Sweep, RepeatedParallelRunsAreBitIdentical)
{
    const std::vector<SweepPoint> grid = smallGrid(1);
    const SweepRunner runner(8);
    const std::vector<RunResult> a = runner.run(grid);
    const std::vector<RunResult> b = runner.run(grid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdenticalResults(a[i], b[i]);
}

TEST(Sweep, GridOrderIsWorkloadMajorThenKindThenSeed)
{
    const std::vector<SweepPoint> grid = smallGrid(2);
    ASSERT_EQ(grid.size(), 2u * 4u * 2u);
    EXPECT_EQ(grid[0].workload.name, workloadSuite()[0].name);
    EXPECT_EQ(grid[0].kind, ImplKind::ConvSC);
    EXPECT_EQ(grid[0].cfg.seed, 5u);
    EXPECT_EQ(grid[1].cfg.seed, 6u);
    EXPECT_EQ(grid[2].kind, ImplKind::ConvTSO);
    EXPECT_EQ(grid[8].workload.name, workloadSuite()[3].name);
}

TEST(Sweep, RunStatsGroupsSeedRunsPerPoint)
{
    const std::vector<Workload> workloads = {workloadSuite()[0]};
    const std::vector<ImplKind> kinds = {ImplKind::ConvSC,
                                         ImplKind::InvisiSC};
    const SweepRunner runner(2);
    const std::vector<SweepStats> stats =
        runner.runStats(workloads, kinds, smallConfig(), 3);
    ASSERT_EQ(stats.size(), 2u);
    for (const SweepStats& s : stats) {
        EXPECT_EQ(s.workload, workloads[0].name);
        ASSERT_EQ(s.runs.size(), 3u);
        EXPECT_EQ(s.runs[0].seed, 5u);
        EXPECT_EQ(s.runs[1].seed, 6u);
        EXPECT_EQ(s.runs[2].seed, 7u);
        EXPECT_EQ(s.throughput().n, 3u);
        EXPECT_EQ(&s.primary(), &s.runs[0]);
    }
    EXPECT_EQ(stats[0].impl, implKindName(ImplKind::ConvSC));
    EXPECT_EQ(stats[1].impl, implKindName(ImplKind::InvisiSC));
}

TEST(Sweep, MapPreservesIndexOrderUnderContention)
{
    const SweepRunner runner(8);
    const std::vector<std::uint64_t> out =
        runner.map(500, [](std::size_t i) {
            return static_cast<std::uint64_t>(i) * 31 + 7;
        });
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * 31 + 7);
}

TEST(Sweep, MapRethrowsWorkerExceptionOnCaller)
{
    const SweepRunner runner(4);
    EXPECT_THROW(runner.map(64,
                            [](std::size_t i) -> int {
                                if (i == 37)
                                    throw std::runtime_error("boom");
                                return static_cast<int>(i);
                            }),
                 std::runtime_error);
}

TEST(Sweep, EstimateMatchesHandComputedStatistics)
{
    // {1,2,3,4}: mean 2.5, sample stddev sqrt(5/3), t(3)=3.182.
    const Estimate e = estimateOf({1, 2, 3, 4});
    EXPECT_EQ(e.n, 4u);
    EXPECT_NEAR(e.mean, 2.5, 1e-12);
    EXPECT_NEAR(e.stddev, std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_NEAR(e.ci95, 3.182 * std::sqrt(5.0 / 3.0) / 2.0, 1e-9);

    const Estimate one = estimateOf({42.0});
    EXPECT_EQ(one.n, 1u);
    EXPECT_EQ(one.mean, 42.0);
    EXPECT_EQ(one.stddev, 0.0);
    EXPECT_EQ(one.ci95, 0.0);

    const Estimate none = estimateOf({});
    EXPECT_EQ(none.n, 0u);
    EXPECT_EQ(none.mean, 0.0);
}

TEST(Sweep, JsonOutputIsDeterministicAndTagged)
{
    const std::vector<Workload> workloads = {workloadSuite()[0]};
    const std::vector<ImplKind> kinds = {ImplKind::ConvSC};
    const RunConfig cfg = smallConfig();
    const SweepRunner runner(2);
    const std::vector<SweepStats> stats =
        runner.runStats(workloads, kinds, cfg, 2);

    std::ostringstream a, b;
    writeSweepJson(a, stats, cfg, 2);
    writeSweepJson(b, stats, cfg, 2);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("\"schema\": \"invisifence-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(a.str().find("\"seeds\": 2"), std::string::npos);
    EXPECT_NE(a.str().find("\"workload\": \"" + workloads[0].name + "\""),
              std::string::npos);
}

TEST(Sweep, JsonSchemaV2AddsMemoryCountersV1Unchanged)
{
    // Hand-built stats with known counter values: schema 1 (the
    // committed-golden revision) must not mention the v2 fields at
    // all; schema 2 must carry them verbatim.
    SweepStats s;
    s.workload = "W";
    s.impl = "sc";
    RunResult r;
    r.seed = 7;
    r.retired = 100;
    r.coreCycles = 400;
    r.mshrFullStalls = 13;
    r.dirStaleWritebacks = 5;
    r.dirQueuedRequests = 29;
    s.runs.push_back(r);

    const RunConfig cfg = smallConfig();
    std::ostringstream v1, v2;
    writeSweepJson(v1, {s}, cfg, 1, 1);
    writeSweepJson(v2, {s}, cfg, 1, 2);

    EXPECT_NE(v1.str().find("\"schema\": \"invisifence-sweep-v1\""),
              std::string::npos);
    EXPECT_EQ(v1.str().find("mshr_full_stalls"), std::string::npos);
    EXPECT_EQ(v1.str().find("dir_stale_writebacks"), std::string::npos);
    EXPECT_EQ(v1.str().find("dir_queued_requests"), std::string::npos);

    EXPECT_NE(v2.str().find("\"schema\": \"invisifence-sweep-v2\""),
              std::string::npos);
    EXPECT_NE(v2.str().find("\"mshr_full_stalls\": 13"),
              std::string::npos);
    EXPECT_NE(v2.str().find("\"dir_stale_writebacks\": 5"),
              std::string::npos);
    EXPECT_NE(v2.str().find("\"dir_queued_requests\": 29"),
              std::string::npos);
}

} // namespace
} // namespace invisifence
