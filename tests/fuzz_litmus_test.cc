/** @file Litmus fuzzer: randomized model-strength monotonicity testing
 *  in the mongo/WiredTiger randomized-testing tradition.
 *
 *  A seeded RNG generates small straight-line multi-threaded programs
 *  (2-4 threads, 3-6 ops each, loads/stores/fences/CAS over 2-3 shared
 *  words, every written value globally unique). Each program runs under
 *  all 10 implementation kinds across several deterministic timing
 *  jitters, sharded over the SweepRunner pool, and every observed
 *  outcome is checked against an exhaustive oracle of the kind's model:
 *
 *   - SC-enforcing kinds: outcome must be in the exhaustively
 *     enumerated set of interleaving (SC) outcomes.
 *   - TSO kinds: outcome must be in the operational-TSO set (FIFO store
 *     buffer with forwarding, fences/atomics drain). SC ⊆ TSO by
 *     construction, which the suite also asserts — so outcomes observed
 *     under a stronger model are reachable under every weaker one.
 *   - RMO kinds: every loaded value must have provenance (initial zero
 *     or some value actually written to that address).
 *   - All kinds: single-location coherence — with unique store values a
 *     thread that loads v1, then v2 != v1, can never load v1 again
 *     (CoRR would require the coherence order to cycle).
 *
 *  INVISIFENCE_FUZZ_PROGRAMS scales the program count (default 200;
 *  the unit tier runs a reduced count, the stress tier the full one).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "harness/sweep.hh"
#include "sim/rng.hh"
#include "test_util.hh"

namespace invisifence {
namespace {

using test::allImplKinds;
using test::makeScripted;
using test::modelOf;
using test::taddr;

constexpr std::uint32_t kJitters = 4;

// ---- random program generation -----------------------------------------

/** Oracle-friendly op mirror (Alu ops are timing-only, omitted). */
struct FuzzOp
{
    OpType type = OpType::Nop;
    std::uint8_t addr = 0;     //!< shared-address index
    std::uint8_t value = 0;    //!< store / CAS-new value id
    std::uint8_t expect = 0;   //!< CAS comparand value id
};

struct FuzzProgram
{
    std::uint64_t seed = 0;
    std::uint32_t numThreads = 0;
    std::uint32_t numAddrs = 0;
    std::vector<std::vector<FuzzOp>> body;        //!< oracle view
    std::vector<std::vector<ScriptOp>> scripts;   //!< simulator view
    /** (thread, addr-index) pairs probed via the thread's last load. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> probes;
    /** Value ids ever written (by store or CAS) per address index. */
    std::vector<std::vector<std::uint8_t>> written;
};

Addr
fuzzAddr(std::uint32_t i)
{
    return taddr(100 + i);
}

FuzzProgram
generateProgram(std::uint64_t seed)
{
    Rng rng(seed);
    FuzzProgram p;
    p.seed = seed;
    p.numThreads = 2 + static_cast<std::uint32_t>(rng.below(3));
    p.numAddrs = 2 + static_cast<std::uint32_t>(rng.below(2));
    p.written.assign(p.numAddrs, {});
    std::uint8_t next_value = 1;
    for (std::uint32_t t = 0; t < p.numThreads; ++t) {
        std::vector<FuzzOp> body;
        std::vector<ScriptOp> script;
        const std::uint32_t ops =
            3 + static_cast<std::uint32_t>(rng.below(4));
        for (std::uint32_t o = 0; o < ops; ++o) {
            const std::uint64_t roll = rng.below(100);
            const std::uint8_t a =
                static_cast<std::uint8_t>(rng.below(p.numAddrs));
            FuzzOp op;
            op.addr = a;
            if (roll < 35) {
                op.type = OpType::Load;
                script.push_back(opLoad(fuzzAddr(a)));
            } else if (roll < 70) {
                op.type = OpType::Store;
                op.value = next_value++;
                p.written[a].push_back(op.value);
                script.push_back(opStore(fuzzAddr(a), op.value));
            } else if (roll < 80) {
                op.type = OpType::Fence;
                script.push_back(opFence());
            } else if (roll < 90) {
                op.type = OpType::Cas;
                // Comparand: zero or a value some op writes to this
                // address, so the CAS plausibly succeeds in some runs.
                const std::vector<std::uint8_t>& w = p.written[a];
                op.expect = w.empty()
                                ? 0
                                : (rng.chancePermille(300)
                                       ? 0
                                       : w[rng.below(w.size())]);
                op.value = next_value++;
                p.written[a].push_back(op.value);
                script.push_back(
                    opCas(fuzzAddr(a), op.expect, op.value));
            } else {
                // Timing-only ALU work; invisible to the oracle.
                script.push_back(opAlu(
                    static_cast<std::uint8_t>(1 + rng.below(8))));
                continue;
            }
            body.push_back(op);
        }
        p.body.push_back(std::move(body));
        p.scripts.push_back(std::move(script));
    }
    for (std::uint32_t t = 0; t < p.numThreads; ++t) {
        for (std::uint32_t a = 0; a < p.numAddrs; ++a) {
            const bool has_load = std::any_of(
                p.body[t].begin(), p.body[t].end(),
                [&](const FuzzOp& op) {
                    return op.type == OpType::Load && op.addr == a;
                });
            if (has_load)
                p.probes.emplace_back(t, a);
        }
    }
    return p;
}

// ---- exhaustive SC / operational-TSO oracle ----------------------------

using Outcome = std::vector<std::uint64_t>;

/**
 * Exhaustive reachable-outcome enumeration. SC mode interleaves whole
 * ops; TSO mode adds a per-thread FIFO store buffer (loads forward from
 * the youngest matching entry, fences and CAS require an empty buffer,
 * drains interleave as separate transitions). States are memoized on
 * (pc, drained-count, memory, probe results), which is exact because
 * programs are straight-line.
 */
class OutcomeEnumerator
{
  public:
    OutcomeEnumerator(const FuzzProgram& p, bool tso)
        : p_(p), tso_(tso)
    {
        for (std::uint32_t t = 0; t < p.numThreads; ++t) {
            stores_.emplace_back();
            for (const FuzzOp& op : p.body[t])
                if (op.type == OpType::Store)
                    stores_[t].push_back(op);
        }
        // Index of each probe's last matching load per thread.
        for (const auto& [t, a] : p.probes) {
            std::size_t last = 0;
            for (std::size_t i = 0; i < p.body[t].size(); ++i)
                if (p.body[t][i].type == OpType::Load &&
                    p.body[t][i].addr == a)
                    last = i;
            probe_op_.emplace_back(t, last);
        }
    }

    std::set<Outcome>
    enumerate()
    {
        State s;
        s.pc.assign(p_.numThreads, 0);
        s.drained.assign(p_.numThreads, 0);
        s.mem.assign(p_.numAddrs, 0);
        s.probe.assign(p_.probes.size(), kUnset);
        dfs(s);
        return std::move(outcomes_);
    }

  private:
    static constexpr std::uint8_t kUnset = 0xFF;

    struct State
    {
        std::vector<std::uint8_t> pc;
        std::vector<std::uint8_t> drained;   //!< SB entries written back
        std::vector<std::uint8_t> mem;
        std::vector<std::uint8_t> probe;
    };

    std::string
    key(const State& s) const
    {
        std::string k;
        k.reserve(s.pc.size() + s.drained.size() + s.mem.size() +
                  s.probe.size());
        k.append(s.pc.begin(), s.pc.end());
        k.append(s.drained.begin(), s.drained.end());
        k.append(s.mem.begin(), s.mem.end());
        k.append(s.probe.begin(), s.probe.end());
        return k;
    }

    /** Number of plain stores thread @p t has executed before @p pc. */
    std::uint8_t
    storesBefore(std::uint32_t t, std::uint8_t pc) const
    {
        std::uint8_t n = 0;
        for (std::uint8_t i = 0; i < pc; ++i)
            if (p_.body[t][i].type == OpType::Store)
                ++n;
        return n;
    }

    bool
    sbEmpty(const State& s, std::uint32_t t) const
    {
        return s.drained[t] == storesBefore(t, s.pc[t]);
    }

    /** TSO load value: youngest SB entry for @p addr, else memory. */
    std::uint8_t
    loadValue(const State& s, std::uint32_t t, std::uint8_t addr) const
    {
        if (tso_) {
            const std::uint8_t hi = storesBefore(t, s.pc[t]);
            for (std::uint8_t i = hi; i > s.drained[t]; --i) {
                const FuzzOp& st = stores_[t][i - 1];
                if (st.addr == addr)
                    return st.value;
            }
        }
        return s.mem[addr];
    }

    void
    recordLoad(State& s, std::uint32_t t, std::uint8_t value) const
    {
        for (std::size_t i = 0; i < probe_op_.size(); ++i)
            if (probe_op_[i].first == t &&
                probe_op_[i].second == s.pc[t])
                s.probe[i] = value;
    }

    void
    dfs(const State& s)
    {
        if (!visited_.insert(key(s)).second)
            return;
        bool terminal = true;
        for (std::uint32_t t = 0; t < p_.numThreads; ++t) {
            // Drain transition: oldest SB entry becomes visible.
            if (tso_ && !sbEmpty(s, t)) {
                terminal = false;
                State n = s;
                const FuzzOp& st = stores_[t][n.drained[t]];
                n.mem[st.addr] = st.value;
                ++n.drained[t];
                dfs(n);
            }
            if (s.pc[t] >= p_.body[t].size())
                continue;
            const FuzzOp& op = p_.body[t][s.pc[t]];
            if ((op.type == OpType::Fence || op.type == OpType::Cas) &&
                tso_ && !sbEmpty(s, t))
                continue;   // must drain first
            terminal = false;
            State n = s;
            switch (op.type) {
              case OpType::Load:
                recordLoad(n, t, loadValue(s, t, op.addr));
                break;
              case OpType::Store:
                if (!tso_)
                    n.mem[op.addr] = op.value;
                break;
              case OpType::Cas:
                if (n.mem[op.addr] == op.expect)
                    n.mem[op.addr] = op.value;
                break;
              case OpType::Fence:
                break;
              default:
                break;
            }
            ++n.pc[t];
            dfs(n);
        }
        if (terminal) {
            Outcome o;
            o.reserve(s.probe.size());
            for (const std::uint8_t v : s.probe)
                o.push_back(v);
            outcomes_.insert(std::move(o));
        }
    }

    const FuzzProgram& p_;
    const bool tso_;
    std::vector<std::vector<FuzzOp>> stores_;
    std::vector<std::pair<std::uint32_t, std::size_t>> probe_op_;
    std::unordered_set<std::string> visited_;
    std::set<Outcome> outcomes_;
};

// ---- simulator side ----------------------------------------------------

/** Warm shared addresses, stagger starts, run the body (litmus-style). */
std::unique_ptr<System>
runFuzz(const FuzzProgram& p, ImplKind kind, std::uint32_t jitter)
{
    std::vector<std::vector<ScriptOp>> scripts;
    for (std::uint32_t t = 0; t < p.numThreads; ++t) {
        std::vector<ScriptOp> s;
        for (std::uint32_t a = 0; a < p.numAddrs; ++a)
            s.push_back(opLoad(fuzzAddr(a)));
        s.push_back(opAlu(200));
        const std::uint32_t delay = (jitter * (t + 3) * 7) % 40;
        for (std::uint32_t d = 0; d < delay; ++d)
            s.push_back(opAlu(1));
        for (const ScriptOp& op : p.scripts[t])
            s.push_back(op);
        scripts.push_back(std::move(s));
    }
    auto sys = makeScripted(std::move(scripts), kind);
    EXPECT_TRUE(sys->runUntilDone(500000))
        << "fuzz program " << p.seed << " did not drain";
    return sys;
}

/** Last committed plain load (CAS results are not oracle probes). */
std::uint64_t
lastPlainLoadOf(System& sys, std::uint32_t t, Addr addr)
{
    const auto& j = sys.core(t).journal();
    for (auto it = j.rbegin(); it != j.rend(); ++it) {
        if (it->type == OpType::Load &&
            wordAlign(it->addr) == wordAlign(addr))
            return it->result;
    }
    return ~0ull;
}

Outcome
observe(System& sys, const FuzzProgram& p)
{
    Outcome o;
    for (const auto& [t, a] : p.probes)
        o.push_back(lastPlainLoadOf(sys, t, fuzzAddr(a)));
    return o;
}

std::string
describeOutcome(const Outcome& o)
{
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < o.size(); ++i)
        os << (i ? "," : "") << o[i];
    os << ")";
    return os.str();
}

/**
 * Coherence check: with globally unique store values, a thread's load
 * sequence on one location may never return to an earlier value after
 * observing a different one.
 */
std::string
checkCoRR(System& sys, const FuzzProgram& p)
{
    for (std::uint32_t t = 0; t < p.numThreads; ++t) {
        std::map<Addr, std::vector<std::uint64_t>> seq;
        for (const auto& rec : sys.core(t).journal())
            if (rec.type == OpType::Load)
                seq[wordAlign(rec.addr)].push_back(rec.result);
        for (const auto& [addr, vals] : seq) {
            std::set<std::uint64_t> left;
            std::uint64_t cur = vals.empty() ? 0 : vals.front();
            for (const std::uint64_t v : vals) {
                if (v == cur)
                    continue;
                left.insert(cur);
                cur = v;
                if (left.count(v)) {
                    std::ostringstream os;
                    os << "CoRR violation: thread " << t << " addr 0x"
                       << std::hex << addr << std::dec
                       << " revisited value " << v;
                    return os.str();
                }
            }
        }
    }
    return {};
}

/** Every loaded value must be the initial zero or actually written. */
std::string
checkProvenance(const FuzzProgram& p, const Outcome& o)
{
    for (std::size_t i = 0; i < o.size(); ++i) {
        const std::uint32_t a = p.probes[i].second;
        if (o[i] == 0)
            continue;
        const std::vector<std::uint8_t>& w = p.written[a];
        if (std::find(w.begin(), w.end(), o[i]) == w.end()) {
            std::ostringstream os;
            os << "no-provenance value " << o[i] << " at probe " << i;
            return os.str();
        }
    }
    return {};
}

/** Run one program under every kind; returns failure descriptions. */
std::vector<std::string>
fuzzOne(std::uint64_t seed)
{
    std::vector<std::string> failures;
    const FuzzProgram p = generateProgram(seed);
    const std::set<Outcome> sc_set =
        OutcomeEnumerator(p, /*tso=*/false).enumerate();
    const std::set<Outcome> tso_set =
        OutcomeEnumerator(p, /*tso=*/true).enumerate();

    // Oracle self-check: strengthening the model can only shrink the
    // reachable set, so SC outcomes must all be TSO-reachable.
    for (const Outcome& o : sc_set) {
        if (!tso_set.count(o))
            failures.push_back(
                "oracle: SC outcome " + describeOutcome(o) +
                " missing from TSO set, program seed " +
                std::to_string(seed));
    }

    for (const ImplKind kind : allImplKinds()) {
        const Model model = modelOf(kind);
        for (std::uint32_t jitter = 0; jitter < kJitters; ++jitter) {
            auto sys = runFuzz(p, kind, jitter);
            const Outcome o = observe(*sys, p);
            std::string err;
            if (model == Model::SC && !sc_set.count(o)) {
                err = "outcome " + describeOutcome(o) +
                      " outside the SC-reachable set";
            } else if (model == Model::TSO && !tso_set.count(o)) {
                err = "outcome " + describeOutcome(o) +
                      " outside the TSO-reachable set";
            } else {
                err = checkProvenance(p, o);
            }
            if (err.empty())
                err = checkCoRR(*sys, p);
            if (!err.empty()) {
                failures.push_back(
                    err + " under " + implKindName(kind) + ", jitter " +
                    std::to_string(jitter) + ", program seed " +
                    std::to_string(seed));
            }
        }
    }
    return failures;
}

TEST(FuzzLitmus, RandomProgramsRespectModelStrengthMonotonicity)
{
    const std::uint32_t programs = benchEnv().fuzzPrograms;
    const SweepRunner runner;
    const std::vector<std::vector<std::string>> reports =
        runner.map(programs, [](std::size_t i) {
            return fuzzOne(0xF022'0000 + i);
        });
    std::size_t shown = 0;
    for (const auto& program_failures : reports) {
        for (const std::string& f : program_failures) {
            ADD_FAILURE() << f;
            if (++shown >= 20) {
                FAIL() << "more than 20 fuzz failures; stopping report";
                return;
            }
        }
    }
}

/** The generator must actually produce the advertised op diversity. */
TEST(FuzzLitmus, GeneratorCoversShapesAndUniqueValues)
{
    bool saw_cas = false, saw_fence = false;
    std::size_t total_loads = 0, total_stores = 0;
    std::set<std::uint32_t> thread_counts;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const FuzzProgram p = generateProgram(seed);
        thread_counts.insert(p.numThreads);
        std::set<std::uint8_t> values;
        for (const auto& body : p.body) {
            for (const FuzzOp& op : body) {
                if (op.type == OpType::Load)
                    ++total_loads;
                if (op.type == OpType::Cas)
                    saw_cas = true;
                if (op.type == OpType::Fence)
                    saw_fence = true;
                if (op.type == OpType::Store ||
                    op.type == OpType::Cas) {
                    ++total_stores;
                    EXPECT_TRUE(values.insert(op.value).second)
                        << "duplicate store value in program " << seed;
                }
            }
        }
        EXPECT_LE(p.numThreads, 4u);
        EXPECT_GE(p.numThreads, 2u);
    }
    EXPECT_TRUE(saw_cas);
    EXPECT_TRUE(saw_fence);
    // The generator must keep the fuzzer fed with memory traffic, not
    // degenerate into ALU-only programs.
    EXPECT_GT(total_loads, 100u);
    EXPECT_GT(total_stores, 100u);
    EXPECT_GE(thread_counts.size(), 2u);
}

/** Pin the oracle itself on the classic SB litmus shape. */
TEST(FuzzLitmus, OracleMatchesKnownStoreBufferingSets)
{
    // T0: st x=1; ld y   T1: st y=2; ld x
    FuzzProgram p;
    p.seed = 0;
    p.numThreads = 2;
    p.numAddrs = 2;
    p.written = {{1}, {2}};
    p.body = {{{OpType::Store, 0, 1, 0}, {OpType::Load, 1, 0, 0}},
              {{OpType::Store, 1, 2, 0}, {OpType::Load, 0, 0, 0}}};
    p.probes = {{0, 1}, {1, 0}};
    const auto sc = OutcomeEnumerator(p, false).enumerate();
    const auto tso = OutcomeEnumerator(p, true).enumerate();
    // Both-zero is the store-buffering outcome: TSO-only.
    EXPECT_FALSE(sc.count({0, 0}));
    EXPECT_TRUE(tso.count({0, 0}));
    for (const Outcome& o : sc)
        EXPECT_TRUE(tso.count(o));
    EXPECT_EQ(sc.size() + 1, tso.size());
}

} // namespace
} // namespace invisifence
