/** @file Unit tests for the simulation kernel (event queue, RNG, stats). */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace invisifence;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&]() { order.push_back(3); });
    eq.scheduleAt(10, [&]() { order.push_back(1); });
    eq.scheduleAt(20, [&]() { order.push_back(2); });
    eq.advanceTo(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, SameTickPreservesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.scheduleAt(5, [&order, i]() { order.push_back(i); });
    eq.advanceTo(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, AdvanceStopsAtRequestedTick)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&]() { ++fired; });
    eq.scheduleAt(11, [&]() { ++fired; });
    eq.advanceTo(10);
    EXPECT_EQ(fired, 1);
    eq.advanceTo(11);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(5, [&]() {
        eq.schedule(0, [&]() { ++fired; });   // lands at tick 5 too
        eq.schedule(100, [&]() { ++fired; });
    });
    eq.advanceTo(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.nextEventTick(), 105u);
}

TEST(EventQueue, SameTickInsertionOrderAcrossScheduleSites)
{
    // Tie-break contract: same-tick events run in insertion order even
    // when scheduled from different places — up front, from an earlier
    // event, and from an event at the same tick.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(7, [&]() { order.push_back(0); });
    eq.scheduleAt(3, [&]() {
        eq.scheduleAt(7, [&]() { order.push_back(1); });
    });
    eq.scheduleAt(7, [&]() {
        order.push_back(2);
        eq.schedule(0, [&]() { order.push_back(3); });   // tick 7 too
    });
    eq.advanceTo(7);
    // Insertion order at tick 7: [0] up-front, [2] up-front-second,
    // [1] scheduled at tick 3, [3] scheduled during tick 7.
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

TEST(EventQueue, MidExecutionSchedulingAtOrBelowTickRunsInSameAdvance)
{
    // An event that schedules work for a later tick still <= the
    // advanceTo bound must see that work run in the same call.
    EventQueue eq;
    std::vector<Cycle> at;
    eq.scheduleAt(5, [&]() {
        eq.scheduleAt(9, [&]() { at.push_back(eq.now()); });
        eq.schedule(2, [&]() { at.push_back(eq.now()); });   // tick 7
    });
    eq.advanceTo(9);
    EXPECT_EQ(at, (std::vector<Cycle>{7, 9}));
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 9u);
}

TEST(EventQueue, NextEventTickTracksEarliestPendingEvent)
{
    EventQueue eq;
    eq.scheduleAt(40, []() {});
    EXPECT_EQ(eq.nextEventTick(), 40u);
    eq.scheduleAt(12, []() {});
    EXPECT_EQ(eq.nextEventTick(), 12u);
    eq.scheduleAt(25, []() {});
    EXPECT_EQ(eq.nextEventTick(), 12u);
    eq.advanceTo(12);
    EXPECT_EQ(eq.nextEventTick(), 25u);
    eq.advanceTo(30);
    EXPECT_EQ(eq.nextEventTick(), 40u);
    // Far-future events (beyond the timing wheel's span) still order
    // correctly against near ones.
    eq.scheduleAt(1'000'000, []() {});
    EXPECT_EQ(eq.nextEventTick(), 40u);
    eq.advanceTo(40);
    EXPECT_EQ(eq.nextEventTick(), 1'000'000u);
    eq.scheduleAt(500'000, []() {});
    EXPECT_EQ(eq.nextEventTick(), 500'000u);
    eq.drain();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 1'000'000u);
}

TEST(EventQueue, FarAndNearEventsAtSameTickPreserveScheduleOrder)
{
    // A far-scheduled event (beyond the wheel span) must run before a
    // near-scheduled one for the same tick: it was scheduled earlier.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(5000, [&]() { order.push_back(0); });   // far at t=0
    eq.advanceTo(4000);
    eq.scheduleAt(5000, [&]() { order.push_back(1); });   // near now
    eq.advanceTo(5000);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, ActivityCountersTrackScheduleAndExecute)
{
    EventQueue eq;
    EXPECT_EQ(eq.scheduledCount(), 0u);
    EXPECT_EQ(eq.executedCount(), 0u);
    eq.scheduleAt(2, []() {});
    eq.scheduleAt(4, []() {});
    EXPECT_EQ(eq.scheduledCount(), 2u);
    EXPECT_EQ(eq.executedCount(), 0u);
    eq.advanceTo(3);
    EXPECT_EQ(eq.executedCount(), 1u);
    eq.advanceTo(10);
    EXPECT_EQ(eq.executedCount(), 2u);
}

TEST(EventQueue, WakeHookFiresForTaggedEventsBeforeTheirCallback)
{
    EventQueue eq;
    std::vector<std::pair<std::uint32_t, Cycle>> wakes;
    std::vector<int> order;
    struct HookCtx {
        std::vector<std::pair<std::uint32_t, Cycle>>* wakes;
        std::vector<int>* order;
    } hookCtx{&wakes, &order};
    eq.setWakeHook(
        [](void* ctx, std::uint32_t node, Cycle when) {
            auto* c = static_cast<HookCtx*>(ctx);
            c->wakes->emplace_back(node, when);
            c->order->push_back(0);
        },
        &hookCtx);
    eq.scheduleAt(5, [&]() { order.push_back(1); }, 3);
    eq.scheduleAt(6, [&]() { order.push_back(2); });   // untagged: no wake
    eq.advanceTo(10);
    ASSERT_EQ(wakes.size(), 1u);
    EXPECT_EQ(wakes[0], (std::pair<std::uint32_t, Cycle>{3, 5}));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RelativeScheduleUsesCurrentTime)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.advanceTo(50);
    eq.schedule(7, [&]() { seen = eq.now(); });
    eq.drain();
    EXPECT_EQ(seen, 57u);
}

TEST(EventQueue, DrainEmptiesEverything)
{
    EventQueue eq;
    int fired = 0;
    for (Cycle t = 1; t <= 64; ++t)
        eq.scheduleAt(t * 3, [&]() { ++fired; });
    eq.drain();
    EXPECT_EQ(fired, 64);
    EXPECT_TRUE(eq.empty());
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(37), 37u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, CopyReplaysIdentically)
{
    Rng a(123);
    a.next();
    a.next();
    Rng b = a;   // value-copy snapshot
    std::vector<std::uint64_t> va, vb;
    for (int i = 0; i < 50; ++i)
        va.push_back(a.next());
    for (int i = 0; i < 50; ++i)
        vb.push_back(b.next());
    EXPECT_EQ(va, vb);
}

TEST(Rng, ChancePermilleRoughlyCalibrated)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chancePermille(250);
    EXPECT_NEAR(hits, 25000, 1500);
}

TEST(Stats, RegisterAndRead)
{
    StatRegistry reg;
    std::uint64_t counter = 41;
    reg.registerStat("a.counter", &counter);
    ++counter;
    EXPECT_DOUBLE_EQ(reg.get("a.counter"), 42.0);
    EXPECT_TRUE(reg.has("a.counter"));
    EXPECT_FALSE(reg.has("missing"));
    ASSERT_TRUE(reg.tryGet("a.counter").has_value());
    EXPECT_DOUBLE_EQ(*reg.tryGet("a.counter"), 42.0);
    EXPECT_FALSE(reg.tryGet("missing").has_value());
}

TEST(StatsDeathTest, GetOfUnknownNameIsFatal)
{
    // A typo in table/bench code must not fabricate a zero statistic.
    StatRegistry reg;
    std::uint64_t counter = 1;
    reg.registerStat("core0.cycles", &counter);
    EXPECT_EXIT(reg.get("core0.cycels"),
                ::testing::ExitedWithCode(1), "unknown statistic");
}

TEST(Stats, SumMatching)
{
    StatRegistry reg;
    std::uint64_t a = 1, b = 2, c = 4;
    reg.registerStat("core0.cycles.busy", &a);
    reg.registerStat("core1.cycles.busy", &b);
    reg.registerStat("core1.cycles.other", &c);
    EXPECT_DOUBLE_EQ(reg.sumMatching("core", ".busy"), 3.0);
    EXPECT_DOUBLE_EQ(reg.sumMatching("core1", ""), 6.0);
}

TEST(Stats, SnapshotSortedByName)
{
    StatRegistry reg;
    std::uint64_t x = 1;
    double y = 2.5;
    reg.registerStat("zz", &x);
    reg.registerStat("aa", &y);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "aa");
    EXPECT_DOUBLE_EQ(snap[0].second, 2.5);
}

TEST(Log, StrformatFormats)
{
    EXPECT_EQ(strformat("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(strformat("plain"), "plain");
}
