/** @file Unit tests for the simulation kernel (event queue, RNG, stats). */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace invisifence;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&]() { order.push_back(3); });
    eq.scheduleAt(10, [&]() { order.push_back(1); });
    eq.scheduleAt(20, [&]() { order.push_back(2); });
    eq.advanceTo(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, SameTickPreservesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.scheduleAt(5, [&order, i]() { order.push_back(i); });
    eq.advanceTo(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, AdvanceStopsAtRequestedTick)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&]() { ++fired; });
    eq.scheduleAt(11, [&]() { ++fired; });
    eq.advanceTo(10);
    EXPECT_EQ(fired, 1);
    eq.advanceTo(11);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(5, [&]() {
        eq.schedule(0, [&]() { ++fired; });   // lands at tick 5 too
        eq.schedule(100, [&]() { ++fired; });
    });
    eq.advanceTo(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.nextEventTick(), 105u);
}

TEST(EventQueue, RelativeScheduleUsesCurrentTime)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.advanceTo(50);
    eq.schedule(7, [&]() { seen = eq.now(); });
    eq.drain();
    EXPECT_EQ(seen, 57u);
}

TEST(EventQueue, DrainEmptiesEverything)
{
    EventQueue eq;
    int fired = 0;
    for (Cycle t = 1; t <= 64; ++t)
        eq.scheduleAt(t * 3, [&]() { ++fired; });
    eq.drain();
    EXPECT_EQ(fired, 64);
    EXPECT_TRUE(eq.empty());
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(37), 37u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, CopyReplaysIdentically)
{
    Rng a(123);
    a.next();
    a.next();
    Rng b = a;   // value-copy snapshot
    std::vector<std::uint64_t> va, vb;
    for (int i = 0; i < 50; ++i)
        va.push_back(a.next());
    for (int i = 0; i < 50; ++i)
        vb.push_back(b.next());
    EXPECT_EQ(va, vb);
}

TEST(Rng, ChancePermilleRoughlyCalibrated)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chancePermille(250);
    EXPECT_NEAR(hits, 25000, 1500);
}

TEST(Stats, RegisterAndRead)
{
    StatRegistry reg;
    std::uint64_t counter = 41;
    reg.registerStat("a.counter", &counter);
    ++counter;
    EXPECT_DOUBLE_EQ(reg.get("a.counter"), 42.0);
    EXPECT_TRUE(reg.has("a.counter"));
    EXPECT_FALSE(reg.has("missing"));
    EXPECT_DOUBLE_EQ(reg.get("missing"), 0.0);
}

TEST(Stats, SumMatching)
{
    StatRegistry reg;
    std::uint64_t a = 1, b = 2, c = 4;
    reg.registerStat("core0.cycles.busy", &a);
    reg.registerStat("core1.cycles.busy", &b);
    reg.registerStat("core1.cycles.other", &c);
    EXPECT_DOUBLE_EQ(reg.sumMatching("core", ".busy"), 3.0);
    EXPECT_DOUBLE_EQ(reg.sumMatching("core1", ""), 6.0);
}

TEST(Stats, SnapshotSortedByName)
{
    StatRegistry reg;
    std::uint64_t x = 1;
    double y = 2.5;
    reg.registerStat("zz", &x);
    reg.registerStat("aa", &y);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "aa");
    EXPECT_DOUBLE_EQ(snap[0].second, 2.5);
}

TEST(Log, StrformatFormats)
{
    EXPECT_EQ(strformat("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(strformat("plain"), "plain");
}
