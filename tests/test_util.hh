/**
 * @file
 * Shared helpers for the test suite: tiny-system builders and scripted
 * program convenience wrappers.
 */

#ifndef INVISIFENCE_TESTS_TEST_UTIL_HH
#define INVISIFENCE_TESTS_TEST_UTIL_HH

#include <memory>
#include <vector>

#include "harness/system.hh"
#include "workload/litmus.hh"

namespace invisifence::test {

/** Address inside a dedicated test region, one block apart. */
inline Addr
taddr(std::uint32_t i)
{
    return 0x0900'0000 + static_cast<Addr>(i) * kBlockBytes;
}

/** Build a small system running the given scripts. */
inline std::unique_ptr<System>
makeScripted(std::vector<std::vector<ScriptOp>> scripts, ImplKind kind,
             SystemParams params = SystemParams::small(0))
{
    if (params.numCores == 0) {
        params = SystemParams::small(
            static_cast<std::uint32_t>(scripts.size()));
    }
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (auto& s : scripts)
        programs.push_back(std::make_unique<ScriptedProgram>(std::move(s)));
    // Idle cores run empty (immediately halting) programs.
    while (programs.size() < params.numCores) {
        programs.push_back(std::make_unique<ScriptedProgram>(
            std::vector<ScriptOp>{}));
    }
    auto sys = std::make_unique<System>(params, std::move(programs), kind);
    for (std::uint32_t i = 0; i < sys->numCores(); ++i)
        sys->core(i).enableJournal();
    return sys;
}

/** Last committed load of @p addr in core @p t's journal, or fallback. */
inline std::uint64_t
lastLoadOf(System& sys, std::uint32_t t, Addr addr,
           std::uint64_t fallback = ~0ull)
{
    const auto& j = sys.core(t).journal();
    for (auto it = j.rbegin(); it != j.rend(); ++it) {
        if (isLoadLike(it->type) && wordAlign(it->addr) == wordAlign(addr))
            return it->result;
    }
    return fallback;
}

/** All implementation kinds, for parameterized sweeps. */
inline std::vector<ImplKind>
allImplKinds()
{
    return {ImplKind::ConvSC,        ImplKind::ConvTSO,
            ImplKind::ConvRMO,       ImplKind::InvisiSC,
            ImplKind::InvisiTSO,     ImplKind::InvisiRMO,
            ImplKind::InvisiSC2Ckpt, ImplKind::Continuous,
            ImplKind::ContinuousCoV, ImplKind::Aso};
}

/** The kinds that must enforce at least TSO ordering. */
inline std::vector<ImplKind>
tsoOrStrongerKinds()
{
    return {ImplKind::ConvSC,        ImplKind::ConvTSO,
            ImplKind::InvisiSC,      ImplKind::InvisiTSO,
            ImplKind::InvisiSC2Ckpt, ImplKind::Continuous,
            ImplKind::ContinuousCoV, ImplKind::Aso};
}

/** The kinds that must enforce SC. */
inline std::vector<ImplKind>
scKinds()
{
    return {ImplKind::ConvSC, ImplKind::InvisiSC,
            ImplKind::InvisiSC2Ckpt, ImplKind::Continuous,
            ImplKind::ContinuousCoV, ImplKind::Aso};
}

} // namespace invisifence::test

#endif // INVISIFENCE_TESTS_TEST_UTIL_HH
