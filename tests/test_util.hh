/**
 * @file
 * Shared helpers for the test suite: tiny-system builders and scripted
 * program convenience wrappers.
 */

#ifndef INVISIFENCE_TESTS_TEST_UTIL_HH
#define INVISIFENCE_TESTS_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/runner.hh"
#include "harness/system.hh"
#include "workload/litmus.hh"

namespace invisifence::test {

/** Address inside a dedicated test region, one block apart. */
inline Addr
taddr(std::uint32_t i)
{
    return 0x0900'0000 + static_cast<Addr>(i) * kBlockBytes;
}

/** Build a small system running the given scripts. */
inline std::unique_ptr<System>
makeScripted(std::vector<std::vector<ScriptOp>> scripts, ImplKind kind,
             SystemParams params = SystemParams::small(0))
{
    if (params.numCores == 0) {
        params = SystemParams::small(
            static_cast<std::uint32_t>(scripts.size()));
    }
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (auto& s : scripts)
        programs.push_back(std::make_unique<ScriptedProgram>(std::move(s)));
    // Idle cores run empty (immediately halting) programs.
    while (programs.size() < params.numCores) {
        programs.push_back(std::make_unique<ScriptedProgram>(
            std::vector<ScriptOp>{}));
    }
    auto sys = std::make_unique<System>(params, std::move(programs), kind);
    for (std::uint32_t i = 0; i < sys->numCores(); ++i)
        sys->core(i).enableJournal();
    return sys;
}

/** Last committed load of @p addr in core @p t's journal, or fallback. */
inline std::uint64_t
lastLoadOf(System& sys, std::uint32_t t, Addr addr,
           std::uint64_t fallback = ~0ull)
{
    const auto& j = sys.core(t).journal();
    for (auto it = j.rbegin(); it != j.rend(); ++it) {
        if (isLoadLike(it->type) && wordAlign(it->addr) == wordAlign(addr))
            return it->result;
    }
    return fallback;
}

/** All implementation kinds, for parameterized sweeps. */
inline std::vector<ImplKind>
allImplKinds()
{
    return {ImplKind::ConvSC,        ImplKind::ConvTSO,
            ImplKind::ConvRMO,       ImplKind::InvisiSC,
            ImplKind::InvisiTSO,     ImplKind::InvisiRMO,
            ImplKind::InvisiSC2Ckpt, ImplKind::Continuous,
            ImplKind::ContinuousCoV, ImplKind::Aso};
}

/** The kinds that must enforce at least TSO ordering. */
inline std::vector<ImplKind>
tsoOrStrongerKinds()
{
    return {ImplKind::ConvSC,        ImplKind::ConvTSO,
            ImplKind::InvisiSC,      ImplKind::InvisiTSO,
            ImplKind::InvisiSC2Ckpt, ImplKind::Continuous,
            ImplKind::ContinuousCoV, ImplKind::Aso};
}

/** The kinds that must enforce SC. */
inline std::vector<ImplKind>
scKinds()
{
    return {ImplKind::ConvSC, ImplKind::InvisiSC,
            ImplKind::InvisiSC2Ckpt, ImplKind::Continuous,
            ImplKind::ContinuousCoV, ImplKind::Aso};
}

/** The consistency model an implementation kind enforces (the
 *  library's Model enum orders SC < TSO < RMO, weakest-last). */
inline Model
modelOf(ImplKind k)
{
    switch (k) {
      case ImplKind::ConvTSO:
      case ImplKind::InvisiTSO:
        return Model::TSO;
      case ImplKind::ConvRMO:
      case ImplKind::InvisiRMO:
        return Model::RMO;
      default:
        return Model::SC;   // every other kind enforces SC
    }
}

/** Expect two RunResults to be bit-identical, field by field. */
inline void
expectIdenticalResults(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.impl, b.impl);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.speculatingCycles, b.speculatingCycles);
    EXPECT_EQ(a.aborts, b.aborts);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.breakdown.busy, b.breakdown.busy);
    EXPECT_EQ(a.breakdown.other, b.breakdown.other);
    EXPECT_EQ(a.breakdown.sbFull, b.breakdown.sbFull);
    EXPECT_EQ(a.breakdown.sbDrain, b.breakdown.sbDrain);
    EXPECT_EQ(a.breakdown.violation, b.breakdown.violation);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.dropsRecovered, b.dropsRecovered);
    EXPECT_EQ(a.dupsSquashed, b.dupsSquashed);
    EXPECT_EQ(a.timeoutBackoffMax, b.timeoutBackoffMax);
}

} // namespace invisifence::test

#endif // INVISIFENCE_TESTS_TEST_UTIL_HH
