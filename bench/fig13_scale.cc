/**
 * @file
 * Scale study (beyond the paper's 16-core testbed): throughput of the
 * server-shaped workloads as the machine grows 16 -> 64 -> 256 cores,
 * with hashed directory-home placement and the derived near-square
 * torus, plus a shard-quiescence probe that measures how much work
 * shard-level fast-forward skips on a mostly-dormant machine.
 */

#include <chrono>

#include "bench_util.hh"
#include "workload/litmus.hh"

using namespace invisifence;
using namespace invisifence::bench;

namespace {

double
wallSeconds(System& sys, Cycle cycles)
{
    const auto t0 = std::chrono::steady_clock::now();
    sys.run(cycles);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** One busy core on an otherwise idle 256-core machine. */
void
shardQuiescenceProbe()
{
    Table table("Shard quiescence: 256 cores, one busy "
                "(4000-instruction script), rest halted");
    table.setHeader({"fastfwd", "shard_skips", "ff_cycles", "wall_s"});
    for (const int ff : {0, 1}) {
        SystemParams sp = SystemParams::small(256);
        sp.fastForward = ff;
        std::vector<std::vector<ScriptOp>> scripts(256);
        for (std::uint32_t i = 0; i < 4000; ++i)
            scripts[0].push_back(opAlu(1));
        std::vector<std::unique_ptr<ThreadProgram>> programs;
        for (auto& s : scripts) {
            programs.push_back(
                std::make_unique<ScriptedProgram>(std::move(s)));
        }
        System sys(sp, std::move(programs), ImplKind::ConvSC);
        const double secs = wallSeconds(sys, 6000);
        table.addRow({ff ? "on" : "off",
                      std::to_string(sys.statShardSkips),
                      std::to_string(sys.statFastForwardedCycles),
                      Table::num(secs, 4)});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    RunConfig cfg = RunConfig::fromEnv();
    cfg.system.dirHashHome = true;        // sharded home placement
    cfg.system.agent.l2Size = 512 * 1024; // bounds the 256-agent footprint
    const std::vector<const char*> names = {"ZipfKV", "ReaderHotLock"};
    const std::vector<std::uint32_t> cores = {16, 64, 256};
    const auto apply = [](RunConfig& c, std::uint32_t n) {
        c.system.numCores = n;
        c.system.net.dimX = 0;   // derive the near-square torus
        c.system.net.dimY = 0;
    };
    const auto label = [](std::uint32_t v) {
        std::string tag("@");
        tag += std::to_string(v);
        return tag;
    };
    const auto sc =
        runValueSweep(names, cores, ImplKind::ConvSC, cfg, apply, label);
    const auto inv =
        runValueSweep(names, cores, ImplKind::InvisiSC, cfg, apply, label);

    Table table("Scale study: server workloads on 16 -> 256 cores "
                "(hashed homes, derived torus)");
    table.setHeader({"workload", "cores", "sc thr", "Invisi_sc thr",
                     "speedup"});
    for (std::size_t i = 0; i < sc.size(); ++i) {
        const double base = sc[i].throughput().mean;
        const double thr = inv[i].throughput().mean;
        table.addRow({sc[i].workload,
                      std::to_string(cores[i % cores.size()]),
                      cellWithCi(sc[i].throughput()),
                      cellWithCi(inv[i].throughput()),
                      base > 0 ? Table::num(thr / base, 3) : "stalled"});
    }
    table.print(std::cout);
    std::cout << "Expected shape: InvisiFence's edge holds as the torus\n"
                 "and sharer sets grow; hot-key contention (ZipfKV) gets\n"
                 "harsher with more sharers per invalidation.\n";

    shardQuiescenceProbe();
    return 0;
}
