/**
 * @file
 * Figure 1: ordering stalls in conventional SC/TSO/RMO as a percent of
 * execution time, split into SB-drain and SB-full components.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig cfg = RunConfig::fromEnv();
    const std::vector<ImplKind> kinds = {
        ImplKind::ConvSC, ImplKind::ConvTSO, ImplKind::ConvRMO};
    const auto matrix = runMatrix(kinds, cfg);

    Table table("Figure 1: ordering stalls in conventional "
                "implementations (% of each config's own cycles)");
    table.setHeader({"workload", "config", "sb_drain", "sb_full",
                     "total_ordering"});
    for (const auto& wl : workloadSuite()) {
        for (const ImplKind k : kinds) {
            const RunResult& r =
                matrix.at(wl.name).at(implKindName(k)).primary();
            const BreakdownShares s = shares(r);
            table.addRow({wl.name, r.impl, Table::pct(s.sbDrain),
                          Table::pct(s.sbFull),
                          Table::pct(s.sbDrain + s.sbFull)});
        }
    }
    table.print(std::cout);
    std::cout << "Paper shape: SC suffers the largest ordering stalls\n"
                 "(loads wait on store misses); TSO shows SB-full and\n"
                 "atomic drains; RMO stalls only at fences/atomics and is\n"
                 "near zero for Barnes and Ocean.\n";
    return 0;
}
