/**
 * @file
 * Figure 12: runtime of conventional SC, INVISIFENCE-CONTINUOUS,
 * conventional RMO, INVISIFENCE-CONTINUOUS with commit-on-violate, and
 * INVISIFENCE-SELECTIVE-RMO, normalized to SC.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig cfg = RunConfig::fromEnv();
    const std::vector<ImplKind> kinds = {
        ImplKind::ConvSC, ImplKind::Continuous, ImplKind::ConvRMO,
        ImplKind::ContinuousCoV, ImplKind::InvisiRMO};
    const auto matrix = runMatrix(kinds, cfg);
    printBreakdowns("Figure 12: continuous speculation and the "
                    "commit-on-violate policy, normalized to SC", matrix,
                    kinds, "sc");
    printSpeedups("Figure 12 (speedups over SC)", matrix, kinds, "sc");
    std::cout << "Paper shape: Invisi_cont beats SC but trails RMO with\n"
                 "heavy Violation cycles (worst on the sharing-heavy\n"
                 "workloads); CoV recovers most of that loss, landing\n"
                 "near conventional RMO and behind Invisi_rmo.\n";
    return 0;
}
