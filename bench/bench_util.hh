/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Each binary regenerates one table/figure of the paper. Absolute
 * numbers differ from the paper's testbed; the *shape* (who wins, by
 * roughly what factor, where crossovers fall) is the reproduction
 * target. See EXPERIMENTS.md.
 */

#ifndef INVISIFENCE_BENCH_BENCH_UTIL_HH
#define INVISIFENCE_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workload/workloads.hh"

namespace invisifence::bench {

/** Results of one workload under a set of implementations. */
using ResultRow = std::map<std::string, RunResult>;

/** Run every workload under every implementation kind. */
inline std::map<std::string, ResultRow>
runMatrix(const std::vector<ImplKind>& kinds, const RunConfig& cfg)
{
    std::map<std::string, ResultRow> out;
    for (const auto& wl : workloadSuite()) {
        std::cerr << "  running " << wl.name << " ..." << std::endl;
        for (const ImplKind kind : kinds)
            out[wl.name][implKindName(kind)] =
                runExperiment(wl, kind, cfg);
    }
    return out;
}

/** Geometric mean over per-workload speedups. */
inline double
geomean(const std::vector<double>& v)
{
    double log_sum = 0;
    for (const double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Print the classic speedup-over-baseline table. */
inline void
printSpeedups(const std::string& title,
              const std::map<std::string, ResultRow>& matrix,
              const std::vector<ImplKind>& kinds,
              const std::string& baseline)
{
    Table table(title);
    std::vector<std::string> header = {"workload"};
    for (const ImplKind k : kinds)
        header.push_back(implKindName(k));
    table.setHeader(header);

    std::map<std::string, std::vector<double>> per_impl;
    for (const auto& wl : workloadSuite()) {
        const ResultRow& row = matrix.at(wl.name);
        const double base = row.at(baseline).throughput();
        std::vector<std::string> cells = {wl.name};
        for (const ImplKind k : kinds) {
            const double thr = row.at(implKindName(k)).throughput();
            if (base <= 0 || thr <= 0) {
                // A configuration that made no committed progress in the
                // window (see EXPERIMENTS.md, Figure 11 known gap).
                cells.push_back("stalled");
                continue;
            }
            const double sp = thr / base;
            per_impl[implKindName(k)].push_back(sp);
            cells.push_back(Table::num(sp, 3));
        }
        table.addRow(cells);
    }
    std::vector<std::string> gm = {"geomean"};
    for (const ImplKind k : kinds) {
        const auto& v = per_impl[implKindName(k)];
        gm.push_back(v.empty() ? "n/a" : Table::num(geomean(v), 3));
    }
    table.addRow(gm);
    table.print(std::cout);
}

/** Print per-config runtime breakdowns normalized to a baseline. */
inline void
printBreakdowns(const std::string& title,
                const std::map<std::string, ResultRow>& matrix,
                const std::vector<ImplKind>& kinds,
                const std::string& baseline)
{
    Table table(title);
    table.setHeader({"workload", "config", "norm.runtime", "busy",
                     "other", "sb_full", "sb_drain", "violation"});
    for (const auto& wl : workloadSuite()) {
        const ResultRow& row = matrix.at(wl.name);
        const RunResult& base = row.at(baseline);
        for (const ImplKind k : kinds) {
            const RunResult& r = row.at(implKindName(k));
            const BreakdownShares s = normalizedShares(r, base);
            const double norm =
                r.throughput() > 0 && base.throughput() > 0
                    ? base.throughput() / r.throughput()
                    : 0.0;
            table.addRow({wl.name, r.impl,
                          norm > 0 ? Table::num(norm, 3) : "stalled",
                          Table::pct(s.busy), Table::pct(s.other),
                          Table::pct(s.sbFull), Table::pct(s.sbDrain),
                          Table::pct(s.violation)});
        }
    }
    table.print(std::cout);
}

} // namespace invisifence::bench

#endif // INVISIFENCE_BENCH_BENCH_UTIL_HH
