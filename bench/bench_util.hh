/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Each binary regenerates one table/figure of the paper. Absolute
 * numbers differ from the paper's testbed; the *shape* (who wins, by
 * roughly what factor, where crossovers fall) is the reproduction
 * target. See EXPERIMENTS.md.
 *
 * All benches run their grids through SweepRunner: points execute in
 * parallel across INVISIFENCE_JOBS worker threads, repeated for
 * INVISIFENCE_BENCH_SEEDS seeds per point (tables then carry ±95% CI),
 * and INVISIFENCE_BENCH_JSON=<path> additionally dumps the sweep as
 * machine-readable JSON.
 */

#ifndef INVISIFENCE_BENCH_BENCH_UTIL_HH
#define INVISIFENCE_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "sim/log.hh"
#include "workload/workloads.hh"

namespace invisifence::bench {

/** Multi-seed results of one workload under a set of implementations. */
using ResultRow = std::map<std::string, SweepStats>;

/** Honor INVISIFENCE_BENCH_JSON: dump @p stats to the requested path. */
inline void
maybeWriteJson(const std::vector<SweepStats>& stats, const RunConfig& cfg,
               std::uint32_t seeds)
{
    const std::string& path = benchEnv().jsonPath;
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os)
        IF_FATAL("INVISIFENCE_BENCH_JSON: cannot write '%s'",
                 path.c_str());
    // Schema 1 keeps the committed goldens byte-identical; a run with
    // fault injection armed emits revision 3 so the fault-tolerance
    // counters (retries / drops_recovered / ...) are visible.
    const bool faulty = cfg.system.fault.any() ||
                        cfg.system.agent.retryTimeout != 0;
    writeSweepJson(os, stats, cfg, seeds, faulty ? 3u : 1u);
    std::cerr << "  wrote sweep JSON to " << path << std::endl;
}

/**
 * Run every workload under every implementation kind, sharded across the
 * sweep pool, INVISIFENCE_BENCH_SEEDS seeds per point.
 */
inline std::map<std::string, ResultRow>
runMatrix(const std::vector<ImplKind>& kinds, const RunConfig& cfg)
{
    const SweepRunner runner;
    const std::uint32_t seeds = benchEnv().seeds;
    std::cerr << "  sweep: " << workloadSuite().size() * kinds.size()
              << " points x " << seeds << " seed(s) on " << runner.jobs()
              << " thread(s)" << std::endl;
    std::vector<SweepStats> stats =
        runner.runStats(workloadSuite(), kinds, cfg, seeds);
    maybeWriteJson(stats, cfg, seeds);
    std::map<std::string, ResultRow> out;
    for (SweepStats& s : stats) {
        const std::string wl = s.workload, impl = s.impl;
        out[wl].emplace(impl, std::move(s));
    }
    return out;
}

/** Geometric mean over per-workload speedups. */
inline double
geomean(const std::vector<double>& v)
{
    double log_sum = 0;
    for (const double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/**
 * Per-seed paired speedups of @p r over @p base (seed i against seed i),
 * skipping seeds where either side made no committed progress.
 */
inline std::vector<double>
pairedSpeedups(const SweepStats& r, const SweepStats& base)
{
    std::vector<double> sps;
    const std::size_t n = std::min(r.runs.size(), base.runs.size());
    for (std::size_t i = 0; i < n; ++i) {
        const double thr = r.runs[i].throughput();
        const double ref = base.runs[i].throughput();
        if (thr > 0 && ref > 0)
            sps.push_back(thr / ref);
    }
    return sps;
}

/** "1.234" for single-seed runs, "1.234+-0.056" (95% CI) with seeds.
 *  ASCII on purpose: Table pads columns by byte count. */
inline std::string
cellWithCi(const Estimate& e, int decimals = 3)
{
    std::string cell = Table::num(e.mean, decimals);
    if (e.n > 1)
        cell += "+-" + Table::num(e.ci95, decimals);
    return cell;
}

/** Print the classic speedup-over-baseline table. */
inline void
printSpeedups(const std::string& title,
              const std::map<std::string, ResultRow>& matrix,
              const std::vector<ImplKind>& kinds,
              const std::string& baseline)
{
    Table table(title);
    std::vector<std::string> header = {"workload"};
    for (const ImplKind k : kinds)
        header.push_back(implKindName(k));
    table.setHeader(header);

    std::map<std::string, std::vector<double>> per_impl;
    for (const auto& wl : workloadSuite()) {
        const ResultRow& row = matrix.at(wl.name);
        const SweepStats& base = row.at(baseline);
        std::vector<std::string> cells = {wl.name};
        for (const ImplKind k : kinds) {
            const Estimate sp =
                estimateOf(pairedSpeedups(row.at(implKindName(k)), base));
            if (sp.n == 0) {
                // A configuration that made no committed progress in the
                // window (see EXPERIMENTS.md, Figure 11 known gap).
                cells.push_back("stalled");
                continue;
            }
            per_impl[implKindName(k)].push_back(sp.mean);
            cells.push_back(cellWithCi(sp));
        }
        table.addRow(cells);
    }
    std::vector<std::string> gm = {"geomean"};
    for (const ImplKind k : kinds) {
        const auto& v = per_impl[implKindName(k)];
        gm.push_back(v.empty() ? "n/a" : Table::num(geomean(v), 3));
    }
    table.addRow(gm);
    table.print(std::cout);
}

/** Print per-config runtime breakdowns normalized to a baseline. */
inline void
printBreakdowns(const std::string& title,
                const std::map<std::string, ResultRow>& matrix,
                const std::vector<ImplKind>& kinds,
                const std::string& baseline)
{
    Table table(title);
    table.setHeader({"workload", "config", "norm.runtime", "busy",
                     "other", "sb_full", "sb_drain", "violation"});
    for (const auto& wl : workloadSuite()) {
        const ResultRow& row = matrix.at(wl.name);
        const RunResult& base = row.at(baseline).primary();
        for (const ImplKind k : kinds) {
            const RunResult& r = row.at(implKindName(k)).primary();
            const BreakdownShares s = normalizedShares(r, base);
            const double norm =
                r.throughput() > 0 && base.throughput() > 0
                    ? base.throughput() / r.throughput()
                    : 0.0;
            table.addRow({wl.name, r.impl,
                          norm > 0 ? Table::num(norm, 3) : "stalled",
                          Table::pct(s.busy), Table::pct(s.other),
                          Table::pct(s.sbFull), Table::pct(s.sbDrain),
                          Table::pct(s.violation)});
        }
    }
    table.print(std::cout);
}

/**
 * Value-axis sweep: one point per (workload name, value) pair, with
 * @p apply editing the config for each value and @p label naming the
 * value in the point's "impl" tag. Each point is widened across
 * INVISIFENCE_BENCH_SEEDS, the grid runs on the shared pool, and
 * INVISIFENCE_BENCH_JSON is honored. Returned stats are name-major,
 * then value order.
 */
template <typename V, typename Apply, typename Label>
inline std::vector<SweepStats>
runValueSweep(const std::vector<const char*>& names,
              const std::vector<V>& values, ImplKind kind,
              const RunConfig& base, Apply&& apply, Label&& label)
{
    const std::uint32_t seeds = benchEnv().seeds;
    std::vector<SweepPoint> grid;
    for (const char* name : names) {
        for (const V& value : values) {
            SweepPoint proto;
            proto.workload = workloadByName(name);
            proto.kind = kind;
            proto.cfg = base;
            apply(proto.cfg, value);
            for (std::uint32_t s = 0; s < seeds; ++s) {
                SweepPoint p = proto;
                p.cfg.seed = base.seed + s;
                grid.push_back(std::move(p));
            }
        }
    }
    std::vector<RunResult> results = SweepRunner().run(grid);
    std::vector<SweepStats> stats;
    std::size_t i = 0;
    for (const char* name : names) {
        for (const V& value : values) {
            SweepStats s;
            s.workload = name;
            s.impl = std::string(implKindName(kind)) + label(value);
            for (std::uint32_t n = 0; n < seeds; ++n)
                s.runs.push_back(std::move(results[i++]));
            stats.push_back(std::move(s));
        }
    }
    maybeWriteJson(stats, base, seeds);
    return stats;
}

/**
 * Parameter ablation on top of runValueSweep: returns the mean
 * throughput for each point, keyed [name][value-index].
 */
template <typename V, typename Apply>
inline std::map<std::string, std::vector<double>>
runAblation(const std::vector<const char*>& names,
            const std::vector<V>& values, ImplKind kind,
            const RunConfig& base, Apply&& apply)
{
    const std::vector<SweepStats> stats = runValueSweep(
        names, values, kind, base, std::forward<Apply>(apply),
        [](const V& v) {
            // Built up in place: GCC 12's -Wrestrict misfires on the
            // `"@" + std::to_string(v)` temporary chain.
            std::string tag("@");
            tag += std::to_string(v);
            return tag;
        });
    std::map<std::string, std::vector<double>> thr;
    for (const SweepStats& s : stats)
        thr[s.workload].push_back(s.throughput().mean);
    return thr;
}

} // namespace invisifence::bench

#endif // INVISIFENCE_BENCH_BENCH_UTIL_HH
