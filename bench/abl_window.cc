/**
 * @file
 * Ablation of this implementation's bounded-window policy: the
 * speculative-footprint cap that starts commit pressure before the
 * speculation overflows the L1 (DESIGN.md). Cap 0 disables bounding.
 */

#include "bench_util.hh"
#include "core/invisifence.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: speculative footprint cap for Invisi_sc "
                "(throughput relative to the default cap of 320 lines)");
    table.setHeader({"workload", "cap=64", "cap=160", "cap=320",
                     "cap=640"});
    const std::vector<const char*> names = {"Apache", "OLTP-DB2",
                                            "Ocean"};
    const std::vector<std::uint32_t> caps = {64, 160, 320, 640};
    const auto thr = runAblation(
        names, caps, ImplKind::InvisiSC, base,
        [](RunConfig& cfg, std::uint32_t cap) {
            // The cap rides on SpecConfig; expose it via the shared
            // override used by makeImpl.
            cfg.system.specFootprintCap = cap;
        });
    for (const char* name : names) {
        const std::vector<double>& t = thr.at(name);
        table.addRow({name, Table::num(t[0] / t[2], 3),
                      Table::num(t[1] / t[2], 3), "1.000",
                      Table::num(t[3] / t[2], 3)});
    }
    table.print(std::cout);
    std::cout << "Small caps commit too eagerly (drain stalls); large\n"
                 "caps risk L1 overflow stalls and aborts.\n";
    return 0;
}
