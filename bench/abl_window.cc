/**
 * @file
 * Ablation of this implementation's bounded-window policy: the
 * speculative-footprint cap that starts commit pressure before the
 * speculation overflows the L1 (DESIGN.md). Cap 0 disables bounding.
 */

#include "bench_util.hh"
#include "core/invisifence.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: speculative footprint cap for Invisi_sc "
                "(throughput relative to the default cap of 320 lines)");
    table.setHeader({"workload", "cap=64", "cap=160", "cap=320",
                     "cap=640"});
    for (const char* name : {"Apache", "OLTP-DB2", "Ocean"}) {
        const Workload& wl = workloadByName(name);
        std::map<std::uint32_t, double> thr;
        for (const std::uint32_t cap : {64u, 160u, 320u, 640u}) {
            RunConfig cfg = base;
            // The cap rides on SpecConfig; expose it via the shared
            // override used by makeImpl.
            cfg.system.specFootprintCap = cap;
            thr[cap] = runExperiment(wl, ImplKind::InvisiSC,
                                     cfg).throughput();
        }
        table.addRow({name, Table::num(thr[64] / thr[320], 3),
                      Table::num(thr[160] / thr[320], 3), "1.000",
                      Table::num(thr[640] / thr[320], 3)});
    }
    table.print(std::cout);
    std::cout << "Small caps commit too eagerly (drain stalls); large\n"
                 "caps risk L1 overflow stalls and aborts.\n";
    return 0;
}
