/**
 * @file
 * Event-queue microbenchmark: schedule/pop throughput of the pooled
 * timing wheel, for the three shapes the simulator produces —
 * inline-callback events, message-delivery events (the dominant
 * coherence case), and self-rescheduling chains (steady-state churn).
 *
 * No google-benchmark dependency (availability varies per container);
 * prints events/second per shape and runs in the smoke tier so the
 * numbers can never silently rot. An optional argv[1] scales the event
 * count (default 2'000'000; the smoke tier passes 200000).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstdint>

#include "coh/message.hh"
#include "sim/event_queue.hh"

using namespace invisifence;

namespace {

std::uint64_t g_sink = 0;

double
eventsPerSec(std::uint64_t count, double secs)
{
    return secs > 0 ? static_cast<double>(count) / secs : 0.0;
}

/** Schedule @p count near-future callbacks, then drain. */
double
benchCallbacks(std::uint64_t count)
{
    EventQueue eq;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t scheduled = 0;
    while (scheduled < count) {
        // A burst of mixed-latency callbacks, then drain the window:
        // resembles the per-cycle shape of the simulator.
        for (int i = 0; i < 64 && scheduled < count; ++i, ++scheduled) {
            eq.schedule(static_cast<Cycle>(1 + (i % 37)),
                        []() { ++g_sink; });
        }
        eq.advanceTo(eq.now() + 40);
    }
    eq.drain();
    const auto t1 = std::chrono::steady_clock::now();
    return eventsPerSec(count,
                        std::chrono::duration<double>(t1 - t0).count());
}

/** Same shape with full Msg payloads through the dispatch path. */
double
benchMessages(std::uint64_t count)
{
    EventQueue eq;
    eq.setMsgDispatcher(
        [](void*, std::uint32_t, const Msg& m) {
            g_sink += m.blockAddr;
        },
        nullptr);
    Msg msg;
    msg.type = MsgType::Inv;
    msg.hasData = true;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t scheduled = 0;
    while (scheduled < count) {
        for (int i = 0; i < 64 && scheduled < count; ++i, ++scheduled) {
            msg.blockAddr = scheduled * kBlockBytes;
            eq.scheduleMsg(static_cast<Cycle>(1 + (i % 37)),
                           static_cast<std::uint32_t>(i % 32), msg);
        }
        eq.advanceTo(eq.now() + 40);
    }
    eq.drain();
    const auto t1 = std::chrono::steady_clock::now();
    return eventsPerSec(count,
                        std::chrono::duration<double>(t1 - t0).count());
}

/** Self-rescheduling chains: pure steady-state node recycling. */
double
benchChains(std::uint64_t count)
{
    struct Chain
    {
        EventQueue* eq;
        std::uint64_t remaining;

        void
        step()
        {
            ++g_sink;
            if (--remaining == 0)
                return;
            Chain* self = this;
            eq->schedule(3, [self]() { self->step(); });
        }
    };
    EventQueue eq;
    constexpr int kChains = 16;
    Chain chains[kChains];
    for (int c = 0; c < kChains; ++c) {
        chains[c] = Chain{&eq, count / kChains};
        Chain* self = &chains[c];
        eq.schedule(static_cast<Cycle>(c + 1), [self]() { self->step(); });
    }
    const auto t0 = std::chrono::steady_clock::now();
    eq.drain();
    const auto t1 = std::chrono::steady_clock::now();
    return eventsPerSec(eq.executedCount(),
                        std::chrono::duration<double>(t1 - t0).count());
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t count = 2'000'000;
    if (argc > 1)
        count = std::strtoull(argv[1], nullptr, 10);
    if (const char* env = std::getenv("INVISIFENCE_BENCH_CYCLES")) {
        // Smoke tier reuses the global budget knob to stay brief.
        const std::uint64_t budget = std::strtoull(env, nullptr, 10);
        if (budget > 0 && budget * 500 < count)
            count = budget * 500;
    }

    const double cb = benchCallbacks(count);
    const double msg = benchMessages(count);
    const double chain = benchChains(count);
    std::printf("== Event-queue throughput (%llu events per shape) ==\n",
                static_cast<unsigned long long>(count));
    std::printf("  callbacks : %12.0f events/s\n", cb);
    std::printf("  messages  : %12.0f events/s\n", msg);
    std::printf("  chains    : %12.0f events/s\n", chain);
    // Keep g_sink observable so the work cannot be optimized away.
    std::fprintf(stderr, "  (checksum %llu)\n",
                 static_cast<unsigned long long>(g_sink));
    return 0;
}
