/**
 * @file
 * Section 6.6 claim: commit-on-violate applied to INVISIFENCE-SELECTIVE
 * gains little (<1% average in the paper) because selective speculation
 * aborts far less often than continuous speculation.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Section 6.6: CoV applied to Invisi_sc "
                "(speedup over plain Invisi_sc)");
    table.setHeader({"workload", "speedup", "aborts_plain", "aborts_cov"});

    std::vector<const char*> names;
    for (const auto& wl : workloadSuite())
        names.push_back(wl.name.c_str());
    const std::vector<SweepStats> stats = runValueSweep(
        names, std::vector<bool>{false, true}, ImplKind::InvisiSC, base,
        [](RunConfig& cfg, bool cov) { cfg.system.selectiveCov = cov; },
        [](bool cov) { return cov ? "+cov" : ""; });

    // Stats come back name-major: [plain, cov] per workload.
    std::vector<double> speedups;
    for (std::size_t w = 0; w < names.size(); ++w) {
        const SweepStats& plain = stats[2 * w];
        const SweepStats& with_cov = stats[2 * w + 1];
        const Estimate sp = estimateOf(pairedSpeedups(with_cov, plain));
        if (sp.n > 0)
            speedups.push_back(sp.mean);
        table.addRow({plain.workload,
                      sp.n > 0 ? cellWithCi(sp) : "stalled",
                      std::to_string(plain.primary().aborts),
                      std::to_string(with_cov.primary().aborts)});
    }
    table.addRow({"geomean",
                  speedups.empty() ? "n/a"
                                   : Table::num(geomean(speedups), 3),
                  "", ""});
    table.print(std::cout);
    std::cout << "Paper claim: selective speculation rarely aborts, so\n"
                 "deferring violators buys <1% on average.\n";
    return 0;
}
