/**
 * @file
 * Section 6.6 claim: commit-on-violate applied to INVISIFENCE-SELECTIVE
 * gains little (<1% average in the paper) because selective speculation
 * aborts far less often than continuous speculation.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Section 6.6: CoV applied to Invisi_sc "
                "(speedup over plain Invisi_sc)");
    table.setHeader({"workload", "speedup", "aborts_plain", "aborts_cov"});
    std::vector<double> speedups;
    for (const auto& wl : workloadSuite()) {
        const RunResult plain =
            runExperiment(wl, ImplKind::InvisiSC, base);
        RunConfig cov = base;
        cov.system.selectiveCov = true;
        const RunResult with_cov =
            runExperiment(wl, ImplKind::InvisiSC, cov);
        const double sp = with_cov.throughput() / plain.throughput();
        speedups.push_back(sp);
        table.addRow({wl.name, Table::num(sp, 3),
                      std::to_string(plain.aborts),
                      std::to_string(with_cov.aborts)});
    }
    table.addRow({"geomean", Table::num(geomean(speedups), 3), "", ""});
    table.print(std::cout);
    std::cout << "Paper claim: selective speculation rarely aborts, so\n"
                 "deferring violators buys <1% on average.\n";
    return 0;
}
