/**
 * @file
 * Ablation (Section 4.2): minimum chunk size for INVISIFENCE-CONTINUOUS
 * (the paper uses ~100 instructions).
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: continuous-mode minimum chunk size "
                "(throughput relative to 100 instructions)");
    table.setHeader({"workload", "25", "50", "100", "200", "400"});
    const std::vector<const char*> names = {"Apache", "Barnes", "Ocean"};
    const std::vector<std::uint32_t> sizes = {25, 50, 100, 200, 400};
    const auto thr = runAblation(
        names, sizes, ImplKind::Continuous, base,
        [](RunConfig& cfg, std::uint32_t size) {
            cfg.system.minChunkSize = size;
        });
    for (const char* name : names) {
        const std::vector<double>& t = thr.at(name);
        table.addRow({name, Table::num(t[0] / t[2], 3),
                      Table::num(t[1] / t[2], 3), "1.000",
                      Table::num(t[3] / t[2], 3),
                      Table::num(t[4] / t[2], 3)});
    }
    table.print(std::cout);
    std::cout << "Tradeoff: small chunks checkpoint too often; large\n"
                 "chunks increase violation vulnerability.\n";
    return 0;
}
