/**
 * @file
 * Ablation (Section 4.2): minimum chunk size for INVISIFENCE-CONTINUOUS
 * (the paper uses ~100 instructions).
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: continuous-mode minimum chunk size "
                "(throughput relative to 100 instructions)");
    table.setHeader({"workload", "25", "50", "100", "200", "400"});
    for (const char* name : {"Apache", "Barnes", "Ocean"}) {
        const Workload& wl = workloadByName(name);
        std::map<std::uint32_t, double> thr;
        for (const std::uint32_t size : {25u, 50u, 100u, 200u, 400u}) {
            RunConfig cfg = base;
            cfg.system.minChunkSize = size;
            thr[size] = runExperiment(wl, ImplKind::Continuous,
                                      cfg).throughput();
        }
        table.addRow({name, Table::num(thr[25] / thr[100], 3),
                      Table::num(thr[50] / thr[100], 3), "1.000",
                      Table::num(thr[200] / thr[100], 3),
                      Table::num(thr[400] / thr[100], 3)});
    }
    table.print(std::cout);
    std::cout << "Tradeoff: small chunks checkpoint too often; large\n"
                 "chunks increase violation vulnerability.\n";
    return 0;
}
