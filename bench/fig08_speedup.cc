/**
 * @file
 * Figure 8: speedups of INVISIFENCE-SELECTIVE variants and conventional
 * TSO/RMO over conventional SC.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig cfg = RunConfig::fromEnv();
    const std::vector<ImplKind> kinds = {
        ImplKind::ConvSC,   ImplKind::ConvTSO,   ImplKind::ConvRMO,
        ImplKind::InvisiSC, ImplKind::InvisiTSO, ImplKind::InvisiRMO};
    const auto matrix = runMatrix(kinds, cfg);
    printSpeedups("Figure 8: speedup over conventional SC", matrix,
                  kinds, "sc");
    std::cout << "Paper shape: tso > sc, rmo > tso; every Invisi variant\n"
                 "beats its conventional counterpart; Invisi_rmo is the\n"
                 "fastest configuration overall.\n";
    return 0;
}
