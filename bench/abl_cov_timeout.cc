/**
 * @file
 * Ablation: commit-on-violate timeout sensitivity (the paper uses a
 * 4000-cycle interval) for INVISIFENCE-CONTINUOUS.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: CoV timeout (Invisi_cont_CoV throughput "
                "relative to the paper's 4000 cycles)");
    table.setHeader({"workload", "250", "1000", "4000", "16000"});
    const std::vector<const char*> names = {"Apache", "OLTP-DB2",
                                            "Ocean"};
    const std::vector<Cycle> timeouts = {250, 1000, 4000, 16000};
    const auto thr = runAblation(
        names, timeouts, ImplKind::ContinuousCoV, base,
        [](RunConfig& cfg, Cycle timeout) {
            cfg.system.covTimeout = timeout;
        });
    for (const char* name : names) {
        const std::vector<double>& t = thr.at(name);
        table.addRow({name, Table::num(t[0] / t[2], 3),
                      Table::num(t[1] / t[2], 3), "1.000",
                      Table::num(t[3] / t[2], 3)});
    }
    table.print(std::cout);
    return 0;
}
