/**
 * @file
 * Ablation: commit-on-violate timeout sensitivity (the paper uses a
 * 4000-cycle interval) for INVISIFENCE-CONTINUOUS.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: CoV timeout (Invisi_cont_CoV throughput "
                "relative to the paper's 4000 cycles)");
    table.setHeader({"workload", "250", "1000", "4000", "16000"});
    for (const char* name : {"Apache", "OLTP-DB2", "Ocean"}) {
        const Workload& wl = workloadByName(name);
        std::map<Cycle, double> thr;
        for (const Cycle timeout : {250u, 1000u, 4000u, 16000u}) {
            RunConfig cfg = base;
            cfg.system.covTimeout = timeout;
            thr[timeout] = runExperiment(wl, ImplKind::ContinuousCoV,
                                         cfg).throughput();
        }
        table.addRow({name, Table::num(thr[250] / thr[4000], 3),
                      Table::num(thr[1000] / thr[4000], 3), "1.000",
                      Table::num(thr[16000] / thr[4000], 3)});
    }
    table.print(std::cout);
    return 0;
}
