/**
 * @file
 * Figure 10 (and the Figure 4 row data): percent of cycles that
 * INVISIFENCE-SELECTIVE variants spend in speculation.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig cfg = RunConfig::fromEnv();
    const std::vector<ImplKind> kinds = {
        ImplKind::InvisiSC, ImplKind::InvisiTSO, ImplKind::InvisiRMO};
    const auto matrix = runMatrix(kinds, cfg);

    Table table("Figure 10: percent of cycles in speculation");
    table.setHeader({"workload", "Invisi_sc", "Invisi_tso",
                     "Invisi_rmo"});
    for (const auto& wl : workloadSuite()) {
        const ResultRow& row = matrix.at(wl.name);
        table.addRow(
            {wl.name,
             Table::pct(row.at("Invisi_sc").specFraction().mean),
             Table::pct(row.at("Invisi_tso").specFraction().mean),
             Table::pct(row.at("Invisi_rmo").specFraction().mean)});
    }
    table.print(std::cout);
    std::cout << "Paper shape (Figure 4): Invisi_rmo speculates the\n"
                 "least (fences/atomics only); Invisi_sc and Invisi_tso\n"
                 "speculate on store/load reorderings, up to ~50%.\n";
    return 0;
}
