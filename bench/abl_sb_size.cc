/**
 * @file
 * Ablation (Section 6.1): coalescing store-buffer capacity sensitivity
 * for INVISIFENCE-SELECTIVE. The paper's sensitivity study found eight
 * entries sufficient for single-checkpoint configurations.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: Invisi_sc store-buffer entries "
                "(throughput relative to 8 entries)");
    table.setHeader({"workload", "2", "4", "8", "16", "32"});
    for (const char* name : {"Apache", "OLTP-DB2", "Ocean"}) {
        const Workload& wl = workloadByName(name);
        std::map<std::uint32_t, double> thr;
        for (const std::uint32_t entries : {2u, 4u, 8u, 16u, 32u}) {
            RunConfig cfg = base;
            cfg.system.specSbEntries = entries;
            thr[entries] =
                runExperiment(wl, ImplKind::InvisiSC, cfg).throughput();
        }
        table.addRow({name, Table::num(thr[2] / thr[8], 3),
                      Table::num(thr[4] / thr[8], 3), "1.000",
                      Table::num(thr[16] / thr[8], 3),
                      Table::num(thr[32] / thr[8], 3)});
    }
    table.print(std::cout);
    std::cout << "Paper claim: eight entries perform close to unbounded\n"
                 "capacity (diminishing returns beyond 8).\n";
    return 0;
}
