/**
 * @file
 * Ablation (Section 6.1): coalescing store-buffer capacity sensitivity
 * for INVISIFENCE-SELECTIVE. The paper's sensitivity study found eight
 * entries sufficient for single-checkpoint configurations.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig base = RunConfig::fromEnv();
    Table table("Ablation: Invisi_sc store-buffer entries "
                "(throughput relative to 8 entries)");
    table.setHeader({"workload", "2", "4", "8", "16", "32"});
    const std::vector<const char*> names = {"Apache", "OLTP-DB2",
                                            "Ocean"};
    const std::vector<std::uint32_t> entries = {2, 4, 8, 16, 32};
    const auto thr = runAblation(
        names, entries, ImplKind::InvisiSC, base,
        [](RunConfig& cfg, std::uint32_t n) {
            cfg.system.specSbEntries = n;
        });
    for (const char* name : names) {
        const std::vector<double>& t = thr.at(name);
        table.addRow({name, Table::num(t[0] / t[2], 3),
                      Table::num(t[1] / t[2], 3), "1.000",
                      Table::num(t[3] / t[2], 3),
                      Table::num(t[4] / t[2], 3)});
    }
    table.print(std::cout);
    std::cout << "Paper claim: eight entries perform close to unbounded\n"
                 "capacity (diminishing returns beyond 8).\n";
    return 0;
}
