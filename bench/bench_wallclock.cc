/**
 * @file
 * Simulator-throughput tracker: simulated kilocycles per wall-clock
 * second, per implementation kind, with the quiescence-aware
 * fast-forward scheduler off (legacy per-cycle loop) and on.
 *
 * Run via the `bench_wallclock` binary; the `bench_wallclock_json`
 * CMake target regenerates the committed BENCH_wallclock.json so the
 * perf trajectory is tracked PR-over-PR, the same flow as
 * BENCH_baseline.json. Two figure configurations are measured: the
 * gentler interconnect used by the fig08/fig09 benches ("bench") and
 * the paper's Figure 6 parameters ("paper"), where 100-cycle hops make
 * stall windows long and the event-driven scheduler shines.
 *
 * Schema v2 adds two columns per point: events/sec (event-queue
 * executions per wall second, fastfwd mode) and allocs/cycle (global
 * operator-new calls per simulated cycle across the measure window —
 * 0.000 is the pooled event path's contract). Schema v3 adds the
 * memory-system accounting counters (mshr_full_stalls,
 * dir_stale_writebacks, dir_queued_requests) so perfsmoke shows stall
 * behavior drifting alongside raw throughput; comparing against a
 * pre-v3 artifact prints "-" for the committed side.
 *
 * Usage:
 *   bench_wallclock [out.json]                 measure, optionally write
 *   bench_wallclock --config bench             restrict to one config
 *   bench_wallclock --impl Invisi_sc           restrict to one impl
 *   bench_wallclock --against FILE --min-ratio R
 *       after measuring, compare each point's kcps_fastfwd against the
 *       committed FILE; exit 1 if any ratio drops below R (ci.sh
 *       perfsmoke uses this with R sized for a noisy 1-CPU box).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"

// ---------------------------------------------------------------------
// Global allocation counter (this binary only): proves the zero-alloc
// steady-state property in the committed perf artifact.
// ---------------------------------------------------------------------

namespace {
std::uint64_t g_allocCount = 0;
}

// The counting replacements pair malloc with free by design; GCC's
// mismatched-new-delete heuristic cannot see that both sides are
// replaced together.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void*
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

using namespace invisifence;
using namespace invisifence::bench;

namespace {

struct Point
{
    std::string config;
    std::string impl;
    double kcpsLegacy = 0;    //!< sim kilocycles / wall second, legacy
    double kcpsFastfwd = 0;   //!< same with INVISIFENCE_FASTFWD on
    double speedup = 0;
    double dormantFrac = 0;   //!< core cycles skipped while dormant
    double eventsPerSec = 0;  //!< event executions / wall second (fastfwd)
    double allocsPerCycle = 0; //!< operator new calls / simulated cycle
    /** @{ Whole-run memory-system accounting (fastfwd run): MSHR-full
     *  stall episodes, stale writebacks and queued requests at the
     *  directories. Schema v3 fields. */
    std::uint64_t mshrFullStalls = 0;
    std::uint64_t dirStaleWritebacks = 0;
    std::uint64_t dirQueuedRequests = 0;
    /** @} */
};

/** Wall-time one full run (warmup + measure) and return kcycles/s. */
double
timedRun(const Workload& wl, ImplKind kind, const RunConfig& cfg,
         int fast_forward, Point* out)
{
    RunConfig run_cfg = cfg;
    run_cfg.system.fastForward = fast_forward;
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (std::uint32_t t = 0; t < run_cfg.system.numCores; ++t) {
        programs.push_back(std::make_unique<SyntheticProgram>(
            wl.params, t, run_cfg.seed));
    }
    System sys(run_cfg.system, std::move(programs), kind);
    warmSystem(sys, wl.params, benchEnv().warmSharers);
    const Cycle cycles = run_cfg.warmupCycles + run_cfg.measureCycles;
    const auto t0 = std::chrono::steady_clock::now();
    sys.run(run_cfg.warmupCycles);
    // Events and allocations are sampled over the measure window only,
    // so their wall-time denominator starts here, not at t0 (kcps keeps
    // the full-run window for continuity with the committed history).
    const auto t_measure = std::chrono::steady_clock::now();
    const std::uint64_t allocs0 = g_allocCount;
    const std::uint64_t events0 = sys.eventQueue().executedCount();
    sys.run(run_cfg.measureCycles);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs1 = g_allocCount;
    const std::uint64_t events1 = sys.eventQueue().executedCount();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double measure_secs =
        std::chrono::duration<double>(t1 - t_measure).count();
    if (out) {
        const double total = static_cast<double>(sys.totalCoreCycles());
        out->dormantFrac =
            total > 0
                ? static_cast<double>(sys.statFastForwardedCycles) / total
                : 0.0;
        out->eventsPerSec =
            measure_secs > 0
                ? static_cast<double>(events1 - events0) / measure_secs
                : 0.0;
        out->allocsPerCycle =
            static_cast<double>(allocs1 - allocs0) /
            static_cast<double>(run_cfg.measureCycles);
        out->mshrFullStalls = sys.totalMshrFullStalls();
        out->dirStaleWritebacks = sys.totalDirStaleWritebacks();
        out->dirQueuedRequests = sys.totalDirQueuedRequests();
    }
    return secs > 0 ? static_cast<double>(cycles) / secs / 1000.0 : 0.0;
}

void
writeJson(std::ostream& os, const std::vector<Point>& points, Cycle cycles)
{
    os << "{\n  \"schema\": \"invisifence-wallclock-v3\",\n";
    os << "  \"cycles\": " << cycles << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "    {\"config\": \"%s\", \"impl\": \"%s\", "
                      "\"kcps_legacy\": %.1f, \"kcps_fastfwd\": %.1f, "
                      "\"speedup\": %.2f, \"dormant_frac\": %.3f, "
                      "\"events_per_sec\": %.0f, "
                      "\"allocs_per_cycle\": %.3f, "
                      "\"mshr_full_stalls\": %llu, "
                      "\"dir_stale_writebacks\": %llu, "
                      "\"dir_queued_requests\": %llu}%s\n",
                      p.config.c_str(), p.impl.c_str(), p.kcpsLegacy,
                      p.kcpsFastfwd, p.speedup, p.dormantFrac,
                      p.eventsPerSec, p.allocsPerCycle,
                      static_cast<unsigned long long>(p.mshrFullStalls),
                      static_cast<unsigned long long>(
                          p.dirStaleWritebacks),
                      static_cast<unsigned long long>(
                          p.dirQueuedRequests),
                      i + 1 < points.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
}

/**
 * Committed-JSON regression check: naive line scan for
 * (config, impl, kcps_fastfwd) triples — the artifact is machine-written
 * with one point per line, so no JSON parser is needed. Prints a
 * per-point delta table (measured vs committed kcps, absolute delta,
 * ratio) plus the geomean ratio, so a perfsmoke run shows the shape of
 * a drift, not just pass/fail.
 */
bool
checkAgainst(const std::string& path, const std::vector<Point>& points,
             double min_ratio, const std::string& skip_impl)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot read committed JSON '%s'\n",
                     path.c_str());
        return false;
    }
    const auto field = [](const std::string& line, const char* key)
        -> std::string {
        const std::string tag = std::string("\"") + key + "\": ";
        const std::size_t at = line.find(tag);
        if (at == std::string::npos)
            return "";
        std::size_t from = at + tag.size();
        std::size_t to = line.find_first_of(",}", from);
        std::string v = line.substr(from, to - from);
        if (!v.empty() && v.front() == '"')
            v = v.substr(1, v.size() - 2);
        return v;
    };
    // The v3 stat fields print as measured/committed pairs; a "-"
    // committed side means the compared artifact predates schema v3.
    // They are informational columns, not part of the kcps gate.
    const auto pair = [](std::uint64_t measured,
                         const std::string& committed) -> std::string {
        return std::to_string(measured) + "/" +
               (committed.empty() ? "-" : committed);
    };
    bool ok = true;
    int compared = 0;
    double log_ratio_sum = 0.0;
    std::printf("  %-6s %-16s %9s %9s %9s %7s %11s %10s %11s\n",
                "config", "impl", "measured", "committed", "delta",
                "ratio", "mshr_stall", "stale_wb", "dir_queued");
    std::string line;
    while (std::getline(is, line)) {
        const std::string config = field(line, "config");
        const std::string impl = field(line, "impl");
        const std::string committed = field(line, "kcps_fastfwd");
        if (config.empty() || impl.empty() || committed.empty())
            continue;
        if (impl == skip_impl)
            continue;
        for (const Point& p : points) {
            if (p.config != config || p.impl != impl)
                continue;
            const double base = std::atof(committed.c_str());
            if (base <= 0)
                continue;
            const double ratio = p.kcpsFastfwd / base;
            ++compared;
            log_ratio_sum += std::log(ratio);
            std::printf(
                "  %-6s %-16s %9.1f %9.1f %+9.1f %6.2fx %11s %10s %11s%s\n",
                config.c_str(), impl.c_str(), p.kcpsFastfwd, base,
                p.kcpsFastfwd - base, ratio,
                pair(p.mshrFullStalls,
                     field(line, "mshr_full_stalls")).c_str(),
                pair(p.dirStaleWritebacks,
                     field(line, "dir_stale_writebacks")).c_str(),
                pair(p.dirQueuedRequests,
                     field(line, "dir_queued_requests")).c_str(),
                ratio < min_ratio ? "  REGRESSED" : "");
            if (ratio < min_ratio)
                ok = false;
        }
    }
    if (compared == 0) {
        std::fprintf(stderr, "perfcheck compared no points\n");
        return false;
    }
    std::printf("  geomean ratio over %d points: %.2fx (gate: %.2f "
                "per point)\n",
                compared, std::exp(log_ratio_sum / compared), min_ratio);
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string json_out;
    std::string only_config;
    std::string only_impl;
    std::string against;
    std::string skip_check_impl;
    double min_ratio = 0.75;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc)
                IF_FATAL("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--config") {
            only_config = next();
        } else if (arg == "--impl") {
            only_impl = next();
        } else if (arg == "--against") {
            against = next();
        } else if (arg == "--min-ratio") {
            const char* text = next();
            char* end = nullptr;
            min_ratio = std::strtod(text, &end);
            if (end == text || *end != '\0' || min_ratio <= 0.0 ||
                min_ratio > 10.0) {
                IF_FATAL("--min-ratio '%s' is not a number in (0, 10]",
                         text);
            }
        } else if (arg == "--skip-check-impl") {
            skip_check_impl = next();
        } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            IF_FATAL("unknown option '%s'", arg.c_str());
        } else {
            json_out = arg;
        }
    }

    const RunConfig base = RunConfig::fromEnv();
    const Workload& wl = workloadByName("Apache");
    const Cycle cycles = base.warmupCycles + base.measureCycles;

    struct Config
    {
        const char* name;
        SystemParams params;
    };
    const std::vector<Config> configs = {
        {"bench", SystemParams::bench()},
        {"paper", SystemParams::paper()},
    };

    std::vector<Point> points;
    Table table("Simulator wall-clock throughput (Apache, " +
                std::to_string(cycles) + " cycles)");
    table.setHeader({"config", "impl", "kcyc/s legacy", "kcyc/s fastfwd",
                     "speedup", "dormant", "events/s", "allocs/cyc",
                     "mshr stl", "stale wb", "dir q"});
    for (const Config& config : configs) {
        if (!only_config.empty() && only_config != config.name)
            continue;
        for (const ImplKind kind : {
                 ImplKind::ConvSC, ImplKind::ConvTSO, ImplKind::ConvRMO,
                 ImplKind::InvisiSC, ImplKind::InvisiTSO,
                 ImplKind::InvisiRMO, ImplKind::InvisiSC2Ckpt,
                 ImplKind::Continuous, ImplKind::ContinuousCoV,
                 ImplKind::Aso}) {
            if (!only_impl.empty() && only_impl != implKindName(kind))
                continue;
            RunConfig cfg = base;
            cfg.system = config.params;
            Point p;
            p.config = config.name;
            p.impl = implKindName(kind);
            p.kcpsLegacy = timedRun(wl, kind, cfg, 0, nullptr);
            p.kcpsFastfwd = timedRun(wl, kind, cfg, 1, &p);
            p.speedup =
                p.kcpsLegacy > 0 ? p.kcpsFastfwd / p.kcpsLegacy : 0.0;
            table.addRow({p.config, p.impl, Table::num(p.kcpsLegacy, 1),
                          Table::num(p.kcpsFastfwd, 1),
                          Table::num(p.speedup, 2) + "x",
                          Table::pct(p.dormantFrac),
                          Table::num(p.eventsPerSec, 0),
                          Table::num(p.allocsPerCycle, 3),
                          std::to_string(p.mshrFullStalls),
                          std::to_string(p.dirStaleWritebacks),
                          std::to_string(p.dirQueuedRequests)});
            points.push_back(std::move(p));
        }
    }
    table.print(std::cout);

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os)
            IF_FATAL("cannot write '%s'", json_out.c_str());
        writeJson(os, points, cycles);
        std::cerr << "  wrote wall-clock JSON to " << json_out
                  << std::endl;
    }
    if (!against.empty() &&
        !checkAgainst(against, points, min_ratio, skip_check_impl)) {
        std::fprintf(stderr, "perfcheck FAILED (min ratio %.2f)\n",
                     min_ratio);
        return 1;
    }
    return 0;
}
