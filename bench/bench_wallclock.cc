/**
 * @file
 * Simulator-throughput tracker: simulated kilocycles per wall-clock
 * second, per implementation kind, with the quiescence-aware
 * fast-forward scheduler off (legacy per-cycle loop) and on.
 *
 * Run via the `bench_wallclock` binary; the `bench_wallclock_json`
 * CMake target regenerates the committed BENCH_wallclock.json so the
 * perf trajectory is tracked PR-over-PR, the same flow as
 * BENCH_baseline.json. Two figure configurations are measured: the
 * gentler interconnect used by the fig08/fig09 benches ("bench") and
 * the paper's Figure 6 parameters ("paper"), where 100-cycle hops make
 * stall windows long and the event-driven scheduler shines.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

namespace {

struct Point
{
    std::string config;
    std::string impl;
    double kcpsLegacy = 0;    //!< sim kilocycles / wall second, legacy
    double kcpsFastfwd = 0;   //!< same with INVISIFENCE_FASTFWD on
    double speedup = 0;
    double dormantFrac = 0;   //!< core cycles skipped while dormant
};

/** Wall-time one full run (warmup + measure) and return kcycles/s. */
double
timedRun(const Workload& wl, ImplKind kind, const RunConfig& cfg,
         int fast_forward, double* dormant_frac)
{
    RunConfig run_cfg = cfg;
    run_cfg.system.fastForward = fast_forward;
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (std::uint32_t t = 0; t < run_cfg.system.numCores; ++t) {
        programs.push_back(std::make_unique<SyntheticProgram>(
            wl.params, t, run_cfg.seed));
    }
    System sys(run_cfg.system, std::move(programs), kind);
    warmSystem(sys, wl.params);
    const Cycle cycles = run_cfg.warmupCycles + run_cfg.measureCycles;
    const auto t0 = std::chrono::steady_clock::now();
    sys.run(cycles);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (dormant_frac) {
        const double total = static_cast<double>(sys.totalCoreCycles());
        *dormant_frac =
            total > 0
                ? static_cast<double>(sys.statFastForwardedCycles) / total
                : 0.0;
    }
    return secs > 0 ? static_cast<double>(cycles) / secs / 1000.0 : 0.0;
}

void
writeJson(std::ostream& os, const std::vector<Point>& points, Cycle cycles)
{
    os << "{\n  \"schema\": \"invisifence-wallclock-v1\",\n";
    os << "  \"cycles\": " << cycles << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"config\": \"%s\", \"impl\": \"%s\", "
                      "\"kcps_legacy\": %.1f, \"kcps_fastfwd\": %.1f, "
                      "\"speedup\": %.2f, \"dormant_frac\": %.3f}%s\n",
                      p.config.c_str(), p.impl.c_str(), p.kcpsLegacy,
                      p.kcpsFastfwd, p.speedup, p.dormantFrac,
                      i + 1 < points.size() ? "," : "");
        os << buf;
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const RunConfig base = RunConfig::fromEnv();
    const Workload& wl = workloadByName("Apache");
    const Cycle cycles = base.warmupCycles + base.measureCycles;

    struct Config
    {
        const char* name;
        SystemParams params;
    };
    const std::vector<Config> configs = {
        {"bench", SystemParams::bench()},
        {"paper", SystemParams::paper()},
    };

    std::vector<Point> points;
    Table table("Simulator wall-clock throughput (Apache, " +
                std::to_string(cycles) + " cycles)");
    table.setHeader({"config", "impl", "kcyc/s legacy", "kcyc/s fastfwd",
                     "speedup", "dormant"});
    for (const Config& config : configs) {
        for (const ImplKind kind : {
                 ImplKind::ConvSC, ImplKind::ConvTSO, ImplKind::ConvRMO,
                 ImplKind::InvisiSC, ImplKind::InvisiTSO,
                 ImplKind::InvisiRMO, ImplKind::InvisiSC2Ckpt,
                 ImplKind::Continuous, ImplKind::ContinuousCoV,
                 ImplKind::Aso}) {
            RunConfig cfg = base;
            cfg.system = config.params;
            Point p;
            p.config = config.name;
            p.impl = implKindName(kind);
            p.kcpsLegacy = timedRun(wl, kind, cfg, 0, nullptr);
            p.kcpsFastfwd = timedRun(wl, kind, cfg, 1, &p.dormantFrac);
            p.speedup =
                p.kcpsLegacy > 0 ? p.kcpsFastfwd / p.kcpsLegacy : 0.0;
            table.addRow({p.config, p.impl, Table::num(p.kcpsLegacy, 1),
                          Table::num(p.kcpsFastfwd, 1),
                          Table::num(p.speedup, 2) + "x",
                          Table::pct(p.dormantFrac)});
            points.push_back(std::move(p));
        }
    }
    table.print(std::cout);

    if (argc > 1) {
        std::ofstream os(argv[1]);
        if (!os)
            IF_FATAL("cannot write '%s'", argv[1]);
        writeJson(os, points, cycles);
        std::cerr << "  wrote wall-clock JSON to " << argv[1]
                  << std::endl;
    }
    return 0;
}
