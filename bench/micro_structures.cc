/**
 * @file
 * google-benchmark microbenchmarks of the hot hardware structures: the
 * flash operations the paper's Figure 3 circuits implement in a single
 * cycle, store-buffer searches, cache lookups, and the event queue.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.hh"
#include "mem/store_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace invisifence;

namespace {

/** Install @p a (victimizing if needed) and return its line. */
CacheArray::Line
installBlock(CacheArray& cache, Addr a)
{
    if (CacheArray::Line hit = cache.lookup(a))
        return hit;
    CacheArray::Line line = cache.findVictim(a);
    if (line.valid())
        line.invalidate();
    line.install(a, CoherenceState::Shared);
    cache.touch(line);
    return line;
}

/** Fill @p cache with 512 random valid blocks, plus block 0 (which the
 *  pinned-line shapes below probe). */
void
populate(CacheArray& cache)
{
    Rng rng(1);
    for (int i = 0; i < 512; ++i) {
        installBlock(cache,
                     static_cast<Addr>(rng.below(1024)) * kBlockBytes);
    }
    installBlock(cache, 0);
}

} // namespace

static void
BM_CacheLookup(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    populate(cache);
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(probe));
        probe = (probe + kBlockBytes) & 0xffff;
    }
}
BENCHMARK(BM_CacheLookup);

/** The protocol-step shape the MRU way predictor targets: repeated
 *  same-block lookups resolve on the first predicted tag. */
static void
BM_CacheLookupSameBlock(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    populate(cache);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.lookup(0));
}
BENCHMARK(BM_CacheLookupSameBlock);

/** O(1) revalidation of a generation-stamped handle vs a fresh scan. */
static void
BM_CacheHandleResolve(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    populate(cache);
    const CacheArray::Handle h = cache.lookup(0).handle();
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.resolve(h));
}
BENCHMARK(BM_CacheHandleResolve);

/** Commit with no marked lines: O(marked) means near-free. */
static void
BM_FlashClearSpecBits(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    populate(cache);
    for (auto _ : state)
        cache.flashClearSpecBits(0);
}
BENCHMARK(BM_FlashClearSpecBits);

/** Commit with a realistic speculative footprint: mark N lines, flash
 *  them, per iteration — the cost the per-checkpoint path actually
 *  pays (plus the marking itself). */
static void
BM_FlashClearSpecBitsMarked(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    populate(cache);
    const std::uint32_t marked =
        static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        for (std::uint32_t i = 0; i < marked; ++i) {
            CacheArray::Line line =
                cache.lookup(static_cast<Addr>(i) * kBlockBytes);
            if (!line) {
                line = cache.findVictim(static_cast<Addr>(i) *
                                        kBlockBytes);
                if (line.valid())
                    line.invalidate();
                line.install(static_cast<Addr>(i) * kBlockBytes,
                             CoherenceState::Shared);
            }
            line.setSpecRead(0);
        }
        cache.flashClearSpecBits(0);
    }
}
BENCHMARK(BM_FlashClearSpecBitsMarked)->Arg(8)->Arg(64);

static void
BM_FlashInvalidateSpecWritten(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    populate(cache);
    for (auto _ : state)
        cache.flashInvalidateSpecWritten(0);
}
BENCHMARK(BM_FlashInvalidateSpecWritten);

static void
BM_FifoSbForward(benchmark::State& state)
{
    FifoStoreBuffer sb(64);
    for (InstSeq i = 0; i < 64; ++i)
        sb.push(static_cast<Addr>(i % 48) * 8, i, i);
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sb.forward(probe));
        probe = (probe + 8) % 512;
    }
}
BENCHMARK(BM_FifoSbForward);

static void
BM_CoalescingSbGather(benchmark::State& state)
{
    CoalescingStoreBuffer sb(8);
    for (InstSeq i = 0; i < 8; ++i)
        sb.store(static_cast<Addr>(i) * kBlockBytes, 8, i, false,
                 kNonSpecCtx, i);
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sb.gatherBlock(probe));
        probe = (probe + kBlockBytes) % (8 * kBlockBytes);
    }
}
BENCHMARK(BM_CoalescingSbGather);

static void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    EventQueue eq;
    Cycle t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 8; ++i)
            eq.schedule(static_cast<Cycle>(1 + i % 5), []() {});
        t += 8;
        eq.advanceTo(t);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

BENCHMARK_MAIN();
