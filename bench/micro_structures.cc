/**
 * @file
 * google-benchmark microbenchmarks of the hot hardware structures: the
 * flash operations the paper's Figure 3 circuits implement in a single
 * cycle, store-buffer searches, cache lookups, and the event queue.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.hh"
#include "mem/store_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace invisifence;

static void
BM_CacheLookup(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    Rng rng(1);
    for (int i = 0; i < 512; ++i) {
        const Addr a = static_cast<Addr>(rng.below(1024)) * kBlockBytes;
        CacheLine& line = cache.findVictim(a);
        line.blockAddr = a;
        line.state = CoherenceState::Shared;
    }
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(probe));
        probe = (probe + kBlockBytes) & 0xffff;
    }
}
BENCHMARK(BM_CacheLookup);

static void
BM_FlashClearSpecBits(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    for (auto _ : state)
        cache.flashClearSpecBits(0);
}
BENCHMARK(BM_FlashClearSpecBits);

static void
BM_FlashInvalidateSpecWritten(benchmark::State& state)
{
    CacheArray cache(64 * 1024, 2, "bm");
    for (auto _ : state)
        cache.flashInvalidateSpecWritten(0);
}
BENCHMARK(BM_FlashInvalidateSpecWritten);

static void
BM_FifoSbForward(benchmark::State& state)
{
    FifoStoreBuffer sb(64);
    for (InstSeq i = 0; i < 64; ++i)
        sb.push(static_cast<Addr>(i % 48) * 8, i, i);
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sb.forward(probe));
        probe = (probe + 8) % 512;
    }
}
BENCHMARK(BM_FifoSbForward);

static void
BM_CoalescingSbGather(benchmark::State& state)
{
    CoalescingStoreBuffer sb(8);
    for (InstSeq i = 0; i < 8; ++i)
        sb.store(static_cast<Addr>(i) * kBlockBytes, 8, i, false,
                 kNonSpecCtx, i);
    Addr probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sb.gatherBlock(probe));
        probe = (probe + kBlockBytes) % (8 * kBlockBytes);
    }
}
BENCHMARK(BM_CoalescingSbGather);

static void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    EventQueue eq;
    Cycle t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 8; ++i)
            eq.schedule(static_cast<Cycle>(1 + i % 5), []() {});
        t += 8;
        eq.advanceTo(t);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

BENCHMARK_MAIN();
