/**
 * @file
 * Figure 9: runtime breakdown (Busy/Other/SB-full/SB-drain/Violation)
 * of conventional and INVISIFENCE configurations, normalized to SC.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig cfg = RunConfig::fromEnv();
    const std::vector<ImplKind> kinds = {
        ImplKind::ConvSC,   ImplKind::ConvTSO,   ImplKind::ConvRMO,
        ImplKind::InvisiSC, ImplKind::InvisiTSO, ImplKind::InvisiRMO};
    const auto matrix = runMatrix(kinds, cfg);
    printBreakdowns("Figure 9: runtime breakdown normalized to "
                    "conventional SC (column sums = norm.runtime)",
                    matrix, kinds, "sc");
    std::cout << "Paper shape: Invisi variants convert nearly all SB-full\n"
                 "and SB-drain cycles into useful work, leaving small\n"
                 "Violation slivers.\n";
    return 0;
}
