/**
 * @file
 * Figure 11: runtime of ASO, INVISIFENCE-SELECTIVE (one checkpoint),
 * and INVISIFENCE with two checkpoints, normalized to ASOsc.
 */

#include "bench_util.hh"

using namespace invisifence;
using namespace invisifence::bench;

int
main()
{
    const RunConfig cfg = RunConfig::fromEnv();
    const std::vector<ImplKind> kinds = {
        ImplKind::Aso, ImplKind::InvisiSC, ImplKind::InvisiSC2Ckpt};
    const auto matrix = runMatrix(kinds, cfg);
    printBreakdowns("Figure 11: ASOsc vs Invisi_sc (1 ckpt) vs "
                    "Invisi_sc (2 ckpts), normalized to ASOsc", matrix,
                    kinds, "ASOsc");
    printSpeedups("Figure 11 (speedups over ASOsc)", matrix, kinds,
                  "ASOsc");
    std::cout << "Paper shape: ASO and Invisi_sc-1ckpt are close (ASO\n"
                 "slightly ahead via periodic checkpoints bounding\n"
                 "discarded work); the second checkpoint closes the gap.\n";
    return 0;
}
