#!/usr/bin/env bash
# Tier-1 verification: lint, Release, Debug+ASan/UBSan, TSan, and a
# format check.
#
#   ./ci.sh            run everything
#   ./ci.sh lint       iflint source rules + binary hot-path allocation
#                      proof (ctest -L lint; see tools/iflint/)
#   ./ci.sh release    Release build + full ctest suite
#   ./ci.sh asan       Debug ASan/UBSan build + unit + stress suites
#   ./ci.sh tsan       TSan build + sweep/fuzz suites. GATED: a data
#                      race fails CI; skipped only when the compiler
#                      lacks -fsanitize=thread. Known-benign races go
#                      in tsan.supp with a justification.
#   ./ci.sh tidy       clang-tidy over src/ with the tree's .clang-tidy
#                      (skipped when clang-tidy is not installed)
#   ./ci.sh format     clang-format check (skipped when not installed)
#   ./ci.sh faults     fault-injection suite under ASan/UBSan: the
#                      fault matrix, the planted-deadlock/watchdog
#                      fixtures, and an env-knob smoke run (retries
#                      under drops must still finish the quickstart)
#   ./ci.sh perfsmoke  event-queue microbench + bench_wallclock at a
#                      small budget, failing if kcps_fastfwd regresses
#                      >25% against the committed BENCH_wallclock.json
#                      (tolerance sized for a noisy 1-CPU box); prints a
#                      per-point kcps delta table + geomean, not just
#                      pass/fail
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)
STAGE="${1:-all}"

run_lint() {
    echo "== iflint: source rules + hot-path allocation proof =="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    # The pass-2 proof objects (invisifence_lint, fixture objects) are
    # compiled at a pinned -O2 -DNDEBUG by tools/iflint/CMakeLists.txt,
    # so the lint verdict is identical in every build type.
    cmake --build build-release -j "$JOBS" --target \
        iflint iflint_test invisifence_lint iflint_fixture_hot_bad \
        iflint_fixture_hot_good iflint_fixture_hot_cold_cut
    ctest --test-dir build-release --output-on-failure -j "$JOBS" -L lint
}

run_release() {
    echo "== Release build + full test pyramid =="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$JOBS"
    ctest --test-dir build-release --output-on-failure -j "$JOBS"
}

run_asan() {
    echo "== Debug + ASan/UBSan build + unit and stress suites =="
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
        -DINVISIFENCE_SANITIZE=ON
    cmake --build build-asan -j "$JOBS"
    # Unit tier (the bench/example smoke tests re-run identical code
    # paths and triple CI time under sanitizers), then the stress tier:
    # the full-size litmus fuzzer and the heavy 8-worker sweep
    # equivalence run, where sanitizers watch the sharded path.
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L unit
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L stress
    # Fast-forward equivalence: with the event-driven scheduler forced
    # OFF, the committed golden figures must still be byte-identical and
    # the on/off equivalence suite must pass under sanitizers.
    INVISIFENCE_FASTFWD=0 ctest --test-dir build-asan \
        --output-on-failure -R '(golden_figures_test|fastforward_test)'
    # Way-predictor escape hatch: with MRU way prediction forced OFF the
    # cache arrays take the plain tag scan, and the goldens must still
    # be byte-identical (prediction is a host-side accelerator only).
    INVISIFENCE_WAY_PREDICT=0 ctest --test-dir build-asan \
        --output-on-failure -R '(golden_figures_test|fastforward_test)'
    # Flat-directory escape hatch: forced back to the unordered_map the
    # goldens (including the 64-core hashed-home scale golden) and the
    # memory/coherence/scale unit suites must be unchanged (the flat
    # table is a host-side layout swap only). scale_test rides along so
    # the 64/256-core sharded-home paths run under sanitizers with the
    # hatch off too.
    INVISIFENCE_DIR_FLAT=0 ctest --test-dir build-asan \
        --output-on-failure \
        -R '(golden_figures_test|fastforward_test|mem_test|coh_test|scale_test)'
    # MSHR-index escape hatch: forced off, lookups take the linear scan
    # and waiter/local-fill merging is disabled — goldens and the same
    # suites must be byte-identical either way.
    INVISIFENCE_MSHR_INDEX=0 ctest --test-dir build-asan \
        --output-on-failure \
        -R '(golden_figures_test|fastforward_test|mem_test|coh_test|scale_test)'
}

run_faults() {
    echo "== Fault-injection suite under ASan/UBSan =="
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
        -DINVISIFENCE_SANITIZE=ON
    cmake --build build-asan -j "$JOBS" --target fault_test \
        fault_deadlock_fixture alloc_steadystate_test fig09_breakdown
    # The fault matrix, recovery paths, watchdog death test, and both
    # planted-wedge WILL_FAIL fixtures; then the same suite with the
    # event-driven scheduler forced off (fault runs must stay
    # bit-identical across scheduler modes, so both must pass).
    ctest --test-dir build-asan --output-on-failure \
        -R '(fault_test|fault_deadlock_watchdog|fault_max_cycles_budget)'
    INVISIFENCE_FASTFWD=0 ctest --test-dir build-asan \
        --output-on-failure -R fault_test
    # Env-knob plumbing end to end: a figure bench with drop/delay/dup
    # rates injected from the environment (retries auto-arm) must still
    # run to completion at a small budget.
    INVISIFENCE_BENCH_CYCLES=6000 INVISIFENCE_FAULT_SEED=7 \
        INVISIFENCE_FAULT_DROP=800 INVISIFENCE_FAULT_DELAY=2000 \
        INVISIFENCE_FAULT_DUP=800 INVISIFENCE_WATCHDOG=400000 \
        ./build-asan/bench/fig09_breakdown
}

run_tsan() {
    echo "== ThreadSanitizer build + sweep/fuzz suites (gated) =="
    # Probe the same compiler CMake will use, or the probe can disagree
    # with the build. Lacking TSan support is the ONLY skip condition;
    # when the build runs, any unsuppressed race report fails CI.
    local cxx="${CXX:-c++}"
    if ! echo 'int main(){}' | "$cxx" -fsanitize=thread -x c++ - \
            -o /tmp/tsan_probe 2>/dev/null; then
        echo "compiler lacks -fsanitize=thread; skipping tsan stage"
        return 0
    fi
    rm -f /tmp/tsan_probe
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_COMPILER="$cxx" \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build build-tsan -j "$JOBS" --target sweep_test \
        fuzz_litmus_test
    # Suppressions live in tsan.supp (each entry must carry a comment
    # explaining why the race is benign); halt_on_error makes the first
    # unsuppressed report fatal instead of a warning that exits 0.
    TSAN_OPTIONS="suppressions=$PWD/tsan.supp halt_on_error=1" \
        ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
        -R '(sweep_test|stress_sweep|fuzz_litmus_test)'
}

run_tidy() {
    echo "== clang-tidy (config: .clang-tidy) =="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping tidy stage"
        return 0
    fi
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    local files
    files=$(git ls-files 'src/*.cc')
    # shellcheck disable=SC2086
    clang-tidy -p build-release --warnings-as-errors='*' $files
}

run_perfsmoke() {
    echo "== Perf smoke: event-queue microbench + wall-clock check =="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$JOBS" \
        --target bench_eventqueue bench_wallclock
    ./build-release/bench/bench_eventqueue 500000
    # Small budget: BENCH_CYCLES=24000 means a 24k-cycle measure window
    # plus a 4k warmup (RunConfig::fromEnv uses measure/6), 28k total vs
    # the committed JSON's 62k. kcycles/second is budget-independent to
    # first order, and a 25% regression gate absorbs both that and this
    # box's scheduling noise. ASOsc is excluded: its ~93%-dormant runs
    # amortize very differently at small budgets, so its small-budget
    # kcps is not comparable.
    INVISIFENCE_BENCH_CYCLES=24000 ./build-release/bench/bench_wallclock \
        --config bench --against BENCH_wallclock.json --min-ratio 0.75 \
        --skip-check-impl ASOsc
}

run_format() {
    echo "== clang-format check =="
    if ! command -v clang-format >/dev/null 2>&1; then
        echo "clang-format not installed; skipping format check"
        return 0
    fi
    local files
    files=$(git ls-files '*.cc' '*.hh' '*.cpp' '*.h')
    # shellcheck disable=SC2086
    if ! clang-format --dry-run --Werror $files; then
        echo "format check failed; run: clang-format -i <files>"
        return 1
    fi
}

case "$STAGE" in
  lint)      run_lint ;;
  release)   run_release ;;
  asan)      run_asan ;;
  faults)    run_faults ;;
  tsan)      run_tsan ;;
  tidy)      run_tidy ;;
  format)    run_format ;;
  perfsmoke) run_perfsmoke ;;
  all)       run_format; run_tidy; run_lint; run_release; run_asan
             run_faults; run_tsan; run_perfsmoke ;;
  *) echo "usage: $0 [all|lint|release|asan|faults|tsan|tidy|format|perfsmoke]" >&2
     exit 2 ;;
esac
echo "ci.sh: $STAGE OK"
