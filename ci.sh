#!/usr/bin/env bash
# Tier-1 verification: Release, Debug+ASan/UBSan, and a format check.
#
#   ./ci.sh            run everything
#   ./ci.sh release    Release build + full ctest suite
#   ./ci.sh asan       Debug ASan/UBSan build + unit suites
#   ./ci.sh format     clang-format check (skipped when not installed)
set -euo pipefail
cd "$(dirname "$0")"

JOBS=$(nproc 2>/dev/null || echo 4)
STAGE="${1:-all}"

run_release() {
    echo "== Release build + full test pyramid =="
    cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-release -j "$JOBS"
    ctest --test-dir build-release --output-on-failure -j "$JOBS"
}

run_asan() {
    echo "== Debug + ASan/UBSan build + unit suites =="
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
        -DINVISIFENCE_SANITIZE=ON
    cmake --build build-asan -j "$JOBS"
    # Unit tier only: the bench/example smoke tests re-run identical code
    # paths and triple CI time under sanitizers.
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L unit
}

run_format() {
    echo "== clang-format check =="
    if ! command -v clang-format >/dev/null 2>&1; then
        echo "clang-format not installed; skipping format check"
        return 0
    fi
    local files
    files=$(git ls-files '*.cc' '*.hh' '*.cpp' '*.h')
    # shellcheck disable=SC2086
    if ! clang-format --dry-run --Werror $files; then
        echo "format check failed; run: clang-format -i <files>"
        return 1
    fi
}

case "$STAGE" in
  release) run_release ;;
  asan)    run_asan ;;
  format)  run_format ;;
  all)     run_format; run_release; run_asan ;;
  *) echo "usage: $0 [all|release|asan|format]" >&2; exit 2 ;;
esac
echo "ci.sh: $STAGE OK"
