/**
 * @file
 * Quickstart: build a 16-core system, run one workload under a
 * conventional and an InvisiFence implementation, print the comparison.
 *
 * Usage: quickstart [workload] [cycles]
 */

#include <cstdlib>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workload/workloads.hh"

using namespace invisifence;

int
main(int argc, char** argv)
{
    const std::string wl_name = argc > 1 ? argv[1] : "Apache";
    RunConfig cfg = RunConfig::fromEnv();
    if (argc > 2)
        cfg.measureCycles = static_cast<Cycle>(std::atoll(argv[2]));

    const Workload& wl = workloadByName(wl_name);
    std::cout << "Running " << wl.name << " on a "
              << cfg.system.numCores << "-core system for "
              << cfg.measureCycles << " measured cycles per config...\n\n";

    const ImplKind kinds[] = {
        ImplKind::ConvSC, ImplKind::ConvTSO, ImplKind::ConvRMO,
        ImplKind::InvisiSC, ImplKind::InvisiTSO, ImplKind::InvisiRMO,
    };

    RunResult base;
    Table table("quickstart: " + wl.name);
    table.setHeader({"impl", "IPC/core", "speedup vs sc", "%busy",
                     "%sb_full", "%sb_drain", "%violation",
                     "%speculating"});
    for (const ImplKind kind : kinds) {
        const RunResult r = runExperiment(wl, kind, cfg);
        if (kind == ImplKind::ConvSC)
            base = r;
        const BreakdownShares s = shares(r);
        table.addRow({r.impl, Table::num(r.throughput(), 3),
                      Table::num(r.throughput() / base.throughput(), 3),
                      Table::pct(s.busy), Table::pct(s.sbFull),
                      Table::pct(s.sbDrain), Table::pct(s.violation),
                      Table::pct(r.specFraction())});
    }
    table.print(std::cout);
    std::cout << "Higher speedup is better; InvisiFence variants should\n"
                 "eliminate the sb_full/sb_drain ordering stalls.\n";
    return 0;
}
