/**
 * @file
 * Lock-contention scenario: the fine-grained-locking workload class the
 * paper's introduction motivates. Sweeps lock counts (contention) and
 * compares conventional RMO against InvisiFence variants.
 *
 * Usage: lock_contention [cycles]
 */

#include <cstdlib>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workload/workloads.hh"

using namespace invisifence;

int
main(int argc, char** argv)
{
    RunConfig cfg = RunConfig::fromEnv();
    if (argc > 1)
        cfg.measureCycles = static_cast<Cycle>(std::atoll(argv[1]));

    Table table("lock contention sweep (speedup over conventional rmo "
                "at the same lock count)");
    table.setHeader({"locks", "rmo IPC", "Invisi_rmo", "Invisi_sc",
                     "Invisi_cont_CoV"});
    for (const std::uint32_t locks : {16u, 64u, 256u, 1024u}) {
        Workload wl = workloadByName("Apache");
        wl.params.numLocks = locks;
        const double rmo =
            runExperiment(wl, ImplKind::ConvRMO, cfg).throughput();
        const double invisi_rmo =
            runExperiment(wl, ImplKind::InvisiRMO, cfg).throughput();
        const double invisi_sc =
            runExperiment(wl, ImplKind::InvisiSC, cfg).throughput();
        const double cov =
            runExperiment(wl, ImplKind::ContinuousCoV, cfg).throughput();
        table.addRow({std::to_string(locks), Table::num(rmo, 3),
                      Table::num(invisi_rmo / rmo, 3),
                      Table::num(invisi_sc / rmo, 3),
                      Table::num(cov / rmo, 3)});
    }
    table.print(std::cout);
    std::cout << "Fewer locks = more contention = more lock handoffs;\n"
                 "speculation hides the fence/atomic latency but suffers\n"
                 "more violations on hot locks.\n";
    return 0;
}
