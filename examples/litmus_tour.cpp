/**
 * @file
 * Litmus-test tour: run the classic memory-model litmus tests under a
 * chosen implementation and print the observed outcomes.
 *
 * Usage: litmus_tour [impl] [iterations]
 *   impl: sc | tso | rmo | invisi_sc | invisi_tso | invisi_rmo |
 *         cont | cont_cov | aso      (default: tso)
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/litmus.hh"

using namespace invisifence;

namespace {

ImplKind
parseKind(const std::string& s)
{
    static const std::map<std::string, ImplKind> kinds = {
        {"sc", ImplKind::ConvSC},          {"tso", ImplKind::ConvTSO},
        {"rmo", ImplKind::ConvRMO},        {"invisi_sc", ImplKind::InvisiSC},
        {"invisi_tso", ImplKind::InvisiTSO},
        {"invisi_rmo", ImplKind::InvisiRMO},
        {"cont", ImplKind::Continuous},
        {"cont_cov", ImplKind::ContinuousCoV},
        {"aso", ImplKind::Aso},
    };
    auto it = kinds.find(s);
    if (it == kinds.end()) {
        std::cerr << "unknown impl '" << s << "'\n";
        std::exit(1);
    }
    return it->second;
}

std::uint64_t
lastLoadOf(System& sys, std::uint32_t t, Addr addr)
{
    const auto& j = sys.core(t).journal();
    for (auto it = j.rbegin(); it != j.rend(); ++it) {
        if (isLoadLike(it->type) && wordAlign(it->addr) == wordAlign(addr))
            return it->result;
    }
    return ~0ull;
}

} // namespace

int
main(int argc, char** argv)
{
    const ImplKind kind = parseKind(argc > 1 ? argv[1] : "tso");
    const std::uint32_t iters =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 24;

    std::cout << "Litmus outcomes under " << implKindName(kind) << " ("
              << iters << " timing-perturbed iterations each)\n\n";

    Table table("observed outcome frequencies");
    table.setHeader({"test", "outcome", "count", "note"});

    for (const LitmusTest& t :
         {litmusSb(), litmusSbFenced(), litmusMp(), litmusLb()}) {
        std::map<std::string, int> counts;
        for (std::uint32_t i = 0; i < iters; ++i) {
            std::vector<std::unique_ptr<ThreadProgram>> programs;
            std::uint32_t tid = 0;
            for (const auto& thread : t.threads) {
                std::vector<ScriptOp> s;
                for (const auto& th2 : t.threads)
                    for (const auto& op : th2)
                        if (isMemOp(op.inst.type))
                            s.push_back(opLoad(op.inst.addr));
                s.push_back(opAlu(200));
                for (std::uint32_t d = 0; d < (i * (tid + 3) * 7) % 40;
                     ++d) {
                    s.push_back(opAlu(1));
                }
                for (const auto& op : thread)
                    s.push_back(op);
                programs.push_back(
                    std::make_unique<ScriptedProgram>(std::move(s)));
                ++tid;
            }
            SystemParams params = SystemParams::small(
                static_cast<std::uint32_t>(t.threads.size()));
            System sys(params, std::move(programs), kind);
            for (std::uint32_t c = 0; c < sys.numCores(); ++c)
                sys.core(c).enableJournal();
            if (!sys.runUntilDone(2000000))
                continue;
            std::string outcome;
            for (const auto& p : t.probes) {
                outcome += "r=" +
                           std::to_string(lastLoadOf(sys, p.thread,
                                                     p.addr)) +
                           " ";
            }
            ++counts[outcome];
        }
        bool first = true;
        for (const auto& [outcome, count] : counts) {
            table.addRow({first ? t.name : "", outcome,
                          std::to_string(count), ""});
            first = false;
        }
    }
    table.print(std::cout);
    std::cout << "Try: litmus_tour sc (SB's 'r=0 r=0' vanishes under\n"
                 "sequential consistency) vs litmus_tour tso.\n";
    return 0;
}
