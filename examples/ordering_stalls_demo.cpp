/**
 * @file
 * Minimal demonstration of WHY memory ordering costs performance: one
 * core, one remote store miss, and a stream of independent loads, under
 * each consistency implementation.
 *
 * This is the paper's Figure 1 in miniature: under SC the loads cannot
 * retire past the outstanding store; under TSO/RMO they can; under
 * InvisiFence-SC they retire speculatively and commit when the store
 * completes.
 */

#include <iostream>

#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/litmus.hh"

using namespace invisifence;

int
main()
{
    Table table("one store miss + 24 independent load hits");
    table.setHeader({"impl", "cycles to done", "sb_drain cycles",
                     "speculations"});
    for (const ImplKind kind :
         {ImplKind::ConvSC, ImplKind::ConvTSO, ImplKind::ConvRMO,
          ImplKind::InvisiSC}) {
        std::vector<ScriptOp> s;
        for (std::uint32_t b = 0; b < 4; ++b)
            s.push_back(opLoad(0x0900'0000 + 0x800 + b * kBlockBytes));
        s.push_back(opAlu(250));
        s.push_back(opStore(0x0900'0041 * kBlockBytes, 1));  // remote
        for (std::uint32_t i = 0; i < 24; ++i)
            s.push_back(opLoad(0x0900'0000 + 0x800 +
                               (i % 4) * kBlockBytes));
        std::vector<std::unique_ptr<ThreadProgram>> programs;
        programs.push_back(
            std::make_unique<ScriptedProgram>(std::move(s)));
        programs.push_back(std::make_unique<ScriptedProgram>(
            std::vector<ScriptOp>{}));
        SystemParams params = SystemParams::small(2);
        params.dir.memLatency = 400;
        System sys(params, std::move(programs), kind);
        sys.runUntilDone(100000);
        std::string specs = "-";
        if (auto* sp = dynamic_cast<SpeculativeImpl*>(&sys.impl(0)))
            specs = std::to_string(sp->statSpeculations);
        table.addRow({implKindName(kind), std::to_string(sys.now()),
                      std::to_string(sys.core(0).breakdown().sbDrain),
                      specs});
    }
    table.print(std::cout);
    std::cout << "SC stalls retirement for the whole miss; InvisiFence\n"
                 "retires the loads speculatively and commits when the\n"
                 "store completes, matching the relaxed models' time.\n";
    return 0;
}
