/**
 * @file
 * Cache-block payloads: raw 64-byte data and byte-masked partial blocks.
 *
 * The coalescing store buffer, MSHR fills, and ASO's per-word valid bits all
 * need "some bytes of this block are defined" semantics, provided here by
 * MaskedBlock.
 */

#ifndef INVISIFENCE_MEM_BLOCK_HH
#define INVISIFENCE_MEM_BLOCK_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "sim/annotations.hh"

#include "sim/types.hh"

namespace invisifence {

/** A full 64-byte cache block of data. */
struct BlockData
{
    std::array<std::uint8_t, kBlockBytes> bytes{};

    /** Read a 64-bit word at byte offset @p off (must be word-aligned). */
    std::uint64_t
    readWord(std::uint32_t off) const
    {
        std::uint64_t v;
        std::memcpy(&v, bytes.data() + off, sizeof(v));
        return v;
    }

    /** Write a 64-bit word at byte offset @p off (must be word-aligned). */
    void
    writeWord(std::uint32_t off, std::uint64_t v)
    {
        std::memcpy(bytes.data() + off, &v, sizeof(v));
    }

    bool operator==(const BlockData&) const = default;
};

/** Bitmask with one bit per byte of a block. */
using ByteMask = std::uint64_t;

/** Mask covering @p size bytes starting at block offset @p off. */
constexpr ByteMask
byteMaskFor(std::uint32_t off, std::uint32_t size)
{
    const ByteMask ones =
        size >= 64 ? ~ByteMask{0} : ((ByteMask{1} << size) - 1);
    return ones << off;
}

/** A block in which only the bytes named by @c mask are defined. */
struct MaskedBlock
{
    BlockData data{};
    ByteMask mask = 0;

    bool empty() const { return mask == 0; }
    bool full() const { return mask == ~ByteMask{0}; }

    /** True when every byte in [off, off+size) is defined. */
    bool
    covers(std::uint32_t off, std::uint32_t size) const
    {
        const ByteMask need = byteMaskFor(off, size);
        return (mask & need) == need;
    }

    /** Write @p size bytes of @p value at offset @p off, marking them. */
    void
    write(std::uint32_t off, std::uint32_t size, std::uint64_t value)
    {
        std::memcpy(data.bytes.data() + off, &value, size);
        mask |= byteMaskFor(off, size);
    }

    /** Overlay this partial block's defined bytes onto @p base. */
    void
    applyTo(BlockData& base) const
    {
        if (full()) {
            base = data;
            return;
        }
        // Word-chunked: a fully-covered 8-byte group (the word-store
        // common case) copies in one shot; partial groups go per byte.
        for (std::uint32_t off = 0; off < kBlockBytes; off += 8) {
            const std::uint32_t sub =
                static_cast<std::uint32_t>((mask >> off) & 0xffu);
            if (sub == 0)
                continue;
            if (sub == 0xffu) {
                std::memcpy(base.bytes.data() + off,
                            data.bytes.data() + off, 8);
                continue;
            }
            for (std::uint32_t i = 0; i < 8; ++i) {
                if (sub & bitOf<std::uint32_t>(i))
                    base.bytes[off + i] = data.bytes[off + i];
            }
        }
    }

    /** Merge another partial block into this one (theirs wins on overlap). */
    void
    merge(const MaskedBlock& other)
    {
        other.applyTo(data);
        mask |= other.mask;
    }

    /** Read @p size bytes at @p off; caller must check covers() first. */
    std::uint64_t
    read(std::uint32_t off, std::uint32_t size) const
    {
        std::uint64_t v = 0;
        std::memcpy(&v, data.bytes.data() + off, size);
        return v;
    }
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_BLOCK_HH
