/**
 * @file
 * The two store-buffer organizations of Figure 2 / Figure 6.
 *
 * FifoStoreBuffer: word-granularity, age-ordered, CAM-searched for load
 * forwarding. Used by conventional SC and TSO (8-byte x 64 entries). Its
 * capacity limit is the source of "SB full" stalls; its in-order drain and
 * full-drain requirement at atomics/fences produce "SB drain" stalls.
 *
 * CoalescingStoreBuffer: block-granularity, unordered, sized to the number
 * of outstanding store misses (8 entries for single-checkpoint
 * InvisiFence, 32 with two checkpoints). Holds retired-but-uncommitted
 * store data until the block is fillable in the L1. Never searched by
 * external coherence requests and never supplies data to other processors.
 * InvisiFence adds flash-invalidation of speculative entries (abort) and
 * forbids coalescing between speculative and non-speculative stores, and
 * between stores of different checkpoints, to one block (Section 3.1).
 */

#ifndef INVISIFENCE_MEM_STORE_BUFFER_HH
#define INVISIFENCE_MEM_STORE_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/block.hh"
#include "sim/function_ref.hh"
#include "sim/ring_deque.hh"
#include "sim/types.hh"

namespace invisifence {

/** Context label for non-speculative coalescing-SB entries. */
constexpr std::uint32_t kNonSpecCtx = 0xffffffffu;

/** Word-granularity FIFO store buffer with age-ordered forwarding. */
class FifoStoreBuffer
{
  public:
    explicit FifoStoreBuffer(std::uint32_t capacity) : capacity_(capacity)
    {
        // The capacity is architectural (a fixed SRAM): claim it up
        // front so filling the buffer never allocates mid-run.
        entries_.reserve(capacity);
    }

    struct Entry
    {
        Addr addr = 0;                //!< word-aligned
        std::uint64_t data = 0;
        std::uint32_t size = kWordBytes;
        InstSeq seq = 0;
        bool issued = false;          //!< drain write-permission requested
    };

    /** True when another store can be accepted. */
    bool hasSpace() const { return entries_.size() < capacity_; }
    bool empty() const { return entries_.empty(); }
    bool full() const { return !hasSpace(); }
    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    /** Append a retired store; caller must check hasSpace(). */
    void push(Addr addr, std::uint64_t data, InstSeq seq);

    /** Oldest entry (drain candidate). Only valid when !empty(). */
    Entry& front() { return entries_.front(); }
    const Entry& front() const { return entries_.front(); }

    /** Remove the oldest entry after it has drained into the cache. */
    void popFront() { entries_.pop_front(); }

    /**
     * Age-ordered CAM search: value of the youngest store covering the
     * word at @p addr, if any (store-to-load forwarding).
     */
    std::optional<std::uint64_t> forward(Addr addr) const;

    /** True when any buffered store targets @p addr's block. */
    bool containsBlock(Addr addr) const;

    /** Raw age-ordered entries (drain/prefetch logic and tests). */
    RingDeque<Entry>& entries() { return entries_; }
    const RingDeque<Entry>& entries() const { return entries_; }

    /** Peak-occupancy statistic maintained by push(). */
    std::uint64_t statPeakOccupancy = 0;
    std::uint64_t statPushes = 0;

  private:
    std::uint32_t capacity_;
    /** Ring, not deque: steady push/pop churns no heap chunks. */
    RingDeque<Entry> entries_;
};

/** Block-granularity unordered coalescing store buffer. */
class CoalescingStoreBuffer
{
  public:
    explicit CoalescingStoreBuffer(std::uint32_t capacity)
        : capacity_(capacity)
    {}

    struct Entry
    {
        Addr blockAddr = 0;
        MaskedBlock data{};
        bool speculative = false;
        std::uint32_t ctx = kNonSpecCtx;  //!< owning checkpoint context
        bool fillRequested = false;       //!< GetM issued for this block
        bool held = false;     //!< must wait for older checkpoint's commit
        InstSeq firstSeq = 0;  //!< age of oldest merged store (for stats)
        /** An MSHR-full rejection of this entry's write fetch was
         *  already counted (cleared when a fetch is accepted): drain
         *  loops count stall episodes, not per-cycle retries, so the
         *  statistic is identical under legacy and fast-forward tick
         *  loops. */
        bool fullStallNoted = false;

        /** Dormant while the write fetch this entry issued is in
         *  flight: a non-writable block can only become writable
         *  through CacheAgent::installL1, whose onL1Install hook
         *  clears this, so skipping the per-tick L1/L2 probe until
         *  then is exact (the probe resumes the same tick writability
         *  can first be observed). */
        bool waitingFill = false;
    };

    enum class StoreResult
    {
        Merged,        //!< coalesced into an existing compatible entry
        NewEntry,      //!< allocated a fresh entry
        Full,          //!< no space and no compatible entry: stall
    };

    /**
     * Buffer a retired store of @p size bytes at @p addr.
     *
     * Coalesces only into an entry of the same block with identical
     * (speculative, ctx) labels; otherwise allocates.
     */
    StoreResult store(Addr addr, std::uint32_t size, std::uint64_t value,
                      bool speculative, std::uint32_t ctx, InstSeq seq);

    /**
     * Combined view of all buffered bytes for @p addr's block, oldest
     * entry first so younger stores overwrite older ones.
     */
    MaskedBlock gatherBlock(Addr addr) const;

    /** Youngest buffered value fully covering the word at @p addr. */
    std::optional<std::uint64_t> forward(Addr addr) const;

    /** True when any entry targets @p addr's block — the emptiness
     *  probe retirement rules need, without gatherBlock's merges. */
    bool containsBlock(Addr addr) const;

    /** Flash-invalidate every entry matching @p pred (single cycle). */
    void flashInvalidate(FunctionRef<bool(const Entry&)> pred);

    /** Flash-invalidate all speculative entries (abort of all contexts). */
    void flashInvalidateSpeculative();

    /** Erase a specific entry after it drains into the L1. */
    void erase(const Entry& entry);

    bool empty() const { return entries_.empty(); }
    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    /** True when no entry with the given speculative label exists. */
    bool emptyOfSpeculative() const;
    bool emptyOfCtx(std::uint32_t ctx) const;

    std::vector<Entry>& entries() { return entries_; }
    const std::vector<Entry>& entries() const { return entries_; }

    std::uint64_t statPeakOccupancy = 0;
    std::uint64_t statStores = 0;
    std::uint64_t statMerges = 0;

  private:
    std::uint32_t capacity_;
    std::vector<Entry> entries_;   //!< insertion order == age order
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_STORE_BUFFER_HH
