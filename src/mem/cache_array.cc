#include "mem/cache_array.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "sim/annotations.hh"
#include "sim/log.hh"

namespace invisifence {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** INVISIFENCE_WAY_PREDICT=0 disables the MRU way predictor (an escape
 *  hatch only — prediction never changes lookup results, because at
 *  most one way can hold a block). Parsed once per process. */
bool
wayPredictEnabled()
{
    static const bool enabled = []() {
        const char* text = std::getenv("INVISIFENCE_WAY_PREDICT");
        if (!text || text[0] == '\0')
            return true;
        if (text[0] == '0' && text[1] == '\0')
            return false;
        if (text[0] == '1' && text[1] == '\0')
            return true;
        IF_FATAL("INVISIFENCE_WAY_PREDICT='%s' is not 0 or 1", text);
    }();
    return enabled;
}

} // namespace

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t ways,
                       std::string name)
    : ways_(ways), wayPredict_(wayPredictEnabled()), name_(std::move(name))
{
    if (ways == 0 || size_bytes % (static_cast<std::uint64_t>(ways) *
                                   kBlockBytes) != 0) {
        IF_FATAL("cache %s: size %llu not divisible by ways*block",
                 name_.c_str(), static_cast<unsigned long long>(size_bytes));
    }
    // The MRU predictor stores the way in a byte and the LRU
    // renormalization sorts a fixed 64-slot scratch; both bound ways.
    if (ways > 64)
        IF_FATAL("cache %s: at most 64 ways supported", name_.c_str());
    const std::uint64_t sets = size_bytes / (ways * kBlockBytes);
    if (!isPow2(sets))
        IF_FATAL("cache %s: set count must be a power of two", name_.c_str());
    num_sets_ = static_cast<std::uint32_t>(sets);
    const std::size_t frames =
        static_cast<std::size_t>(num_sets_) * ways_;
    tags_.resize(frames);
    data_.resize(frames);
    gen_.resize(frames, 0);
    mru_.resize(num_sets_, 0);
    // Worst case every frame is marked in a context: preallocating to
    // that bound keeps the speculative index allocation-free in steady
    // state (tests/alloc_steadystate_test.cc).
    for (std::uint32_t c = 0; c < kMaxCheckpoints; ++c) {
        specFrames_[c].reserve(frames);
        specPos_[c].resize(frames, kNoFrame);
    }
    flashScratch_.reserve(frames);
}

void
CacheArray::touch(const Line& line)
{
    IF_HOT;
    IF_DBG_ASSERT(line.arr_ == this);
    if (lruCounter_ == ~std::uint32_t{0})
        renormalizeLru();
    tags_[line.frame_].lruStamp = ++lruCounter_;
}

void
CacheArray::renormalizeLru()
{
    // Compress each set's stamps to their rank (1..ways): victim
    // selection compares stamps only within a set, so preserving the
    // within-set order preserves every future LRU decision exactly.
    std::uint32_t order[64];
    IF_DBG_ASSERT(ways_ <= 64);
    for (std::uint32_t s = 0; s < num_sets_; ++s) {
        CacheTag* tags = &tags_[static_cast<std::size_t>(s) * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w)
            order[w] = w;
        std::sort(order, order + ways_,
                  [tags](std::uint32_t a, std::uint32_t b) {
                      return tags[a].lruStamp < tags[b].lruStamp;
                  });
        for (std::uint32_t r = 0; r < ways_; ++r)
            tags[order[r]].lruStamp = r + 1;
    }
    lruCounter_ = ways_;
}

CacheArray::Line
CacheArray::findVictim(Addr addr, FunctionRef<bool(const Line&)> avoid,
                       bool* forced_avoided)
{
    IF_HOT;
    const std::uint32_t base = setIndex(addr) * ways_;
    const CacheTag* tags = &tags_[base];
    if (forced_avoided)
        *forced_avoided = false;

    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!tags[w].valid())
            return {this, base + w};
    }

    std::uint32_t best = kNoFrame;
    std::uint32_t best_any = kNoFrame;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const CacheTag& tag = tags[w];
        if (best_any == kNoFrame ||
            tag.lruStamp < tags_[best_any].lruStamp) {
            best_any = base + w;
        }
        if (avoid && avoid(Line{this, base + w}))
            continue;
        if (best == kNoFrame || tag.lruStamp < tags_[best].lruStamp)
            best = base + w;
    }
    if (best != kNoFrame)
        return {this, best};
    if (forced_avoided)
        *forced_avoided = true;
    IF_DBG_ASSERT(best_any != kNoFrame);
    return {this, best_any};
}

CacheArray::Line
CacheArray::findVictim(Addr addr)
{
    return findVictim(addr, nullptr, nullptr);
}

void
CacheArray::setSpecBit(std::uint32_t frame, std::uint32_t ctx,
                       bool written)
{
    IF_HOT;
    IF_DBG_ASSERT(ctx < kMaxCheckpoints);
    IF_DBG_ASSERT(tags_[frame].valid() &&
           "speculative bit on an invalid line");
    CacheTag& tag = tags_[frame];
    const std::uint8_t bit = bitOf<std::uint8_t>(ctx);
    if (((tag.specRead | tag.specWritten) & bit) == 0) {
        specPos_[ctx][frame] =
            static_cast<std::uint32_t>(specFrames_[ctx].size());
        hotPush(specFrames_[ctx], frame);
    }
    if (written)
        tag.specWritten |= bit;
    else
        tag.specRead |= bit;
}

void
CacheArray::clearSpecCtx(std::uint32_t frame, std::uint32_t ctx)
{
    IF_HOT;
    CacheTag& tag = tags_[frame];
    const std::uint8_t bit = bitOf<std::uint8_t>(ctx);
    if (((tag.specRead | tag.specWritten) & bit) == 0)
        return;
    tag.specRead &= static_cast<std::uint8_t>(~bit);
    tag.specWritten &= static_cast<std::uint8_t>(~bit);
    // Swap-with-back removal from the ctx index, O(1).
    const std::uint32_t pos = specPos_[ctx][frame];
    IF_DBG_ASSERT(pos != kNoFrame && specFrames_[ctx][pos] == frame);
    const std::uint32_t moved = specFrames_[ctx].back();
    specFrames_[ctx][pos] = moved;
    specPos_[ctx][moved] = pos;
    specFrames_[ctx].pop_back();
    specPos_[ctx][frame] = kNoFrame;
}

void
CacheArray::installFrame(std::uint32_t frame, Addr block_addr,
                         CoherenceState s)
{
    IF_HOT;
    CacheTag& tag = tags_[frame];
    IF_DBG_ASSERT(!tag.valid() && "installing over a live line");
    IF_DBG_ASSERT(isValidState(s));
    tag.blockAddr = blockAlign(block_addr);
    tag.state = s;
    tag.dirty = 0;
    ++gen_[frame];
    mru_[frameSet(frame)] =
        static_cast<std::uint8_t>(frame % ways_);
}

void
CacheArray::invalidateFrame(std::uint32_t frame)
{
    IF_HOT;
    CacheTag& tag = tags_[frame];
    tag.blockAddr = kInvalidTagAddr;   // keep invalid frames unmatchable
    tag.state = CoherenceState::Invalid;
    tag.dirty = 0;
    for (std::uint32_t c = 0; c < kMaxCheckpoints; ++c)
        clearSpecCtx(frame, c);
    ++gen_[frame];
}

void
CacheArray::flashClearSpecBits(std::uint32_t ctx)
{
    IF_DBG_ASSERT(ctx < kMaxCheckpoints);
#ifndef NDEBUG
    verifySpecIndex();
#endif
    const std::uint8_t mask =
        static_cast<std::uint8_t>(~bitOf<std::uint8_t>(ctx));
    for (const std::uint32_t frame : specFrames_[ctx]) {
        tags_[frame].specRead &= mask;
        tags_[frame].specWritten &= mask;
        specPos_[ctx][frame] = kNoFrame;
    }
    specFrames_[ctx].clear();
}

void
CacheArray::flashInvalidateSpecWritten(std::uint32_t ctx)
{
    IF_DBG_ASSERT(ctx < kMaxCheckpoints);
#ifndef NDEBUG
    verifySpecIndex();
#endif
    const std::uint8_t bit = bitOf<std::uint8_t>(ctx);
    // Detach the ctx index first: invalidateFrame() below edits the
    // *other* context's index through clearSpecCtx, and must not see a
    // half-cleared entry for this one.
    flashScratch_.clear();
    for (const std::uint32_t f : specFrames_[ctx])
        hotPush(flashScratch_, f);
    for (const std::uint32_t frame : flashScratch_)
        specPos_[ctx][frame] = kNoFrame;
    specFrames_[ctx].clear();
    for (const std::uint32_t frame : flashScratch_) {
        CacheTag& tag = tags_[frame];
        const bool written = (tag.specWritten & bit) != 0;
        tag.specRead &= static_cast<std::uint8_t>(~bit);
        tag.specWritten &= static_cast<std::uint8_t>(~bit);
        if (written)
            invalidateFrame(frame);
    }
}

void
CacheArray::forEachValid(FunctionRef<void(const Line&)> fn)
{
    const std::uint32_t frames = num_sets_ * ways_;
    for (std::uint32_t f = 0; f < frames; ++f) {
        if (tags_[f].valid())
            fn(Line{this, f});
    }
}

#ifndef NDEBUG
void
CacheArray::verifySpecIndex() const
{
    // The incremental index must agree with a full tag-lane scan — the
    // same pattern as the ROB occupancy counters: O(1) in release,
    // re-derived from scratch in debug builds.
    for (std::uint32_t c = 0; c < kMaxCheckpoints; ++c) {
        const std::uint8_t bit = bitOf<std::uint8_t>(c);
        std::uint32_t marked = 0;
        for (std::uint32_t f = 0;
             f < static_cast<std::uint32_t>(tags_.size()); ++f) {
            const CacheTag& tag = tags_[f];
            const bool has =
                ((tag.specRead | tag.specWritten) & bit) != 0;
            if (has) {
                IF_DBG_ASSERT(tag.valid() &&
                       "speculative bit on an invalid line");
                const std::uint32_t pos = specPos_[c][f];
                IF_DBG_ASSERT(pos != kNoFrame && pos < specFrames_[c].size() &&
                       specFrames_[c][pos] == f &&
                       "spec index missing a marked frame");
                ++marked;
            } else {
                IF_DBG_ASSERT(specPos_[c][f] == kNoFrame &&
                       "spec index holds an unmarked frame");
            }
        }
        IF_DBG_ASSERT(marked == specFrames_[c].size() && "spec index drifted");
    }
}
#endif

} // namespace invisifence
