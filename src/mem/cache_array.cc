#include "mem/cache_array.hh"

#include <cassert>

#include "sim/log.hh"

namespace invisifence {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t ways,
                       std::string name)
    : ways_(ways), name_(std::move(name))
{
    if (ways == 0 || size_bytes % (static_cast<std::uint64_t>(ways) *
                                   kBlockBytes) != 0) {
        IF_FATAL("cache %s: size %llu not divisible by ways*block",
                 name_.c_str(), static_cast<unsigned long long>(size_bytes));
    }
    const std::uint64_t sets = size_bytes / (ways * kBlockBytes);
    if (!isPow2(sets))
        IF_FATAL("cache %s: set count must be a power of two", name_.c_str());
    num_sets_ = static_cast<std::uint32_t>(sets);
    lines_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

std::uint32_t
CacheArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> kBlockShift) &
                                      (num_sets_ - 1));
}

CacheLine*
CacheArray::lookup(Addr addr)
{
    const Addr blk = blockAlign(addr);
    CacheLine* set = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                             ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid() && set[w].blockAddr == blk)
            return &set[w];
    }
    return nullptr;
}

const CacheLine*
CacheArray::lookup(Addr addr) const
{
    return const_cast<CacheArray*>(this)->lookup(addr);
}

void
CacheArray::touch(CacheLine& line)
{
    line.lruStamp = ++lruCounter_;
}

CacheLine&
CacheArray::findVictim(Addr addr,
                       const std::function<bool(const CacheLine&)>& avoid,
                       bool* forced_avoided)
{
    CacheLine* set = &lines_[static_cast<std::size_t>(setIndex(addr)) *
                             ways_];
    if (forced_avoided)
        *forced_avoided = false;

    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid())
            return set[w];
    }

    CacheLine* best = nullptr;
    CacheLine* best_any = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        CacheLine& line = set[w];
        if (!best_any || line.lruStamp < best_any->lruStamp)
            best_any = &line;
        if (avoid && avoid(line))
            continue;
        if (!best || line.lruStamp < best->lruStamp)
            best = &line;
    }
    if (best)
        return *best;
    if (forced_avoided)
        *forced_avoided = true;
    assert(best_any);
    return *best_any;
}

CacheLine&
CacheArray::findVictim(Addr addr)
{
    return findVictim(addr, nullptr, nullptr);
}

void
CacheArray::flashClearSpecBits(std::uint32_t ctx)
{
    assert(ctx < kMaxCheckpoints);
    for (auto& line : lines_)
        line.clearSpecBits(ctx);
}

void
CacheArray::flashInvalidateSpecWritten(std::uint32_t ctx)
{
    assert(ctx < kMaxCheckpoints);
    for (auto& line : lines_) {
        if (line.specWritten[ctx])
            line.invalidate();
        line.clearSpecBits(ctx);
    }
}

std::uint32_t
CacheArray::countSpeculative(std::uint32_t ctx) const
{
    assert(ctx < kMaxCheckpoints);
    std::uint32_t n = 0;
    for (const auto& line : lines_) {
        if (line.valid() && (line.specRead[ctx] || line.specWritten[ctx]))
            ++n;
    }
    return n;
}

void
CacheArray::forEachValid(const std::function<void(CacheLine&)>& fn)
{
    for (auto& line : lines_) {
        if (line.valid())
            fn(line);
    }
}

void
CacheArray::forEachValid(
    const std::function<void(const CacheLine&)>& fn) const
{
    for (const auto& line : lines_) {
        if (line.valid())
            fn(line);
    }
}

} // namespace invisifence
