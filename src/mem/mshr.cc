#include "mem/mshr.hh"

#include "sim/annotations.hh"
#include <cstdlib>

#include "sim/log.hh"

namespace invisifence {

namespace {

/** INVISIFENCE_MSHR_INDEX=0 disables the O(1) lookup index and the
 *  waiter/fill dedup that relies on it (escape hatch; the legacy scan
 *  path is behavior-identical). Parsed once per process. */
bool
mshrIndexEnabled()
{
    static const bool enabled = []() {
        const char* text = std::getenv("INVISIFENCE_MSHR_INDEX");
        if (!text || text[0] == '\0')
            return true;
        if (text[0] == '0' && text[1] == '\0')
            return false;
        if (text[0] == '1' && text[1] == '\0')
            return true;
        IF_FATAL("INVISIFENCE_MSHR_INDEX='%s' is not 0 or 1", text);
    }();
    return enabled;
}

} // namespace

MshrFile::MshrFile(std::uint32_t capacity, int use_index)
    : capacity_(capacity),
      useIndex_(use_index < 0 ? mshrIndexEnabled() : use_index != 0),
      slots_(capacity), live_(capacity, 0),
      // 4x capacity keeps the index at <= 25% load, so probe chains are
      // one or two slots; it is sized once and never grows.
      index_(static_cast<std::size_t>(capacity) * 4)
{
    freeSlots_.reserve(capacity);
    for (std::uint32_t i = 0; i < capacity; ++i)
        freeSlots_.push_back(capacity - 1 - i);
    // Waiter nodes are bounded by the in-flight ops that can block on a
    // fill (roughly the window per MSHR), so claim the slab up front:
    // reaching the high-water mark mid-run must not allocate.
    const std::size_t waiters = static_cast<std::size_t>(capacity) * 8;
    waiterPool_.resize(waiters);
    for (std::size_t i = 0; i < waiters; ++i) {
        waiterPool_[i].next =
            i + 1 < waiters ? static_cast<std::uint32_t>(i + 1) : kNoWaiter;
    }
    waiterFree_ = 0;
}

Mshr*
MshrFile::lookupScan(Addr blk, const Mshr::Kind* k)
{
    for (std::uint32_t i = 0; i < capacity_; ++i) {
        if (live_[i] && slots_[i].blockAddr == blk &&
            (!k || slots_[i].kind == *k)) {
            return &slots_[i];
        }
    }
    return nullptr;
}

Mshr*
MshrFile::lookup(Addr addr)
{
    IF_HOT;
    const Addr blk = blockAlign(addr);
    if (!useIndex_)
        return lookupScan(blk, nullptr);
    Mshr* m = lookup(blk, Mshr::Kind::Fetch);
    if (!m)
        m = lookup(blk, Mshr::Kind::Writeback);
    return m;
}

Mshr*
MshrFile::lookup(Addr addr, Mshr::Kind k)
{
    IF_HOT;
    const Addr blk = blockAlign(addr);
    if (!useIndex_)
        return lookupScan(blk, &k);
    const std::uint32_t* slot = index_.find(indexKey(blk, k));
    Mshr* m = slot ? &slots_[*slot] : nullptr;
    IF_DBG_ASSERT(m == lookupScan(blk, &k) &&
           "MSHR index diverged from the linear scan");
    return m;
}

Mshr*
MshrFile::allocate(Addr addr, Mshr::Kind k)
{
    IF_HOT;
    if (full()) {
        ++statFullStalls;
        return nullptr;
    }
    const std::uint32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    live_[slot] = 1;
    // Recycled slots carry stale fields; reset everything.
    Mshr& m = slots_[slot];
    m.blockAddr = blockAlign(addr);
    m.kind = k;
    m.wantWrite = false;
    m.issuedWrite = false;
    IF_DBG_ASSERT(m.readWaiters.empty() && m.writeWaiters.empty());
    m.readWaiters = WaiterChain{};
    m.writeWaiters = WaiterChain{};
    m.wbData = BlockData{};
    m.wbDirty = false;
    m.ownershipLost = false;
    m.wbType = MsgType::PutS;
    m.txnId = 0;
    m.retryAttempt = 0;
    if (useIndex_) {
        bool created = false;
        index_.getOrCreate(indexKey(m.blockAddr, k), &created) = slot;
        IF_DBG_ASSERT(created && "duplicate MSHR for one (block, kind)");
    }
    ++count_;
    ++statAllocations;
    return &m;
}

void
MshrFile::releaseChain(WaiterChain& chain)
{
    std::uint32_t idx = chain.head;
    while (idx != kNoWaiter) {
        const std::uint32_t next = waiterPool_[idx].next;
        waiterPool_[idx].next = waiterFree_;
        waiterFree_ = idx;
        idx = next;
    }
    chain = WaiterChain{};
}

void
MshrFile::free(Mshr* m)
{
    const std::ptrdiff_t off = m - slots_.data();
    IF_DBG_ASSERT(off >= 0 && off < static_cast<std::ptrdiff_t>(capacity_) &&
           "freeing MSHR not in file");
    const std::uint32_t slot = static_cast<std::uint32_t>(off);
    IF_DBG_ASSERT(live_[slot] && "double free of MSHR slot");
    // A populated chain here means fill callbacks are being dropped —
    // loads waiting on them would hang (or silently replay): a protocol
    // bug at the call site, not a cleanup detail. All current call
    // sites (finishFill, handleWbAck) detach the chains first or can
    // prove them empty; see the audit notes in cache_agent.cc.
    IF_DBG_ASSERT(m->readWaiters.empty() && m->writeWaiters.empty() &&
           "freeing MSHR with live waiters (lost fill callbacks)");
    if (!m->readWaiters.empty() || !m->writeWaiters.empty()) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            IF_LOG("MshrFile::free dropping live waiters blk=%llx "
                   "(protocol bug; further drops not logged)",
                   static_cast<unsigned long long>(m->blockAddr));
        }
        releaseChain(m->readWaiters);
        releaseChain(m->writeWaiters);
    }
    if (useIndex_) {
        const bool erased = index_.erase(indexKey(m->blockAddr, m->kind));
        IF_DBG_ASSERT(erased && "freeing MSHR missing from the index");
        static_cast<void>(erased);
    }
    live_[slot] = 0;
    hotPush(freeSlots_, slot);
    --count_;
}

void
MshrFile::pushWaiter(WaiterChain& chain, const FillWaiter& cb)
{
    if (useIndex_) {
        // Merge-time dedup: a record equal to one already chained would
        // repeat the same wake action at the same fill; drop it. Chains
        // are short (typically one record per wake kind after dedup).
        for (std::uint32_t i = chain.head; i != kNoWaiter;
             i = waiterPool_[i].next) {
            if (waiterPool_[i].cb == cb) {
                ++statWaiterDedups;
                return;
            }
        }
    }
    std::uint32_t idx;
    if (waiterFree_ != kNoWaiter) {
        idx = waiterFree_;
        waiterFree_ = waiterPool_[idx].next;
    } else {
        idx = growWaiterPool();
    }
    WaiterNode& node = waiterPool_[idx];
    node.cb = cb;
    node.next = kNoWaiter;
    if (chain.tail == kNoWaiter) {
        chain.head = idx;
    } else {
        waiterPool_[chain.tail].next = idx;
    }
    chain.tail = idx;
}

std::uint32_t
MshrFile::growWaiterPool()
{
    IF_COLD_ALLOC("waiter-node slab growth: nodes are free-listed and "
                  "recycled, so the slab stops growing at the in-flight "
                  "waiter high-water mark reached during warmup");
    waiterPool_.emplace_back();
    return static_cast<std::uint32_t>(waiterPool_.size() - 1);
}

std::uint32_t
MshrFile::takeWaiters(WaiterChain& chain)
{
    const std::uint32_t head = chain.head;
    chain = WaiterChain{};
    return head;
}

FillWaiter
MshrFile::takeWaiterAndAdvance(std::uint32_t& idx)
{
    IF_DBG_ASSERT(idx != kNoWaiter);
    WaiterNode& node = waiterPool_[idx];
    const FillWaiter cb = node.cb;
    const std::uint32_t next = node.next;
    node.next = waiterFree_;
    waiterFree_ = idx;
    idx = next;
    return cb;
}

} // namespace invisifence
