#include "mem/mshr.hh"

#include <cassert>

namespace invisifence {

Mshr*
MshrFile::lookup(Addr addr)
{
    const Addr blk = blockAlign(addr);
    for (auto& m : active_) {
        if (m.blockAddr == blk)
            return &m;
    }
    return nullptr;
}

Mshr*
MshrFile::lookup(Addr addr, Mshr::Kind k)
{
    const Addr blk = blockAlign(addr);
    for (auto& m : active_) {
        if (m.blockAddr == blk && m.kind == k)
            return &m;
    }
    return nullptr;
}

Mshr*
MshrFile::allocate(Addr addr, Mshr::Kind k)
{
    if (full()) {
        ++statFullStalls;
        return nullptr;
    }
    active_.emplace_back();
    Mshr& m = active_.back();
    m.blockAddr = blockAlign(addr);
    m.kind = k;
    ++count_;
    ++statAllocations;
    return &m;
}

void
MshrFile::free(Mshr* m)
{
    for (auto it = active_.begin(); it != active_.end(); ++it) {
        if (&*it == m) {
            active_.erase(it);
            --count_;
            return;
        }
    }
    assert(false && "freeing MSHR not in file");
}

} // namespace invisifence
