#include "mem/mshr.hh"

#include <cassert>

namespace invisifence {

Mshr*
MshrFile::lookup(Addr addr)
{
    const Addr blk = blockAlign(addr);
    for (auto& m : active_) {
        if (m.blockAddr == blk)
            return &m;
    }
    return nullptr;
}

Mshr*
MshrFile::lookup(Addr addr, Mshr::Kind k)
{
    const Addr blk = blockAlign(addr);
    for (auto& m : active_) {
        if (m.blockAddr == blk && m.kind == k)
            return &m;
    }
    return nullptr;
}

Mshr*
MshrFile::allocate(Addr addr, Mshr::Kind k)
{
    if (full()) {
        ++statFullStalls;
        return nullptr;
    }
    // Recycle a freed node when one exists (splice: no allocation);
    // reused nodes carry stale fields, so reset everything.
    if (free_.empty()) {
        active_.emplace_back();
    } else {
        active_.splice(active_.end(), free_, free_.begin());
    }
    Mshr& m = active_.back();
    m.blockAddr = blockAlign(addr);
    m.kind = k;
    m.wantWrite = false;
    m.issuedWrite = false;
    assert(m.readWaiters.empty() && m.writeWaiters.empty());
    m.readWaiters = WaiterChain{};
    m.writeWaiters = WaiterChain{};
    m.wbData = BlockData{};
    m.wbDirty = false;
    m.ownershipLost = false;
    ++count_;
    ++statAllocations;
    return &m;
}

void
MshrFile::releaseChain(WaiterChain& chain)
{
    std::uint32_t idx = chain.head;
    while (idx != kNoWaiter) {
        const std::uint32_t next = waiterPool_[idx].next;
        waiterPool_[idx].next = waiterFree_;
        waiterFree_ = idx;
        idx = next;
    }
    chain = WaiterChain{};
}

void
MshrFile::free(Mshr* m)
{
    for (auto it = active_.begin(); it != active_.end(); ++it) {
        if (&*it == m) {
            // Defensive: waiters still chained at free time go back to
            // the slab (normal paths take the chains before freeing).
            releaseChain(m->readWaiters);
            releaseChain(m->writeWaiters);
            free_.splice(free_.end(), active_, it);
            --count_;
            return;
        }
    }
    assert(false && "freeing MSHR not in file");
}

void
MshrFile::pushWaiter(WaiterChain& chain, const FillCallback& cb)
{
    std::uint32_t idx;
    if (waiterFree_ != kNoWaiter) {
        idx = waiterFree_;
        waiterFree_ = waiterPool_[idx].next;
    } else {
        waiterPool_.emplace_back();   // slab growth: warmup only
        idx = static_cast<std::uint32_t>(waiterPool_.size() - 1);
    }
    WaiterNode& node = waiterPool_[idx];
    node.cb = cb;
    node.next = kNoWaiter;
    if (chain.tail == kNoWaiter) {
        chain.head = idx;
    } else {
        waiterPool_[chain.tail].next = idx;
    }
    chain.tail = idx;
}

std::uint32_t
MshrFile::takeWaiters(WaiterChain& chain)
{
    const std::uint32_t head = chain.head;
    chain = WaiterChain{};
    return head;
}

FillCallback
MshrFile::takeWaiterAndAdvance(std::uint32_t& idx)
{
    assert(idx != kNoWaiter);
    WaiterNode& node = waiterPool_[idx];
    const FillCallback cb = node.cb;
    const std::uint32_t next = node.next;
    node.next = waiterFree_;
    waiterFree_ = idx;
    idx = next;
    return cb;
}

} // namespace invisifence
