#include "mem/store_buffer.hh"

#include <algorithm>

#include "sim/annotations.hh"

namespace invisifence {

void
FifoStoreBuffer::push(Addr addr, std::uint64_t data, InstSeq seq)
{
    IF_HOT;
    IF_DBG_ASSERT(hasSpace());
    IF_DBG_ASSERT(addr == wordAlign(addr));
    entries_.push_back(Entry{addr, data, kWordBytes, seq, false});
    ++statPushes;
    statPeakOccupancy = std::max<std::uint64_t>(statPeakOccupancy,
                                                entries_.size());
}

std::optional<std::uint64_t>
FifoStoreBuffer::forward(Addr addr) const
{
    IF_HOT;
    const Addr word = wordAlign(addr);
    for (std::size_t i = entries_.size(); i-- > 0;) {
        if (entries_[i].addr == word)
            return entries_[i].data;
    }
    return std::nullopt;
}

bool
FifoStoreBuffer::containsBlock(Addr addr) const
{
    const Addr blk = blockAlign(addr);
    for (const auto& e : entries_) {
        if (blockAlign(e.addr) == blk)
            return true;
    }
    return false;
}

CoalescingStoreBuffer::StoreResult
CoalescingStoreBuffer::store(Addr addr, std::uint32_t size,
                             std::uint64_t value, bool speculative,
                             std::uint32_t ctx, InstSeq seq)
{
    IF_HOT;
    IF_DBG_ASSERT(sameBlock(addr, size));
    const Addr blk = blockAlign(addr);
    ++statStores;
    // Coalesce only when the labels match exactly: a speculative store
    // must never merge into a non-speculative entry (or vice versa), and
    // stores from different checkpoints stay separate so abort/commit of
    // one checkpoint leaves the other's data intact.
    for (auto& e : entries_) {
        if (e.blockAddr == blk && e.speculative == speculative &&
            e.ctx == ctx) {
            e.data.write(blockOffset(addr), size, value);
            ++statMerges;
            return StoreResult::Merged;
        }
    }
    if (entries_.size() >= capacity_)
        return StoreResult::Full;
    Entry e;
    e.blockAddr = blk;
    e.data.write(blockOffset(addr), size, value);
    e.speculative = speculative;
    e.ctx = ctx;
    e.firstSeq = seq;
    entries_.push_back(e);
    statPeakOccupancy = std::max<std::uint64_t>(statPeakOccupancy,
                                                entries_.size());
    return StoreResult::NewEntry;
}

MaskedBlock
CoalescingStoreBuffer::gatherBlock(Addr addr) const
{
    const Addr blk = blockAlign(addr);
    MaskedBlock out;
    for (const auto& e : entries_) {
        if (e.blockAddr == blk)
            out.merge(e.data);
    }
    return out;
}

bool
CoalescingStoreBuffer::containsBlock(Addr addr) const
{
    IF_HOT;
    const Addr blk = blockAlign(addr);
    for (const auto& e : entries_) {
        if (e.blockAddr == blk)
            return true;
    }
    return false;
}

std::optional<std::uint64_t>
CoalescingStoreBuffer::forward(Addr addr) const
{
    IF_HOT;
    // Word-local gather: overlay only the target word's bytes, oldest
    // entry first so younger stores win — same result as merging whole
    // blocks (gatherBlock) and reading one word, without the 64-byte
    // copies on every load issue.
    const Addr blk = blockAlign(addr);
    const std::uint32_t off = blockOffset(wordAlign(addr));
    const ByteMask word_mask = byteMaskFor(off, kWordBytes);
    std::uint64_t value = 0;
    std::uint32_t have = 0;
    for (const auto& e : entries_) {
        if (e.blockAddr != blk)
            continue;
        const ByteMask m = e.data.mask & word_mask;
        if (m == 0)
            continue;
        const std::uint32_t sub =
            static_cast<std::uint32_t>(m >> off) & 0xffu;
        std::uint64_t byte_mask = 0;
        for (std::uint32_t i = 0; i < 8; ++i) {
            if (sub & bitOf<std::uint32_t>(i))
                byte_mask |= std::uint64_t{0xff} << (8 * i);
        }
        value = (value & ~byte_mask) |
                (e.data.data.readWord(off) & byte_mask);
        have |= sub;
    }
    if (have == 0xffu)
        return value;
    return std::nullopt;
}

void
CoalescingStoreBuffer::flashInvalidate(FunctionRef<bool(const Entry&)> pred)
{
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(), pred),
                   entries_.end());
}

void
CoalescingStoreBuffer::flashInvalidateSpeculative()
{
    flashInvalidate([](const Entry& e) { return e.speculative; });
}

void
CoalescingStoreBuffer::erase(const Entry& entry)
{
    IF_HOT;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (&*it == &entry) {
            entries_.erase(it);
            return;
        }
    }
    IF_DBG_ASSERT(false && "erase of entry not in store buffer");
}

bool
CoalescingStoreBuffer::emptyOfSpeculative() const
{
    return std::none_of(entries_.begin(), entries_.end(),
                        [](const Entry& e) { return e.speculative; });
}

bool
CoalescingStoreBuffer::emptyOfCtx(std::uint32_t ctx) const
{
    return std::none_of(entries_.begin(), entries_.end(),
                        [ctx](const Entry& e) { return e.ctx == ctx; });
}

} // namespace invisifence
