#include "mem/functional_mem.hh"

#include "sim/annotations.hh"

namespace invisifence {

BlockData
FunctionalMemory::readBlock(Addr addr) const
{
    IF_HOT;
    auto it = blocks_.find(blockAlign(addr));
    return it == blocks_.end() ? BlockData{} : it->second;
}

void
FunctionalMemory::writeBlock(Addr addr, const BlockData& data)
{
    IF_COLD_ALLOC("sparse backing store: operator[] allocates once per "
                  "distinct touched block, bounded by workload "
                  "footprint rather than simulated time");
    blocks_[blockAlign(addr)] = data;
}

std::uint64_t
FunctionalMemory::readWord(Addr addr) const
{
    IF_HOT;
    IF_DBG_ASSERT(addr == wordAlign(addr));
    return readBlock(addr).readWord(blockOffset(addr));
}

void
FunctionalMemory::writeWord(Addr addr, std::uint64_t value)
{
    IF_COLD_ALLOC("sparse backing store: first touch of a block "
                  "allocates its node, bounded by workload footprint");
    IF_DBG_ASSERT(addr == wordAlign(addr));
    BlockData blk = readBlock(addr);
    blk.writeWord(blockOffset(addr), value);
    blocks_[blockAlign(addr)] = blk;
}

} // namespace invisifence
