#include "mem/functional_mem.hh"

#include <cassert>

namespace invisifence {

BlockData
FunctionalMemory::readBlock(Addr addr) const
{
    auto it = blocks_.find(blockAlign(addr));
    return it == blocks_.end() ? BlockData{} : it->second;
}

void
FunctionalMemory::writeBlock(Addr addr, const BlockData& data)
{
    blocks_[blockAlign(addr)] = data;
}

std::uint64_t
FunctionalMemory::readWord(Addr addr) const
{
    assert(addr == wordAlign(addr));
    return readBlock(addr).readWord(blockOffset(addr));
}

void
FunctionalMemory::writeWord(Addr addr, std::uint64_t value)
{
    assert(addr == wordAlign(addr));
    BlockData blk = readBlock(addr);
    blk.writeWord(blockOffset(addr), value);
    blocks_[blockAlign(addr)] = blk;
}

} // namespace invisifence
