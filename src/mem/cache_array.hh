/**
 * @file
 * Set-associative cache array with LRU replacement and, for the L1D,
 * InvisiFence's per-block speculatively-read/written bits.
 *
 * The array stores tags, MESI-ish state, dirty bits, block data, and up to
 * two checkpoint contexts of speculative-access bits (Section 3.1 of the
 * paper; the optional second checkpoint doubles the bit pairs). The flash
 * operations model the single-cycle SRAM circuits of Figure 3.
 */

#ifndef INVISIFENCE_MEM_CACHE_ARRAY_HH
#define INVISIFENCE_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/block.hh"
#include "sim/types.hh"

namespace invisifence {

/** Maximum number of in-flight speculation contexts (checkpoints). */
constexpr std::uint32_t kMaxCheckpoints = 2;

/** Stable coherence states of a block within a cache level. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,     //!< read-only copy
    Exclusive,  //!< writable, clean
    Modified,   //!< writable, dirty
};

/** True when the state grants write permission. */
constexpr bool
isWritable(CoherenceState s)
{
    return s == CoherenceState::Exclusive || s == CoherenceState::Modified;
}

/** True when the state holds a valid copy of the data. */
constexpr bool
isValidState(CoherenceState s)
{
    return s != CoherenceState::Invalid;
}

/** One cache line: tag, state, data, and speculative access bits. */
struct CacheLine
{
    Addr blockAddr = 0;
    CoherenceState state = CoherenceState::Invalid;
    bool dirty = false;                //!< dirty w.r.t. the next level
    std::uint64_t lruStamp = 0;
    bool specRead[kMaxCheckpoints] = {false, false};
    bool specWritten[kMaxCheckpoints] = {false, false};
    BlockData data{};

    bool valid() const { return isValidState(state); }

    bool
    speculative() const
    {
        for (std::uint32_t c = 0; c < kMaxCheckpoints; ++c) {
            if (specRead[c] || specWritten[c])
                return true;
        }
        return false;
    }

    bool
    specWrittenAny() const
    {
        return specWritten[0] || specWritten[1];
    }

    bool
    specReadAny() const
    {
        return specRead[0] || specRead[1];
    }

    void
    clearSpecBits(std::uint32_t ctx)
    {
        specRead[ctx] = false;
        specWritten[ctx] = false;
    }

    void
    invalidate()
    {
        state = CoherenceState::Invalid;
        dirty = false;
        for (std::uint32_t c = 0; c < kMaxCheckpoints; ++c)
            clearSpecBits(c);
    }
};

/**
 * Physically indexed, set-associative array with true-LRU replacement.
 *
 * Used for both the L1D (with speculative bits) and the private L2.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways associativity
     * @param name stat prefix, e.g. "core3.l1d"
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t ways,
               std::string name);

    /** Line holding @p addr, or nullptr on miss. Does not update LRU. */
    CacheLine* lookup(Addr addr);
    const CacheLine* lookup(Addr addr) const;

    /** Mark @p line most recently used. */
    void touch(CacheLine& line);

    /**
     * Choose a victim frame in @p addr's set.
     *
     * Invalid frames win first; otherwise the LRU frame among those for
     * which @p avoid returns false; otherwise (all avoided) the overall
     * LRU frame, with @p forced_avoided set so the caller can handle the
     * speculative-eviction case (forced commit/abort).
     */
    CacheLine& findVictim(Addr addr, const std::function<bool(
        const CacheLine&)>& avoid, bool* forced_avoided);

    /** Victim selection with no avoidance predicate. */
    CacheLine& findVictim(Addr addr);

    /**
     * Flash-clear all speculative read/written bits of context @p ctx
     * (commit; Figure 3 left/middle cells). Single cycle in hardware.
     */
    void flashClearSpecBits(std::uint32_t ctx);

    /**
     * Conditionally flash-invalidate every block whose speculatively-
     * written bit of context @p ctx is set, then clear that context's
     * bits (abort; Figure 3 right cell).
     */
    void flashInvalidateSpecWritten(std::uint32_t ctx);

    /** Count of lines with any speculative bit set in context @p ctx. */
    std::uint32_t countSpeculative(std::uint32_t ctx) const;

    /** Apply @p fn to every valid line. */
    void forEachValid(const std::function<void(CacheLine&)>& fn);
    void forEachValid(const std::function<void(const CacheLine&)>& fn) const;

    std::uint32_t numSets() const { return num_sets_; }
    std::uint32_t numWays() const { return ways_; }
    const std::string& name() const { return name_; }

    /** Set index for @p addr (exposed for tests). */
    std::uint32_t setIndex(Addr addr) const;

  private:
    std::uint32_t num_sets_;
    std::uint32_t ways_;
    std::string name_;
    std::vector<CacheLine> lines_;   //!< num_sets_ * ways_, set-major
    std::uint64_t lruCounter_ = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_CACHE_ARRAY_HH
