/**
 * @file
 * Set-associative cache array with LRU replacement and, for the L1D,
 * InvisiFence's per-block speculatively-read/written bits.
 *
 * The array is stored gem5-style as two parallel lanes. The hot *tag
 * lane* packs everything a lookup or victim scan needs into 16 bytes per
 * way ({block address, LRU stamp, state, dirty, packed spec bits}), laid
 * out set-major so one set's tags share one or two host cache lines. The
 * cold *data lane* holds the 64-byte block payloads and is only touched
 * when a caller actually reads or writes block data. A per-set MRU way
 * predictor short-circuits the tag scan for the common
 * same-block-as-last-time case (INVISIFENCE_WAY_PREDICT=0 disables it;
 * results are identical either way since at most one way matches).
 *
 * Callers address lines through the lightweight `Line` accessor (array +
 * frame index) and may pin one across simulated time as a generation-
 * stamped `Handle`: the generation bumps whenever the frame's identity
 * changes (invalidate, victim install, flash invalidate), so
 * revalidation is one O(1) compare instead of a repeated tag scan.
 *
 * The flash operations model the single-cycle SRAM circuits of the
 * paper's Figure 3. In hardware they are constant-time; here they walk a
 * per-context index of speculatively-marked frames (maintained
 * incrementally by the spec-bit setters and debug-verified against a
 * full scan), so commit/abort cost O(marked lines) and countSpeculative
 * is O(1) rather than O(all lines).
 */

#ifndef INVISIFENCE_MEM_CACHE_ARRAY_HH
#define INVISIFENCE_MEM_CACHE_ARRAY_HH

#include "sim/annotations.hh"
#include <cstdint>
#include <string>
#include <vector>

#include "mem/block.hh"
#include "sim/function_ref.hh"
#include "sim/types.hh"

namespace invisifence {

/** Maximum number of in-flight speculation contexts (checkpoints). */
constexpr std::uint32_t kMaxCheckpoints = 2;

/** Stable coherence states of a block within a cache level. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,     //!< read-only copy
    Exclusive,  //!< writable, clean
    Modified,   //!< writable, dirty
};

/** True when the state grants write permission. */
constexpr bool
isWritable(CoherenceState s)
{
    return s == CoherenceState::Exclusive || s == CoherenceState::Modified;
}

/** True when the state holds a valid copy of the data. */
constexpr bool
isValidState(CoherenceState s)
{
    return s != CoherenceState::Invalid;
}

/**
 * Tag sentinel held in CacheTag::blockAddr by every invalid frame. It
 * is not block-aligned, so it can never compare equal to a lookup key
 * — which lets the tag-probe loop drop its per-way valid() test and
 * reduce to one address compare per way (a branch-free match bitmask).
 */
constexpr Addr kInvalidTagAddr = 1;

/**
 * One tag-lane entry: everything a lookup/victim/flash scan reads,
 * packed into 16 bytes so a whole set scans within a host cache line
 * or two. Block data lives in the array's parallel data lane.
 */
struct CacheTag
{
    Addr blockAddr = kInvalidTagAddr;
    std::uint32_t lruStamp = 0;
    CoherenceState state = CoherenceState::Invalid;
    std::uint8_t dirty = 0;
    std::uint8_t specRead = 0;     //!< bit c: spec-read in context c
    std::uint8_t specWritten = 0;  //!< bit c: spec-written in context c

    bool valid() const { return isValidState(state); }
    bool speculative() const { return (specRead | specWritten) != 0; }
};

static_assert(sizeof(CacheTag) == 16,
              "tag lane must stay 16 bytes per way");

/**
 * Physically indexed, set-associative array with true-LRU replacement.
 *
 * Used for both the L1D (with speculative bits) and the private L2.
 */
class CacheArray
{
  public:
    /** Frame index sentinel: "no line". */
    static constexpr std::uint32_t kNoFrame = ~std::uint32_t{0};

    /**
     * Generation-stamped reference to a frame, pinnable across
     * simulated time. resolve() returns the line iff the frame still
     * holds the same block it did when the handle was taken.
     */
    struct Handle
    {
        std::uint32_t frame = kNoFrame;
        std::uint32_t generation = 0;

        bool null() const { return frame == kNoFrame; }
    };

    /**
     * Lightweight accessor for one line: array pointer + frame index.
     * All spec-bit and identity mutations go through the array so the
     * incremental speculative index and generation stamps stay exact.
     * Copyable two-word value; a default-constructed Line is null.
     */
    class Line
    {
      public:
        Line() = default;

        explicit operator bool() const { return arr_ != nullptr; }
        bool operator==(const Line&) const = default;

        Addr blockAddr() const { return tag().blockAddr; }
        CoherenceState state() const { return tag().state; }
        bool valid() const { return tag().valid(); }
        bool dirty() const { return tag().dirty != 0; }

        bool speculative() const { return tag().speculative(); }
        bool specReadAny() const { return tag().specRead != 0; }
        bool specWrittenAny() const { return tag().specWritten != 0; }

        bool
        specRead(std::uint32_t ctx) const
        {
            return ((static_cast<std::uint32_t>(tag().specRead) >> ctx) &
                    1u) != 0;
        }

        bool
        specWritten(std::uint32_t ctx) const
        {
            return ((static_cast<std::uint32_t>(tag().specWritten) >>
                     ctx) & 1u) != 0;
        }

        /** Block payload in the cold data lane. */
        BlockData& data() const { return arr_->data_[frame_]; }

        /** Generation-stamped reference to this frame, for pinning. */
        Handle
        handle() const
        {
            return {frame_, arr_->gen_[frame_]};
        }

        /** Change coherence state (never to Invalid; use invalidate). */
        void
        setState(CoherenceState s) const
        {
            IF_DBG_ASSERT(isValidState(s));
            tag().state = s;
        }

        void setDirty(bool d) const { tag().dirty = d ? 1 : 0; }

        /** Mark spec-read in @p ctx; maintains the speculative index. */
        void
        setSpecRead(std::uint32_t ctx) const
        {
            arr_->setSpecBit(frame_, ctx, /*written=*/false);
        }

        /** Mark spec-written in @p ctx; maintains the index. */
        void
        setSpecWritten(std::uint32_t ctx) const
        {
            arr_->setSpecBit(frame_, ctx, /*written=*/true);
        }

        /**
         * Reset this frame to hold @p block_addr in @p state (clean,
         * no spec bits). The frame must be invalid (victims are
         * invalidated/evicted first); bumps the generation.
         */
        void
        install(Addr block_addr, CoherenceState s) const
        {
            arr_->installFrame(frame_, block_addr, s);
        }

        /** Invalidate: clears state/dirty/spec bits, bumps generation. */
        void invalidate() const { arr_->invalidateFrame(frame_); }

      private:
        friend class CacheArray;
        Line(CacheArray* arr, std::uint32_t frame)
            : arr_(arr), frame_(frame)
        {
        }

        CacheTag& tag() const { return arr_->tags_[frame_]; }

        CacheArray* arr_ = nullptr;
        std::uint32_t frame_ = 0;
    };

    /**
     * @param size_bytes total capacity
     * @param ways associativity
     * @param name stat prefix, e.g. "core3.l1d"
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t ways,
               std::string name);

    /** Line holding @p addr, or a null Line on miss. No LRU update.
     *  Defined inline below: this is the hottest function in the
     *  simulator (every load issue, SB drain probe, and protocol step
     *  lands here), and the call overhead is measurable. */
    Line lookup(Addr addr);
    Line lookup(Addr addr) const;

    /**
     * O(1) revalidation of a pinned handle: the line, iff the frame's
     * generation still matches (same block, possibly different
     * state/dirty/spec bits); a null Line otherwise.
     */
    Line
    resolve(Handle h)
    {
        if (h.null() || gen_[h.frame] != h.generation ||
            !tags_[h.frame].valid()) {
            return {};
        }
        return {this, h.frame};
    }

    /** Mark @p line most recently used. */
    void touch(const Line& line);

    /**
     * Choose a victim frame in @p addr's set.
     *
     * Invalid frames win first; otherwise the LRU frame among those for
     * which @p avoid returns false; otherwise (all avoided) the overall
     * LRU frame, with @p forced_avoided set so the caller can handle the
     * speculative-eviction case (forced commit/abort).
     */
    Line findVictim(Addr addr, FunctionRef<bool(const Line&)> avoid,
                    bool* forced_avoided);

    /** Victim selection with no avoidance predicate. */
    Line findVictim(Addr addr);

    /**
     * Flash-clear all speculative read/written bits of context @p ctx
     * (commit; Figure 3 left/middle cells). Single cycle in hardware;
     * O(lines marked in @p ctx) here via the incremental index.
     */
    void flashClearSpecBits(std::uint32_t ctx);

    /**
     * Conditionally flash-invalidate every block whose speculatively-
     * written bit of context @p ctx is set, then clear that context's
     * bits (abort; Figure 3 right cell). O(lines marked in @p ctx).
     */
    void flashInvalidateSpecWritten(std::uint32_t ctx);

    /** Count of lines with any speculative bit set in context @p ctx.
     *  O(1): the incremental index is counted, not the array. */
    std::uint32_t
    countSpeculative(std::uint32_t ctx) const
    {
        IF_DBG_ASSERT(ctx < kMaxCheckpoints);
        return static_cast<std::uint32_t>(specFrames_[ctx].size());
    }

    /** Apply @p fn to every valid line. */
    void forEachValid(FunctionRef<void(const Line&)> fn);

    std::uint32_t numSets() const { return num_sets_; }
    std::uint32_t numWays() const { return ways_; }
    const std::string& name() const { return name_; }

    /** Set index for @p addr (exposed for tests). */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr >> kBlockShift) &
                                          (num_sets_ - 1));
    }

    /** @{ Test access: LRU-stamp wrap handling. The 32-bit stamps are
     *  renormalized (within-set order preserved exactly, so victim
     *  choices are unchanged) when the touch counter saturates; tests
     *  fast-forward the counter instead of touching 4G times. */
    void debugSetLruCounter(std::uint32_t v) { lruCounter_ = v; }
    std::uint32_t debugLruCounter() const { return lruCounter_; }
    /** @} */

  private:
    friend class Line;

    /** Tag of frame @p f (set-major: set * ways + way). */
    std::uint32_t frameSet(std::uint32_t f) const { return f / ways_; }

    void setSpecBit(std::uint32_t frame, std::uint32_t ctx, bool written);
    void clearSpecCtx(std::uint32_t frame, std::uint32_t ctx);
    void installFrame(std::uint32_t frame, Addr block_addr,
                      CoherenceState s);
    void invalidateFrame(std::uint32_t frame);
    void renormalizeLru();
#ifndef NDEBUG
    void verifySpecIndex() const;
#endif

    std::uint32_t num_sets_;
    std::uint32_t ways_;
    bool wayPredict_;
    std::string name_;
    std::vector<CacheTag> tags_;     //!< hot lane, set-major
    std::vector<BlockData> data_;    //!< cold lane, parallel to tags_
    std::vector<std::uint32_t> gen_; //!< per-frame handle generation
    std::vector<std::uint8_t> mru_;  //!< per-set predicted way
    /** Incremental speculative index: frames with any bit in ctx, plus
     *  each frame's position in that list (kNoFrame when absent). All
     *  storage is preallocated to worst case — no steady-state allocs. */
    std::vector<std::uint32_t> specFrames_[kMaxCheckpoints];
    std::vector<std::uint32_t> specPos_[kMaxCheckpoints];
    std::vector<std::uint32_t> flashScratch_;
    std::uint32_t lruCounter_ = 0;
};

inline CacheArray::Line
CacheArray::lookup(Addr addr)
{
    const Addr blk = blockAlign(addr);
    const std::uint32_t set = setIndex(addr);
    const std::uint32_t base = set * ways_;
    const CacheTag* tags = &tags_[base];
    // Invalid frames hold kInvalidTagAddr, which no aligned lookup key
    // can equal — so the probes below need no valid() test.
    if (wayPredict_) {
        // MRU way first: the repeated same-block accesses of a protocol
        // step resolve on the first 16-byte tag probed.
        const std::uint32_t p = mru_[set];
        if (tags[p].blockAddr == blk)
            return {this, base + p};
    }
    // Branch-free set scan: accumulate a per-way match bitmask (the
    // compiler can unroll/vectorize the compare loop), then pick the
    // matching way — at most one way holds a block — with countr_zero.
    std::uint64_t match = 0;
    for (std::uint32_t w = 0; w < ways_; ++w)
        match |= std::uint64_t{tags[w].blockAddr == blk} << w;
    if (match == 0)
        return {};
    const auto w = static_cast<std::uint32_t>(std::countr_zero(match));
    mru_[set] = static_cast<std::uint8_t>(w);
    return {this, base + w};
}

inline CacheArray::Line
CacheArray::lookup(Addr addr) const
{
    return const_cast<CacheArray*>(this)->lookup(addr);
}

} // namespace invisifence

#endif // INVISIFENCE_MEM_CACHE_ARRAY_HH
