/**
 * @file
 * Miss status holding registers (Figure 6: 32 per cache).
 *
 * One MSHR tracks one outstanding block-granularity transaction of the
 * cache agent: a fetch (GetS/GetM) or an eviction writeback awaiting its
 * acknowledgment. Requests to the same block merge into one MSHR; waiters
 * are called back when the transaction completes.
 */

#ifndef INVISIFENCE_MEM_MSHR_HH
#define INVISIFENCE_MEM_MSHR_HH

#include <cstdint>
#include <functional>
#include <list>
#include <vector>

#include "mem/block.hh"
#include "sim/types.hh"

namespace invisifence {

/** One outstanding transaction. */
struct Mshr
{
    enum class Kind { Fetch, Writeback };

    Addr blockAddr = 0;
    Kind kind = Kind::Fetch;

    // --- Fetch state ---
    bool wantWrite = false;      //!< some waiter needs write permission
    bool issuedWrite = false;    //!< the in-flight request is a GetM
    std::vector<std::function<void()>> readWaiters;
    std::vector<std::function<void()>> writeWaiters;

    // --- Writeback state: data retained until the home acknowledges so
    // the agent can still serve crossing forwards (eviction race). ---
    BlockData wbData{};
    bool wbDirty = false;
    bool ownershipLost = false;  //!< a forward consumed the data already
};

/** Fixed-capacity pool of MSHRs with block-address lookup. */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t capacity) : capacity_(capacity) {}

    /** MSHR of any kind for @p addr's block, or nullptr. */
    Mshr* lookup(Addr addr);

    /** MSHR of kind @p k for @p addr's block, or nullptr. */
    Mshr* lookup(Addr addr, Mshr::Kind k);

    /** Allocate a new MSHR; nullptr when the file is full. */
    Mshr* allocate(Addr addr, Mshr::Kind k);

    /** Release @p m (must belong to this file). */
    void free(Mshr* m);

    bool full() const { return count_ >= capacity_; }
    std::uint32_t inUse() const { return count_; }
    std::uint32_t capacity() const { return capacity_; }

    std::uint64_t statAllocations = 0;
    std::uint64_t statFullStalls = 0;

  private:
    std::uint32_t capacity_;
    std::uint32_t count_ = 0;
    std::list<Mshr> active_;   //!< stable addresses for outstanding txns
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_MSHR_HH
