/**
 * @file
 * Miss status holding registers (Figure 6: 32 per cache).
 *
 * One MSHR tracks one outstanding block-granularity transaction of the
 * cache agent: a fetch (GetS/GetM) or an eviction writeback awaiting its
 * acknowledgment. Requests to the same block merge into one MSHR; waiters
 * are called back when the transaction completes.
 *
 * Storage is a fixed preallocated slot array (stable addresses, LIFO
 * free list) with an open-addressed block-address -> slot index on the
 * side, so lookup() — on the path of every fill, forward, and issued
 * load — is O(1) instead of a linear scan over the active list. A fetch
 * and a writeback MSHR may coexist for one block, so the index key tags
 * the kind into the block address's low alignment bits.
 * INVISIFENCE_MSHR_INDEX=0 falls back to the legacy linear scan (and
 * disables waiter/fill dedup); debug builds cross-check every indexed
 * lookup against the scan.
 *
 * Waiter callbacks are typed {function, owner, argument} records
 * (FillWaiter, 24 bytes — down from the 40-byte InplaceFn closures),
 * which makes identical waiters comparable: N same-block loads of one
 * core collapse to a single chained record at merge time instead of N
 * equivalent closures. The records live in one shared free-listed slab
 * of intrusive chain nodes (not per-MSHR vectors, whose capacities
 * would each have to converge separately) — so the steady state
 * performs no heap allocation per transaction.
 */

#ifndef INVISIFENCE_MEM_MSHR_HH
#define INVISIFENCE_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "coh/message.hh"
#include "mem/block.hh"
#include "sim/annotations.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace invisifence {

/**
 * Typed fill-completion callback: a plain function pointer applied to
 * {owner, arg}. Trivially copyable and equality-comparable, so merged
 * waiters for the same wake action deduplicate structurally. The load
 * path uses {Core's wake thunk, core, block | write-wake bit}.
 */
struct FillWaiter
{
    using Fn = void (*)(void* owner, std::uint64_t arg);

    Fn fn = nullptr;
    void* owner = nullptr;
    std::uint64_t arg = 0;

    explicit operator bool() const { return fn != nullptr; }
    bool operator==(const FillWaiter&) const = default;

    void
    operator()() const
    {
        if (fn)
            fn(owner, arg);
    }
};

/** Sentinel for an empty waiter chain / free-list end. */
constexpr std::uint32_t kNoWaiter = 0xffffffffu;

/** FIFO chain of waiter-slab indices (head runs first). */
struct WaiterChain
{
    std::uint32_t head = kNoWaiter;
    std::uint32_t tail = kNoWaiter;

    bool empty() const { return head == kNoWaiter; }
};

/** One outstanding transaction. */
struct Mshr
{
    enum class Kind { Fetch, Writeback };

    Addr blockAddr = 0;
    Kind kind = Kind::Fetch;

    // --- Fetch state ---
    bool wantWrite = false;      //!< some waiter needs write permission
    bool issuedWrite = false;    //!< the in-flight request is a GetM
    WaiterChain readWaiters;
    WaiterChain writeWaiters;

    // --- Writeback state: data retained until the home acknowledges so
    // the agent can still serve crossing forwards (eviction race). ---
    BlockData wbData{};
    bool wbDirty = false;
    bool ownershipLost = false;  //!< a forward consumed the data already
    MsgType wbType = MsgType::PutS;  //!< what to retransmit on timeout

    // --- Retry state (fault-tolerant mode only; see cache_agent.cc) ---
    std::uint32_t txnId = 0;        //!< tag of the in-flight request
    std::uint32_t retryAttempt = 0; //!< timeouts taken so far
};

/**
 * Fixed-capacity pool of MSHRs with O(1) block-address lookup and a
 * shared waiter-callback slab.
 */
class MshrFile
{
  public:
    /**
     * @param capacity total slots (fetch + writeback)
     * @param use_index -1 follows INVISIFENCE_MSHR_INDEX (default on),
     *        0/1 force the flat index (and waiter dedup) off/on — the
     *        per-instance override the A/B equivalence tests use.
     */
    explicit MshrFile(std::uint32_t capacity, int use_index = -1);

    /** MSHR of any kind for @p addr's block, or nullptr. */
    Mshr* lookup(Addr addr);

    /** MSHR of kind @p k for @p addr's block, or nullptr. */
    Mshr* lookup(Addr addr, Mshr::Kind k);

    /** Allocate a new MSHR; nullptr when the file is full. */
    Mshr* allocate(Addr addr, Mshr::Kind k);

    /**
     * Release @p m (must belong to this file). Freeing an MSHR whose
     * waiter chains are still populated would silently drop fill
     * callbacks — a protocol bug, not a cleanup detail — so it asserts
     * in debug builds and logs (once) in release before recycling the
     * orphaned nodes.
     */
    void free(Mshr* m);

    /**
     * Append @p cb to @p chain (slab node from the free list). A record
     * equal to one already chained is dropped: the wake action runs
     * once per fill regardless, so duplicates only cost slab nodes and
     * redundant calls. (Suppressed when the index/dedup hatch is off.)
     */
    void pushWaiter(WaiterChain& chain, const FillWaiter& cb);

    /**
     * Detach @p chain and return its head index (kNoWaiter when empty);
     * the chain on the MSHR is left empty, so callbacks that re-enter
     * and push new waiters extend a fresh chain. Walk the detached
     * chain with takeWaiterAndAdvance().
     */
    std::uint32_t takeWaiters(WaiterChain& chain);

    /**
     * Copy out node @p idx's callback, recycle the node, and advance
     * @p idx to the next chain entry. The copy is returned so the node
     * is reusable while the callback runs.
     */
    FillWaiter takeWaiterAndAdvance(std::uint32_t& idx);

    /** Apply @p fn to every live MSHR, in slot order (diagnostics:
     *  the liveness watchdog dumps in-flight transactions with this). */
    template <typename Fn>
    void
    forEachLive(Fn&& fn) const
    {
        for (std::uint32_t i = 0; i < capacity_; ++i) {
            if (live_[i])
                fn(slots_[i]);
        }
    }

    bool full() const { return count_ >= capacity_; }
    std::uint32_t inUse() const { return count_; }
    std::uint32_t capacity() const { return capacity_; }

    /** True when the O(1) index (and with it waiter dedup) is active. */
    bool indexEnabled() const { return useIndex_; }

    /** Waiter-slab node count (pool-sizing diagnostics and tests). */
    std::size_t waiterSlabSize() const { return waiterPool_.size(); }

    std::uint64_t statAllocations = 0;
    /** Full-MSHR stall episodes (see CacheAgent/Core edge counting). */
    std::uint64_t statFullStalls = 0;
    std::uint64_t statWaiterDedups = 0;

  private:
    struct WaiterNode
    {
        FillWaiter cb{};
        std::uint32_t next = kNoWaiter;
    };

    /** Index key: block address with the kind tagged into bit 0 (block
     *  alignment keeps the low 6 bits free). */
    static Addr
    indexKey(Addr blk, Mshr::Kind k)
    {
        return blk | (k == Mshr::Kind::Writeback ? 1u : 0u);
    }

    Mshr* lookupScan(Addr blk, const Mshr::Kind* k);

    /** Release every node of @p chain back to the slab. */
    void releaseChain(WaiterChain& chain);
    /** Slab-growth slow path of pushWaiter (cold allocation frontier). */
    IF_COLD_FN std::uint32_t growWaiterPool();

    std::uint32_t capacity_;
    std::uint32_t count_ = 0;
    bool useIndex_;
    std::vector<Mshr> slots_;              //!< preallocated, stable
    std::vector<std::uint8_t> live_;       //!< slot occupancy flags
    std::vector<std::uint32_t> freeSlots_; //!< LIFO free list
    FlatAddrMap<std::uint32_t> index_;     //!< tagged block -> slot
    std::vector<WaiterNode> waiterPool_;   //!< shared callback slab
    std::uint32_t waiterFree_ = kNoWaiter;
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_MSHR_HH
