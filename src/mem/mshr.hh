/**
 * @file
 * Miss status holding registers (Figure 6: 32 per cache).
 *
 * One MSHR tracks one outstanding block-granularity transaction of the
 * cache agent: a fetch (GetS/GetM) or an eviction writeback awaiting its
 * acknowledgment. Requests to the same block merge into one MSHR; waiters
 * are called back when the transaction completes.
 *
 * Everything is pooled: freed MSHRs are spliced onto a free list and
 * recycled, and waiter callbacks live in one shared free-listed slab of
 * intrusive chain nodes (not per-MSHR vectors, whose capacities would
 * each have to converge separately) — so the steady state performs no
 * heap allocation per transaction.
 */

#ifndef INVISIFENCE_MEM_MSHR_HH
#define INVISIFENCE_MEM_MSHR_HH

#include <cstdint>
#include <list>
#include <vector>

#include "mem/block.hh"
#include "sim/inplace_fn.hh"
#include "sim/types.hh"

namespace invisifence {

/** Sentinel for an empty waiter chain / free-list end. */
constexpr std::uint32_t kNoWaiter = 0xffffffffu;

/** FIFO chain of waiter-slab indices (head runs first). */
struct WaiterChain
{
    std::uint32_t head = kNoWaiter;
    std::uint32_t tail = kNoWaiter;

    bool empty() const { return head == kNoWaiter; }
};

/** One outstanding transaction. */
struct Mshr
{
    enum class Kind { Fetch, Writeback };

    Addr blockAddr = 0;
    Kind kind = Kind::Fetch;

    // --- Fetch state ---
    bool wantWrite = false;      //!< some waiter needs write permission
    bool issuedWrite = false;    //!< the in-flight request is a GetM
    WaiterChain readWaiters;
    WaiterChain writeWaiters;

    // --- Writeback state: data retained until the home acknowledges so
    // the agent can still serve crossing forwards (eviction race). ---
    BlockData wbData{};
    bool wbDirty = false;
    bool ownershipLost = false;  //!< a forward consumed the data already
};

/**
 * Fixed-capacity pool of MSHRs with block-address lookup and a shared
 * waiter-callback slab.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t capacity) : capacity_(capacity) {}

    /** MSHR of any kind for @p addr's block, or nullptr. */
    Mshr* lookup(Addr addr);

    /** MSHR of kind @p k for @p addr's block, or nullptr. */
    Mshr* lookup(Addr addr, Mshr::Kind k);

    /** Allocate a new MSHR; nullptr when the file is full. */
    Mshr* allocate(Addr addr, Mshr::Kind k);

    /** Release @p m (must belong to this file). */
    void free(Mshr* m);

    /** Append @p cb to @p chain (slab node from the free list). */
    void pushWaiter(WaiterChain& chain, const FillCallback& cb);

    /**
     * Detach @p chain and return its head index (kNoWaiter when empty);
     * the chain on the MSHR is left empty, so callbacks that re-enter
     * and push new waiters extend a fresh chain. Walk the detached
     * chain with takeWaiterAndAdvance().
     */
    std::uint32_t takeWaiters(WaiterChain& chain);

    /**
     * Copy out node @p idx's callback, recycle the node, and advance
     * @p idx to the next chain entry. The copy is returned so the node
     * is reusable while the callback runs.
     */
    FillCallback takeWaiterAndAdvance(std::uint32_t& idx);

    bool full() const { return count_ >= capacity_; }
    std::uint32_t inUse() const { return count_; }
    std::uint32_t capacity() const { return capacity_; }

    std::uint64_t statAllocations = 0;
    std::uint64_t statFullStalls = 0;

  private:
    struct WaiterNode
    {
        FillCallback cb;
        std::uint32_t next = kNoWaiter;
    };

    /** Release every node of @p chain (MSHR freed with waiters). */
    void releaseChain(WaiterChain& chain);

    std::uint32_t capacity_;
    std::uint32_t count_ = 0;
    std::list<Mshr> active_;   //!< stable addresses for outstanding txns
    std::list<Mshr> free_;     //!< recycled nodes
    std::vector<WaiterNode> waiterPool_;   //!< shared callback slab
    std::uint32_t waiterFree_ = kNoWaiter;
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_MSHR_HH
