/**
 * @file
 * Functional backing store for the whole machine.
 *
 * Holds the architecturally committed value of every block that has ever
 * been written. Cache fills on a directory miss read from here; dirty
 * writebacks write here. Unwritten memory reads as zero.
 */

#ifndef INVISIFENCE_MEM_FUNCTIONAL_MEM_HH
#define INVISIFENCE_MEM_FUNCTIONAL_MEM_HH

#include <cstdint>
#include <unordered_map>

#include "mem/block.hh"
#include "sim/types.hh"

namespace invisifence {

/** Sparse functional memory image, block-granular. */
class FunctionalMemory
{
  public:
    /** Copy of the block containing @p addr (zero if untouched). */
    BlockData readBlock(Addr addr) const;

    /** Replace the whole block containing @p addr. */
    void writeBlock(Addr addr, const BlockData& data);

    /** Read an aligned 64-bit word (convenience for tests/checkers). */
    std::uint64_t readWord(Addr addr) const;

    /** Write an aligned 64-bit word (convenience for initialization). */
    void writeWord(Addr addr, std::uint64_t value);

    std::size_t touchedBlocks() const { return blocks_.size(); }

  private:
    std::unordered_map<Addr, BlockData> blocks_;
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_FUNCTIONAL_MEM_HH
