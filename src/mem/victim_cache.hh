/**
 * @file
 * Small fully-associative victim cache (Figure 6: 16 entries next to L1).
 *
 * Holds non-speculative blocks evicted from the L1 for capacity/conflict
 * reasons so a quick re-reference refills without an L2 round trip.
 * Speculative blocks are never placed here: they must not escape the L1
 * (Section 3.2, violation detection), so their evictions force a commit
 * or abort instead.
 *
 * Like CacheArray, storage is split into a compact tag lane ({block
 * address, data slot, state, dirty}, 16 bytes per entry, scanned
 * contiguously) and a slot-indexed 64-byte data lane, so the L1-miss
 * probes on the agent's hot path never touch block data — and FIFO
 * shifting moves only 16-byte tags, never payloads.
 */

#ifndef INVISIFENCE_MEM_VICTIM_CACHE_HH
#define INVISIFENCE_MEM_VICTIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/block.hh"
#include "mem/cache_array.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace invisifence {

/** FIFO-replacement fully-associative victim buffer. */
class VictimCache
{
  public:
    explicit VictimCache(std::uint32_t entries)
        : capacity_(entries), data_(entries)
    {
        // Data-lane slots are byte-indexed from the tags; bound the
        // capacity so slot numbers can never alias.
        if (entries > 256)
            IF_FATAL("victim cache: at most 256 entries supported");
        // All lanes are preallocated; nothing allocates after
        // construction.
        tags_.reserve(entries);
        freeSlots_.reserve(entries);
        for (std::uint32_t s = 0; s < entries; ++s)
            freeSlots_.push_back(static_cast<std::uint8_t>(s));
    }

    /** Full view of one entry, for insert/extract interchange. */
    struct Entry
    {
        Addr blockAddr = 0;
        CoherenceState state = CoherenceState::Invalid;
        bool dirty = false;
        BlockData data{};
    };

    /** Insert a victim; evicts the oldest entry if full (returned). */
    struct InsertResult
    {
        bool displaced = false;
        Entry displacedEntry{};
    };
    InsertResult insert(const Entry& e);

    /** Insert without the Entry interchange copy: the payload goes
     *  straight from @p data into the entry's slot (one 64-byte copy).
     *  Any displaced entry is dropped, as the L1 eviction path does. */
    void insertFrom(Addr block_addr, CoherenceState state,
                    const BlockData& data);

    /** Find and remove the entry for @p addr; true when present. */
    bool extract(Addr addr, Entry* out);

    /** Presence probe: tag-lane scan only, no block data touched. */
    bool
    contains(Addr addr) const
    {
        return indexOf(addr) >= 0;
    }

    /** Block payload for @p addr, or nullptr (test/debug access). */
    const BlockData*
    peekData(Addr addr) const
    {
        const std::ptrdiff_t i = indexOf(addr);
        return i >= 0 ? &data_[tags_[static_cast<std::size_t>(i)].slot]
                      : nullptr;
    }

    /** Remove the entry for @p addr if present (invalidation). */
    bool invalidate(Addr addr);

    std::size_t size() const { return tags_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    std::uint64_t statHits = 0;
    std::uint64_t statMisses = 0;

  private:
    /** Compact tag-lane entry; age order lives in the vector order. */
    struct Tag
    {
        Addr blockAddr = 0;
        std::uint8_t slot = 0;    //!< index into the fixed data lane
        CoherenceState state = CoherenceState::Invalid;
        std::uint8_t dirty = 0;
    };

    /** Age position of @p addr's entry (oldest first), or -1. */
    std::ptrdiff_t indexOf(Addr addr) const;
    void eraseAt(std::size_t i);
    std::uint8_t takeSlot();

    std::uint32_t capacity_;
    std::vector<Tag> tags_;       //!< hot lane, oldest first
    std::vector<BlockData> data_; //!< cold lane, fixed slots
    std::vector<std::uint8_t> freeSlots_;
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_VICTIM_CACHE_HH
