/**
 * @file
 * Small fully-associative victim cache (Figure 6: 16 entries next to L1).
 *
 * Holds non-speculative blocks evicted from the L1 for capacity/conflict
 * reasons so a quick re-reference refills without an L2 round trip.
 * Speculative blocks are never placed here: they must not escape the L1
 * (Section 3.2, violation detection), so their evictions force a commit
 * or abort instead.
 */

#ifndef INVISIFENCE_MEM_VICTIM_CACHE_HH
#define INVISIFENCE_MEM_VICTIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/block.hh"
#include "mem/cache_array.hh"
#include "sim/types.hh"

namespace invisifence {

/** FIFO-replacement fully-associative victim buffer. */
class VictimCache
{
  public:
    explicit VictimCache(std::uint32_t entries) : capacity_(entries) {}

    struct Entry
    {
        Addr blockAddr = 0;
        CoherenceState state = CoherenceState::Invalid;
        bool dirty = false;
        BlockData data{};
    };

    /** Insert a victim; evicts the oldest entry if full (returned). */
    struct InsertResult
    {
        bool displaced = false;
        Entry displacedEntry{};
    };
    InsertResult insert(const Entry& e);

    /** Find and remove the entry for @p addr; true when present. */
    bool extract(Addr addr, Entry* out);

    /** Find without removing (for external probes). */
    const Entry* probe(Addr addr) const;

    /** Remove the entry for @p addr if present (invalidation). */
    bool invalidate(Addr addr);

    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    std::uint64_t statHits = 0;
    std::uint64_t statMisses = 0;

  private:
    std::uint32_t capacity_;
    /** Age order, oldest first. A vector (16 entries, trivially
     *  copyable): shifting on FIFO eviction is a small memmove, and the
     *  storage is allocated once — no per-eviction deque-chunk churn. */
    std::vector<Entry> entries_;
};

} // namespace invisifence

#endif // INVISIFENCE_MEM_VICTIM_CACHE_HH
