#include "mem/victim_cache.hh"

#include "sim/annotations.hh"

namespace invisifence {

std::ptrdiff_t
VictimCache::indexOf(Addr addr) const
{
    const Addr blk = blockAlign(addr);
    for (std::size_t i = 0; i < tags_.size(); ++i) {
        if (tags_[i].blockAddr == blk)
            return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
}

void
VictimCache::eraseAt(std::size_t i)
{
    hotPush(freeSlots_, tags_[i].slot);
    // Tag-lane shift only: 16-byte entries, payloads stay in place.
    tags_.erase(tags_.begin() + static_cast<std::ptrdiff_t>(i));
}

std::uint8_t
VictimCache::takeSlot()
{
    IF_DBG_ASSERT(!freeSlots_.empty());
    const std::uint8_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    return slot;
}

VictimCache::InsertResult
VictimCache::insert(const Entry& e)
{
    IF_DBG_ASSERT(e.state != CoherenceState::Invalid);
    IF_DBG_ASSERT(e.blockAddr == blockAlign(e.blockAddr));
    InsertResult res;
    // A re-inserted block replaces its previous incarnation.
    invalidate(e.blockAddr);
    if (tags_.size() >= capacity_) {
        res.displaced = true;
        res.displacedEntry.blockAddr = tags_.front().blockAddr;
        res.displacedEntry.state = tags_.front().state;
        res.displacedEntry.dirty = tags_.front().dirty != 0;
        res.displacedEntry.data = data_[tags_.front().slot];
        eraseAt(0);
    }
    const std::uint8_t slot = takeSlot();
    data_[slot] = e.data;
    hotPush(tags_, Tag{e.blockAddr, slot, e.state,
                       static_cast<std::uint8_t>(e.dirty ? 1 : 0)});
    return res;
}

void
VictimCache::insertFrom(Addr block_addr, CoherenceState state,
                        const BlockData& data)
{
    IF_HOT;
    IF_DBG_ASSERT(state != CoherenceState::Invalid);
    IF_DBG_ASSERT(block_addr == blockAlign(block_addr));
    invalidate(block_addr);
    if (tags_.size() >= capacity_)
        eraseAt(0);   // displaced entry dropped (clean by construction)
    const std::uint8_t slot = takeSlot();
    data_[slot] = data;
    hotPush(tags_, Tag{block_addr, slot, state, 0});
}

bool
VictimCache::extract(Addr addr, Entry* out)
{
    IF_HOT;
    const std::ptrdiff_t at = indexOf(addr);
    if (at < 0) {
        ++statMisses;
        return false;
    }
    const std::size_t i = static_cast<std::size_t>(at);
    if (out) {
        out->blockAddr = tags_[i].blockAddr;
        out->state = tags_[i].state;
        out->dirty = tags_[i].dirty != 0;
        out->data = data_[tags_[i].slot];
    }
    eraseAt(i);
    ++statHits;
    return true;
}

bool
VictimCache::invalidate(Addr addr)
{
    IF_HOT;
    const std::ptrdiff_t at = indexOf(addr);
    if (at < 0)
        return false;
    eraseAt(static_cast<std::size_t>(at));
    return true;
}

} // namespace invisifence
