#include "mem/victim_cache.hh"

#include <cassert>

namespace invisifence {

std::ptrdiff_t
VictimCache::indexOf(Addr addr) const
{
    const Addr blk = blockAlign(addr);
    for (std::size_t i = 0; i < tags_.size(); ++i) {
        if (tags_[i].blockAddr == blk)
            return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
}

void
VictimCache::eraseAt(std::size_t i)
{
    freeSlots_.push_back(tags_[i].slot);
    // Tag-lane shift only: 16-byte entries, payloads stay in place.
    tags_.erase(tags_.begin() + static_cast<std::ptrdiff_t>(i));
}

std::uint8_t
VictimCache::takeSlot()
{
    assert(!freeSlots_.empty());
    const std::uint8_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    return slot;
}

VictimCache::InsertResult
VictimCache::insert(const Entry& e)
{
    assert(e.state != CoherenceState::Invalid);
    assert(e.blockAddr == blockAlign(e.blockAddr));
    InsertResult res;
    // A re-inserted block replaces its previous incarnation.
    invalidate(e.blockAddr);
    if (tags_.size() >= capacity_) {
        res.displaced = true;
        res.displacedEntry.blockAddr = tags_.front().blockAddr;
        res.displacedEntry.state = tags_.front().state;
        res.displacedEntry.dirty = tags_.front().dirty != 0;
        res.displacedEntry.data = data_[tags_.front().slot];
        eraseAt(0);
    }
    const std::uint8_t slot = takeSlot();
    data_[slot] = e.data;
    tags_.push_back({e.blockAddr, slot, e.state,
                     static_cast<std::uint8_t>(e.dirty ? 1 : 0)});
    return res;
}

void
VictimCache::insertFrom(Addr block_addr, CoherenceState state,
                        const BlockData& data)
{
    assert(state != CoherenceState::Invalid);
    assert(block_addr == blockAlign(block_addr));
    invalidate(block_addr);
    if (tags_.size() >= capacity_)
        eraseAt(0);   // displaced entry dropped (clean by construction)
    const std::uint8_t slot = takeSlot();
    data_[slot] = data;
    tags_.push_back({block_addr, slot, state, 0});
}

bool
VictimCache::extract(Addr addr, Entry* out)
{
    const std::ptrdiff_t at = indexOf(addr);
    if (at < 0) {
        ++statMisses;
        return false;
    }
    const std::size_t i = static_cast<std::size_t>(at);
    if (out) {
        out->blockAddr = tags_[i].blockAddr;
        out->state = tags_[i].state;
        out->dirty = tags_[i].dirty != 0;
        out->data = data_[tags_[i].slot];
    }
    eraseAt(i);
    ++statHits;
    return true;
}

bool
VictimCache::invalidate(Addr addr)
{
    const std::ptrdiff_t at = indexOf(addr);
    if (at < 0)
        return false;
    eraseAt(static_cast<std::size_t>(at));
    return true;
}

} // namespace invisifence
