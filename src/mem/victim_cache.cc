#include "mem/victim_cache.hh"

#include <algorithm>
#include <cassert>

namespace invisifence {

VictimCache::InsertResult
VictimCache::insert(const Entry& e)
{
    assert(e.state != CoherenceState::Invalid);
    assert(e.blockAddr == blockAlign(e.blockAddr));
    InsertResult res;
    // A re-inserted block replaces its previous incarnation.
    invalidate(e.blockAddr);
    if (entries_.size() >= capacity_) {
        res.displaced = true;
        res.displacedEntry = entries_.front();
        entries_.erase(entries_.begin());
    }
    entries_.push_back(e);
    return res;
}

bool
VictimCache::extract(Addr addr, Entry* out)
{
    const Addr blk = blockAlign(addr);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->blockAddr == blk) {
            if (out)
                *out = *it;
            entries_.erase(it);
            ++statHits;
            return true;
        }
    }
    ++statMisses;
    return false;
}

const VictimCache::Entry*
VictimCache::probe(Addr addr) const
{
    const Addr blk = blockAlign(addr);
    for (const auto& e : entries_) {
        if (e.blockAddr == blk)
            return &e;
    }
    return nullptr;
}

bool
VictimCache::invalidate(Addr addr)
{
    const Addr blk = blockAlign(addr);
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [blk](const Entry& e) {
                               return e.blockAddr == blk;
                           });
    if (it == entries_.end())
        return false;
    entries_.erase(it);
    return true;
}

} // namespace invisifence
