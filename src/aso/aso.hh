/**
 * @file
 * ASO baseline (Wenisch et al., "Mechanisms for Store-wait-free
 * Multiprocessors", ISCA 2007), the speculative-retirement comparison
 * point of Section 6.4.
 *
 * ASO is modeled as a preset of the unified speculation engine
 * (SpecConfig::aso()): SC-selective triggers, two in-flight checkpoints
 * (ASO takes periodic checkpoints to bound discarded work), an unbounded
 * per-store Scalable Store Buffer, and a commit that drains one store per
 * cycle into the L2 with the cache's external interface blocked — in
 * contrast to INVISIFENCE's constant-time flash commit. DESIGN.md
 * documents this substitution.
 */

#ifndef INVISIFENCE_ASO_ASO_HH
#define INVISIFENCE_ASO_ASO_HH

#include <memory>

#include "core/invisifence.hh"

namespace invisifence {

/** Build the ASOsc implementation used in Figure 11. */
inline std::unique_ptr<SpeculativeImpl>
makeAso(Core& core, CacheAgent& agent)
{
    return std::make_unique<SpeculativeImpl>(SpecConfig::aso(), core,
                                             agent);
}

} // namespace invisifence

#endif // INVISIFENCE_ASO_ASO_HH
