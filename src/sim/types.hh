/**
 * @file
 * Fundamental scalar types and address helpers shared by every module.
 */

#ifndef INVISIFENCE_SIM_TYPES_HH
#define INVISIFENCE_SIM_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace invisifence {

/** Simulation time in processor clock cycles. */
using Cycle = std::uint64_t;

/**
 * Sentinel for "no pending work at any future cycle": components whose
 * next state change can only be triggered by an external event report
 * this from their nextWorkAt() predicates.
 */
constexpr Cycle kNeverCycle = ~Cycle{0};

/** Physical byte address. */
using Addr = std::uint64_t;

/** Identifier of a node (core + private cache hierarchy + home slice). */
using NodeId = std::uint32_t;

/** Monotonic per-core instruction sequence number. */
using InstSeq = std::uint64_t;

/** Cache block geometry used throughout the system (Figure 6: 64 bytes). */
constexpr std::uint32_t kBlockBytes = 64;
constexpr std::uint32_t kBlockShift = 6;

/** Word size used by the FIFO store buffers of SC/TSO (Figure 6: 8 bytes). */
constexpr std::uint32_t kWordBytes = 8;

/** Align @p a down to its containing block address. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(kBlockBytes - 1);
}

/** Byte offset of @p a within its block. */
constexpr std::uint32_t
blockOffset(Addr a)
{
    return static_cast<std::uint32_t>(a & (kBlockBytes - 1));
}

/** Align @p a down to its containing 8-byte word address. */
constexpr Addr
wordAlign(Addr a)
{
    return a & ~static_cast<Addr>(kWordBytes - 1);
}

/** True when the byte range [a, a+size) stays inside one block. */
constexpr bool
sameBlock(Addr a, std::uint32_t size)
{
    return blockAlign(a) == blockAlign(a + size - 1);
}

} // namespace invisifence

#endif // INVISIFENCE_SIM_TYPES_HH
