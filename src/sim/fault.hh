/**
 * @file
 * Deterministic fault injection for the coherence fabric.
 *
 * A FaultPlan describes what goes wrong (per-message-class drop /
 * extra-delay / duplicate rates plus scheduled one-shot faults); a
 * FaultInjector executes the plan at Network::send time, deciding each
 * message's fate from its own seeded Rng. Decisions are a pure function
 * of the plan and the message sequence, so the same seed yields the
 * same faults — and because the message sequence is itself identical
 * across fast-forward on/off, fault runs stay bit-identical too.
 *
 * Two invariants keep injected faults recoverable:
 *
 *  - Drops and duplicates apply only to request-class messages
 *    (GetS/GetM/Put*). Requests are retried by the cache agent and
 *    deduplicated by the home; dropping a forward, ack or data response
 *    would wedge the protocol with no recovery path (exactly what the
 *    planted-deadlock fixture does, deliberately, with retries off).
 *  - Extra delay never reorders messages within an ordered
 *    (src -> dst, unit) pair: the injector clamps every delivery to be
 *    no earlier than the pair's previously scheduled one (jitter
 *    without reordering). The directory protocol documents per-pair
 *    FIFO as an invariant it relies on (see network.hh); faults stress
 *    loss and latency, not properties the hardware fabric guarantees.
 */

#ifndef INVISIFENCE_SIM_FAULT_HH
#define INVISIFENCE_SIM_FAULT_HH

#include <cstdint>
#include <vector>

#include "coh/message.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace invisifence {

/**
 * What to inject. Default-constructed plans inject nothing and the
 * Network hook stays a single never-taken branch (goldens unchanged).
 */
struct FaultPlan
{
    /** Kind of a scheduled one-shot fault. */
    enum class Kind : std::uint8_t { Drop, Delay, Duplicate };

    /** One scheduled fault: applies to the @p msgIndex-th message the
     *  injector observes (1-based send order), deterministically. */
    struct OneShot
    {
        std::uint64_t msgIndex = 0;
        Kind kind = Kind::Drop;
        Cycle extraDelay = 0;    //!< Delay: added cycles
    };

    std::uint64_t seed = 1;          //!< fault Rng seed
    std::uint32_t dropPer64k = 0;    //!< request drop rate (per 65536)
    std::uint32_t delayPer64k = 0;   //!< extra-delay rate, any class
    std::uint32_t dupPer64k = 0;     //!< request duplication rate
    Cycle maxExtraDelay = 256;       //!< jitter bound for random delays
    /** Scheduled faults; the injector sorts them by msgIndex. */
    std::vector<OneShot> oneShots;

    /** True when this plan can inject anything at all. */
    bool
    any() const
    {
        return dropPer64k != 0 || delayPer64k != 0 || dupPer64k != 0 ||
               !oneShots.empty();
    }
};

/**
 * Executes a FaultPlan on the send path. Owned by the System and
 * attached to the Network only when the plan injects something; the
 * decide/route path performs no heap allocation (it runs inside the
 * IF_HOT send path).
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan& plan, std::uint32_t num_nodes,
                  EventQueue& eq);

    /**
     * Decide @p msg's fate and schedule its delivery (or not). Called
     * by Network::send in place of the direct scheduleMsg; @p sink_idx,
     * @p wake and @p base_delay are exactly what the clean path would
     * have used.
     */
    void route(const Msg& msg, std::uint32_t sink_idx, std::uint32_t wake,
               Cycle base_delay);

    /** @{ Injection counters (registered as system.fault.* stats). */
    std::uint64_t statDrops = 0;        //!< request messages dropped
    std::uint64_t statDups = 0;         //!< extra copies delivered
    std::uint64_t statDelays = 0;       //!< messages given extra delay
    std::uint64_t statDelayCycles = 0;  //!< total extra cycles injected
    /** @} */

  private:
    /** Clamp @p due to the (src -> sink) pair's FIFO horizon. */
    Cycle clampFifo(std::uint32_t src, std::uint32_t sink_idx, Cycle due);

    FaultPlan plan_;
    Rng rng_;
    std::uint32_t numNodes_;
    EventQueue& eq_;
    std::uint64_t msgIndex_ = 0;     //!< messages observed (1-based)
    std::size_t nextOneShot_ = 0;    //!< cursor into plan_.oneShots
    /** Latest scheduled delivery tick per ordered (src, sink) pair;
     *  sized numNodes * numNodes * 2 once at construction. */
    std::vector<Cycle> pairLast_;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_FAULT_HH
