/**
 * @file
 * Static-analysis annotations and width-checked bit helpers, consumed
 * by tools/iflint (the in-tree invariant analyzer, see tools/iflint/
 * and the README's "Static analysis & invariants" section).
 *
 * IF_HOT
 *   Marks the enclosing function as a steady-state hot-path root. The
 *   macro plants a function-local static whose mangled name
 *   (`_ZZ<function-encoding>E11if_hot_root`) survives into the Release
 *   object's symbol table; iflint pass 2 recovers every such marker,
 *   walks the static call graph from those roots, and fails the build
 *   if `operator new`, the malloc family, or `__cxa_throw` is
 *   reachable. Put it on the entry point of any new per-cycle path
 *   (tick loops, event dispatch, protocol steps).
 *
 * IF_COLD_ALLOC("justification")
 *   Marks the enclosing function as a sanctioned allocation frontier:
 *   iflint pass 2 stops traversal here and reports the cut. Reserved
 *   for capacity-growth paths that are preallocated in practice and
 *   runtime-verified by alloc_steadystate_test (e.g. RingDeque::grow).
 *   The justification must be a non-empty string literal so every cut
 *   is documented at the definition and greppable.
 *
 * IF_DBG_ASSERT(expr)
 *   The sanctioned debug-only invariant check. Raw `assert(` is banned
 *   in src/ by iflint's raw-assert rule: bounds that must hold in every
 *   build use IF_FATAL/IF_PANIC; checks that may compile away use this
 *   macro (which is exactly <cassert> assert, compiled out under
 *   NDEBUG) so the choice is always explicit.
 *
 * bitOf<T>(n)
 *   Width-checked single-bit mask, the sanctioned replacement for
 *   `1u << n` with a runtime shift count (iflint's raw-shift rule).
 *   Shifting by a node/way/context variable that can reach the type
 *   width is UB and silently truncates — the exact bug class the
 *   SharerSet conversion removed for node masks; bitOf covers the
 *   remaining sub-word masks (checkpoint contexts, word-valid bits).
 *
 * IF_COLD_FN / hotPush(vec, x)
 *   vector::push_back compiles to "construct, or _M_realloc_insert
 *   when full" — and for trivial element types GCC inlines the realloc
 *   slow path straight into the caller, planting an operator-new edge
 *   in every hot function that appends to a high-water-bounded vector.
 *   hotPush peels the capacity check off explicitly: the in-capacity
 *   append folds to a plain store (GCC unifies the two identical
 *   finish==end_of_storage tests), and the growth path tail-calls an
 *   out-of-line, cold, IF_COLD_ALLOC-cut helper. Use it for any
 *   steady-state push to a pooled/bounded vector.
 */

#ifndef INVISIFENCE_SIM_ANNOTATIONS_HH
#define INVISIFENCE_SIM_ANNOTATIONS_HH

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#if defined(__GNUC__) || defined(__clang__)
#define IF_HOT \
    static volatile char if_hot_root __attribute__((used)) = 0
#define IF_COLD_ALLOC(justification) \
    static_assert(sizeof(justification "") > 1, \
                  "IF_COLD_ALLOC needs a written justification"); \
    static volatile char if_cold_cut __attribute__((used)) = 0
/** Out-of-line, branch-predicted-cold function attribute for the slow
 *  half of a split hot path (growth, first-touch, error funnels). */
#define IF_COLD_FN __attribute__((noinline, cold))
/** Out-of-line only: for IF_COLD_ALLOC frontiers that stay on the
 *  steady-state path (the allocation inside is conditional and rare,
 *  but the function itself is not). */
#define IF_OUTLINE_FN __attribute__((noinline))
#else
/* Non-ELF toolchains get no-op markers; pass 2 only runs on ELF. */
#define IF_HOT do { } while (0)
#define IF_COLD_ALLOC(justification) do { } while (0)
#define IF_COLD_FN
#define IF_OUTLINE_FN
#endif

/* The one sanctioned spelling of a debug-only assert. iflint's
 * raw-assert rule would flag the expansion below, which is the
 * intended single exception in the tree. */
// iflint:allow(raw-assert) IF_DBG_ASSERT is the sanctioned wrapper; this is its definition site.
#define IF_DBG_ASSERT(...) assert((__VA_ARGS__))

namespace invisifence {

/** Width-checked `1 << n` for sub-word masks; see file comment. */
template <typename T>
constexpr T
bitOf(std::uint32_t n)
{
    IF_DBG_ASSERT(n < sizeof(T) * 8 && "bitOf: shift count exceeds type width");
    return static_cast<T>(static_cast<T>(1u) << n);
}

/** Growth half of hotPush (see file comment): the only place the
 *  vector may reallocate, cut out of the hot-path call graph. */
template <typename T>
IF_COLD_FN void
coldPush(std::vector<T>& v, T x)
{
    IF_COLD_ALLOC("vector growth is high-water-mark bounded: capacity "
                  "is retained across recycling, so steady state never "
                  "re-enters this path (alloc_steadystate_test enforces "
                  "the dynamic side of this claim)");
    v.push_back(std::move(x));
}

/** Allocation-free-in-steady-state append; see file comment. */
template <typename T>
inline void
hotPush(std::vector<T>& v, T x)
{
    if (v.size() == v.capacity()) [[unlikely]] {
        coldPush(v, std::move(x));
        return;
    }
    v.push_back(std::move(x));
}

} // namespace invisifence

#endif // INVISIFENCE_SIM_ANNOTATIONS_HH
