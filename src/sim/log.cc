#include "sim/log.hh"

#include <cstdarg>
#include <vector>

namespace invisifence {

namespace {

/** Fixed-size formatting shared by the leveled sinks: no allocation,
 *  so the logging layer stays out of iflint pass 2's reachable-alloc
 *  set even when called from hot-path code. Long messages truncate. */
void
vformatBuf(char* buf, std::size_t cap, const char* fmt, va_list ap)
{
    const int n = std::vsnprintf(buf, cap, fmt, ap);
    if (n < 0 && cap > 0)
        buf[0] = '\0';
}

} // namespace

std::string
strformat(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n <= 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

[[noreturn]] void
panicImpl(const char* file, int line, const char* fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    vformatBuf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", buf, file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char* file, int line, const char* fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    vformatBuf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", buf, file, line);
    std::exit(1);
}

void
warnImpl(const char* fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    vformatBuf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", buf);
}

void
logImpl(const char* fmt, ...)
{
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    vformatBuf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "log: %s\n", buf);
}

} // namespace invisifence

