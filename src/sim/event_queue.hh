/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in insertion order, which keeps
 * whole-system simulations bit-for-bit reproducible across runs and seeds.
 *
 * The implementation is a timing wheel: a power-of-two ring of per-tick
 * buckets covering the near future (every latency in the simulated system —
 * network hops, memory, retries — is far below the wheel span), with a
 * sorted overflow map for anything scheduled further out. Scheduling and
 * popping are O(1) appends/moves instead of binary-heap sifts, which
 * matters because coherence traffic makes events the hottest allocation
 * path in the simulator. Within a tick, bucket append order IS insertion
 * order, so the determinism contract needs no explicit sequence numbers.
 */

#ifndef INVISIFENCE_SIM_EVENT_QUEUE_HH
#define INVISIFENCE_SIM_EVENT_QUEUE_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/types.hh"

namespace invisifence {

/** Node tag for events that affect no core (e.g. directory-internal). */
constexpr std::uint32_t kNoWakeNode = 0xffffffffu;

/** A single scheduled callback. */
struct Event
{
    Cycle when = 0;
    std::uint32_t wakeNode = kNoWakeNode;  //!< core to wake on execute
    std::function<void()> fn;
};

/**
 * Timing-wheel event queue ordered by (tick, insertion order).
 *
 * The owning System drives it with advanceTo(now) once per simulated cycle;
 * components use schedule() for any action with latency.
 */
class EventQueue
{
  public:
    EventQueue() : wheel_(kWheelSize) {}

    /**
     * Schedule @p fn to run at absolute cycle @p when. Events whose
     * synchronous effects can touch a core (cache fills, message
     * deliveries to an agent, writeback completions) carry that core's
     * node in @p wake_node so a dormant core is woken (and its skipped
     * stall cycles settled) before the event runs; events that only
     * touch node-external state (directory transactions) use
     * kNoWakeNode.
     */
    void
    scheduleAt(Cycle when, std::function<void()> fn,
               std::uint32_t wake_node = kNoWakeNode)
    {
        assert(when >= now_ && "scheduling an event in the past");
        if (when < now_)
            when = now_;   // release-build safety net
        ++nextSeq_;
        if (size_ == 0 || when < nextTick_)
            nextTick_ = when;
        ++size_;
        if (when - now_ < kWheelSize) {
            wheel_[when & kWheelMask].push_back(
                Event{when, wake_node, std::move(fn)});
        } else {
            far_[when].push_back(Event{when, wake_node, std::move(fn)});
        }
    }

    /** Schedule @p fn to run @p delay cycles after the current time. */
    void
    schedule(Cycle delay, std::function<void()> fn,
             std::uint32_t wake_node = kNoWakeNode)
    {
        scheduleAt(now_ + delay, std::move(fn), wake_node);
    }

    /**
     * Hook invoked with (wakeNode, when) immediately before executing
     * any event carrying a wake tag. The System uses it to settle and
     * wake the dormant core the event is about to affect.
     */
    using WakeHook = std::function<void(std::uint32_t, Cycle)>;
    void setWakeHook(WakeHook hook) { wakeHook_ = std::move(hook); }

    /**
     * Execute every event with when <= @p tick, in deterministic order.
     * Events scheduled during execution at times <= tick also run.
     */
    void advanceTo(Cycle tick);

    /** Run until the queue is empty (used by unit tests). */
    void drain();

    Cycle now() const { return now_; }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Tick of the earliest pending event; only valid when !empty(). */
    Cycle nextEventTick() const;

    /**
     * @{ Monotonic activity counters. Their sum changes if and only if
     * an event was scheduled or executed, which lets the System detect
     * externally-quiescent cycles in O(1) (fast-forward scheduling).
     */
    std::uint64_t scheduledCount() const { return nextSeq_; }
    std::uint64_t executedCount() const { return executed_; }
    /** @} */

  private:
    static constexpr std::uint32_t kWheelBits = 11;
    static constexpr Cycle kWheelSize = Cycle{1} << kWheelBits;
    static constexpr Cycle kWheelMask = kWheelSize - 1;

    /** Bucket of events for one tick of the near future. Pending wheel
     *  events always have when in [now_, now_ + kWheelSize), so each
     *  bucket holds at most one tick's events at a time. */
    std::vector<std::vector<Event>> wheel_;
    /** Events scheduled >= kWheelSize cycles out, ordered by tick. A
     *  bucket migrates in front of its wheel slot at execution time
     *  (far-scheduled events always predate wheel appends for the same
     *  tick, so prepending preserves insertion order). */
    std::map<Cycle, std::vector<Event>> far_;
    std::size_t size_ = 0;
    /** Lower bound on the earliest pending tick (lazily advanced). */
    mutable Cycle nextTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    Cycle now_ = 0;
    WakeHook wakeHook_;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_EVENT_QUEUE_HH
