/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in insertion order, which keeps
 * whole-system simulations bit-for-bit reproducible across runs and seeds.
 *
 * The implementation is a timing wheel: a power-of-two ring of per-tick
 * buckets covering the near future (every latency in the simulated system —
 * network hops, memory, retries — is far below the wheel span), with a
 * sorted overflow map for anything scheduled further out. Scheduling and
 * popping are O(1) appends/moves instead of binary-heap sifts.
 *
 * Events are *typed and pooled*: an Event is a fixed-size, trivially
 * copyable slot holding either a coherence-message delivery
 * (MsgDelivery: sink index + the Msg itself, moved in once) or a bounded
 * inline callback — never a std::function, whose closure would heap-
 * allocate per event. Event/Msg storage is a single free-listed node
 * slab shared by all buckets: each wheel slot is an intrusive FIFO
 * chain of pool indices, executed nodes return to the free list, and
 * the pool's high-water mark is the global maximum of in-flight events
 * (reached during warmup) rather than a per-bucket one — so steady-
 * state scheduling and executing events (messages included) performs
 * zero heap allocations per simulated cycle. Message deliveries are
 * dispatched through a single registered function pointer (the
 * Network's devirtualized dispatch table) instead of per-endpoint
 * std::function sinks.
 */

#ifndef INVISIFENCE_SIM_EVENT_QUEUE_HH
#define INVISIFENCE_SIM_EVENT_QUEUE_HH

#include "sim/annotations.hh"
#include <cstdint>
#include <cstring>
#include <map>
#include <new>
#include <type_traits>
#include <vector>

#include "coh/message.hh"
#include "sim/types.hh"

namespace invisifence {

/** Node tag for events that affect no core (e.g. directory-internal). */
constexpr std::uint32_t kNoWakeNode = 0xffffffffu;

/**
 * Inline payload capacity of an Event. Sized for the largest scheduled
 * closure in the simulator: the directory's transaction-start callback,
 * which carries a full Msg plus its `this` pointer.
 */
constexpr std::size_t kEventInlineBytes = sizeof(Msg) + 2 * sizeof(void*);

/**
 * One scheduled event: a tagged, fixed-size, trivially copyable slot.
 *
 * kind == MsgDelivery: payload holds a Msg; sinkIdx names the endpoint in
 * the owning Network's dispatch table. kind == Callback: payload holds a
 * trivially-copyable closure invoked through the stored thunk.
 */
struct Event
{
    enum class Kind : std::uint8_t { Callback, MsgDelivery };

    Cycle when = 0;
    void (*invoke)(void*) = nullptr;       //!< Callback thunk
    std::uint32_t wakeNode = kNoWakeNode;  //!< core to wake on execute
    std::uint32_t sinkIdx = 0;             //!< MsgDelivery endpoint
    Kind kind = Kind::Callback;
    alignas(std::max_align_t) unsigned char payload[kEventInlineBytes];

    Msg*
    msg()
    {
        IF_DBG_ASSERT(kind == Kind::MsgDelivery);
        return std::launder(reinterpret_cast<Msg*>(payload));
    }
};

static_assert(std::is_trivially_copyable_v<Event>,
              "Event slots must move with memcpy (pooled storage)");
static_assert(std::is_trivially_copyable_v<Msg>,
              "Msg must be storable inline in a pooled Event");

/**
 * Timing-wheel event queue ordered by (tick, insertion order).
 *
 * The owning System drives it with advanceTo(now) once per simulated cycle;
 * components use schedule() for any action with latency.
 */
class EventQueue
{
  public:
    EventQueue() : wheel_(kWheelSize) {}

    /**
     * Schedule @p fn to run at absolute cycle @p when. Events whose
     * synchronous effects can touch a core (cache fills, message
     * deliveries to an agent, writeback completions) carry that core's
     * node in @p wake_node so a dormant core is woken (and its skipped
     * stall cycles settled) before the event runs; events that only
     * touch node-external state (directory transactions) use
     * kNoWakeNode.
     *
     * @p fn must be a bounded, trivially copyable closure: it is stored
     * inline in the pooled event slot (no heap allocation, ever).
     */
    template <typename F>
    void
    scheduleAt(Cycle when, F fn, std::uint32_t wake_node = kNoWakeNode)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_trivially_copyable_v<Fn>,
                      "event closures must be trivially copyable "
                      "(capture PODs / pointers / references only)");
        static_assert(sizeof(Fn) <= kEventInlineBytes,
                      "event closure exceeds the inline payload; shrink "
                      "the capture or widen kEventInlineBytes");
        static_assert(alignof(Fn) <= alignof(std::max_align_t));
        Event& ev = emplaceSlot(when, wake_node);
        ev.kind = Event::Kind::Callback;
        ::new (static_cast<void*>(ev.payload)) Fn(std::move(fn));
        ev.invoke = [](void* buf) {
            (*std::launder(reinterpret_cast<Fn*>(buf)))();
        };
    }

    /** Schedule @p fn to run @p delay cycles after the current time. */
    template <typename F>
    void
    schedule(Cycle delay, F fn, std::uint32_t wake_node = kNoWakeNode)
    {
        scheduleAt(now_ + delay, std::move(fn), wake_node);
    }

    /**
     * Schedule delivery of @p msg to dispatch-table endpoint @p sink_idx
     * after @p delay cycles. The message is copied once, into the pooled
     * event slot; execution hands it to the registered dispatcher.
     */
    void
    scheduleMsg(Cycle delay, std::uint32_t sink_idx, const Msg& msg,
                std::uint32_t wake_node = kNoWakeNode)
    {
        Event& ev = emplaceSlot(now_ + delay, wake_node);
        ev.kind = Event::Kind::MsgDelivery;
        ev.sinkIdx = sink_idx;
        ::new (static_cast<void*>(ev.payload)) Msg(msg);
    }

    /**
     * Devirtualized message delivery: one function pointer + context for
     * the whole queue (the Network and its endpoint table), replacing a
     * std::function sink per endpoint.
     */
    using MsgDispatch = void (*)(void* ctx, std::uint32_t sink_idx,
                                 const Msg& msg);
    void
    setMsgDispatcher(MsgDispatch fn, void* ctx)
    {
        msgDispatch_ = fn;
        msgCtx_ = ctx;
    }

    /**
     * Hook invoked with (wakeNode, when) immediately before executing
     * any event carrying a wake tag. The System uses it to settle and
     * wake the dormant core the event is about to affect. Registered as
     * a plain function pointer plus context — the same devirtualized
     * shape as setMsgDispatcher above — so the dispatch path stays
     * allocation-free and statically analyzable.
     */
    using WakeHook = void (*)(void* ctx, std::uint32_t node, Cycle when);
    void
    setWakeHook(WakeHook hook, void* ctx)
    {
        wakeHook_ = hook;
        wakeCtx_ = ctx;
    }

    /**
     * Execute every event with when <= @p tick, in deterministic order.
     * Events scheduled during execution at times <= tick also run.
     */
    void advanceTo(Cycle tick);

    /** Run until the queue is empty (used by unit tests). */
    void drain();

    Cycle now() const { return now_; }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Tick of the earliest pending event; only valid when !empty(). */
    Cycle nextEventTick() const;

    /**
     * @{ Monotonic activity counters. Their sum changes if and only if
     * an event was scheduled or executed, which lets the System detect
     * externally-quiescent cycles in O(1) (fast-forward scheduling).
     */
    std::uint64_t scheduledCount() const { return nextSeq_; }
    std::uint64_t executedCount() const { return executed_; }
    /** @} */

  private:
    static constexpr std::uint32_t kWheelBits = 11;
    static constexpr Cycle kWheelSize = Cycle{1} << kWheelBits;
    static constexpr Cycle kWheelMask = kWheelSize - 1;
    static constexpr std::uint32_t kNilNode = 0xffffffffu;

    /** One slab slot: an event plus its intrusive chain link. */
    struct Node
    {
        Event ev;
        std::uint32_t next = kNilNode;
    };

    /** FIFO chain of pool indices (head runs first). */
    struct Chain
    {
        std::uint32_t head = kNilNode;
        std::uint32_t tail = kNilNode;

        bool empty() const { return head == kNilNode; }
    };

    /** Pop a node from the free list (or grow the slab: warmup only). */
    std::uint32_t allocNode();
    /** Slab-growth slow path of allocNode (cold, allocation frontier). */
    IF_COLD_FN std::uint32_t growPool();
    /** Return a node to the free list. */
    void
    freeNode(std::uint32_t idx)
    {
        pool_[idx].next = freeHead_;
        freeHead_ = idx;
    }
    /** Append node @p idx to @p chain (FIFO order). */
    void
    appendNode(Chain& chain, std::uint32_t idx)
    {
        pool_[idx].next = kNilNode;
        if (chain.tail == kNilNode) {
            chain.head = idx;
        } else {
            pool_[chain.tail].next = idx;
        }
        chain.tail = idx;
    }

    /**
     * Claim a pooled slot for an event at @p when (common, non-template
     * bookkeeping behind schedule/scheduleMsg). The caller fills kind
     * and payload immediately — before any further call that could grow
     * the slab and invalidate the reference.
     */
    Event& emplaceSlot(Cycle when, std::uint32_t wake_node);

    /** The shared event/Msg slab; nodes are free-listed and recycled. */
    std::vector<Node> pool_;
    std::uint32_t freeHead_ = kNilNode;
    /** Per-tick chains for the near future. Pending wheel events always
     *  have when in [now_, now_ + kWheelSize), so each slot holds at
     *  most one tick's events at a time. */
    std::vector<Chain> wheel_;
    /** Chain for a far event at @p when, creating the map entry from
     *  the recycled-node pool when possible. Under heavy contention
     *  (large machines), link backlogs push deliveries past the wheel
     *  span every cycle — far_ churn is steady-state there, so its map
     *  nodes are pooled exactly like the event slab. */
    Chain& farChain(Cycle when);
    /** Pool-miss slow path of farChain (cold, allocation frontier). */
    IF_COLD_FN Chain& coldFarChain(Cycle when);

    /** Events scheduled >= kWheelSize cycles out, ordered by tick. A
     *  chain migrates in front of its wheel slot at execution time
     *  (far-scheduled events always predate wheel appends for the same
     *  tick, so prepending preserves insertion order). */
    std::map<Cycle, Chain> far_;
    /** Extracted far_ nodes awaiting reuse (see farChain()). */
    std::vector<std::map<Cycle, Chain>::node_type> farPool_;
    std::size_t size_ = 0;
    /** Lower bound on the earliest pending tick (lazily advanced). */
    mutable Cycle nextTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    Cycle now_ = 0;
    WakeHook wakeHook_ = nullptr;
    void* wakeCtx_ = nullptr;
    MsgDispatch msgDispatch_ = nullptr;
    void* msgCtx_ = nullptr;
    bool warnedPastSchedule_ = false;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_EVENT_QUEUE_HH
