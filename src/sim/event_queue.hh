/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in insertion order, which keeps
 * whole-system simulations bit-for-bit reproducible across runs and seeds.
 */

#ifndef INVISIFENCE_SIM_EVENT_QUEUE_HH
#define INVISIFENCE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace invisifence {

/** A single scheduled callback. */
struct Event
{
    Cycle when = 0;
    std::uint64_t seq = 0;     //!< tie-breaker: insertion order
    std::function<void()> fn;
};

/**
 * Min-heap event queue ordered by (tick, insertion sequence).
 *
 * The owning System drives it with advanceTo(now) once per simulated cycle;
 * components use schedule() for any action with latency.
 */
class EventQueue
{
  public:
    /** Schedule @p fn to run at absolute cycle @p when. */
    void
    scheduleAt(Cycle when, std::function<void()> fn)
    {
        heap_.push(Event{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule @p fn to run @p delay cycles after the current time. */
    void
    schedule(Cycle delay, std::function<void()> fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Execute every event with when <= @p tick, in deterministic order.
     * Events scheduled during execution at times <= tick also run.
     */
    void advanceTo(Cycle tick);

    /** Run until the queue is empty (used by unit tests). */
    void drain();

    Cycle now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; only valid when !empty(). */
    Cycle nextEventTick() const { return heap_.top().when; }

  private:
    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    Cycle now_ = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_EVENT_QUEUE_HH
