/**
 * @file
 * unordered_map wrapper that recycles erased nodes instead of freeing
 * them.
 *
 * Directory transactions, per-block request queues, and similar
 * transient keyed state insert and erase an entry per coherence
 * transaction; with a plain unordered_map each round trip is a node
 * malloc/free. RecyclingMap keeps extracted nodes (C++17 node handles)
 * in a pool and reuses them on the next insert, so once the pool reaches
 * the concurrency high-water mark the steady state allocates nothing.
 * Reused mapped values are NOT reset — deliberately, so contained
 * vectors keep their capacity; callers must reinitialize the fields they
 * use (a reset()-style contract).
 */

#ifndef INVISIFENCE_SIM_RECYCLING_MAP_HH
#define INVISIFENCE_SIM_RECYCLING_MAP_HH

#include <cassert>
#include <unordered_map>
#include <vector>

namespace invisifence {

/** Keyed transient state with node recycling. */
template <typename K, typename V>
class RecyclingMap
{
    using Map = std::unordered_map<K, V>;

  public:
    /** Mapped value for @p key, or nullptr when absent. */
    V*
    find(const K& key)
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    const V*
    find(const K& key) const
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    /**
     * Mapped value for @p key, inserting if absent (from the pool when
     * possible). @p created reports whether a new entry appeared — its
     * fields then hold recycled garbage and must be reinitialized.
     */
    V&
    getOrCreate(const K& key, bool* created = nullptr)
    {
        if (V* v = find(key)) {
            if (created)
                *created = false;
            return *v;
        }
        if (created)
            *created = true;
        if (!pool_.empty()) {
            auto node = std::move(pool_.back());
            pool_.pop_back();
            node.key() = key;
            auto res = map_.insert(std::move(node));
            assert(res.inserted);
            return res.position->second;
        }
        return map_[key];
    }

    /** Erase @p key, stashing its node for reuse. Must be present. */
    void
    recycle(const K& key)
    {
        auto node = map_.extract(key);
        assert(!node.empty() && "recycling an absent key");
        pool_.push_back(std::move(node));
    }

    /** Visit every live entry as fn(key, value) (verifiers, audits). */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const auto& [key, value] : map_)
            fn(key, value);
    }

    bool contains(const K& key) const { return map_.count(key) != 0; }
    bool empty() const { return map_.empty(); }
    std::size_t size() const { return map_.size(); }

  private:
    Map map_;
    std::vector<typename Map::node_type> pool_;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_RECYCLING_MAP_HH
