/**
 * @file
 * unordered_map wrapper that recycles erased nodes instead of freeing
 * them.
 *
 * Directory transactions, per-block request queues, and similar
 * transient keyed state insert and erase an entry per coherence
 * transaction; with a plain unordered_map each round trip is a node
 * malloc/free. RecyclingMap keeps extracted nodes (C++17 node handles)
 * in a pool and reuses them on the next insert, so once the pool reaches
 * the concurrency high-water mark the steady state allocates nothing.
 * Reused mapped values are NOT reset — deliberately, so contained
 * vectors keep their capacity; callers must reinitialize the fields they
 * use (a reset()-style contract).
 */

#ifndef INVISIFENCE_SIM_RECYCLING_MAP_HH
#define INVISIFENCE_SIM_RECYCLING_MAP_HH

#include "sim/annotations.hh"
#include <unordered_map>
#include <vector>

namespace invisifence {

/** Keyed transient state with node recycling. */
template <typename K, typename V>
class RecyclingMap
{
    using Map = std::unordered_map<K, V>;

  public:
    /** Mapped value for @p key, or nullptr when absent. */
    V*
    find(const K& key)
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    const V*
    find(const K& key) const
    {
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second;
    }

    /**
     * Mapped value for @p key, inserting if absent (from the pool when
     * possible). @p created reports whether a new entry appeared — its
     * fields then hold recycled garbage and must be reinitialized.
     */
    V&
    getOrCreate(const K& key, bool* created = nullptr)
    {
        if (V* v = find(key)) {
            if (created)
                *created = false;
            return *v;
        }
        if (created)
            *created = true;
        if (!pool_.empty()) {
            auto node = std::move(pool_.back());
            pool_.pop_back();
            node.key() = key;
            auto res = reinsertNode(std::move(node));
            IF_DBG_ASSERT(res.inserted);
            return res.position->second;
        }
        return coldCreate(key);
    }

    /** Erase @p key, stashing its node for reuse. Must be present. */
    void
    recycle(const K& key)
    {
        auto node = map_.extract(key);
        IF_DBG_ASSERT(!node.empty() && "recycling an absent key");
        pool_.push_back(std::move(node));
    }

    /** Visit every live entry as fn(key, value) in UNORDERED (hash
     *  layout) order. Callers must fold commutatively (sums, set
     *  membership) or re-sort; never derive result ordering from the
     *  visitation sequence. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        // iflint:allow(unordered-iter) sanctioned wrapper: forEach documents the unordered-visit contract above, and callers (debug oracles, quiescence recounts) fold commutatively.
        for (const auto& [key, value] : map_)
            fn(key, value);
    }

    bool contains(const K& key) const { return map_.count(key) != 0; }
    bool empty() const { return map_.empty(); }
    std::size_t size() const { return map_.size(); }

  private:
    /** Pool-miss slow path of getOrCreate: the only node allocation. */
    IF_COLD_FN V&
    coldCreate(const K& key)
    {
        IF_COLD_ALLOC("node-pool miss: a fresh map node is allocated "
                      "only until the pool reaches the transaction "
                      "high-water mark; recycle() then feeds every "
                      "later insert");
        return map_[key];
    }

    /** Reinsert a pooled node. Out of line because the hashtable may
     *  still rehash its bucket array on the way in — that growth is
     *  high-water bounded just like the node pool, and keeping it
     *  behind the cut keeps the hot caller allocation-free. */
    IF_OUTLINE_FN typename Map::insert_return_type
    reinsertNode(typename Map::node_type&& node)
    {
        IF_COLD_ALLOC("bucket-array rehash on node reinsert: bucket "
                      "count grows with the live-entry high-water mark, "
                      "never from steady-state recycle/insert churn");
        return map_.insert(std::move(node));
    }

    Map map_;
    std::vector<typename Map::node_type> pool_;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_RECYCLING_MAP_HH
