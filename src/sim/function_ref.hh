/**
 * @file
 * Non-owning, non-allocating callable reference (a "function_ref").
 *
 * The victim-selection and sweep callbacks of the cache arrays take a
 * predicate whose lifetime is the duration of the call. std::function
 * there is pure overhead: any capture beyond one pointer heap-allocates,
 * and the indirect call cannot be inlined past the type-erased copy.
 * FunctionRef borrows the callable instead — two words, trivially
 * copyable, never allocates — which removes the last std::function
 * construction from the cache-miss path. It must not outlive the
 * referenced callable; take it by value as a parameter, never store it.
 */

#ifndef INVISIFENCE_SIM_FUNCTION_REF_HH
#define INVISIFENCE_SIM_FUNCTION_REF_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace invisifence {

template <typename Sig>
class FunctionRef;

/** Borrowed view of a callable with signature R(Args...). */
template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    /** Null reference: converts to false; must not be invoked. */
    FunctionRef() = default;
    FunctionRef(std::nullptr_t) {}   // NOLINT: mirrors std::function

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F&, Args...>>>
    FunctionRef(F&& f)   // NOLINT: implicit by design
        : obj_(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::add_pointer_t<
                          std::remove_reference_t<F>>>(obj))(
                  std::forward<Args>(args)...);
          })
    {
    }

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return call_ != nullptr; }

  private:
    void* obj_ = nullptr;
    R (*call_)(void*, Args...) = nullptr;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_FUNCTION_REF_HH
