/**
 * @file
 * Growable ring-buffer FIFO that never releases its storage.
 *
 * std::deque allocates and frees fixed-size chunks as elements flow
 * through it, so a steady push/pop stream (FIFO store buffers, deferred
 * external requests, per-block directory queues) churns the heap forever.
 * RingDeque grows like a vector but recycles its slots in place: after a
 * warmup that reaches the high-water mark, pushes and pops are pure index
 * arithmetic with zero allocations. Elements must be trivially copyable
 * (everything queued on the simulator's hot paths is), which makes the
 * occasional growth relinearization a pair of memcpys.
 */

#ifndef INVISIFENCE_SIM_RING_DEQUE_HH
#define INVISIFENCE_SIM_RING_DEQUE_HH

#include "sim/annotations.hh"
#include <cstddef>
#include <type_traits>
#include <vector>

namespace invisifence {

/** FIFO over a recycled ring of slots; iterable oldest to youngest. */
template <typename T>
class RingDeque
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "RingDeque elements must be trivially copyable");

  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    push_back(const T& v)
    {
        if (size_ == slots_.size())
            grow();
        slots_[index(size_)] = v;
        ++size_;
    }

    T& front() { return slots_[head_]; }
    const T& front() const { return slots_[head_]; }

    void
    pop_front()
    {
        IF_DBG_ASSERT(size_ > 0);
        head_ = slots_.empty() ? 0 : (head_ + 1) % slots_.size();
        --size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /**
     * Presize the ring to at least @p n slots. Structures with an
     * architectural capacity (store buffers, bounded queues) reserve it
     * up front — fixed SRAM in the modeled hardware — so the high-water
     * march never allocates mid-simulation.
     */
    void
    reserve(std::size_t n)
    {
        if (n <= slots_.size())
            return;
        std::vector<T> next(n);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = slots_[index(i)];
        slots_.swap(next);
        head_ = 0;
    }

    T& operator[](std::size_t i) { return slots_[index(i)]; }
    const T& operator[](std::size_t i) const { return slots_[index(i)]; }

    /** Minimal random-access iterator (enough for range-for / loops). */
    template <typename Q, typename Ref>
    class Iter
    {
      public:
        Iter(Q* q, std::size_t i) : q_(q), i_(i) {}
        Ref operator*() const { return (*q_)[i_]; }
        Iter& operator++() { ++i_; return *this; }
        bool operator!=(const Iter& o) const { return i_ != o.i_; }
        bool operator==(const Iter& o) const { return i_ == o.i_; }

      private:
        Q* q_;
        std::size_t i_;
    };
    using iterator = Iter<RingDeque, T&>;
    using const_iterator = Iter<const RingDeque, const T&>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    std::size_t
    index(std::size_t i) const
    {
        return slots_.empty() ? 0 : (head_ + i) % slots_.size();
    }

    IF_COLD_FN void
    grow()
    {
        IF_COLD_ALLOC("ring doubling: capacity tracks the deepest "
                      "backlog seen (warmup); pop/push at steady state "
                      "reuses the ring in place");
        const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = slots_[index(i)];
        slots_.swap(next);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_RING_DEQUE_HH
