#include "sim/stats.hh"

#include "sim/annotations.hh"

#include "sim/log.hh"

namespace invisifence {

void
StatRegistry::registerStat(const std::string& name, const std::uint64_t* value)
{
    IF_DBG_ASSERT(value != nullptr);
    stats_[name] = Entry{value, nullptr};
}

void
StatRegistry::registerStat(const std::string& name, const double* value)
{
    IF_DBG_ASSERT(value != nullptr);
    stats_[name] = Entry{nullptr, value};
}

double
StatRegistry::value(const Entry& e) const
{
    if (e.u64)
        return static_cast<double>(*e.u64);
    if (e.f64)
        return *e.f64;
    return 0.0;
}

double
StatRegistry::get(const std::string& name) const
{
    auto it = stats_.find(name);
    if (it == stats_.end())
        IF_FATAL("unknown statistic '%s' (use tryGet for optional "
                 "lookups)", name.c_str());
    return value(it->second);
}

std::optional<double>
StatRegistry::tryGet(const std::string& name) const
{
    auto it = stats_.find(name);
    if (it == stats_.end())
        return std::nullopt;
    return value(it->second);
}

bool
StatRegistry::has(const std::string& name) const
{
    return stats_.count(name) != 0;
}

double
StatRegistry::sumMatching(const std::string& prefix,
                          const std::string& suffix) const
{
    double sum = 0.0;
    for (const auto& [name, entry] : stats_) {
        if (name.size() < prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        sum += value(entry);
    }
    return sum;
}

std::vector<std::pair<std::string, double>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    for (const auto& [name, entry] : stats_)
        out.emplace_back(name, value(entry));
    return out;
}

void
StatRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, entry] : stats_)
        os << name << " " << value(entry) << "\n";
}

} // namespace invisifence
