/**
 * @file
 * Small, fast, deterministic PRNG (xoroshiro128++) with value-copy state.
 *
 * Thread programs embed an Rng by value so snapshot/restore of a program
 * (used for squash replay and speculation abort) also rewinds its random
 * stream, keeping re-executed instruction sequences identical.
 */

#ifndef INVISIFENCE_SIM_RNG_HH
#define INVISIFENCE_SIM_RNG_HH

#include <cstdint>

namespace invisifence {

/** splitmix64, used to expand seeds. */
constexpr std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** xoroshiro128++ generator; trivially copyable for cheap snapshots. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t x = seed;
        s0_ = splitmix64(x);
        s1_ = splitmix64(x);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t r =
            rotl(s0_ + s1_, 17) + s0_;
        const std::uint64_t t = s1_ ^ s0_;
        s0_ = rotl(s0_, 49) ^ t ^ (t << 21);
        s1_ = rotl(t, 28);
        return r;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p permille / 1000. */
    bool
    chancePermille(std::uint32_t permille)
    {
        return below(1000) < permille;
    }

    /** Bernoulli draw with per-65536 resolution, for rare events. */
    bool
    chance64k(std::uint32_t per64k)
    {
        return below(65536) < per64k;
    }

    bool operator==(const Rng&) const = default;

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_RNG_HH
