/**
 * @file
 * Open-addressed flat hash map keyed by address.
 *
 * The directory's per-block state and the MSHR file's block index are
 * hot single-key lookups on every protocol step; a node-based
 * unordered_map costs a pointer chase (and a cold line) per probe.
 * FlatAddrMap stores keys and values in two parallel arrays (split
 * lanes, like the cache tag arrays): a linear probe walks contiguous
 * 8-byte keys, and the value lane is touched only on a hit.
 *
 * Layout/behavior notes:
 *  - power-of-two capacity, multiplicative-hash home slot, linear probe;
 *  - deletion uses backward-shift (no tombstones, so probe chains never
 *    degrade and load factor alone bounds probe length);
 *  - growth doubles the table and rehashes; with capacity preallocated
 *    from config this happens during warmup only, keeping the steady
 *    state allocation-free (tests/alloc_steadystate_test.cc);
 *  - the all-ones key is reserved as the empty sentinel. Block-aligned
 *    addresses (and the MSHR index's tagged keys, which only use the
 *    low alignment bits) can never collide with it.
 */

#ifndef INVISIFENCE_SIM_FLAT_MAP_HH
#define INVISIFENCE_SIM_FLAT_MAP_HH

#include "sim/annotations.hh"
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace invisifence {

/** Linear-probe open-addressed Addr -> V map with split key/value lanes. */
template <typename V>
class FlatAddrMap
{
  public:
    /** Reserved empty-slot marker; never a valid key. */
    static constexpr Addr kEmptyKey = ~Addr{0};

    explicit FlatAddrMap(std::size_t initial_capacity = 64)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap *= 2;
        keys_.assign(cap, kEmptyKey);
        vals_.resize(cap);
        mask_ = cap - 1;
    }

    V*
    find(Addr key)
    {
        IF_DBG_ASSERT(key != kEmptyKey);
        std::size_t i = homeSlot(key);
        while (true) {
            if (keys_[i] == key)
                return &vals_[i];
            if (keys_[i] == kEmptyKey)
                return nullptr;
            i = (i + 1) & mask_;
        }
    }

    const V*
    find(Addr key) const
    {
        return const_cast<FlatAddrMap*>(this)->find(key);
    }

    /**
     * Value for @p key, value-initialized and inserted when absent.
     * May grow (rehash): references from earlier calls are invalidated
     * by an insert, so callers must not hold one across getOrCreate.
     */
    V&
    getOrCreate(Addr key, bool* created = nullptr)
    {
        IF_DBG_ASSERT(key != kEmptyKey);
        std::size_t i = homeSlot(key);
        while (keys_[i] != kEmptyKey) {
            if (keys_[i] == key) {
                if (created)
                    *created = false;
                return vals_[i];
            }
            i = (i + 1) & mask_;
        }
        if (created)
            *created = true;
        // Keep load factor at or below 1/2 so probe chains stay short.
        if ((size_ + 1) * 2 > capacity()) {
            grow();
            i = homeSlot(key);
            while (keys_[i] != kEmptyKey)
                i = (i + 1) & mask_;
        }
        keys_[i] = key;
        vals_[i] = V{};
        ++size_;
        return vals_[i];
    }

    /** Remove @p key (backward-shift deletion). False when absent. */
    bool
    erase(Addr key)
    {
        IF_DBG_ASSERT(key != kEmptyKey);
        std::size_t i = homeSlot(key);
        while (true) {
            if (keys_[i] == kEmptyKey)
                return false;
            if (keys_[i] == key)
                break;
            i = (i + 1) & mask_;
        }
        --size_;
        // Backward-shift: slide later chain members into the hole when
        // their home slot precedes it (cyclically), so no tombstone is
        // left and find() can stop at the first empty slot.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            if (keys_[j] == kEmptyKey)
                break;
            const std::size_t h = homeSlot(keys_[j]);
            if (((j - h) & mask_) >= ((j - hole) & mask_)) {
                keys_[hole] = keys_[j];
                vals_[hole] = vals_[j];
                hole = j;
            }
        }
        keys_[hole] = kEmptyKey;
        vals_[hole] = V{};
        return true;
    }

    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmptyKey)
                fn(keys_[i], vals_[i]);
        }
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return keys_.size(); }

  private:
    std::size_t
    homeSlot(Addr key) const
    {
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
    }

    IF_COLD_FN void
    grow()
    {
        IF_COLD_ALLOC("open-addressing table doubling: the table only "
                      "grows until the live-key high-water mark; "
                      "steady-state insert/erase churn stays below it");
        std::vector<Addr> old_keys(keys_.size() * 2, kEmptyKey);
        std::vector<V> old_vals(vals_.size() * 2);
        old_keys.swap(keys_);
        old_vals.swap(vals_);
        mask_ = keys_.size() - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmptyKey)
                continue;
            std::size_t j = homeSlot(old_keys[i]);
            while (keys_[j] != kEmptyKey)
                j = (j + 1) & mask_;
            keys_[j] = old_keys[i];
            vals_[j] = old_vals[i];
        }
    }

    std::vector<Addr> keys_;   //!< hot probe lane
    std::vector<V> vals_;      //!< cold lane, parallel to keys_
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_FLAT_MAP_HH
