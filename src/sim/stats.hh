/**
 * @file
 * Lightweight statistics registry.
 *
 * Components own plain uint64_t/double members and register them by name;
 * the harness walks the registry to print per-run statistics and to build
 * the paper's tables.
 */

#ifndef INVISIFENCE_SIM_STATS_HH
#define INVISIFENCE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace invisifence {

/**
 * Registry of named scalar statistics.
 *
 * Registration stores a pointer to the component-owned counter; reading the
 * registry always reflects current values. Names are hierarchical by
 * convention, e.g. "core03.cycles.sb_drain".
 */
class StatRegistry
{
  public:
    void registerStat(const std::string& name, const std::uint64_t* value);
    void registerStat(const std::string& name, const double* value);

    /**
     * Look up one stat by exact name. An unregistered name is fatal: a
     * typo in table/bench code must not silently fabricate a zero
     * statistic. Use tryGet() when absence is an expected outcome.
     */
    double get(const std::string& name) const;

    /** Exact-name lookup that reports absence instead of dying. */
    std::optional<double> tryGet(const std::string& name) const;

    /** True when a stat of this exact name is registered. */
    bool has(const std::string& name) const;

    /** Sum of all stats whose name matches prefix*suffix. */
    double sumMatching(const std::string& prefix,
                       const std::string& suffix) const;

    /** All (name, value) pairs in name order. */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /** Dump "name value" lines. */
    void dump(std::ostream& os) const;

  private:
    struct Entry
    {
        const std::uint64_t* u64 = nullptr;
        const double* f64 = nullptr;
    };

    double value(const Entry& e) const;

    std::map<std::string, Entry> stats_;
};

} // namespace invisifence

#endif // INVISIFENCE_SIM_STATS_HH
