/**
 * @file
 * Minimal leveled logging with panic()/fatal() in the gem5 tradition.
 *
 * panic(): a simulator invariant broke — abort with a message.
 * fatal(): user/configuration error — exit(1) with a message.
 * Debug tracing compiles to nothing unless INVISIFENCE_TRACE is defined.
 */

#ifndef INVISIFENCE_SIM_LOG_HH
#define INVISIFENCE_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace invisifence {

[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void logImpl(const std::string& msg);

/** Printf-style formatting into a std::string. */
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace invisifence

#define IF_PANIC(...) \
    ::invisifence::panicImpl(__FILE__, __LINE__, \
                             ::invisifence::strformat(__VA_ARGS__))
#define IF_FATAL(...) \
    ::invisifence::fatalImpl(__FILE__, __LINE__, \
                             ::invisifence::strformat(__VA_ARGS__))
#define IF_WARN(...) \
    ::invisifence::warnImpl(::invisifence::strformat(__VA_ARGS__))
#define IF_LOG(...) \
    ::invisifence::logImpl(::invisifence::strformat(__VA_ARGS__))

#ifdef INVISIFENCE_TRACE
#define IF_TRACE(...) \
    do { \
        std::fprintf(stderr, "trace: %s\n", \
                     ::invisifence::strformat(__VA_ARGS__).c_str()); \
    } while (0)
#else
#define IF_TRACE(...) do { } while (0)
#endif

#endif // INVISIFENCE_SIM_LOG_HH
