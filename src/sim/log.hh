/**
 * @file
 * Minimal leveled logging with panic()/fatal() in the gem5 tradition.
 *
 * panic(): a simulator invariant broke — abort with a message.
 * fatal(): user/configuration error — exit(1) with a message.
 * Debug tracing compiles to nothing unless INVISIFENCE_TRACE is defined.
 *
 * The impl functions are variadic and format into a fixed stack buffer
 * (messages truncate past ~1 KiB): hot-path code calls IF_LOG/IF_WARN
 * on rare-but-returning paths and IF_PANIC/IF_FATAL on noreturn ones,
 * and iflint pass 2 statically proves the steady-state call graph
 * allocation-free — a std::string-returning formatter on the argument
 * side of these macros would plant a reachable operator new at every
 * call site. strformat() (which does allocate) survives for cold
 * reporting paths such as the sweep JSON emitter.
 */

#ifndef INVISIFENCE_SIM_LOG_HH
#define INVISIFENCE_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace invisifence {

[[noreturn]] void panicImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Printf-style formatting into a std::string (allocates; cold paths
 *  only — the logging macros above never call it). */
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace invisifence

#define IF_PANIC(...) \
    ::invisifence::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define IF_FATAL(...) \
    ::invisifence::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define IF_WARN(...) ::invisifence::warnImpl(__VA_ARGS__)
#define IF_LOG(...) ::invisifence::logImpl(__VA_ARGS__)

#ifdef INVISIFENCE_TRACE
#define IF_TRACE(...) \
    do { \
        std::fprintf(stderr, "trace: %s\n", \
                     ::invisifence::strformat(__VA_ARGS__).c_str()); \
    } while (0)
#else
#define IF_TRACE(...) do { } while (0)
#endif

#endif // INVISIFENCE_SIM_LOG_HH
