#include "sim/event_queue.hh"

#include "sim/annotations.hh"

#include "sim/log.hh"

namespace invisifence {

std::uint32_t
EventQueue::allocNode()
{
    if (freeHead_ != kNilNode) {
        const std::uint32_t idx = freeHead_;
        freeHead_ = pool_[idx].next;
        return idx;
    }
    return growPool();
}

std::uint32_t
EventQueue::growPool()
{
    IF_COLD_ALLOC("event-slab growth: nodes are free-listed and "
                  "recycled, so the slab only grows until the in-flight "
                  "high-water mark is reached during warmup");
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

EventQueue::Chain&
EventQueue::farChain(Cycle when)
{
    auto it = far_.lower_bound(when);
    if (it != far_.end() && it->first == when)
        return it->second;
    if (!farPool_.empty()) {
        auto node = std::move(farPool_.back());
        farPool_.pop_back();
        node.key() = when;
        node.mapped() = Chain{};
        return far_.insert(it, std::move(node))->second;
    }
    return coldFarChain(when);
}

EventQueue::Chain&
EventQueue::coldFarChain(Cycle when)
{
    IF_COLD_ALLOC("far_ map nodes are pooled (farPool_); a fresh node "
                  "is only allocated until the pool reaches the "
                  "high-water mark of concurrently pending far ticks");
    return far_.emplace_hint(far_.lower_bound(when), when, Chain{})
        ->second;
}

Event&
EventQueue::emplaceSlot(Cycle when, std::uint32_t wake_node)
{
    IF_DBG_ASSERT(when >= now_ && "scheduling an event in the past");
    if (when < now_) {
        // Release-build safety net: clamp to now, but say so once — a
        // silently rewritten schedule usually means a latency
        // computation underflowed somewhere upstream.
        if (!warnedPastSchedule_) {
            warnedPastSchedule_ = true;
            IF_LOG("event scheduled in the past (when=%llu < now=%llu); "
                   "clamping to now (reported once)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
        }
        when = now_;
    }
    ++nextSeq_;
    if (size_ == 0 || when < nextTick_)
        nextTick_ = when;
    ++size_;
    const std::uint32_t idx = allocNode();
    Chain& chain = when - now_ < kWheelSize ? wheel_[when & kWheelMask]
                                            : farChain(when);
    appendNode(chain, idx);
    Node& node = pool_[idx];
    node.ev.when = when;
    node.ev.wakeNode = wake_node;
    return node.ev;
}

Cycle
EventQueue::nextEventTick() const
{
    IF_DBG_ASSERT(size_ > 0 && "nextEventTick on an empty queue");
    Cycle t = nextTick_ < now_ ? now_ : nextTick_;
    const Cycle wheel_end = now_ + kWheelSize;
    const Cycle far_min =
        far_.empty() ? kNeverCycle : far_.begin()->first;
    for (; t < wheel_end && t < far_min; ++t) {
        if (!wheel_[t & kWheelMask].empty()) {
            nextTick_ = t;
            return t;
        }
    }
    // Only overflow events remain pending.
    IF_DBG_ASSERT(far_min != kNeverCycle);
    nextTick_ = far_min;
    return far_min;
}

void
EventQueue::advanceTo(Cycle tick)
{
    IF_HOT;
    IF_DBG_ASSERT(tick >= now_);
    while (size_ > 0) {
        const Cycle t = nextEventTick();
        if (t > tick)
            break;
        now_ = t;
        Chain& slot = wheel_[t & kWheelMask];
        // Far-scheduled events predate every wheel append for this tick
        // (the wheel only accepts a tick once now_ is within range, and
        // now_ is monotonic), so their chain goes first to preserve
        // insertion order.
        auto far_it = far_.find(t);
        if (far_it != far_.end()) {
            Chain farc = far_it->second;
            farPool_.push_back(far_.extract(far_it));
            if (!farc.empty()) {
                pool_[farc.tail].next = slot.head;
                if (slot.empty())
                    slot.tail = farc.tail;
                slot.head = farc.head;
            }
        }
        // Chain walk: each node is copied out and recycled before its
        // event runs, so callbacks appending same-tick events simply
        // extend the live chain (possibly reusing the node just freed)
        // and the walk picks them up in FIFO order.
        while (!slot.empty()) {
            const std::uint32_t idx = slot.head;
            slot.head = pool_[idx].next;
            if (slot.head == kNilNode)
                slot.tail = kNilNode;
            Event ev = pool_[idx].ev;   // memcpy: Event is trivial
            freeNode(idx);
            --size_;
            ++executed_;
            if (ev.wakeNode != kNoWakeNode && wakeHook_)
                wakeHook_(wakeCtx_, ev.wakeNode, ev.when);
            if (ev.kind == Event::Kind::MsgDelivery) {
                IF_DBG_ASSERT(msgDispatch_ && "message event with no dispatcher");
                msgDispatch_(msgCtx_, ev.sinkIdx, *ev.msg());
            } else {
                ev.invoke(ev.payload);
            }
        }
        nextTick_ = t + 1;
    }
    now_ = tick;
}

void
EventQueue::drain()
{
    while (size_ > 0)
        advanceTo(nextEventTick());
}

} // namespace invisifence
