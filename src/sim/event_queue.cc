#include "sim/event_queue.hh"

#include <cassert>

namespace invisifence {

void
EventQueue::advanceTo(Cycle tick)
{
    assert(tick >= now_);
    while (!heap_.empty() && heap_.top().when <= tick) {
        Event ev = heap_.top();
        heap_.pop();
        assert(ev.when >= now_);
        now_ = ev.when;
        ev.fn();
    }
    now_ = tick;
}

void
EventQueue::drain()
{
    while (!heap_.empty()) {
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.fn();
    }
}

} // namespace invisifence
