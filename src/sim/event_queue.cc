#include "sim/event_queue.hh"

#include <cassert>

namespace invisifence {

Cycle
EventQueue::nextEventTick() const
{
    assert(size_ > 0 && "nextEventTick on an empty queue");
    Cycle t = nextTick_ < now_ ? now_ : nextTick_;
    const Cycle wheel_end = now_ + kWheelSize;
    const Cycle far_min =
        far_.empty() ? kNeverCycle : far_.begin()->first;
    for (; t < wheel_end && t < far_min; ++t) {
        if (!wheel_[t & kWheelMask].empty()) {
            nextTick_ = t;
            return t;
        }
    }
    // Only overflow events remain pending.
    assert(far_min != kNeverCycle);
    nextTick_ = far_min;
    return far_min;
}

void
EventQueue::advanceTo(Cycle tick)
{
    assert(tick >= now_);
    while (size_ > 0) {
        const Cycle t = nextEventTick();
        if (t > tick)
            break;
        now_ = t;
        auto& slot = wheel_[t & kWheelMask];
        // Far-scheduled events predate every wheel append for this tick
        // (the wheel only accepts a tick once now_ is within range, and
        // now_ is monotonic), so they go first to preserve insertion
        // order.
        auto far_it = far_.find(t);
        if (far_it != far_.end()) {
            slot.insert(slot.begin(),
                        std::make_move_iterator(far_it->second.begin()),
                        std::make_move_iterator(far_it->second.end()));
            far_.erase(far_it);
        }
        // Index loop: callbacks may append same-tick events mid-flight.
        for (std::size_t i = 0; i < slot.size(); ++i) {
            Event ev = std::move(slot[i]);
            --size_;
            ++executed_;
            if (ev.wakeNode != kNoWakeNode && wakeHook_)
                wakeHook_(ev.wakeNode, ev.when);
            ev.fn();
        }
        slot.clear();
        nextTick_ = t + 1;
    }
    now_ = tick;
}

void
EventQueue::drain()
{
    while (size_ > 0)
        advanceTo(nextEventTick());
}

} // namespace invisifence
