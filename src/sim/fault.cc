#include "sim/fault.hh"

#include <algorithm>

#include "sim/log.hh"

namespace invisifence {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint32_t num_nodes,
                             EventQueue& eq)
    : plan_(plan), rng_(plan.seed), numNodes_(num_nodes), eq_(eq)
{
    if (num_nodes == 0)
        IF_FATAL("fault injector over an empty fabric");
    // below(0) is ill-defined; a zero jitter bound means "minimal".
    if (plan_.maxExtraDelay == 0)
        plan_.maxExtraDelay = 1;
    std::stable_sort(
        plan_.oneShots.begin(), plan_.oneShots.end(),
        [](const FaultPlan::OneShot& a, const FaultPlan::OneShot& b) {
            return a.msgIndex < b.msgIndex;
        });
    pairLast_.assign(
        static_cast<std::size_t>(num_nodes) * num_nodes * 2, 0);
}

Cycle
FaultInjector::clampFifo(std::uint32_t src, std::uint32_t sink_idx,
                         Cycle due)
{
    Cycle& last =
        pairLast_[static_cast<std::size_t>(src) * numNodes_ * 2 + sink_idx];
    if (due < last)
        due = last;
    last = due;
    return due;
}

void
FaultInjector::route(const Msg& msg, std::uint32_t sink_idx,
                     std::uint32_t wake, Cycle base_delay)
{
    // Reachable from Network::send (IF_HOT): no allocation on any path.
    ++msgIndex_;
    // Only request-class messages may be dropped or duplicated; see the
    // file comment in fault.hh. One-shots obey the same restriction.
    const bool droppable = isRequest(msg.type);

    bool drop = false;
    bool dup = false;
    Cycle extra = 0;
    // Scheduled one-shots are matched by cursor against the sorted plan
    // and consume no rng draws, so adding one to a plan perturbs only
    // the targeted message, not the whole random fault stream.
    while (nextOneShot_ < plan_.oneShots.size() &&
           plan_.oneShots[nextOneShot_].msgIndex < msgIndex_)
        ++nextOneShot_;
    if (nextOneShot_ < plan_.oneShots.size() &&
        plan_.oneShots[nextOneShot_].msgIndex == msgIndex_) {
        const FaultPlan::OneShot& os = plan_.oneShots[nextOneShot_];
        ++nextOneShot_;
        switch (os.kind) {
          case FaultPlan::Kind::Drop:
            drop = droppable;
            break;
          case FaultPlan::Kind::Delay:
            extra = os.extraDelay;
            break;
          case FaultPlan::Kind::Duplicate:
            dup = droppable;
            break;
        }
    } else {
        // Fixed draw order (drop, delay, dup) keeps the stream a pure
        // function of the plan and the message sequence.
        if (plan_.dropPer64k != 0 && droppable &&
            rng_.chance64k(plan_.dropPer64k)) {
            drop = true;
        }
        if (plan_.delayPer64k != 0 && rng_.chance64k(plan_.delayPer64k))
            extra = 1 + rng_.below(plan_.maxExtraDelay);
        if (plan_.dupPer64k != 0 && droppable &&
            rng_.chance64k(plan_.dupPer64k)) {
            dup = true;
        }
    }

    if (drop) {
        // Vanished messages leave the pair's FIFO horizon untouched: a
        // drop is not a delivery, so it cannot constrain later ones.
        ++statDrops;
        return;
    }

    if (extra != 0) {
        ++statDelays;
        statDelayCycles += extra;
    }
    // Every delivery — faulted or not — passes through the per-pair
    // clamp while the injector is attached: an earlier delayed message
    // must push back later same-pair sends to preserve FIFO.
    const Cycle due =
        clampFifo(msg.src, sink_idx, eq_.now() + base_delay + extra);
    eq_.scheduleMsg(due - eq_.now(), sink_idx, msg, wake);

    if (dup) {
        ++statDups;
        const Cycle gap = 1 + rng_.below(plan_.maxExtraDelay);
        const Cycle dup_due = clampFifo(msg.src, sink_idx, due + gap);
        eq_.scheduleMsg(dup_due - eq_.now(), sink_idx, msg, wake);
    }
}

} // namespace invisifence
