/**
 * @file
 * Fixed-capacity, allocation-free callable (an "inplace function").
 *
 * std::function heap-allocates any closure larger than its small-object
 * buffer (16 bytes in libstdc++), which made every load-miss callback and
 * every scheduled event a malloc/free pair on the simulator's hottest
 * path. InplaceFn stores the closure inline and *requires* it to be
 * trivially copyable and bounded, so the whole object is itself trivially
 * copyable: vectors of callbacks move with memcpy, recycled storage needs
 * no destructor bookkeeping, and the steady-state event/message path
 * performs zero heap allocations. Oversized or non-trivial closures are a
 * compile error — by design; widen N at the use site instead.
 */

#ifndef INVISIFENCE_SIM_INPLACE_FN_HH
#define INVISIFENCE_SIM_INPLACE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace invisifence {

/** Bounded void() closure stored inline; trivially copyable. */
template <std::size_t N>
class InplaceFn
{
  public:
    InplaceFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFn>>>
    InplaceFn(F f)    // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_trivially_copyable_v<Fn>,
                      "InplaceFn closures must be trivially copyable "
                      "(capture PODs / pointers / references only)");
        static_assert(sizeof(Fn) <= N,
                      "closure exceeds InplaceFn capacity; widen N");
        static_assert(alignof(Fn) <= alignof(std::max_align_t));
        ::new (static_cast<void*>(buf_)) Fn(std::move(f));
        invoke_ = [](void* buf) { (*std::launder(
            reinterpret_cast<Fn*>(buf)))(); };
    }

    void operator()() { invoke_(buf_); }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    using Invoke = void (*)(void*);
    Invoke invoke_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[N];
};

/** Capacity for cache-fill / writeback completion callbacks. */
using FillCallback = InplaceFn<32>;

static_assert(std::is_trivially_copyable_v<FillCallback>);

} // namespace invisifence

#endif // INVISIFENCE_SIM_INPLACE_FN_HH
