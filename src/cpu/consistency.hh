/**
 * @file
 * Consistency-model implementations (Figure 2).
 *
 * A ConsistencyImpl owns the store buffer organization and the retirement
 * rules of one memory-model implementation. The Core is model-agnostic:
 * it asks the impl whether the head instruction may retire (and how to
 * classify the stall if not), delegates the memory side effects of
 * retirement, and reports executed loads. Each impl is also the
 * CoherenceListener of its cache agent.
 *
 * This file provides the conventional implementations:
 *  - ConventionalSc:  word FIFO SB; loads stall at retire until SB empty.
 *  - ConventionalTso: word FIFO SB with forwarding; stores stall when the
 *    SB is full; atomics and fences drain the SB.
 *  - ConventionalRmo: block coalescing SB; store hits retire into the L1;
 *    fences drain the SB; atomics wait for write permission.
 *
 * The speculative implementations (InvisiFence, ASO) live in src/core.
 */

#ifndef INVISIFENCE_CPU_CONSISTENCY_HH
#define INVISIFENCE_CPU_CONSISTENCY_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "coh/cache_agent.hh"
#include "coh/listener.hh"
#include "cpu/accounting.hh"
#include "cpu/rob.hh"
#include "mem/store_buffer.hh"
#include "sim/types.hh"

namespace invisifence {

class Core;

/** The three consistency models evaluated in the paper. */
enum class Model : std::uint8_t { SC, TSO, RMO };

constexpr const char*
modelName(Model m)
{
    switch (m) {
      case Model::SC: return "sc";
      case Model::TSO: return "tso";
      case Model::RMO: return "rmo";
    }
    return "?";
}

/** Verdict on retiring the head instruction this cycle. */
struct RetireCheck
{
    bool ok = true;
    StallKind stall = StallKind::None;
};

/** Base class of all memory-model implementations. */
class ConsistencyImpl : public CoherenceListener
{
  public:
    ConsistencyImpl(std::string name, Core& core, CacheAgent& agent);
    ~ConsistencyImpl() override = default;

    const std::string& name() const { return name_; }

    /** Per-cycle work: store-buffer drain, commit checks, timeouts. */
    virtual void tick() {}

    /** May the Done head entry retire now? May initiate speculation. */
    virtual RetireCheck canRetire(RobEntry& entry) = 0;

    /** Apply the retirement side effects (store buffering, bit marking). */
    virtual void onRetire(RobEntry& entry) = 0;

    /** Store-to-load forwarding view of the impl's buffered stores. */
    virtual std::optional<std::uint64_t> forwardStore(Addr addr) const = 0;

    /** True while post-retirement speculation is in flight. */
    virtual bool speculating() const { return false; }

    /** Hook at load completion (continuous mode marks read bits here). */
    virtual void onLoadExecuted(RobEntry& entry) { (void)entry; }

    /**
     * Route @p n retirement-slot cycles of kind @p kind. Returns true
     * when the cycles were absorbed into a pending speculative breakdown;
     * false means the core adds them to the committed breakdown directly.
     * Called with n == 1 every normally-ticked stall cycle, and with the
     * bulk count when the System fast-forwards over quiescent cycles.
     */
    virtual bool routeCycles(StallKind kind, std::uint64_t n)
    {
        (void)kind;
        (void)n;
        return false;
    }

    /** The core went idle (halted program); finish lingering work. */
    virtual void onIdle() {}

    /** True when no buffered or speculative state remains. */
    virtual bool quiesced() const = 0;

    /**
     * Dump this implementation's live state (buffered stores, pending
     * speculation) to @p out — one piece of the liveness watchdog's
     * diagnostic (see System::watchdogFire). The default prints only
     * the name and the quiesced flag; implementations with store
     * buffers override to list their entries.
     */
    virtual void dumpLiveness(std::FILE* out) const;

    /**
     * Earliest future cycle at which this implementation's tick() could
     * do more than repeat the previous cycle's stall accounting, assuming
     * no external event fires first. kNeverCycle when only an external
     * event (cache fill, coherence message) can unblock it. Only
     * consulted after a cycle in which the whole system made no progress,
     * so purely state-dependent conditions cannot change in the gap; the
     * predicate needs to cover time-triggered work only.
     */
    virtual Cycle nextWorkAt() const { return kNeverCycle; }

    /**
     * Bulk-accrue the per-cycle counters tick() would have bumped over
     * @p n externally-quiescent cycles (cycles proven to make no state
     * change). Must leave every statistic exactly as n no-progress
     * tick() calls would have.
     */
    virtual void accrueQuiescentCycles(std::uint64_t n) { (void)n; }

    // --- CoherenceListener defaults for non-speculative impls ---
    ExtAction onSpecConflict(Addr block, bool wants_write) override;
    bool resolveSpecEviction(Addr block) override;
    void resolveSpecEvictionHard(Addr block) override;
    void onInvalidateApplied(Addr block) override;

  protected:
    std::string name_;
    Core& core_;
    CacheAgent& agent_;
};

/** Conventional SC/TSO sharing the word-granularity FIFO store buffer. */
class ConventionalFifoImpl : public ConsistencyImpl
{
  public:
    ConventionalFifoImpl(Model model, Core& core, CacheAgent& agent,
                         std::uint32_t sb_entries);

    void tick() override;
    RetireCheck canRetire(RobEntry& entry) override;
    void onRetire(RobEntry& entry) override;
    std::optional<std::uint64_t> forwardStore(Addr addr) const override;
    bool quiesced() const override { return sb_.empty(); }
    void accrueQuiescentCycles(std::uint64_t n) override;
    void dumpLiveness(std::FILE* out) const override;

    const FifoStoreBuffer& storeBuffer() const { return sb_; }

    std::uint64_t statDrained = 0;
    std::uint64_t statHeadBlocked = 0;
    std::uint64_t statHeadIssuedWait = 0;

  private:
    Model model_;
    FifoStoreBuffer sb_;
};

/** Conventional RMO with a block-granularity coalescing store buffer. */
class ConventionalRmoImpl : public ConsistencyImpl
{
  public:
    ConventionalRmoImpl(Core& core, CacheAgent& agent,
                        std::uint32_t sb_entries);

    void tick() override;
    RetireCheck canRetire(RobEntry& entry) override;
    void onRetire(RobEntry& entry) override;
    std::optional<std::uint64_t> forwardStore(Addr addr) const override;
    bool quiesced() const override { return sb_.empty(); }
    void dumpLiveness(std::FILE* out) const override;

    const CoalescingStoreBuffer& storeBuffer() const { return sb_; }

    std::uint64_t statDrained = 0;
    std::uint64_t statDirectHits = 0;

  private:
    CoalescingStoreBuffer sb_;
};

/** Factory for the three conventional implementations. */
std::unique_ptr<ConsistencyImpl> makeConventional(Model model, Core& core,
                                                  CacheAgent& agent);

} // namespace invisifence

#endif // INVISIFENCE_CPU_CONSISTENCY_HH
