#include "cpu/consistency.hh"

#include "sim/annotations.hh"
#include <memory>

#include "cpu/core.hh"
#include "sim/log.hh"

namespace invisifence {

ConsistencyImpl::ConsistencyImpl(std::string name, Core& core,
                                 CacheAgent& agent)
    : name_(std::move(name)), core_(core), agent_(agent)
{
}

ConsistencyImpl::ExtAction
ConsistencyImpl::onSpecConflict(Addr block, bool wants_write)
{
    (void)block;
    (void)wants_write;
    IF_PANIC("speculative conflict reported to a non-speculative "
             "consistency implementation (%s)", name_.c_str());
}

bool
ConsistencyImpl::resolveSpecEviction(Addr block)
{
    (void)block;
    IF_PANIC("speculative eviction reported to a non-speculative "
             "consistency implementation (%s)", name_.c_str());
}

void
ConsistencyImpl::resolveSpecEvictionHard(Addr block)
{
    (void)block;
    IF_PANIC("speculative eviction reported to a non-speculative "
             "consistency implementation (%s)", name_.c_str());
}

void
ConsistencyImpl::onInvalidateApplied(Addr block)
{
    core_.notifyInvalidated(block);
}

void
ConsistencyImpl::dumpLiveness(std::FILE* out) const
{
    std::fprintf(out, "    impl %s quiesced=%d\n", name_.c_str(),
                 quiesced() ? 1 : 0);
}

// ---------------------------------------------------------------------
// Conventional SC and TSO (word-granularity FIFO store buffer)
// ---------------------------------------------------------------------

ConventionalFifoImpl::ConventionalFifoImpl(Model model, Core& core,
                                           CacheAgent& agent,
                                           std::uint32_t sb_entries)
    : ConsistencyImpl(modelName(model), core, agent), model_(model),
      sb_(sb_entries)
{
    IF_DBG_ASSERT(model == Model::SC || model == Model::TSO);
}

RetireCheck
ConventionalFifoImpl::canRetire(RobEntry& entry)
{
    switch (entry.inst.type) {
      case OpType::Alu:
      case OpType::Nop:
        return {true, StallKind::None};
      case OpType::Load:
        // SC: a load may not retire past an incomplete store.
        if (model_ == Model::SC && !sb_.empty())
            return {false, StallKind::SbDrain};
        return {true, StallKind::None};
      case OpType::Store:
        if (!sb_.hasSpace())
            return {false, StallKind::SbFull};
        return {true, StallKind::None};
      case OpType::Cas:
      case OpType::FetchAdd: {
        // Atomics drain the store buffer and hold the block writable
        // (Figure 2: "Drain SB" under both SC and TSO).
        if (!sb_.empty())
            return {false, StallKind::SbDrain};
        if (!agent_.l1Writable(entry.inst.addr)) {
            if (!agent_.fetchOutstanding(entry.inst.addr))
                agent_.request(entry.inst.addr, true);
            return {false, StallKind::SbDrain};
        }
        return {true, StallKind::None};
      }
      case OpType::Fence:
        // SC already orders everything. TSO provides acquire/release
        // ordering for free; only full (StoreLoad) fences drain.
        if (model_ == Model::TSO && entry.inst.fullFence && !sb_.empty())
            return {false, StallKind::SbDrain};
        return {true, StallKind::None};
      case OpType::Halt:
        return {true, StallKind::None};
    }
    return {true, StallKind::None};
}

void
ConventionalFifoImpl::onRetire(RobEntry& entry)
{
    switch (entry.inst.type) {
      case OpType::Store:
        sb_.push(wordAlign(entry.inst.addr), entry.inst.value, entry.seq);
        break;
      case OpType::Cas:
        if (entry.result == entry.inst.expect) {
            agent_.writeWordL1(entry.inst.addr, entry.inst.value, false,
                               0);
        }
        break;
      case OpType::FetchAdd:
        agent_.writeWordL1(entry.inst.addr,
                           entry.result + entry.inst.value, false, 0);
        break;
      default:
        break;
    }
}

std::optional<std::uint64_t>
ConventionalFifoImpl::forwardStore(Addr addr) const
{
    return sb_.forward(addr);
}

void
ConventionalFifoImpl::tick()
{
    IF_HOT;
    // In-order drain of the FIFO head, up to two stores per cycle.
    for (int k = 0; k < 2 && !sb_.empty(); ++k) {
        FifoStoreBuffer::Entry& head = sb_.front();
        if (agent_.l1Writable(head.addr)) {
            agent_.writeWordL1(head.addr, head.data, false, 0);
            sb_.popFront();
            ++statDrained;
            core_.noteWork();
            continue;
        }
        ++statHeadBlocked;
        // Issue (or re-issue, if another core stole the permission
        // before the entry drained) the write fetch for the head.
        if (!agent_.fetchOutstanding(head.addr)) {
            if (agent_.request(head.addr, true)) {
                head.issued = true;
                core_.noteWork();
            }
        } else {
            ++statHeadIssuedWait;
        }
        break;
    }
    // Store prefetching: acquire write permission for younger entries
    // while the head waits (Flexus models this too, Section 6.1).
    if (core_.params().storePrefetch) {
        int prefetches = 0;
        for (auto& e : sb_.entries()) {
            if (prefetches >= 2)
                break;
            if (e.issued || agent_.l1Writable(e.addr))
                continue;
            if (agent_.request(e.addr, true)) {
                e.issued = true;
                ++prefetches;
                core_.noteWork();
            } else {
                break;   // MSHRs exhausted
            }
        }
    }
}

void
ConventionalFifoImpl::accrueQuiescentCycles(std::uint64_t n)
{
    // Replicate tick()'s per-cycle counters for a no-progress cycle: a
    // writable head would have drained (and broken quiescence), so the
    // head is blocked; the issued-wait counter bumps only while its
    // write fetch is actually outstanding (an MSHR-exhausted head
    // retries silently).
    if (sb_.empty())
        return;
    statHeadBlocked += n;
    if (agent_.fetchOutstanding(sb_.front().addr))
        statHeadIssuedWait += n;
}

void
ConventionalFifoImpl::dumpLiveness(std::FILE* out) const
{
    std::fprintf(out, "    impl %s sb=%zu/%u\n", name_.c_str(), sb_.size(),
                 sb_.capacity());
    const RingDeque<FifoStoreBuffer::Entry>& entries = sb_.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const FifoStoreBuffer::Entry& e = entries[i];
        std::fprintf(out, "      sb[%zu] addr=%llx seq=%llu issued=%d\n",
                     i, static_cast<unsigned long long>(e.addr),
                     static_cast<unsigned long long>(e.seq),
                     e.issued ? 1 : 0);
    }
}

// ---------------------------------------------------------------------
// Conventional RMO (block-granularity coalescing store buffer)
// ---------------------------------------------------------------------

ConventionalRmoImpl::ConventionalRmoImpl(Core& core, CacheAgent& agent,
                                         std::uint32_t sb_entries)
    : ConsistencyImpl("rmo", core, agent), sb_(sb_entries)
{
}

RetireCheck
ConventionalRmoImpl::canRetire(RobEntry& entry)
{
    switch (entry.inst.type) {
      case OpType::Alu:
      case OpType::Nop:
      case OpType::Load:
      case OpType::Halt:
        return {true, StallKind::None};
      case OpType::Store: {
        const Addr addr = entry.inst.addr;
        // Order within a block: merge into an existing entry if any.
        if (sb_.containsBlock(addr))
            return {true, StallKind::None};
        if (agent_.l1Writable(addr))
            return {true, StallKind::None};   // direct hit into the L1
        if (!sb_.full())
            return {true, StallKind::None};
        return {false, StallKind::SbFull};
      }
      case OpType::Cas:
      case OpType::FetchAdd: {
        // RMO atomics retire once the block is writable (Figure 2:
        // "Complete store") and program order within the block holds.
        const Addr addr = entry.inst.addr;
        if (sb_.containsBlock(addr))
            return {false, StallKind::SbDrain};
        if (!agent_.l1Writable(addr)) {
            if (!agent_.fetchOutstanding(addr))
                agent_.request(addr, true);
            return {false, StallKind::SbDrain};
        }
        return {true, StallKind::None};
      }
      case OpType::Fence:
        if (!sb_.empty())
            return {false, StallKind::SbDrain};
        return {true, StallKind::None};
    }
    return {true, StallKind::None};
}

void
ConventionalRmoImpl::onRetire(RobEntry& entry)
{
    const Addr addr = entry.inst.addr;
    switch (entry.inst.type) {
      case OpType::Store: {
        if (!sb_.containsBlock(addr) && agent_.l1Writable(addr)) {
            agent_.writeWordL1(addr, entry.inst.value, false, 0);
            ++statDirectHits;
            return;
        }
        const auto res = sb_.store(addr, kWordBytes, entry.inst.value,
                                   false, kNonSpecCtx, entry.seq);
        IF_DBG_ASSERT(res != CoalescingStoreBuffer::StoreResult::Full);
        (void)res;
        break;
      }
      case OpType::Cas:
        if (entry.result == entry.inst.expect) {
            agent_.writeWordL1(addr, entry.inst.value, false, 0);
        }
        break;
      case OpType::FetchAdd:
        agent_.writeWordL1(addr, entry.result + entry.inst.value, false,
                           0);
        break;
      default:
        break;
    }
}

std::optional<std::uint64_t>
ConventionalRmoImpl::forwardStore(Addr addr) const
{
    return sb_.forward(addr);
}

void
ConventionalRmoImpl::tick()
{
    IF_HOT;
    // Unordered drain: any entry whose block is writable retires into
    // the L1; others acquire permission in the background.
    int drained = 0;
    auto& entries = sb_.entries();
    for (std::size_t i = 0; i < entries.size();) {
        auto& e = entries[i];
        if (agent_.l1Writable(e.blockAddr)) {
            if (drained < 2) {
                agent_.writeMaskedL1(e.blockAddr, e.data, false, 0);
                ++statDrained;
                ++drained;
                core_.noteWork();
                entries.erase(entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
                continue;
            }
        } else if (!e.fillRequested ||
                   !agent_.fetchOutstanding(e.blockAddr)) {
            if (agent_.request(e.blockAddr, true)) {
                e.fillRequested = true;
                e.fullStallNoted = false;
                core_.noteWork();
            } else if (!e.fullStallNoted) {
                // Once per stall episode, like the load-issue path.
                e.fullStallNoted = true;
                ++agent_.mshrs().statFullStalls;
            }
        }
        ++i;
    }
}

void
ConventionalRmoImpl::dumpLiveness(std::FILE* out) const
{
    std::fprintf(out, "    impl %s sb=%zu/%u\n", name_.c_str(), sb_.size(),
                 sb_.capacity());
    for (std::size_t i = 0; i < sb_.entries().size(); ++i) {
        const CoalescingStoreBuffer::Entry& e = sb_.entries()[i];
        std::fprintf(out,
                     "      sb[%zu] blk=%llx spec=%d ctx=%u "
                     "fillRequested=%d held=%d\n",
                     i, static_cast<unsigned long long>(e.blockAddr),
                     e.speculative ? 1 : 0, e.ctx, e.fillRequested ? 1 : 0,
                     e.held ? 1 : 0);
    }
}

std::unique_ptr<ConsistencyImpl>
makeConventional(Model model, Core& core, CacheAgent& agent)
{
    switch (model) {
      case Model::SC:
        return std::make_unique<ConventionalFifoImpl>(Model::SC, core,
                                                      agent, 64);
      case Model::TSO:
        return std::make_unique<ConventionalFifoImpl>(Model::TSO, core,
                                                      agent, 64);
      case Model::RMO:
        return std::make_unique<ConventionalRmoImpl>(core, agent, 8);
    }
    return nullptr;
}

} // namespace invisifence
