/**
 * @file
 * Out-of-order core model (Figure 6: 4 GHz, 4-wide, 96-entry ROB).
 *
 * The pipeline is collapsed to the three stages that matter for memory
 * ordering studies: dispatch (fetch from the thread program into the
 * ROB), execute (issue loads/atomics to the memory system out of order,
 * complete ALU ops), and retire (in order, gated by the consistency
 * implementation). In-window speculative load reordering is supported by
 * snooping the ROB's bound-value loads on invalidations and replaying
 * from the violating load, as in MIPS R10000-style designs (Section 2.1).
 */

#ifndef INVISIFENCE_CPU_CORE_HH
#define INVISIFENCE_CPU_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coh/cache_agent.hh"
#include "cpu/accounting.hh"
#include "cpu/program.hh"
#include "cpu/rob.hh"
#include "sim/annotations.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace invisifence {

class ConsistencyImpl;

/** Core pipeline parameters. */
struct CoreParams
{
    std::uint32_t width = 4;        //!< dispatch/retire width
    std::uint32_t robSize = 96;
    std::uint32_t l1Ports = 3;      //!< memory issues per cycle
    bool storePrefetch = true;      //!< prefetch write permission early
};

/** One out-of-order core bound to a thread program and a cache agent. */
class Core
{
  public:
    Core(NodeId id, const CoreParams& params, CacheAgent& agent,
         ThreadProgram& program);

    /** Must be called before the first tick. */
    void setConsistency(ConsistencyImpl* impl);

    /** Advance one cycle: retire, execute, dispatch, account. */
    void tick(Cycle now);

    /**
     * @{ Quiescence-aware fast-forward interface (System scheduling).
     *
     * noteWork() bumps a monotonic version stamp on every state change a
     * tick can make (retirement, issue, dispatch, squash, store-buffer
     * motion, checkpoint transitions). A cycle in which no core's
     * version moved and the event queue neither ran nor gained events is
     * externally quiescent: repeating the tick can only repeat the same
     * stall accounting until either an event fires or a time threshold
     * (load readyAt, CoV deadline, ASO commit drain) is crossed.
     */
    void noteWork() { ++workVersion_; }
    std::uint64_t workVersion() const { return workVersion_; }

    /**
     * Earliest future cycle at which this core's tick could do more than
     * repeat the last cycle's stall accounting, absent external events:
     * the minimum over value-bound in-flight ROB completions (readyAt)
     * and the consistency implementation's own nextWorkAt().
     * kNeverCycle when only an event can unblock the core.
     */
    Cycle nextWorkAt() const;

    /**
     * Bulk-account @p n skipped quiescent cycles exactly as n no-progress
     * tick() calls would have: cycle counter, the recorded stall kind
     * routed through the consistency implementation (pending speculative
     * breakdown or committed breakdown), and the impl's per-cycle
     * counters (statCyclesSpeculating and friends).
     */
    void accrueStallCycles(std::uint64_t n);

    /**
     * Bring the core's local clock to @p now without ticking, so
     * event-context uses of now() (e.g. CoV deadlines) see the same
     * value as in the per-cycle loop, where the core last ticked the
     * cycle before the event. Dormancy bookkeeping only.
     */
    void syncTime(Cycle now) { now_ = now; }
    /** @} */

    /** @{ Services used by consistency implementations. */
    CacheAgent& agent() { return agent_; }
    ThreadProgram& program() { return program_; }
    Cycle now() const { return now_; }

    /** Program state as of the last retired instruction. */
    const ProgSnapshot& retiredSnapshot() const { return retiredSnap_; }

    /**
     * Full rollback (speculation abort): flush all in-flight
     * instructions, restore the program checkpoint, resume fetch.
     * @p last_valid_seq is the youngest retired instruction that
     * survives the rollback; younger journal records are discarded.
     */
    void rollbackTo(const ProgSnapshot& snap, InstSeq last_valid_seq);

    /** Sequence number of the most recently retired instruction. */
    InstSeq lastRetiredSeq() const { return lastRetiredSeq_; }

    /** One committed retirement, for litmus outcome observers. */
    struct RetireRecord
    {
        InstSeq seq = 0;
        OpType type = OpType::Nop;
        Addr addr = 0;
        std::uint64_t result = 0;
    };

    /** Record retired memory operations (litmus outcome checking). */
    void enableJournal() { journalEnabled_ = true; }
    const std::vector<RetireRecord>& journal() const { return journal_; }
    /** Journal-capture slow path of retireStage (cold, diagnostics). */
    IF_COLD_FN void journalAppend(const RobEntry& h);

    /**
     * In-window snoop: an invalidation hit @p block. Replay from the
     * oldest bound-value load of that block, if any. Loads protected by
     * speculative read bits (specMarked) are skipped; their violations
     * surface through the cache bits instead.
     */
    void notifyInvalidated(Addr block);

    Breakdown& breakdown() { return breakdown_; }
    const Breakdown& breakdown() const { return breakdown_; }
    /** @} */

    NodeId id() const { return id_; }
    const CoreParams& params() const { return params_; }
    bool halted() const { return halted_; }

    /** True when the program halted and the pipeline fully drained. */
    bool done() const;

    const Rob& rob() const { return rob_; }

    /** Register this core's statistics under @p prefix. */
    void registerStats(StatRegistry& reg, const std::string& prefix) const;

    std::uint64_t statRetired = 0;
    std::uint64_t statLoads = 0;
    std::uint64_t statStores = 0;
    std::uint64_t statAtomics = 0;
    std::uint64_t statFences = 0;
    std::uint64_t statMispredicts = 0;
    std::uint64_t statLqSquashes = 0;
    std::uint64_t statL1LoadHits = 0;
    std::uint64_t statLoadForwards = 0;
    std::uint64_t statLoadMisses = 0;
    std::uint64_t statCycles = 0;

  private:
    void retireStage();
    void executeStage();
    void dispatchStage();

    /** Try to issue the load-like entry at @p idx; true on issue. */
    bool tryIssueLoad(std::size_t idx);

    /**
     * @{ Fill wake path. Load misses register one 24-byte FillWaiter
     * record — {fillWakeThunk, this, seq} — instead of one 40-byte
     * heap-capable closure per load. The wake resolves the sequence
     * number back to its ROB entry (if still live) and binds or
     * replays that one load, preserving the per-load wake order of
     * the waiter chains.
     */
    void wakeLoad(InstSeq seq);
    static void fillWakeThunk(void* owner, std::uint64_t arg);
    /** @} */

    /** Forward from an older in-ROB store-like entry. Three-state:
     *  value (hit), nullopt+match=false (no producer), match=true with
     *  no value (producer exists but value unresolved: stall). */
    struct RobForward
    {
        bool producerFound = false;
        bool valueKnown = false;
        std::uint64_t value = 0;
        InstSeq producerSeq = 0;   //!< the matching store-like's seq
    };
    /** Naive O(window) age-ordered scan; debug oracle for the CAM. */
    RobForward forwardFromRob(std::size_t idx, Addr addr) const;
    /** Same result via the word CAM chain: O(same-word store-likes). */
    RobForward forwardFromChain(std::size_t idx, Addr addr) const;

    /** Squash all entries younger than index @p idx and refetch. */
    void squashYounger(std::size_t idx);

    void bindLoadValue(RobEntry& entry, std::uint64_t value, Cycle ready);

    /**
     * @{ Execute-stage occupancy counters, maintained at every status
     * transition so the per-tick ROB scans can be skipped when nothing
     * is in flight: pendingComplete_ counts Issued entries with a bound
     * value (awaiting readyAt), pendingDispatch_ counts dispatched
     * load-likes awaiting issue, and boundLoads_ counts value-bound
     * load-likes (the in-window load queue the invalidation snoop
     * searches). Squashes recount wholesale (rare); a debug build
     * verifies the counters against a full scan every tick.
     */
    void recountRobStates();
#ifndef NDEBUG
    void verifyRobCounters() const;
#endif
    std::uint32_t pendingComplete_ = 0;
    std::uint32_t pendingDispatch_ = 0;
    std::uint32_t boundLoads_ = 0;
    /**
     * Conservative 64-bit filter over the block addresses of bound
     * load-likes: a set bit may be stale (loads leave at retirement
     * without clearing), but every bound load's block is always
     * covered, so a filter miss safely skips the invalidation snoop's
     * ROB scan. Rebuilt exactly on recounts; reset when the last bound
     * load retires.
     */
    std::uint64_t boundLoadFilter_ = 0;

    static std::uint64_t
    blockFilterBit(Addr block)
    {
        // Multiplicative hash of the block number into one of 64 bits.
        return std::uint64_t{1}
               << ((((block >> kBlockShift) *
                     0x9e3779b97f4a7c15ull) >> 58) & 63u);
    }
    /** @} */

    /**
     * @{ Exact in-window store CAM, replacing the O(window) forwarding
     * scan: an open-addressed word -> youngest-store-seq table plus the
     * per-entry prevSameWord links form youngest-first chains over
     * exactly the same-word store-likes, so store-to-load forwarding
     * walks O(matches) entries. The table is insert/overwrite-only
     * (stale seqs are detected by Rob::indexOf and provably imply the
     * whole older chain retired); sweeps rebuild it from the window
     * when stale slots accumulate or on recounts. Debug builds verify
     * every chain walk against the naive scan.
     */
    InstSeq wordMapInsert(Addr word, InstSeq seq);
    InstSeq wordMapInsertRaw(Addr word, InstSeq seq);
    InstSeq wordMapYoungest(Addr word) const;
    void wordMapRebuild();

    struct WordSlot
    {
        Addr word = 0;
        InstSeq seq = 0;   //!< 0 = empty slot
    };
    std::vector<WordSlot> wordMap_;      //!< pow2-sized, >= 4x robSize
    std::uint32_t wordMapMask_ = 0;
    std::uint32_t wordMapOccupied_ = 0;

    std::size_t
    wordMapHome(Addr word) const
    {
        return static_cast<std::size_t>(
            ((word >> 3) * 0x9e3779b97f4a7c15ull) >> 32) & wordMapMask_;
    }
    /** @} */

    NodeId id_;
    CoreParams params_;
    CacheAgent& agent_;
    ThreadProgram& program_;
    ConsistencyImpl* impl_ = nullptr;

    Rob rob_;
    ProgSnapshot retiredSnap_{};
    InstSeq nextSeq_ = 1;
    Cycle now_ = 0;
    bool halted_ = false;
    std::uint64_t workVersion_ = 0;
    StallKind lastStallKind_ = StallKind::Other;
    /** Memoized min readyAt over bound in-flight ROB entries; valid
     *  while workVersion_ == robReadyVersion_ (any ROB change bumps). */
    mutable std::uint64_t robReadyVersion_ = ~std::uint64_t{0};
    mutable Cycle robReadyMemo_ = 0;
    std::uint64_t flushEpoch_ = 0;   //!< bumps on every squash/rollback
    InstSeq lastRetiredSeq_ = 0;
    bool journalEnabled_ = false;
    std::vector<RetireRecord> journal_;
    Breakdown breakdown_{};
};

} // namespace invisifence

#endif // INVISIFENCE_CPU_CORE_HH
