/**
 * @file
 * Abstract micro-op ISA.
 *
 * The workloads' memory-ordering behaviour depends only on the stream of
 * loads, stores, atomics, and fences, so the ISA is deliberately small
 * (see DESIGN.md "Substitutions"). All memory operations are 8-byte,
 * word-aligned accesses. Atomic read-modify-write operations (CAS and
 * fetch-and-add) produce the old memory value as their result.
 */

#ifndef INVISIFENCE_CPU_INSTRUCTION_HH
#define INVISIFENCE_CPU_INSTRUCTION_HH

#include <cstdint>

#include "sim/types.hh"

namespace invisifence {

/** Micro-op kinds. */
enum class OpType : std::uint8_t
{
    Alu,       //!< non-memory work with a fixed latency
    Load,      //!< 8-byte load
    Store,     //!< 8-byte store of @c value
    Cas,       //!< compare-and-swap: if mem == expect then mem = value
    FetchAdd,  //!< fetch-and-add: mem += value; result = old value
    Fence,     //!< full memory barrier (MEMBAR #Sync-style)
    Nop,
    Halt,      //!< end of a finite program (litmus tests)
};

constexpr bool
isMemOp(OpType t)
{
    return t == OpType::Load || t == OpType::Store || t == OpType::Cas ||
           t == OpType::FetchAdd;
}

/** Operations that read memory and produce a value. */
constexpr bool
isLoadLike(OpType t)
{
    return t == OpType::Load || t == OpType::Cas || t == OpType::FetchAdd;
}

/** Operations that (may) write memory. */
constexpr bool
isStoreLike(OpType t)
{
    return t == OpType::Store || t == OpType::Cas || t == OpType::FetchAdd;
}

constexpr bool
isAtomic(OpType t)
{
    return t == OpType::Cas || t == OpType::FetchAdd;
}

/** One fetched micro-op. */
struct Instruction
{
    OpType type = OpType::Nop;
    Addr addr = 0;               //!< word-aligned effective address
    std::uint64_t value = 0;     //!< store data / CAS new value / add delta
    std::uint64_t expect = 0;    //!< CAS comparand
    std::uint8_t latency = 1;    //!< execution latency for Alu ops

    /**
     * Fences come in two strengths. Acquire/release fences (the
     * annotations lock code needs under RC models) are free under SC and
     * TSO, which already provide those orderings; only RMO must drain
     * for them. Full fences (the StoreLoad barriers of lock-free code)
     * drain under TSO and RMO both. This mirrors the paper's
     * methodology of inserting fences at lock operations only for the
     * RMO runs (Section 6.1).
     */
    bool fullFence = false;

    /**
     * True when the program's subsequent control flow depends on this
     * instruction's result (e.g., a CAS in a lock-acquire loop or a load
     * in a spin loop). The program continues fetching assuming
     * @c predictedResult; the core verifies at retirement and squashes
     * younger instructions on a mismatch, exactly like a branch
     * misprediction.
     */
    bool feedsBack = false;
    std::uint64_t predictedResult = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_CPU_INSTRUCTION_HH
