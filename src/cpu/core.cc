#include "cpu/core.hh"

#include "sim/annotations.hh"

#include "cpu/consistency.hh"
#include "sim/log.hh"

namespace invisifence {

Core::Core(NodeId id, const CoreParams& params, CacheAgent& agent,
           ThreadProgram& program)
    : id_(id), params_(params), agent_(agent), program_(program),
      rob_(params.robSize)
{
    program_.snapshotTo(retiredSnap_);
    // >= 4x the window so live words (<= robSize) plus stale slots
    // leave linear probing short; power of two for mask indexing.
    std::uint32_t slots = 4;
    while (slots < params.robSize * 4)
        slots *= 2;
    wordMap_.resize(slots);
    wordMapMask_ = slots - 1;
}

InstSeq
Core::wordMapInsert(Addr word, InstSeq seq)
{
    if (wordMapOccupied_ * 2 > wordMap_.size())
        wordMapRebuild();   // shed stale slots before probing lengthens
    return wordMapInsertRaw(word, seq);
}

InstSeq
Core::wordMapInsertRaw(Addr word, InstSeq seq)
{
    std::size_t i = wordMapHome(word);
    while (true) {
        WordSlot& slot = wordMap_[i];
        if (slot.seq == 0) {
            slot.word = word;
            slot.seq = seq;
            ++wordMapOccupied_;
            return 0;
        }
        if (slot.word == word) {
            const InstSeq prev = slot.seq;
            slot.seq = seq;
            return prev;
        }
        i = (i + 1) & wordMapMask_;
    }
}

InstSeq
Core::wordMapYoungest(Addr word) const
{
    std::size_t i = wordMapHome(word);
    while (true) {
        const WordSlot& slot = wordMap_[i];
        if (slot.seq == 0)
            return 0;
        if (slot.word == word)
            return slot.seq;
        i = (i + 1) & wordMapMask_;
    }
}

void
Core::wordMapRebuild()
{
    for (WordSlot& slot : wordMap_)
        slot = WordSlot{};
    wordMapOccupied_ = 0;
    // Oldest to youngest so each word's slot ends at its youngest
    // store; prevSameWord links are per-entry and stay as dispatched.
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        const RobEntry& e = rob_.at(i);
        if (isStoreLike(e.inst.type))
            wordMapInsertRaw(wordAlign(e.inst.addr), e.seq);
    }
}

void
Core::setConsistency(ConsistencyImpl* impl)
{
    impl_ = impl;
    agent_.setListener(impl);
}

bool
Core::done() const
{
    return halted_ && rob_.empty() && impl_->quiesced();
}

void
Core::tick(Cycle now)
{
    IF_HOT;
    IF_DBG_ASSERT(impl_ && "core ticked without a consistency implementation");
    now_ = now;
    ++statCycles;
    impl_->tick();
    retireStage();
    executeStage();
    dispatchStage();
    if (halted_ && rob_.empty())
        impl_->onIdle();
}

void
Core::journalAppend(const RobEntry& h)
{
    IF_COLD_ALLOC("retire journal: diagnostic capture mode "
                  "(journalEnabled_), off on production runs; while "
                  "enabled the journal grows with retired memory ops "
                  "by design");
    journal_.push_back({h.seq, h.inst.type, h.inst.addr, h.result});
}

void
Core::retireStage()
{
    std::uint32_t retired = 0;
    StallKind stall = StallKind::Other;

    while (retired < params_.width && !rob_.empty()) {
        RobEntry& head = rob_.head();
        if (head.status != RobEntry::Status::Done) {
            stall = StallKind::Other;
            break;
        }
        RetireCheck chk = impl_->canRetire(head);
        if (!chk.ok) {
            stall = chk.stall;
            break;
        }

        // onRetire may, in rare paths (forced eviction of a speculative
        // block while marking a read bit), abort the speculation and
        // flush the ROB under us; detect that and void the retirement.
        const Instruction inst = head.inst;
        const std::uint64_t epoch_before = flushEpoch_;

        impl_->onRetire(head);

        if (flushEpoch_ != epoch_before)
            break;

        RobEntry& h = rob_.head();
        const bool mispredict =
            h.inst.feedsBack && h.result != h.inst.predictedResult;

        retiredSnap_ = rob_.snapAt(0);
        lastRetiredSeq_ = h.seq;
        if (journalEnabled_ && isMemOp(h.inst.type))
            journalAppend(h);
        switch (inst.type) {
          case OpType::Load: ++statLoads; break;
          case OpType::Store: ++statStores; break;
          case OpType::Cas:
          case OpType::FetchAdd: ++statAtomics; break;
          case OpType::Fence: ++statFences; break;
          default: break;
        }

        if (mispredict) {
            ++statMispredicts;
            program_.restoreFrom(rob_.snapAt(0));
            program_.setLastResult(h.result);
            program_.snapshotTo(retiredSnap_);
            halted_ = false;
            rob_.clear();
            recountRobStates();
        } else {
            if (h.valueBound && isLoadLike(h.inst.type)) {
                if (--boundLoads_ == 0)
                    boundLoadFilter_ = 0;   // cheap exact-reset point
            }
            rob_.popHead();
        }
        ++retired;
        ++statRetired;
        if (mispredict)
            break;
    }

    if (retired > 0)
        noteWork();

    const StallKind kind =
        retired > 0 ? StallKind::None
                    : (rob_.empty() && halted_ ? StallKind::Other : stall);
    lastStallKind_ = kind;
    if (!impl_->routeCycles(kind, 1))
        breakdown_.add(kind);
}

void
Core::recountRobStates()
{
    pendingComplete_ = 0;
    pendingDispatch_ = 0;
    boundLoads_ = 0;
    boundLoadFilter_ = 0;
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        const RobEntry& e = rob_.at(i);
        if (e.status == RobEntry::Status::Issued && e.valueBound)
            ++pendingComplete_;
        if (e.status == RobEntry::Status::Dispatched &&
            isLoadLike(e.inst.type)) {
            ++pendingDispatch_;
        }
        if (e.valueBound && isLoadLike(e.inst.type)) {
            ++boundLoads_;
            boundLoadFilter_ |= blockFilterBit(e.inst.addr);
        }
    }
    wordMapRebuild();
}

#ifndef NDEBUG
void
Core::verifyRobCounters() const
{
    std::uint32_t complete = 0, dispatch = 0, bound = 0;
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        const RobEntry& e = rob_.at(i);
        if (e.status == RobEntry::Status::Issued && e.valueBound)
            ++complete;
        if (e.status == RobEntry::Status::Dispatched &&
            isLoadLike(e.inst.type)) {
            ++dispatch;
        }
        if (e.valueBound && isLoadLike(e.inst.type)) {
            ++bound;
            IF_DBG_ASSERT((boundLoadFilter_ & blockFilterBit(e.inst.addr)) &&
                   "bound-load filter missed a bound load");
        }
        if (isStoreLike(e.inst.type)) {
            // Every in-window store-like must be reachable on its
            // word's youngest-first CAM chain.
            InstSeq s = wordMapYoungest(wordAlign(e.inst.addr));
            while (s != 0 && s != e.seq) {
                const std::ptrdiff_t j = rob_.indexOf(s);
                IF_DBG_ASSERT(j >= 0 && "store CAM chain left the window "
                                 "before reaching a live store");
                s = rob_.at(static_cast<std::size_t>(j)).prevSameWord;
            }
            IF_DBG_ASSERT(s == e.seq && "store CAM chain missed a live store");
        }
    }
    IF_DBG_ASSERT(complete == pendingComplete_ && "pendingComplete_ drifted");
    IF_DBG_ASSERT(dispatch == pendingDispatch_ && "pendingDispatch_ drifted");
    IF_DBG_ASSERT(bound == boundLoads_ && "boundLoads_ drifted");
}
#endif

void
Core::executeStage()
{
#ifndef NDEBUG
    verifyRobCounters();
#endif
    // Nothing in flight: skip the window scan entirely (the common case
    // for a stalled core in the legacy per-cycle loop).
    if (pendingComplete_ == 0 && pendingDispatch_ == 0)
        return;
    // The occupancy counters also bound the scan: once every pending
    // completion and dispatched load has been visited, the remaining
    // (Done / retired-stalled) entries can't match either arm.
    std::uint32_t remaining_complete = pendingComplete_;
    std::uint32_t remaining_dispatch = pendingDispatch_;
    std::uint32_t issued = 0;
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        if (remaining_complete == 0 && remaining_dispatch == 0)
            break;
        RobEntry& e = rob_.at(i);
        if (e.status == RobEntry::Status::Issued && e.valueBound) {
            --remaining_complete;
            if (e.readyAt <= now_) {
                e.status = RobEntry::Status::Done;
                --pendingComplete_;
                noteWork();
                if (isLoadLike(e.inst.type))
                    impl_->onLoadExecuted(e);
            }
            continue;
        }
        if (e.status == RobEntry::Status::Dispatched &&
            isLoadLike(e.inst.type)) {
            --remaining_dispatch;
            if (issued < params_.l1Ports && tryIssueLoad(i)) {
                ++issued;
                noteWork();
            }
        }
    }
}

Core::RobForward
Core::forwardFromRob(std::size_t idx, Addr addr) const
{
    RobForward fw;
    const Addr word = wordAlign(addr);
    for (std::size_t j = idx; j-- > 0;) {
        const RobEntry& f = rob_.at(j);
        if (!isStoreLike(f.inst.type) ||
            wordAlign(f.inst.addr) != word) {
            continue;
        }
        fw.producerSeq = f.seq;
        if (f.inst.type == OpType::Store) {
            fw.producerFound = true;
            fw.valueKnown = true;
            fw.value = f.inst.value;
            return fw;
        }
        if (f.inst.type == OpType::Cas) {
            // Resolved CAS: forward its new value on success, else it
            // wrote nothing and older producers are searched.
            if (f.status == RobEntry::Status::Done || f.valueBound) {
                if (f.result != f.inst.expect)
                    continue;
                fw.producerFound = true;
                fw.valueKnown = true;
                fw.value = f.inst.value;
                return fw;
            }
            // Unresolved: only a feedsBack CAS has a verified-at-retire
            // prediction we may rely on (a mispredict squashes us).
            if (f.inst.feedsBack) {
                if (f.inst.predictedResult != f.inst.expect)
                    continue;   // predicted fail: no write expected
                fw.producerFound = true;
                fw.valueKnown = true;
                fw.value = f.inst.value;
                return fw;
            }
            fw.producerFound = true;   // wait for the CAS to resolve
            return fw;
        }
        // FetchAdd: new value known only once the old value is bound.
        fw.producerFound = true;
        if (f.status == RobEntry::Status::Done || f.valueBound) {
            fw.valueKnown = true;
            fw.value = f.result + f.inst.value;
        }
        return fw;
    }
    return fw;
}

Core::RobForward
Core::forwardFromChain(std::size_t idx, Addr addr) const
{
    RobForward fw;
    const Addr word = wordAlign(addr);
    InstSeq s = wordMapYoungest(word);
    while (s != 0) {
        const std::ptrdiff_t at = rob_.indexOf(s);
        if (at < 0)
            break;   // chain head retired => all older matches retired
        const std::size_t j = static_cast<std::size_t>(at);
        const RobEntry& f = rob_.at(j);
        if (j >= idx) {
            // Younger than the load (dispatched after it): hop older.
            s = f.prevSameWord;
            continue;
        }
        IF_DBG_ASSERT(isStoreLike(f.inst.type) &&
               wordAlign(f.inst.addr) == word);
        fw.producerSeq = f.seq;
        if (f.inst.type == OpType::Store) {
            fw.producerFound = true;
            fw.valueKnown = true;
            fw.value = f.inst.value;
            return fw;
        }
        if (f.inst.type == OpType::Cas) {
            if (f.status == RobEntry::Status::Done || f.valueBound) {
                if (f.result != f.inst.expect) {
                    s = f.prevSameWord;   // failed CAS wrote nothing
                    continue;
                }
                fw.producerFound = true;
                fw.valueKnown = true;
                fw.value = f.inst.value;
                return fw;
            }
            if (f.inst.feedsBack) {
                if (f.inst.predictedResult != f.inst.expect) {
                    s = f.prevSameWord;   // predicted fail: no write
                    continue;
                }
                fw.producerFound = true;
                fw.valueKnown = true;
                fw.value = f.inst.value;
                return fw;
            }
            fw.producerFound = true;   // wait for the CAS to resolve
            return fw;
        }
        fw.producerFound = true;
        if (f.status == RobEntry::Status::Done || f.valueBound) {
            fw.valueKnown = true;
            fw.value = f.result + f.inst.value;
        }
        return fw;
    }
    return fw;
}

void
Core::bindLoadValue(RobEntry& entry, std::uint64_t value, Cycle ready)
{
    IF_DBG_ASSERT(entry.status == RobEntry::Status::Dispatched &&
           isLoadLike(entry.inst.type));
    entry.result = value;
    entry.valueBound = true;
    entry.status = RobEntry::Status::Issued;
    entry.readyAt = ready;
    --pendingDispatch_;
    ++pendingComplete_;
    ++boundLoads_;
    boundLoadFilter_ |= blockFilterBit(entry.inst.addr);
}

bool
Core::tryIssueLoad(std::size_t idx)
{
    RobEntry& e = rob_.at(idx);
    const Addr addr = e.inst.addr;
    const Cycle hit_ready = now_ + agent_.params().l1Latency;

    // 1. Forward from an older, not-yet-retired store in the window,
    // via the word CAM (O(same-word matches), not O(window)).
    if (e.waitSeq != 0) {
        // A previous walk stopped at an unresolved older atomic. While
        // that producer is still in the window and unresolved, the walk
        // would repeat to the same verdict (dispatch only appends
        // younger entries; retirement would remove the producer first).
        const std::ptrdiff_t pi = rob_.indexOf(e.waitSeq);
        if (pi >= 0 && static_cast<std::size_t>(pi) < idx) {
            const RobEntry& p = rob_.at(static_cast<std::size_t>(pi));
            if (p.status != RobEntry::Status::Done && !p.valueBound) {
#ifndef NDEBUG
                const RobForward chk = forwardFromRob(idx, addr);
                IF_DBG_ASSERT(chk.producerFound && !chk.valueKnown &&
                       chk.producerSeq == e.waitSeq &&
                       "stale producer-wait memo");
#endif
                return false;
            }
        }
        e.waitSeq = 0;
    }
    const RobForward fw = forwardFromChain(idx, addr);
#ifndef NDEBUG
    {
        // The CAM walk must agree with the naive age-ordered scan.
        const RobForward oracle = forwardFromRob(idx, addr);
        IF_DBG_ASSERT(oracle.producerFound == fw.producerFound &&
               oracle.valueKnown == fw.valueKnown &&
               (!fw.producerFound ||
                oracle.producerSeq == fw.producerSeq) &&
               (!fw.valueKnown || oracle.value == fw.value) &&
               "store CAM diverged from the naive forwarding scan");
    }
#endif
    if (fw.producerFound) {
        if (!fw.valueKnown) {
            e.waitSeq = fw.producerSeq;
            return false;       // wait for the producer to resolve
        }
        bindLoadValue(e, fw.value, hit_ready);
        ++statLoadForwards;
        return true;
    }

    // 2. Forward from the store buffer.
    if (auto v = impl_->forwardStore(addr)) {
        bindLoadValue(e, *v, hit_ready);
        ++statLoadForwards;
        return true;
    }

    // 3. L1 hit (one combined readable-check + word read).
    std::uint64_t word = 0;
    if (agent_.tryReadL1(addr, &word)) {
        bindLoadValue(e, word, hit_ready);
        ++statL1LoadHits;
        // Atomics also want write permission; prefetch it.
        if (isAtomic(e.inst.type) && params_.storePrefetch &&
            !agent_.l1Writable(addr) && !e.prefetched) {
            e.prefetched = true;
            agent_.request(addr, true);
        }
        return true;
    }

    // 4. Miss: fetch the block (atomics fetch with write intent). The
    // waiter is a 24-byte {thunk, core, seq} record, not a 40-byte
    // heap-captured closure: the fill resolves the load back through
    // fillWakeThunk.
    const bool want_write = isAtomic(e.inst.type);
    const FillWaiter wake{&Core::fillWakeThunk, this, e.seq};
    const bool accepted = agent_.request(addr, want_write, wake);
    if (!accepted) {
        // MSHRs exhausted; retry next cycle. Count the stall once per
        // issue episode, not per retry — the legacy loop retries every
        // cycle while fast-forward sleeps through them, and a surfaced
        // statistic must not depend on the tick-loop mode.
        if (!e.mshrStallNoted) {
            e.mshrStallNoted = true;
            ++agent_.mshrs().statFullStalls;
        }
        return false;
    }
    e.mshrStallNoted = false;
    e.status = RobEntry::Status::Issued;
    e.valueBound = false;
    e.readyAt = ~Cycle{0};
    --pendingDispatch_;
    ++statLoadMisses;
    return true;
}

void
Core::fillWakeThunk(void* owner, std::uint64_t arg)
{
    static_cast<Core*>(owner)->wakeLoad(arg);
}

void
Core::wakeLoad(InstSeq seq)
{
    const std::ptrdiff_t i = rob_.indexOf(seq);
    if (i < 0)
        return;   // squashed while the fill was in flight
    RobEntry& e = rob_.at(static_cast<std::size_t>(i));
    if (e.status != RobEntry::Status::Issued || e.valueBound)
        return;
    noteWork();
    std::uint64_t filled = 0;
    if (!agent_.tryReadL1(e.inst.addr, &filled)) {
        // The block was stolen before the (possibly deferred)
        // fill completed: replay the issue.
        e.status = RobEntry::Status::Dispatched;
        ++pendingDispatch_;
        return;
    }
    e.result = filled;
    e.valueBound = true;
    e.status = RobEntry::Status::Done;
    ++boundLoads_;
    boundLoadFilter_ |= blockFilterBit(e.inst.addr);
    if (isLoadLike(e.inst.type))
        impl_->onLoadExecuted(e);
}

void
Core::dispatchStage()
{
    if (halted_)
        return;
    std::uint32_t dispatched = 0;
    while (dispatched < params_.width && !rob_.full()) {
        const Instruction inst = program_.fetchNext();
        if (inst.type == OpType::Halt) {
            halted_ = true;
            noteWork();
            return;
        }
        noteWork();
        // CAM insert before push: a rebuild inside the insert sweeps
        // the window and must not see the half-constructed entry.
        InstSeq prev_same_word = 0;
        if (isStoreLike(inst.type))
            prev_same_word = wordMapInsert(wordAlign(inst.addr), nextSeq_);
        RobEntry& e = rob_.push();
        e = RobEntry{};
        e.inst = inst;
        e.seq = nextSeq_++;
        e.prevSameWord = prev_same_word;
        program_.snapshotTo(rob_.lastSnap());

        switch (inst.type) {
          case OpType::Alu:
            e.status = RobEntry::Status::Issued;
            e.valueBound = true;
            e.readyAt = now_ + inst.latency;
            ++pendingComplete_;
            break;
          case OpType::Nop:
          case OpType::Fence:
            e.status = RobEntry::Status::Done;
            break;
          case OpType::Store:
            e.status = RobEntry::Status::Done;
            if (params_.storePrefetch && !agent_.l1Writable(inst.addr)) {
                e.prefetched = true;
                agent_.request(inst.addr, true);
            }
            break;
          case OpType::Load:
          case OpType::Cas:
          case OpType::FetchAdd:
            e.status = RobEntry::Status::Dispatched;
            ++pendingDispatch_;
            break;
          case OpType::Halt:
            break;
        }
        ++dispatched;
    }
}

void
Core::rollbackTo(const ProgSnapshot& snap, InstSeq last_valid_seq)
{
    program_.restoreFrom(snap);
    retiredSnap_ = snap;
    rob_.clear();
    recountRobStates();
    halted_ = false;
    ++flushEpoch_;
    noteWork();
    lastRetiredSeq_ = last_valid_seq;
    if (journalEnabled_) {
        while (!journal_.empty() && journal_.back().seq > last_valid_seq)
            journal_.pop_back();
    }
}

void
Core::notifyInvalidated(Addr block)
{
    // No value-bound loads in the window — or none whose block can hash
    // to this one: nothing to snoop (skips the ROB scan on the
    // invalidation-heavy path; the filter never misses a bound load).
    if (boundLoads_ == 0 ||
        (boundLoadFilter_ & blockFilterBit(block)) == 0) {
        return;
    }
    const Addr blk = blockAlign(block);
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        RobEntry& e = rob_.at(i);
        if (!isLoadLike(e.inst.type) || !e.valueBound || e.specMarked)
            continue;
        if (blockAlign(e.inst.addr) != blk)
            continue;
        // Replay this load and squash everything younger.
        program_.restoreFrom(rob_.snapAt(i));
        halted_ = false;
        rob_.squashAfter(i);
        e.status = RobEntry::Status::Dispatched;
        e.valueBound = false;
        e.readyAt = 0;
        recountRobStates();
        ++statLqSquashes;
        ++flushEpoch_;
        noteWork();
        return;
    }
}

Cycle
Core::nextWorkAt() const
{
    // ROB part: the earliest completion of a value-bound in-flight entry
    // (ALU latency, L1 hit latency). Memoized on the work version — any
    // ROB mutation bumps it, and in a quiescent state no entry has
    // readyAt <= now (the tick would have completed it).
    if (robReadyVersion_ != workVersion_) {
        Cycle ready = kNeverCycle;
        for (std::size_t i = 0; i < rob_.size(); ++i) {
            const RobEntry& e = rob_.at(i);
            if (e.status == RobEntry::Status::Issued && e.valueBound &&
                e.readyAt < ready) {
                ready = e.readyAt;
            }
        }
        robReadyVersion_ = workVersion_;
        robReadyMemo_ = ready;
    }
    const Cycle impl_at = impl_->nextWorkAt();
    const Cycle rob_at =
        robReadyMemo_ <= now_ ? now_ + 1 : robReadyMemo_;
    return impl_at < rob_at ? impl_at : rob_at;
}

void
Core::accrueStallCycles(std::uint64_t n)
{
    statCycles += n;
    if (!impl_->routeCycles(lastStallKind_, n))
        breakdown_.add(lastStallKind_, n);
    impl_->accrueQuiescentCycles(n);
}

void
Core::registerStats(StatRegistry& reg, const std::string& prefix) const
{
    reg.registerStat(prefix + ".retired", &statRetired);
    reg.registerStat(prefix + ".loads", &statLoads);
    reg.registerStat(prefix + ".stores", &statStores);
    reg.registerStat(prefix + ".atomics", &statAtomics);
    reg.registerStat(prefix + ".fences", &statFences);
    reg.registerStat(prefix + ".mispredicts", &statMispredicts);
    reg.registerStat(prefix + ".lq_squashes", &statLqSquashes);
    reg.registerStat(prefix + ".cycles", &statCycles);
    reg.registerStat(prefix + ".cycles.busy", &breakdown_.busy);
    reg.registerStat(prefix + ".cycles.other", &breakdown_.other);
    reg.registerStat(prefix + ".cycles.sb_full", &breakdown_.sbFull);
    reg.registerStat(prefix + ".cycles.sb_drain", &breakdown_.sbDrain);
    reg.registerStat(prefix + ".cycles.violation", &breakdown_.violation);
}

} // namespace invisifence
