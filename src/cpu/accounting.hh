/**
 * @file
 * Retirement-slot cycle accounting (the categories of Figure 1/9).
 *
 * Every cycle a core attributes its retirement slot to exactly one
 * category. Cycles spent inside post-retirement speculation accrue to a
 * pending breakdown owned by the speculation engine; commit folds them
 * into the real categories, abort converts all of them to Violation
 * ("cycles spent executing post-retirement speculation that ultimately
 * rolls back").
 */

#ifndef INVISIFENCE_CPU_ACCOUNTING_HH
#define INVISIFENCE_CPU_ACCOUNTING_HH

#include <cstdint>

namespace invisifence {

/** Why the retirement slot made (or failed to make) progress. */
enum class StallKind : std::uint8_t
{
    None,      //!< retired at least one instruction: Busy
    SbFull,    //!< store stalled waiting for a free store buffer entry
    SbDrain,   //!< ordering requirement waiting on store buffer drain
               //!< (loads under SC, atomics, fences, commit waits)
    Other,     //!< non-ordering stall: miss at head, empty ROB, squash
};

/** Per-core cycle breakdown. */
struct Breakdown
{
    std::uint64_t busy = 0;
    std::uint64_t other = 0;
    std::uint64_t sbFull = 0;
    std::uint64_t sbDrain = 0;
    std::uint64_t violation = 0;

    void
    add(StallKind kind, std::uint64_t n = 1)
    {
        switch (kind) {
          case StallKind::None: busy += n; break;
          case StallKind::SbFull: sbFull += n; break;
          case StallKind::SbDrain: sbDrain += n; break;
          case StallKind::Other: other += n; break;
        }
    }

    /** Fold @p b into this breakdown category-by-category. */
    void
    merge(const Breakdown& b)
    {
        busy += b.busy;
        other += b.other;
        sbFull += b.sbFull;
        sbDrain += b.sbDrain;
        violation += b.violation;
    }

    /** Fold @p b into this breakdown entirely as Violation cycles. */
    void
    mergeAsViolation(const Breakdown& b)
    {
        violation += b.total();
    }

    std::uint64_t
    total() const
    {
        return busy + other + sbFull + sbDrain + violation;
    }

    void
    clear()
    {
        *this = Breakdown{};
    }
};

} // namespace invisifence

#endif // INVISIFENCE_CPU_ACCOUNTING_HH
