/**
 * @file
 * Replayable thread programs.
 *
 * A ThreadProgram is a deterministic automaton that emits the instruction
 * stream of one hardware thread. Its complete state (including any
 * embedded RNG and the last predicted result) fits in a small POD
 * snapshot, so the core can rewind it: in-window squashes, result
 * mispredictions, and InvisiFence aborts all restore a snapshot and
 * re-fetch, making rollback architecturally real. The program snapshot
 * plays the role of the paper's register checkpoint.
 */

#ifndef INVISIFENCE_CPU_PROGRAM_HH
#define INVISIFENCE_CPU_PROGRAM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "cpu/instruction.hh"

namespace invisifence {

/** Fixed-size POD snapshot of a program's architectural state. */
struct ProgSnapshot
{
    static constexpr std::size_t kMaxBytes = 192;
    std::array<std::uint8_t, kMaxBytes> bytes{};
};

/** Serialize a trivially-copyable state struct into a snapshot. */
template <typename State>
void
podSnapshot(const State& state, ProgSnapshot& out)
{
    static_assert(std::is_trivially_copyable_v<State>);
    static_assert(sizeof(State) <= ProgSnapshot::kMaxBytes,
                  "program state too large for ProgSnapshot");
    std::memcpy(out.bytes.data(), &state, sizeof(State));
}

/** Restore a state struct from a snapshot. */
template <typename State>
void
podRestore(State& state, const ProgSnapshot& in)
{
    static_assert(std::is_trivially_copyable_v<State>);
    std::memcpy(&state, in.bytes.data(), sizeof(State));
}

/** Deterministic, rewindable instruction source for one thread. */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /**
     * Advance the automaton and return the next instruction. When the
     * returned instruction has @c feedsBack set, the program must have
     * already continued under the assumption that the result equals
     * @c predictedResult.
     */
    virtual Instruction fetchNext() = 0;

    /** Capture the full program state (architectural checkpoint). */
    virtual void snapshotTo(ProgSnapshot& out) const = 0;

    /** Rewind to a previously captured state. */
    virtual void restoreFrom(const ProgSnapshot& in) = 0;

    /**
     * After restoreFrom() of the snapshot taken just after a mispredicted
     * instruction, inform the program of that instruction's actual
     * result; subsequent fetchNext() calls emit the corrected path.
     */
    virtual void setLastResult(std::uint64_t value) = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_CPU_PROGRAM_HH
