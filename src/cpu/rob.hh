/**
 * @file
 * Reorder buffer entry and container.
 *
 * Loads live in the ROB itself (entries with a bound value act as the
 * load queue for snoop-based in-window speculation); stores execute their
 * memory side at retirement, so no separate store queue is modeled.
 */

#ifndef INVISIFENCE_CPU_ROB_HH
#define INVISIFENCE_CPU_ROB_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "cpu/instruction.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace invisifence {

/** Context value meaning "not part of any speculation". */
constexpr std::uint32_t kNoSpecCtx = 0xffffffffu;

/** One in-flight instruction. */
struct RobEntry
{
    enum class Status : std::uint8_t
    {
        Dispatched,  //!< waiting to issue to memory
        Issued,      //!< executing; completes at readyAt or via fill
        Done,        //!< result bound; eligible to retire
    };

    Instruction inst{};
    InstSeq seq = 0;
    ProgSnapshot snapAfter{};   //!< program state just after this fetch
    Status status = Status::Dispatched;
    std::uint64_t result = 0;
    bool valueBound = false;    //!< result holds real data (LQ snooping)
    bool prefetched = false;    //!< store/atomic write-permission prefetch
    Cycle readyAt = 0;
    bool specMarked = false;    //!< set a speculatively-read bit at execute
    std::uint32_t specCtx = kNoSpecCtx;  //!< checkpoint the bit belongs to
};

static_assert(std::is_trivially_copyable_v<RobEntry>,
              "RobEntry must stay POD: the ROB is a preallocated ring");

/**
 * In-order window of RobEntry: a fixed ring over preallocated slots.
 *
 * The previous std::deque representation allocated a chunk per entry
 * (RobEntry is larger than a deque node), putting a malloc/free pair on
 * every dispatch/retire — the per-instruction hot path. The ring is
 * allocated once at construction and recycled forever.
 */
class Rob
{
  public:
    explicit Rob(std::uint32_t capacity)
        : capacity_(capacity), slots_(capacity)
    {}

    bool full() const { return size_ >= capacity_; }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::uint32_t capacity() const { return capacity_; }

    RobEntry& head() { return slots_[head_]; }
    const RobEntry& head() const { return slots_[head_]; }

    RobEntry&
    push()
    {
        return slots_[slot(size_++)];
    }

    void
    popHead()
    {
        ++head_;
        if (head_ >= capacity_)
            head_ = 0;
        --size_;
    }

    /** Remove every entry strictly younger than index @p idx. */
    void
    squashAfter(std::size_t idx)
    {
        size_ = idx + 1;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    RobEntry& at(std::size_t i) { return slots_[slot(i)]; }
    const RobEntry& at(std::size_t i) const { return slots_[slot(i)]; }

    /** Index of the entry with sequence number @p seq, or -1. */
    std::ptrdiff_t
    indexOf(InstSeq seq) const
    {
        for (std::size_t i = 0; i < size_; ++i) {
            if (at(i).seq == seq)
                return static_cast<std::ptrdiff_t>(i);
        }
        return -1;
    }

  private:
    /** Ring index without an integer division: i < capacity always. */
    std::size_t
    slot(std::size_t i) const
    {
        const std::size_t s = head_ + i;
        return s < capacity_ ? s : s - capacity_;
    }

    std::uint32_t capacity_;
    std::vector<RobEntry> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_CPU_ROB_HH
