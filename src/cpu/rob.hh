/**
 * @file
 * Reorder buffer entry and container.
 *
 * Loads live in the ROB itself (entries with a bound value act as the
 * load queue for snoop-based in-window speculation); stores execute their
 * memory side at retirement, so no separate store queue is modeled.
 */

#ifndef INVISIFENCE_CPU_ROB_HH
#define INVISIFENCE_CPU_ROB_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "cpu/instruction.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace invisifence {

/** Context value meaning "not part of any speculation". */
constexpr std::uint32_t kNoSpecCtx = 0xffffffffu;

/** One in-flight instruction. */
struct RobEntry
{
    enum class Status : std::uint8_t
    {
        Dispatched,  //!< waiting to issue to memory
        Issued,      //!< executing; completes at readyAt or via fill
        Done,        //!< result bound; eligible to retire
    };

    Instruction inst{};
    InstSeq seq = 0;
    Status status = Status::Dispatched;
    std::uint64_t result = 0;
    bool valueBound = false;    //!< result holds real data (LQ snooping)
    bool prefetched = false;    //!< store/atomic write-permission prefetch
    Cycle readyAt = 0;
    bool specMarked = false;    //!< set a speculatively-read bit at execute
    std::uint32_t specCtx = kNoSpecCtx;  //!< checkpoint the bit belongs to
    /** Load issue blocked on this unresolved older atomic (0 = none):
     *  while that producer stays unresolved the forwarding scan would
     *  repeat the same walk to the same answer, so it is skipped. */
    InstSeq waitSeq = 0;
    /** Store-likes only: seq of the next-older in-window store-like to
     *  the same word at dispatch time (0 = none). Retirement leaves
     *  the link in place — a chain hop to a retired seq means every
     *  older same-word store has retired too, ending the walk. */
    InstSeq prevSameWord = 0;
    /** An MSHR-full rejection was already counted for the current issue
     *  episode (cleared when the request is accepted), so retry loops
     *  count stall episodes, not retries — identically in the legacy
     *  and fast-forward tick loops. */
    bool mshrStallNoted = false;
};

static_assert(std::is_trivially_copyable_v<RobEntry>,
              "RobEntry must stay POD: the ROB is a preallocated ring");

/**
 * In-order window of RobEntry: a fixed ring over preallocated slots.
 *
 * The previous std::deque representation allocated a chunk per entry
 * (RobEntry is larger than a deque node), putting a malloc/free pair on
 * every dispatch/retire — the per-instruction hot path. The ring is
 * allocated once at construction and recycled forever.
 *
 * The per-entry program snapshot (192 bytes, read only at retirement
 * and on rollbacks) lives in a parallel cold lane, keeping RobEntry at
 * ~1/3 the size so the per-tick execute/forwarding/snoop scans stride
 * hot fields only — the same split-lane layout as the cache arrays.
 */
class Rob
{
  public:
    explicit Rob(std::uint32_t capacity)
        : capacity_(capacity), slots_(capacity), snaps_(capacity)
    {}

    bool full() const { return size_ >= capacity_; }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::uint32_t capacity() const { return capacity_; }

    RobEntry& head() { return slots_[head_]; }
    const RobEntry& head() const { return slots_[head_]; }

    RobEntry&
    push()
    {
        return slots_[slot(size_++)];
    }

    void
    popHead()
    {
        ++head_;
        if (head_ >= capacity_)
            head_ = 0;
        --size_;
    }

    /** Remove every entry strictly younger than index @p idx. */
    void
    squashAfter(std::size_t idx)
    {
        size_ = idx + 1;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    RobEntry& at(std::size_t i) { return slots_[slot(i)]; }
    const RobEntry& at(std::size_t i) const { return slots_[slot(i)]; }

    /** Cold-lane program snapshot of the entry at index @p i ("program
     *  state just after this fetch"). */
    ProgSnapshot& snapAt(std::size_t i) { return snaps_[slot(i)]; }
    const ProgSnapshot& snapAt(std::size_t i) const
    {
        return snaps_[slot(i)];
    }

    /** Snapshot slot of the most recently pushed entry. */
    ProgSnapshot& lastSnap() { return snaps_[slot(size_ - 1)]; }

    /** Index of the entry with sequence number @p seq, or -1.
     *  In-window seqs are strictly increasing (dispatch appends rising
     *  numbers; squashes truncate the tail — leaving gaps, so offsets
     *  can't be computed directly), which makes a binary search exact:
     *  O(log robSize) instead of the old linear walk on every fill
     *  callback. */
    std::ptrdiff_t
    indexOf(InstSeq seq) const
    {
        std::size_t lo = 0, hi = size_;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (at(mid).seq < seq)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo < size_ && at(lo).seq == seq)
            return static_cast<std::ptrdiff_t>(lo);
        return -1;
    }

  private:
    /** Ring index without an integer division: i < capacity always. */
    std::size_t
    slot(std::size_t i) const
    {
        const std::size_t s = head_ + i;
        return s < capacity_ ? s : s - capacity_;
    }

    std::uint32_t capacity_;
    std::vector<RobEntry> slots_;
    std::vector<ProgSnapshot> snaps_;   //!< cold lane, parallel to slots_
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_CPU_ROB_HH
