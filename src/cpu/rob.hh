/**
 * @file
 * Reorder buffer entry and container.
 *
 * Loads live in the ROB itself (entries with a bound value act as the
 * load queue for snoop-based in-window speculation); stores execute their
 * memory side at retirement, so no separate store queue is modeled.
 */

#ifndef INVISIFENCE_CPU_ROB_HH
#define INVISIFENCE_CPU_ROB_HH

#include <cstdint>
#include <deque>

#include "cpu/instruction.hh"
#include "cpu/program.hh"
#include "sim/types.hh"

namespace invisifence {

/** Context value meaning "not part of any speculation". */
constexpr std::uint32_t kNoSpecCtx = 0xffffffffu;

/** One in-flight instruction. */
struct RobEntry
{
    enum class Status : std::uint8_t
    {
        Dispatched,  //!< waiting to issue to memory
        Issued,      //!< executing; completes at readyAt or via fill
        Done,        //!< result bound; eligible to retire
    };

    Instruction inst{};
    InstSeq seq = 0;
    ProgSnapshot snapAfter{};   //!< program state just after this fetch
    Status status = Status::Dispatched;
    std::uint64_t result = 0;
    bool valueBound = false;    //!< result holds real data (LQ snooping)
    bool prefetched = false;    //!< store/atomic write-permission prefetch
    Cycle readyAt = 0;
    bool specMarked = false;    //!< set a speculatively-read bit at execute
    std::uint32_t specCtx = kNoSpecCtx;  //!< checkpoint the bit belongs to
};

/**
 * In-order window of RobEntry. A thin wrapper over std::deque kept small
 * so squash paths stay obvious.
 */
class Rob
{
  public:
    explicit Rob(std::uint32_t capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    RobEntry& head() { return entries_.front(); }
    const RobEntry& head() const { return entries_.front(); }

    RobEntry&
    push()
    {
        entries_.emplace_back();
        return entries_.back();
    }

    void popHead() { entries_.pop_front(); }

    /** Remove every entry strictly younger than index @p idx. */
    void
    squashAfter(std::size_t idx)
    {
        entries_.resize(idx + 1);
    }

    void clear() { entries_.clear(); }

    RobEntry& at(std::size_t i) { return entries_[i]; }
    const RobEntry& at(std::size_t i) const { return entries_[i]; }

    /** Index of the entry with sequence number @p seq, or -1. */
    std::ptrdiff_t
    indexOf(InstSeq seq) const
    {
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].seq == seq)
                return static_cast<std::ptrdiff_t>(i);
        }
        return -1;
    }

  private:
    std::uint32_t capacity_;
    std::deque<RobEntry> entries_;
};

} // namespace invisifence

#endif // INVISIFENCE_CPU_ROB_HH
