#include "workload/synthetic.hh"

#include <algorithm>

namespace invisifence {

SyntheticProgram::SyntheticProgram(const SyntheticParams& params,
                                   std::uint32_t tid, std::uint64_t seed)
    : params_(params), tid_(tid)
{
    state_ = State{};
    state_.rng = Rng(seed * 7919 + tid * 104729 + 1);
    // Stagger private cursors so threads do not start in lockstep.
    state_.privCursor = state_.rng.next();
    if (params_.zipfShared != 0 && params_.sharedBlocks > 0) {
        // Integer Zipf(s=1): block i carries weight K/(i+1). Integer
        // division keeps the table bit-identical on every host (no libm
        // pow), which the committed goldens require.
        constexpr std::uint64_t kScale = std::uint64_t{1} << 32;
        zipfCdf_.reserve(params_.sharedBlocks);
        std::uint64_t cum = 0;
        for (std::uint32_t i = 0; i < params_.sharedBlocks; ++i) {
            cum += kScale / (i + 1);
            zipfCdf_.push_back(cum);
        }
    }
}

void
SyntheticProgram::snapshotTo(ProgSnapshot& out) const
{
    podSnapshot(state_, out);
}

void
SyntheticProgram::restoreFrom(const ProgSnapshot& in)
{
    podRestore(state_, in);
}

void
SyntheticProgram::setLastResult(std::uint64_t value)
{
    state_.lastResult = value;
}

Instruction
SyntheticProgram::makeLoad(Addr a) const
{
    Instruction i;
    i.type = OpType::Load;
    i.addr = wordAlign(a);
    return i;
}

Instruction
SyntheticProgram::makeStore(Addr a, std::uint64_t v) const
{
    Instruction i;
    i.type = OpType::Store;
    i.addr = wordAlign(a);
    i.value = v;
    return i;
}

Addr
SyntheticProgram::randomPrivateAddr()
{
    const Addr base = kPrivateRegion + tid_ * kPrivateStride;
    // A strided walk with occasional random jumps: mostly spatial
    // locality (hits), with capacity misses proportional to footprint.
    state_.privCursor += state_.rng.below(16) == 0
                             ? state_.rng.below(params_.privateBlocks) *
                                   kBlockBytes
                             : kWordBytes;
    const Addr span =
        static_cast<Addr>(params_.privateBlocks) * kBlockBytes;
    return base + (state_.privCursor % span);
}

Addr
SyntheticProgram::randomSharedAddr()
{
    if (!zipfCdf_.empty()) {
        // Hot-key skew: rank 0 is the hottest block. Two rng draws
        // (block, then byte within it) keep the stream rewindable —
        // both live in the snapshot-captured Rng.
        const std::uint64_t r = state_.rng.next() % zipfCdf_.back();
        const auto it =
            std::upper_bound(zipfCdf_.begin(), zipfCdf_.end(), r);
        const Addr blk =
            static_cast<Addr>(it - zipfCdf_.begin());
        return kSharedRegion + blk * kBlockBytes +
               (state_.rng.next() % kBlockBytes);
    }
    const Addr span =
        static_cast<Addr>(params_.sharedBlocks) * kBlockBytes;
    return kSharedRegion + (state_.rng.next() % span);
}

Addr
SyntheticProgram::randomLockDataAddr() const
{
    // Deterministic function of the rng-free fields so it can be called
    // from const context; variation comes from csRemaining.
    const Addr base = kLockDataRegion +
                      static_cast<Addr>(state_.lockIdx) *
                          params_.lockDataBlocks * kBlockBytes;
    const Addr off = (static_cast<Addr>(state_.csRemaining) * 72) %
                     (params_.lockDataBlocks * kBlockBytes);
    return base + off;
}

Instruction
SyntheticProgram::normalInstruction()
{
    // Store bursts model the write streaks of OLTP-style workloads.
    if (state_.burstRemaining > 0) {
        --state_.burstRemaining;
        return makeStore(randomPrivateAddr(), state_.rng.next());
    }

    if (state_.rng.chance64k(params_.lockPer64k)) {
        // Begin a lock acquire: CAS(lock, 0 -> tid+1), predict success.
        state_.lockIdx = static_cast<std::uint16_t>(
            state_.rng.below(params_.numLocks));
        state_.phase = static_cast<std::uint8_t>(Phase::AfterAcquireCas);
        state_.lastResult = 0;   // predicted: lock was free
        Instruction i;
        i.type = OpType::Cas;
        i.addr = lockAddr(state_.lockIdx);
        i.expect = 0;
        i.value = tid_ + 1;
        i.feedsBack = true;
        i.predictedResult = 0;
        return i;
    }

    if (state_.rng.chance64k(params_.fencePer64k)) {
        // Standalone fences model lock-free algorithms' StoreLoad
        // barriers: full fences that even TSO must honor.
        Instruction i;
        i.type = OpType::Fence;
        i.fullFence = true;
        return i;
    }

    if (state_.rng.chance64k(params_.atomicPer64k)) {
        // Lock-free shared counter increment.
        Instruction i;
        i.type = OpType::FetchAdd;
        i.addr = wordAlign(randomSharedAddr());
        i.value = 1;
        return i;
    }

    const std::uint64_t mix = state_.rng.below(1000);
    if (mix < params_.aluPermille) {
        Instruction i;
        i.type = OpType::Alu;
        i.latency = params_.aluLatency;
        return i;
    }

    const bool is_load =
        mix < params_.aluPermille + params_.loadPermille;
    if (is_load) {
        // Loads are mostly local (they hit); the ordering penalty the
        // paper studies comes from loads waiting on *store* misses.
        const bool shared =
            state_.rng.chancePermille(params_.sharedPermille / 4);
        return makeLoad(shared ? randomSharedAddr()
                               : randomPrivateAddr());
    }
    // Stores carry the sharing: migratory writes miss and dwell in the
    // store buffer, creating the SB-drain/SB-full pressure of Figure 1.
    const bool shared = state_.rng.chancePermille(params_.sharedPermille);
    if (shared)
        return makeStore(randomSharedAddr(), state_.rng.next());
    if (params_.storeBurst > 1) {
        state_.burstRemaining =
            static_cast<std::uint8_t>(params_.storeBurst - 1);
    }
    return makeStore(randomPrivateAddr(), state_.rng.next());
}

Instruction
SyntheticProgram::fetchNext()
{
    switch (static_cast<Phase>(state_.phase)) {
      case Phase::Normal:
        return normalInstruction();

      case Phase::AfterAcquireCas: {
        if (state_.lastResult == 0) {
            // Acquired: emit the acquire barrier, then the body.
            state_.phase = static_cast<std::uint8_t>(Phase::CritBody);
            state_.csRemaining =
                static_cast<std::uint8_t>(params_.csLength);
            Instruction i;
            i.type = OpType::Fence;
            return i;
        }
        // Contended: back off, then spin on the lock word.
        state_.phase = static_cast<std::uint8_t>(Phase::SpinLoad);
        Instruction i;
        i.type = OpType::Alu;
        i.latency = params_.backoffLatency;
        return i;
      }

      case Phase::SpinLoad: {
        state_.phase = static_cast<std::uint8_t>(Phase::AfterSpinLoad);
        state_.lastResult = 0;   // predicted: lock looks free
        Instruction i = makeLoad(lockAddr(state_.lockIdx));
        i.feedsBack = true;
        i.predictedResult = 0;
        return i;
      }

      case Phase::AfterSpinLoad: {
        if (state_.lastResult == 0) {
            // Looks free: retry the CAS.
            state_.phase =
                static_cast<std::uint8_t>(Phase::AfterAcquireCas);
            state_.lastResult = 0;
            Instruction i;
            i.type = OpType::Cas;
            i.addr = lockAddr(state_.lockIdx);
            i.expect = 0;
            i.value = tid_ + 1;
            i.feedsBack = true;
            i.predictedResult = 0;
            return i;
        }
        // Still held: back off and spin again.
        state_.phase = static_cast<std::uint8_t>(Phase::SpinLoad);
        Instruction i;
        i.type = OpType::Alu;
        i.latency = params_.backoffLatency;
        return i;
      }

      case Phase::CritBody: {
        if (state_.csRemaining == 0) {
            // No release fence: the paper's RMO methodology inserts
            // fences at lock acquires only (Section 6.1), conservatively
            // overestimating conventional RMO. We mirror that.
            state_.phase = static_cast<std::uint8_t>(Phase::Normal);
            return makeStore(lockAddr(state_.lockIdx), 0);
        }
        --state_.csRemaining;
        const Addr a = randomLockDataAddr();
        // Critical sections touch migratory data; sharedWritePermille
        // controls how write-heavy they are.
        if (state_.rng.chancePermille(params_.sharedWritePermille))
            return makeStore(a, state_.rng.next());
        return makeLoad(a);
      }

      case Phase::ReleaseStore: {
        state_.phase = static_cast<std::uint8_t>(Phase::Normal);
        return makeStore(lockAddr(state_.lockIdx), 0);
      }

      case Phase::AcquiredFence:
      case Phase::ReleaseFence:
        break;   // folded into the transitions above
    }
    state_.phase = static_cast<std::uint8_t>(Phase::Normal);
    return normalInstruction();
}

} // namespace invisifence
