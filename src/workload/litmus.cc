#include "workload/litmus.hh"

#include "sim/annotations.hh"

namespace invisifence {

ScriptOp
opAlu(std::uint8_t latency)
{
    ScriptOp s;
    s.inst.type = OpType::Alu;
    s.inst.latency = latency;
    return s;
}

ScriptOp
opLoad(Addr a)
{
    ScriptOp s;
    s.inst.type = OpType::Load;
    s.inst.addr = wordAlign(a);
    return s;
}

ScriptOp
opStore(Addr a, std::uint64_t v)
{
    ScriptOp s;
    s.inst.type = OpType::Store;
    s.inst.addr = wordAlign(a);
    s.inst.value = v;
    return s;
}

ScriptOp
opCas(Addr a, std::uint64_t expect, std::uint64_t value)
{
    ScriptOp s;
    s.inst.type = OpType::Cas;
    s.inst.addr = wordAlign(a);
    s.inst.expect = expect;
    s.inst.value = value;
    return s;
}

ScriptOp
opCasLoop(Addr a, std::uint64_t expect, std::uint64_t value)
{
    ScriptOp s = opCas(a, expect, value);
    s.kind = ScriptOp::Kind::CasUntilSuccess;
    s.until = expect;
    return s;
}

ScriptOp
opFetchAdd(Addr a, std::uint64_t delta)
{
    ScriptOp s;
    s.inst.type = OpType::FetchAdd;
    s.inst.addr = wordAlign(a);
    s.inst.value = delta;
    return s;
}

ScriptOp
opFence()
{
    ScriptOp s;
    s.inst.type = OpType::Fence;
    s.inst.fullFence = true;
    return s;
}

ScriptOp
opSpinUntilEq(Addr a, std::uint64_t until)
{
    ScriptOp s;
    s.kind = ScriptOp::Kind::SpinUntilEq;
    s.inst.type = OpType::Load;
    s.inst.addr = wordAlign(a);
    s.until = until;
    return s;
}

ScriptedProgram::ScriptedProgram(std::vector<ScriptOp> script)
    : script_(std::move(script))
{
}

void
ScriptedProgram::snapshotTo(ProgSnapshot& out) const
{
    podSnapshot(state_, out);
}

void
ScriptedProgram::restoreFrom(const ProgSnapshot& in)
{
    podRestore(state_, in);
}

void
ScriptedProgram::setLastResult(std::uint64_t value)
{
    state_.lastResult = value;
}

Instruction
ScriptedProgram::fetchNext()
{
    if (state_.checkingSpin) {
        state_.checkingSpin = 0;
        IF_DBG_ASSERT(state_.pc < script_.size());
        if (state_.lastResult == script_[state_.pc].until)
            ++state_.pc;    // spin satisfied; fall through to next op
    }
    if (state_.pc >= script_.size()) {
        Instruction halt;
        halt.type = OpType::Halt;
        return halt;
    }
    const ScriptOp& op = script_[state_.pc];
    if (op.kind == ScriptOp::Kind::SpinUntilEq ||
        op.kind == ScriptOp::Kind::CasUntilSuccess) {
        state_.checkingSpin = 1;
        state_.lastResult = op.until;   // predict: loop exits
        Instruction i = op.inst;
        i.feedsBack = true;
        i.predictedResult = op.until;
        return i;
    }
    ++state_.pc;
    return op.inst;
}

// ---------------------------------------------------------------------
// Litmus test definitions. Addresses sit in distinct blocks of a
// dedicated region to avoid false sharing.
// ---------------------------------------------------------------------

namespace {

constexpr Addr kLitmusBase = 0x0800'0000;

constexpr Addr
litAddr(std::uint32_t i)
{
    return kLitmusBase + static_cast<Addr>(i) * kBlockBytes;
}

} // namespace

LitmusTest
litmusSb()
{
    const Addr x = litAddr(0), y = litAddr(1);
    LitmusTest t;
    t.name = "SB";
    t.threads = {
        {opStore(x, 1), opLoad(y)},
        {opStore(y, 1), opLoad(x)},
    };
    t.probes = {{0, y}, {1, x}};
    return t;
}

LitmusTest
litmusSbFenced()
{
    const Addr x = litAddr(0), y = litAddr(1);
    LitmusTest t;
    t.name = "SB+fences";
    t.threads = {
        {opStore(x, 1), opFence(), opLoad(y)},
        {opStore(y, 1), opFence(), opLoad(x)},
    };
    t.probes = {{0, y}, {1, x}};
    return t;
}

LitmusTest
litmusMp()
{
    const Addr d = litAddr(2), f = litAddr(3);
    LitmusTest t;
    t.name = "MP";
    t.threads = {
        {opStore(d, 1), opStore(f, 1)},
        {opLoad(f), opLoad(d)},
    };
    t.probes = {{1, f}, {1, d}};
    return t;
}

LitmusTest
litmusMpFenced()
{
    const Addr d = litAddr(2), f = litAddr(3);
    LitmusTest t;
    t.name = "MP+fences";
    t.threads = {
        {opStore(d, 1), opFence(), opStore(f, 1)},
        {opSpinUntilEq(f, 1), opFence(), opLoad(d)},
    };
    t.probes = {{1, d}};
    return t;
}

LitmusTest
litmusLb()
{
    const Addr x = litAddr(4), y = litAddr(5);
    LitmusTest t;
    t.name = "LB";
    t.threads = {
        {opLoad(x), opStore(y, 1)},
        {opLoad(y), opStore(x, 1)},
    };
    t.probes = {{0, x}, {1, y}};
    return t;
}

LitmusTest
litmusIriw()
{
    const Addr x = litAddr(6), y = litAddr(7);
    LitmusTest t;
    t.name = "IRIW";
    t.threads = {
        {opStore(x, 1)},
        {opStore(y, 1)},
        {opLoad(x), opFence(), opLoad(y)},
        {opLoad(y), opFence(), opLoad(x)},
    };
    t.probes = {{2, x}, {2, y}, {3, y}, {3, x}};
    return t;
}

LitmusTest
litmusCoRR()
{
    const Addr x = litAddr(8);
    LitmusTest t;
    t.name = "CoRR";
    t.threads = {
        {opStore(x, 1)},
        {opLoad(x), opLoad(x)},
    };
    // Both probes read x; the runner distinguishes them by order, so we
    // expose the journal directly for this test (see tests).
    t.probes = {{1, x}};
    return t;
}

} // namespace invisifence
