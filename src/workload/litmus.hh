/**
 * @file
 * Scripted programs and classic litmus tests.
 *
 * ScriptedProgram replays a fixed list of operations (with optional
 * spin-until-equal loops) and then halts; the harness inspects each
 * core's committed-retirement journal for the observed values. The tests
 * verify that every implementation enforces exactly its memory model:
 * forbidden outcomes must never appear under any interleaving the
 * simulator produces.
 */

#ifndef INVISIFENCE_WORKLOAD_LITMUS_HH
#define INVISIFENCE_WORKLOAD_LITMUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/program.hh"
#include "sim/types.hh"

namespace invisifence {

/** One step of a scripted thread. */
struct ScriptOp
{
    enum class Kind : std::uint8_t
    {
        Plain,          //!< execute inst once
        SpinUntilEq,    //!< repeat load of inst.addr until result == until
        CasUntilSuccess,//!< repeat the CAS until it succeeds
    };
    Kind kind = Kind::Plain;
    Instruction inst{};
    std::uint64_t until = 0;
};

/** Builders for script steps. */
ScriptOp opAlu(std::uint8_t latency);
ScriptOp opLoad(Addr a);
ScriptOp opStore(Addr a, std::uint64_t v);
ScriptOp opCas(Addr a, std::uint64_t expect, std::uint64_t value);
/** Spin-CAS: retries until mem == expect was observed and swapped. */
ScriptOp opCasLoop(Addr a, std::uint64_t expect, std::uint64_t value);
ScriptOp opFetchAdd(Addr a, std::uint64_t delta);
ScriptOp opFence();
ScriptOp opSpinUntilEq(Addr a, std::uint64_t until);

/** Finite scripted thread with POD control state. */
class ScriptedProgram : public ThreadProgram
{
  public:
    explicit ScriptedProgram(std::vector<ScriptOp> script);

    Instruction fetchNext() override;
    void snapshotTo(ProgSnapshot& out) const override;
    void restoreFrom(const ProgSnapshot& in) override;
    void setLastResult(std::uint64_t value) override;

  private:
    struct State
    {
        std::uint32_t pc = 0;
        std::uint8_t checkingSpin = 0;
        std::uint64_t lastResult = 0;
    };

    std::vector<ScriptOp> script_;
    State state_;
};

/** A multi-threaded litmus test definition. */
struct LitmusTest
{
    std::string name;
    std::vector<std::vector<ScriptOp>> threads;

    /**
     * Outcome extraction: for each (thread, addr) probe, the result of
     * the last committed load of that address in that thread's journal.
     */
    struct Probe
    {
        std::uint32_t thread;
        Addr addr;
    };
    std::vector<Probe> probes;
};

/** @{ Classic litmus tests (addresses in the shared region). */
LitmusTest litmusSb();            //!< store buffering / Dekker
LitmusTest litmusSbFenced();      //!< SB with full fences
LitmusTest litmusMp();            //!< message passing, no fences
LitmusTest litmusMpFenced();      //!< MP with fences and a spin
LitmusTest litmusLb();            //!< load buffering
LitmusTest litmusIriw();          //!< independent reads, independent writes
LitmusTest litmusCoRR();          //!< coherence: read-read same location
/** @} */

} // namespace invisifence

#endif // INVISIFENCE_WORKLOAD_LITMUS_HH
