/**
 * @file
 * The seven named workloads of Figure 7, as synthetic-parameter presets.
 *
 * The presets are tuned so the conventional-implementation stall
 * taxonomy matches Figure 1's shape: web servers (Apache, Zeus) are
 * synchronization-heavy (fences dominate under RMO); OLTP workloads have
 * large footprints, heavy locking, and store bursts (TSO SB-full, SC
 * SB-drain); DSS is scan-dominated with little synchronization; the
 * scientific codes (Barnes, Ocean) synchronize rarely, so conventional
 * RMO shows essentially no ordering stalls.
 */

#ifndef INVISIFENCE_WORKLOAD_WORKLOADS_HH
#define INVISIFENCE_WORKLOAD_WORKLOADS_HH

#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace invisifence {

/** A named workload preset. */
struct Workload
{
    std::string name;
    SyntheticParams params;
};

/** The paper's workload suite, in Figure 7 order. */
const std::vector<Workload>& workloadSuite();

/** Look up one workload by name (fatal if unknown). */
const Workload& workloadByName(const std::string& name);

} // namespace invisifence

#endif // INVISIFENCE_WORKLOAD_WORKLOADS_HH
