/**
 * @file
 * The seven named workloads of Figure 7, as synthetic-parameter presets.
 *
 * The presets are tuned so the conventional-implementation stall
 * taxonomy matches Figure 1's shape: web servers (Apache, Zeus) are
 * synchronization-heavy (fences dominate under RMO); OLTP workloads have
 * large footprints, heavy locking, and store bursts (TSO SB-full, SC
 * SB-drain); DSS is scan-dominated with little synchronization; the
 * scientific codes (Barnes, Ocean) synchronize rarely, so conventional
 * RMO shows essentially no ordering stalls.
 */

#ifndef INVISIFENCE_WORKLOAD_WORKLOADS_HH
#define INVISIFENCE_WORKLOAD_WORKLOADS_HH

#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace invisifence {

/** A named workload preset. */
struct Workload
{
    std::string name;
    SyntheticParams params;
};

/** The paper's workload suite, in Figure 7 order. */
const std::vector<Workload>& workloadSuite();

/**
 * Server-shaped additions for the 64-256-core scale study (not part of
 * Figure 7, so not in workloadSuite — the committed 16-core goldens
 * iterate that suite and must not change): a zipfian shared-key
 * get/put mix (hot keys contended by every sharer) and a reader-mostly
 * mix serialized by a handful of hot locks.
 */
const std::vector<Workload>& serverSuite();

/** Look up one workload by name, in either suite (fatal if unknown). */
const Workload& workloadByName(const std::string& name);

} // namespace invisifence

#endif // INVISIFENCE_WORKLOAD_WORKLOADS_HH
