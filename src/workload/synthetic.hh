/**
 * @file
 * Statistical workload generator standing in for the paper's commercial
 * and scientific applications (Figure 7; see DESIGN.md "Substitutions").
 *
 * Each thread is a deterministic automaton mixing private computation,
 * shared-data accesses, lock-protected critical sections (CAS acquire,
 * fenced, spin-on-contention), lock-free atomics, and standalone fences.
 * All state is POD, so the core's snapshot/restore rewinds the generator
 * exactly on squash and abort; contended CAS acquires really do spin via
 * the result-misprediction replay mechanism.
 */

#ifndef INVISIFENCE_WORKLOAD_SYNTHETIC_HH
#define INVISIFENCE_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "cpu/program.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace invisifence {

/** Tuning knobs of one synthetic workload class. */
struct SyntheticParams
{
    // Instruction mix (per-mille of non-special instructions).
    std::uint32_t aluPermille = 550;
    std::uint32_t loadPermille = 300;   //!< rest are stores

    // Rates of special events (per 64k instructions).
    std::uint32_t lockPer64k = 300;     //!< critical-section entries
    std::uint32_t fencePer64k = 100;    //!< standalone fences
    std::uint32_t atomicPer64k = 60;    //!< lock-free fetch-and-add

    // Footprints, in 64-byte blocks.
    std::uint32_t privateBlocks = 4096;   //!< 256 KB / thread
    std::uint32_t sharedBlocks = 512;     //!< read-mostly shared region
    std::uint32_t numLocks = 64;
    std::uint32_t lockDataBlocks = 8;     //!< protected blocks per lock

    // Behavior.
    std::uint32_t sharedPermille = 100;   //!< stores hitting shared data
                                          //!< (loads: a quarter of this)
    std::uint32_t sharedWritePermille = 550;  //!< store share of CS bodies
    std::uint32_t csLength = 12;          //!< ops per critical section
    std::uint32_t storeBurst = 1;         //!< consecutive stores per store
    std::uint8_t aluLatency = 1;
    std::uint8_t backoffLatency = 12;     //!< spin backoff ALU latency
    /** Shared-region addressing: 0 = uniform (the legacy behavior every
     *  committed golden depends on), 1 = Zipf(s=1) over the shared
     *  blocks — the hot-key skew of server workloads. Sampling is
     *  integer-only (a precomputed cumulative-weight table), so results
     *  are bit-identical across hosts. */
    std::uint32_t zipfShared = 0;
};

/** Base of the shared address map (locks, lock data, shared region). */
constexpr Addr kLockRegion = 0x0100'0000;
constexpr Addr kLockDataRegion = 0x0200'0000;
constexpr Addr kSharedRegion = 0x0400'0000;
constexpr Addr kPrivateRegion = 0x1000'0000;
constexpr Addr kPrivateStride = 0x0100'0000;   //!< per-thread carve-out

/** Address of lock @p i (one word per block, avoids false sharing). */
constexpr Addr
lockAddr(std::uint32_t i)
{
    return kLockRegion + static_cast<Addr>(i) * kBlockBytes;
}

/** Deterministic, rewindable synthetic thread. */
class SyntheticProgram : public ThreadProgram
{
  public:
    SyntheticProgram(const SyntheticParams& params, std::uint32_t tid,
                     std::uint64_t seed);

    Instruction fetchNext() override;
    void snapshotTo(ProgSnapshot& out) const override;
    void restoreFrom(const ProgSnapshot& in) override;
    void setLastResult(std::uint64_t value) override;

    /** Current phase, for tests. */
    enum class Phase : std::uint8_t
    {
        Normal,
        AfterAcquireCas,   //!< CAS emitted; outcome pending
        SpinLoad,          //!< backoff; spin-load the lock word
        AfterSpinLoad,
        AcquiredFence,     //!< acquire barrier before the body
        CritBody,
        ReleaseFence,
        ReleaseStore,
    };
    Phase phase() const { return static_cast<Phase>(state_.phase); }

  private:
    /** POD automaton state: everything the checkpoint must capture. */
    struct State
    {
        Rng rng{1};
        std::uint64_t lastResult = 0;
        std::uint8_t phase = 0;
        std::uint8_t csRemaining = 0;
        std::uint16_t lockIdx = 0;
        std::uint8_t burstRemaining = 0;
        std::uint64_t privCursor = 0;    //!< walks the private footprint
    };

    Instruction normalInstruction();
    Instruction makeLoad(Addr a) const;
    Instruction makeStore(Addr a, std::uint64_t v) const;
    Addr randomPrivateAddr();
    Addr randomSharedAddr();
    Addr randomLockDataAddr() const;

    SyntheticParams params_;
    std::uint32_t tid_;
    State state_;
    /** Cumulative Zipf block weights (immutable after construction, so
     *  snapshot/restore need not capture it); empty = uniform. */
    std::vector<std::uint64_t> zipfCdf_;
};

} // namespace invisifence

#endif // INVISIFENCE_WORKLOAD_SYNTHETIC_HH
