#include "workload/workloads.hh"

#include "sim/log.hh"

namespace invisifence {

namespace {

Workload
apache()
{
    Workload w;
    w.name = "Apache";
    SyntheticParams& p = w.params;
    p.aluPermille = 520;
    p.loadPermille = 300;
    p.lockPer64k = 250;       // fine-grained locking everywhere
    p.fencePer64k = 300;      // lock-free queues, many fences
    p.atomicPer64k = 90;
    p.privateBlocks = 1536;
    p.sharedBlocks = 4096;
    p.numLocks = 384;
    p.lockDataBlocks = 4;
    p.sharedPermille = 60;
    p.sharedWritePermille = 550;
    p.csLength = 4;
    return w;
}

Workload
zeus()
{
    Workload w;
    w.name = "Zeus";
    SyntheticParams& p = w.params;
    p.aluPermille = 540;
    p.loadPermille = 290;
    p.lockPer64k = 220;
    p.fencePer64k = 380;      // even more fence-heavy than Apache
    p.atomicPer64k = 70;
    p.privateBlocks = 1280;
    p.sharedBlocks = 3584;
    p.numLocks = 320;
    p.lockDataBlocks = 4;
    p.sharedPermille = 55;
    p.sharedWritePermille = 500;
    p.csLength = 4;
    return w;
}

Workload
oltpOracle()
{
    Workload w;
    w.name = "OLTP-Oracle";
    SyntheticParams& p = w.params;
    p.aluPermille = 500;
    p.loadPermille = 320;
    p.lockPer64k = 240;
    p.fencePer64k = 130;
    p.atomicPer64k = 60;
    p.privateBlocks = 4096;    // 512 KB: misses the L1 often
    p.sharedBlocks = 5120;
    p.numLocks = 768;
    p.lockDataBlocks = 4;
    p.sharedPermille = 80;
    p.sharedWritePermille = 600;
    p.csLength = 5;
    p.storeBurst = 3;          // log-record style write streaks
    return w;
}

Workload
oltpDb2()
{
    Workload w;
    w.name = "OLTP-DB2";
    SyntheticParams& p = w.params;
    p.aluPermille = 490;
    p.loadPermille = 320;
    p.lockPer64k = 260;
    p.fencePer64k = 110;
    p.atomicPer64k = 70;
    p.privateBlocks = 4096;
    p.sharedBlocks = 6144;
    p.numLocks = 896;
    p.lockDataBlocks = 4;
    p.sharedPermille = 90;
    p.sharedWritePermille = 620;
    p.csLength = 5;
    p.storeBurst = 3;
    return w;
}

Workload
dssDb2()
{
    Workload w;
    w.name = "DSS-DB2";
    SyntheticParams& p = w.params;
    p.aluPermille = 450;
    p.loadPermille = 430;      // scan-dominated
    p.lockPer64k = 30;
    p.fencePer64k = 25;
    p.atomicPer64k = 15;
    p.privateBlocks = 8192;   // 1 MB scans
    p.sharedBlocks = 2048;
    p.numLocks = 128;
    p.lockDataBlocks = 4;
    p.sharedPermille = 20;
    p.sharedWritePermille = 300;
    p.csLength = 4;
    p.storeBurst = 2;
    return w;
}

Workload
barnes()
{
    Workload w;
    w.name = "Barnes";
    SyntheticParams& p = w.params;
    p.aluPermille = 620;       // compute-bound tree walks
    p.loadPermille = 280;
    p.lockPer64k = 60;         // per-body locks, rarely contended
    p.fencePer64k = 5;
    p.atomicPer64k = 12;
    p.privateBlocks = 768;
    p.sharedBlocks = 3072;
    p.numLocks = 768;          // many locks: little contention
    p.lockDataBlocks = 2;
    p.sharedPermille = 30;
    p.sharedWritePermille = 400;
    p.csLength = 3;
    p.aluLatency = 2;
    return w;
}

Workload
ocean()
{
    Workload w;
    w.name = "Ocean";
    SyntheticParams& p = w.params;
    p.aluPermille = 540;
    p.loadPermille = 320;      // stencil loads + store sweeps
    p.lockPer64k = 6;         // barrier-style sync only
    p.fencePer64k = 8;
    p.atomicPer64k = 5;
    p.privateBlocks = 4096;   // 768 KB grid partition
    p.sharedBlocks = 3072;      // boundary rows
    p.numLocks = 64;
    p.lockDataBlocks = 2;
    p.csLength = 3;
    p.sharedPermille = 8;
    p.sharedWritePermille = 700;
    p.csLength = 3;
    p.storeBurst = 3;          // row-sweep store streaks
    return w;
}

Workload
zipfKv()
{
    Workload w;
    w.name = "ZipfKV";
    SyntheticParams& p = w.params;
    p.aluPermille = 480;
    p.loadPermille = 360;      // get-heavy key-value mix
    p.lockPer64k = 120;
    p.fencePer64k = 180;       // lock-free index updates
    p.atomicPer64k = 80;
    p.privateBlocks = 1024;
    p.sharedBlocks = 4096;     // the key space
    p.numLocks = 256;
    p.lockDataBlocks = 4;
    p.sharedPermille = 220;    // most traffic hits the shared keys
    p.sharedWritePermille = 450;
    p.csLength = 4;
    p.zipfShared = 1;          // hot keys contended by every sharer
    return w;
}

Workload
readerHotLock()
{
    Workload w;
    w.name = "ReaderHotLock";
    SyntheticParams& p = w.params;
    p.aluPermille = 420;
    p.loadPermille = 480;      // reader-mostly
    p.lockPer64k = 400;        // frequent acquires...
    p.fencePer64k = 60;
    p.atomicPer64k = 30;
    p.privateBlocks = 1024;
    p.sharedBlocks = 2048;
    p.numLocks = 4;            // ...of a handful of hot locks
    p.lockDataBlocks = 8;
    p.sharedPermille = 120;
    p.sharedWritePermille = 250;  // read-heavy critical sections
    p.csLength = 6;
    p.zipfShared = 1;
    return w;
}

} // namespace

const std::vector<Workload>&
workloadSuite()
{
    static const std::vector<Workload> suite = {
        apache(), zeus(), oltpOracle(), oltpDb2(), dssDb2(), barnes(),
        ocean(),
    };
    return suite;
}

const std::vector<Workload>&
serverSuite()
{
    static const std::vector<Workload> suite = {
        zipfKv(), readerHotLock(),
    };
    return suite;
}

const Workload&
workloadByName(const std::string& name)
{
    for (const auto& w : workloadSuite()) {
        if (w.name == name)
            return w;
    }
    for (const auto& w : serverSuite()) {
        if (w.name == name)
            return w;
    }
    IF_FATAL("unknown workload '%s'", name.c_str());
}

} // namespace invisifence
