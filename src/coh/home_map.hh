/**
 * @file
 * Placement of block homes across directory slices.
 *
 * The legacy layout interleaves homes by the low block-address bits
 * (block % nodes). That is exact for the paper's 16-node machine, but
 * at 64-256 nodes the strided region bases of the synthetic workloads
 * alias onto a handful of slices. The hashed mode mixes the block
 * address first (Fibonacci multiply), sharding homes uniformly. The
 * mode changes traffic patterns, so it is strictly opt-in: the default
 * keeps every committed golden byte-identical.
 */

#ifndef INVISIFENCE_COH_HOME_MAP_HH
#define INVISIFENCE_COH_HOME_MAP_HH

#include <cstdint>

#include "sim/types.hh"

namespace invisifence {

/** Maps a block address to its home directory slice. */
struct HomeMap
{
    std::uint32_t numNodes = 1;
    bool hashed = false;   //!< block-hash sharding vs low-bits interleave

    /** Implicit from a node count: the legacy modulo interleave. */
    constexpr HomeMap(std::uint32_t num_nodes, bool hash = false)
        : numNodes(num_nodes), hashed(hash)
    {
    }

    constexpr NodeId
    homeOf(Addr addr) const
    {
        const Addr blk = addr >> kBlockShift;
        if (!hashed)
            return static_cast<NodeId>(blk % numNodes);
        const Addr mixed = (blk * 0x9e3779b97f4a7c15ull) >> 24;
        return static_cast<NodeId>(mixed % numNodes);
    }

    constexpr bool operator==(const HomeMap&) const = default;
};

} // namespace invisifence

#endif // INVISIFENCE_COH_HOME_MAP_HH
