/**
 * @file
 * Coherence protocol message vocabulary.
 *
 * The protocol is a blocking directory MESI: every transaction for a block
 * serializes at the block's home directory slice. Data responses flow
 * through the home (hub-and-spoke), which keeps the transient-state space
 * small while preserving the properties the paper relies on: writes to a
 * block are serialized, and the processor is informed when each store miss
 * completes (Section 2.1).
 */

#ifndef INVISIFENCE_COH_MESSAGE_HH
#define INVISIFENCE_COH_MESSAGE_HH

#include <cstdint>
#include <string_view>

#include "mem/block.hh"
#include "sim/types.hh"

namespace invisifence {

/** Kinds of coherence messages. */
enum class MsgType : std::uint8_t
{
    // Agent -> home requests (queued FIFO per block at the home).
    GetS,        //!< fetch a readable copy
    GetM,        //!< fetch/upgrade to a writable copy
    PutM,        //!< eviction of a dirty owned block (carries data)
    PutE,        //!< eviction of a clean owned block
    PutS,        //!< eviction of a shared copy (sharer-list prune)

    // Home -> agent forwards (sub-operations of the active transaction).
    FwdGetS,     //!< owner: send data to home, downgrade to Shared
    FwdGetM,     //!< owner: send data to home, invalidate
    Inv,         //!< sharer: invalidate and ack

    // Agent -> home responses.
    InvAck,
    DataToHome,  //!< owner's data in response to a forward

    // Home -> agent responses.
    DataS,       //!< readable data
    DataE,       //!< readable+writable data, clean (block was idle)
    DataM,       //!< writable data (all invalidations complete)
    WbAck,       //!< eviction accepted, agent may drop its copy
    AckStale,    //!< eviction arrived after ownership moved on; drop
};

/** True for the agent->home message kinds that open a transaction. */
constexpr bool
isRequest(MsgType t)
{
    switch (t) {
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM:
      case MsgType::PutE:
      case MsgType::PutS:
        return true;
      default:
        return false;
    }
}

/** Human-readable name for traces and test failures. */
constexpr std::string_view
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetM: return "GetM";
      case MsgType::PutM: return "PutM";
      case MsgType::PutE: return "PutE";
      case MsgType::PutS: return "PutS";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetM: return "FwdGetM";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::DataToHome: return "DataToHome";
      case MsgType::DataS: return "DataS";
      case MsgType::DataE: return "DataE";
      case MsgType::DataM: return "DataM";
      case MsgType::WbAck: return "WbAck";
      case MsgType::AckStale: return "AckStale";
    }
    return "?";
}

/** Destination unit within a node. */
enum class Unit : std::uint8_t { Agent, Directory };

/** A coherence message in flight. */
struct Msg
{
    MsgType type = MsgType::GetS;
    Addr blockAddr = 0;
    NodeId src = 0;          //!< sending node
    NodeId dst = 0;          //!< receiving node
    Unit dstUnit = Unit::Directory;
    NodeId requester = 0;    //!< original requester (carried by forwards)
    /**
     * Transaction id of a request, unique per (src, txnId) while the
     * id space has not wrapped (per-agent monotonic counter). 0 means
     * "untagged": fault-tolerant mode off, or a non-request message.
     * The home uses the tag to squash duplicated/retried requests
     * whose original already completed (see DirectorySlice).
     */
    std::uint32_t txnId = 0;
    BlockData data{};
    bool hasData = false;
    bool dirty = false;      //!< data differs from memory image
};

} // namespace invisifence

#endif // INVISIFENCE_COH_MESSAGE_HH
