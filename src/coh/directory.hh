/**
 * @file
 * Home directory slice of the blocking MESI directory protocol.
 *
 * Each node owns the directory slice (and memory bank) for the blocks whose
 * home it is (block-address interleaving). The slice serializes all
 * transactions for a block: one active transaction at a time, all other
 * requests queue FIFO. Data responses flow through the home. This provides
 * exactly the two properties the paper's consistency implementations need
 * from the memory system (Section 2.1): serialization of writes to each
 * address, and an acknowledgment when each store miss completes.
 *
 * Transient per-block state (busy flag, active transaction, waiting FIFO)
 * lives in one recycled map entry per block — a single hash lookup per
 * protocol step, and the entry's node plus its queue storage are pooled
 * and reused across transactions, so the steady state allocates nothing.
 */

#ifndef INVISIFENCE_COH_DIRECTORY_HH
#define INVISIFENCE_COH_DIRECTORY_HH

#include <cstdint>
#include <cstdio>
#include <unordered_map>

#include <string>
#include <vector>

#include "sim/annotations.hh"
#include "coh/home_map.hh"
#include "coh/message.hh"
#include "coh/network.hh"
#include "coh/sharer_set.hh"
#include "mem/functional_mem.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/recycling_map.hh"
#include "sim/ring_deque.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace invisifence {

/** Directory and memory timing parameters (Figure 6). */
struct DirectoryParams
{
    Cycle memLatency = 160;   //!< 40 ns at 4 GHz
    Cycle procLatency = 10;   //!< microcoded protocol controller occupancy
    /** Initial capacity (rounded up to a power of two) of the flat
     *  per-block state table; sized so warm-started runs never grow it
     *  after warmup. Growth doubles and rehashes (warmup only). */
    std::uint32_t flatCapacity = 1u << 13;
    /** Flat-table selector: -1 follows INVISIFENCE_DIR_FLAT (default
     *  on), 0/1 force the legacy unordered_map / the flat table — the
     *  per-instance override the A/B equivalence tests use. */
    int flatTable = -1;

    /** @{ Fault tolerance (derived by the System; see AgentParams).
     *  When on, the slice deduplicates retried/duplicated requests by
     *  their (src, txnId) tag and recovers from owner-self requests
     *  (a dropped Put leaves the directory believing the requester
     *  still owns the block) instead of panicking. */
    bool faultTolerant = false;
    std::uint32_t dedupCapacity = 4096;  //!< completed-txn records kept
    /** @} */
};

/** Home node of a block under the legacy modulo interleave (tests). */
constexpr NodeId
homeOf(Addr addr, std::uint32_t num_nodes)
{
    return HomeMap(num_nodes).homeOf(addr);
}

/** One node's slice of the directory plus its local memory bank. */
class DirectorySlice
{
  public:
    DirectorySlice(NodeId node, const HomeMap& home_map, Network& net,
                   EventQueue& eq, FunctionalMemory& mem,
                   const DirectoryParams& params);

    /** Network sink: called for every message addressed to this slice. */
    void deliver(const Msg& msg);

    /**
     * True when no transaction is active and no requests queue (tests).
     * The counters consulted here are maintained incrementally across
     * every protocol step; debug builds recount them from scratch over
     * the transient-state map (and diff the flat table against its map
     * oracle) before trusting them.
     */
    bool
    quiescent() const
    {
#ifndef NDEBUG
        verifyQuiescence();
#endif
        return activeTxns_ == 0 && waitingTotal_ == 0 && busyBlocks_ == 0;
    }

    // Directory-visible state of a block, for tests and the checker.
    enum class DirState : std::uint8_t { Idle, Shared, Owned };
    struct EntryView
    {
        DirState state = DirState::Idle;
        SharerSet sharers{};
        NodeId owner = 0;
    };
    EntryView inspect(Addr block) const;

    /** @{ Warm-start utilities: set directory state directly. */
    void primeOwned(Addr block, NodeId owner);
    void primeShared(Addr block, const SharerSet& sharers);
    /** @} */

    /** Register this slice's statistics under @p prefix. */
    void registerStats(StatRegistry& reg, const std::string& prefix) const;

    std::uint64_t statGetS = 0;
    std::uint64_t statGetM = 0;
    std::uint64_t statWritebacks = 0;
    std::uint64_t statInvalidationsSent = 0;
    std::uint64_t statMemReads = 0;
    std::uint64_t statStaleWritebacks = 0;
    std::uint64_t statQueuedRequests = 0;
    /** Duplicated/retried requests squashed by the dedup record. */
    std::uint64_t statDupsSquashed = 0;

    /** Dump every in-flight transient (active transaction, queued
     *  requests) to @p out: the liveness watchdog's diagnostic. */
    void dumpTransients(std::FILE* out) const;

  private:
    struct DirEntry
    {
        DirState state = DirState::Idle;
        SharerSet sharers{};
        NodeId owner = 0;
        /**
         * txnId of the request that granted the current ownership
         * (fault-tolerant runs only; 0 = untagged/primed, check off).
         * A retried PutM/PutE from the owner whose tag predates this
         * grant is stale — the owner re-acquired the block after the
         * eviction being retried — and must NOT write memory or clear
         * ownership, even though owner == src looks valid.
         */
        std::uint32_t grantTxn = 0;

        bool operator==(const DirEntry&) const = default;
    };

    /** Active transaction on a block. */
    struct Txn
    {
        Msg req;
        bool needMem = false;
        bool memDone = false;
        std::uint32_t pendingAcks = 0;
        bool needOwnerData = false;
        bool ownerDataDone = false;
        BlockData data{};
        bool dataFromOwner = false;
        bool dataDirty = false;
    };

    /**
     * Transient home-side state of one block. Recycled wholesale
     * (including the waiting queue's storage); every field is reset on
     * reuse by resetHome().
     */
    struct BlockHome
    {
        bool busy = false;       //!< txn in flight or scheduled to start
        bool txnActive = false;  //!< txn holds a live transaction
        Txn txn{};
        RingDeque<Msg> waiting;  //!< FIFO of queued requests
    };

    DirEntry& entry(Addr block);
    /** Legacy-map path of entry() (escape-hatch allocation frontier). */
    IF_COLD_FN DirEntry& legacyEntry(Addr blk);

#ifndef NDEBUG
    /**
     * Flush the mutations made through the last entry() reference into
     * the map oracle (callers mutate the returned ref after entry()
     * returns, so the oracle can only catch up at the next sync point).
     * No-op when the flat table is off (dir_ is then the real store).
     */
    void syncOracleFlush() const;
    /** Full-table flat-vs-oracle comparison plus a from-scratch recount
     *  of the quiescence counters over home_ (S3). */
    void verifyQuiescence() const;
#endif

    /** Transient state for @p block, created (reset) on demand. */
    BlockHome& home(Addr block);
    /** Drop @p block's transient entry if it went fully idle. */
    void maybeRecycleHome(Addr block);

    void startNextIfQueued(Addr block);
    void startTxn(const Msg& req);
    void handleGetS(Txn& txn, DirEntry& e);
    void handleGetM(Txn& txn, DirEntry& e);
    void handlePut(const Msg& req, DirEntry& e);
    void handleResponse(const Msg& msg);
    void maybeFinish(Addr block);
    void finishGetS(Txn& txn, DirEntry& e);
    void finishGetM(Txn& txn, DirEntry& e);
    void beginMemRead(Addr block);

    void sendToAgent(NodeId dst, MsgType type, Addr block,
                     const BlockData* data, bool dirty, NodeId requester);

    /** @{ Completed-transaction dedup record (fault-tolerant mode).
     *  Key = (src << 32) | txnId; a bounded FIFO ring evicts the
     *  oldest record once dedupCapacity is reached. Map nodes recycle,
     *  so steady-state churn is allocation-free after the ring wraps. */
    static Addr
    dedupKey(NodeId src, std::uint32_t txn_id)
    {
        return (static_cast<Addr>(src) << 32) | txn_id;
    }
    bool wasCompleted(NodeId src, std::uint32_t txn_id) const;
    void recordCompleted(NodeId src, std::uint32_t txn_id);
    /** @} */

    NodeId node_;
    HomeMap homeMap_;
    Network& net_;
    EventQueue& eq_;
    FunctionalMemory& mem_;
    DirectoryParams params_;

    bool useFlat_;
    /**
     * Per-block directory state. With the flat table on, dirFlat_ is
     * the store and dir_ (the legacy unordered_map) survives in debug
     * builds only, as a shadow oracle cross-checked on every entry()
     * and in verifyQuiescence(); with the flat table off, dir_ is the
     * store and dirFlat_ stays empty. Directory state is never erased,
     * so the flat table only inserts (growth doubles + rehashes, which
     * warm-started runs absorb during warmup).
     */
    FlatAddrMap<DirEntry> dirFlat_;
#ifndef NDEBUG
    mutable std::unordered_map<Addr, DirEntry> dir_;
    /** Key of the last entry() reference not yet folded into dir_. */
    mutable Addr lastEntryKey_ = ~Addr{0};
#else
    std::unordered_map<Addr, DirEntry> dir_;
#endif
    RecyclingMap<Addr, BlockHome> home_;
    /** @{ Dedup record storage; empty unless faultTolerant. */
    RecyclingMap<Addr, std::uint8_t> dedup_;
    std::vector<Addr> dedupRing_;
    std::size_t dedupHead_ = 0;
    /** @} */
    std::uint64_t waitingTotal_ = 0;
    std::uint64_t activeTxns_ = 0;
    std::uint64_t busyBlocks_ = 0;
};

} // namespace invisifence

#endif // INVISIFENCE_COH_DIRECTORY_HH
