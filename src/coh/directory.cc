#include "coh/directory.hh"

#include "sim/annotations.hh"
#include <cstdlib>

#include "sim/log.hh"

namespace invisifence {

namespace {

/** INVISIFENCE_DIR_FLAT=0 falls back to the legacy unordered_map
 *  directory store (escape hatch; behavior-identical). Parsed once per
 *  process; per-instance A/B runs use DirectoryParams::flatTable. */
bool
dirFlatEnabled()
{
    static const bool enabled = []() {
        const char* text = std::getenv("INVISIFENCE_DIR_FLAT");
        if (!text || text[0] == '\0')
            return true;
        if (text[0] == '0' && text[1] == '\0')
            return false;
        if (text[0] == '1' && text[1] == '\0')
            return true;
        IF_FATAL("INVISIFENCE_DIR_FLAT='%s' is not 0 or 1", text);
    }();
    return enabled;
}

} // namespace

DirectorySlice::DirectorySlice(NodeId node, const HomeMap& home_map,
                               Network& net, EventQueue& eq,
                               FunctionalMemory& mem,
                               const DirectoryParams& params)
    : node_(node), homeMap_(home_map), net_(net), eq_(eq), mem_(mem),
      params_(params),
      useFlat_(params.flatTable < 0 ? dirFlatEnabled()
                                    : params.flatTable != 0),
      dirFlat_(params.flatCapacity)
{
    net_.attachDirectory(node_, this);
    if (params_.faultTolerant) {
        if (params_.dedupCapacity == 0)
            IF_FATAL("fault-tolerant directory needs dedupCapacity > 0");
        // Ring of completed-transaction keys; 0 marks an empty slot
        // (txnId 0 is the untagged sentinel, so no real key is 0).
        dedupRing_.assign(params_.dedupCapacity, 0);
    }
}

bool
DirectorySlice::wasCompleted(NodeId src, std::uint32_t txn_id) const
{
    return dedup_.find(dedupKey(src, txn_id)) != nullptr;
}

void
DirectorySlice::recordCompleted(NodeId src, std::uint32_t txn_id)
{
    if (!params_.faultTolerant || txn_id == 0)
        return;
    const Addr key = dedupKey(src, txn_id);
    bool created = false;
    dedup_.getOrCreate(key, &created) = 1;
    if (!created)
        return;
    Addr& slot = dedupRing_[dedupHead_];
    if (slot != 0)
        dedup_.recycle(slot);   // FIFO eviction of the oldest record
    slot = key;
    dedupHead_ = (dedupHead_ + 1) % dedupRing_.size();
}

DirectorySlice::DirEntry&
DirectorySlice::entry(Addr block)
{
    const Addr blk = blockAlign(block);
    if (!useFlat_)
        return legacyEntry(blk);
#ifndef NDEBUG
    // Fold the mutations made through the previous entry() reference
    // into the oracle before taking a new one.
    syncOracleFlush();
#endif
    bool created = false;
    // Directory state is only inserted, never erased, and callers hold
    // the returned reference only within one protocol step without
    // interleaving entry() inserts — so a grow here cannot invalidate a
    // reference anyone still uses.
    DirEntry& e = dirFlat_.getOrCreate(blk, &created);
#ifndef NDEBUG
    if (created) {
        dir_.emplace(blk, DirEntry{});
    } else {
        auto it = dir_.find(blk);
        IF_DBG_ASSERT(it != dir_.end() && it->second == e &&
               "flat directory diverged from the map oracle");
        static_cast<void>(it);
    }
    lastEntryKey_ = blk;
#endif
    return e;
}

DirectorySlice::DirEntry&
DirectorySlice::legacyEntry(Addr blk)
{
    IF_COLD_ALLOC("INVISIFENCE_DIR_FLAT=0 escape hatch: the legacy "
                  "unordered_map directory allocates per distinct "
                  "block; the production flat path does not run "
                  "through here");
    return dir_[blk];
}

#ifndef NDEBUG
void
DirectorySlice::syncOracleFlush() const
{
    if (!useFlat_ || lastEntryKey_ == ~Addr{0})
        return;
    const DirEntry* cur = dirFlat_.find(lastEntryKey_);
    IF_DBG_ASSERT(cur && "oracle-tracked block vanished from the flat table");
    dir_[lastEntryKey_] = *cur;
    lastEntryKey_ = ~Addr{0};
}

void
DirectorySlice::verifyQuiescence() const
{
    if (useFlat_) {
        syncOracleFlush();
        IF_DBG_ASSERT(dirFlat_.size() == dir_.size() &&
               "flat directory and map oracle disagree on entry count");
        dirFlat_.forEach([this](Addr key, const DirEntry& value) {
            auto it = dir_.find(key);
            IF_DBG_ASSERT(it != dir_.end() && it->second == value &&
                   "flat directory diverged from the map oracle");
            static_cast<void>(it);
        });
    }
    // The quiescence counters are maintained incrementally by every
    // protocol step; recount them from scratch over the transient
    // per-block state before quiescent() trusts them.
    std::uint64_t waiting = 0;
    std::uint64_t active = 0;
    std::uint64_t busy = 0;
    home_.forEach([&](Addr, const BlockHome& h) {
        waiting += h.waiting.size();
        active += h.txnActive ? 1 : 0;
        busy += h.busy ? 1 : 0;
    });
    IF_DBG_ASSERT(waiting == waitingTotal_ &&
           "waitingTotal_ diverged from the waiting queues");
    IF_DBG_ASSERT(active == activeTxns_ &&
           "activeTxns_ diverged from the live transactions");
    IF_DBG_ASSERT(busy == busyBlocks_ &&
           "busyBlocks_ diverged from the busy flags");
    static_cast<void>(waiting);
    static_cast<void>(active);
    static_cast<void>(busy);
}
#endif

DirectorySlice::BlockHome&
DirectorySlice::home(Addr block)
{
    bool created = false;
    BlockHome& h = home_.getOrCreate(blockAlign(block), &created);
    if (created) {
        // Recycled entries carry stale fields; the queue's clear() keeps
        // its ring storage.
        h.busy = false;
        h.txnActive = false;
        h.waiting.clear();
    }
    return h;
}

void
DirectorySlice::maybeRecycleHome(Addr block)
{
    const Addr blk = blockAlign(block);
    if (const BlockHome* h = home_.find(blk)) {
        if (!h->busy && !h->txnActive && h->waiting.empty())
            home_.recycle(blk);
    }
}

DirectorySlice::EntryView
DirectorySlice::inspect(Addr block) const
{
    const Addr blk = blockAlign(block);
    const DirEntry* e = nullptr;
    if (useFlat_) {
        e = dirFlat_.find(blk);
#ifndef NDEBUG
        if (blk != lastEntryKey_) {
            // Skip the one key whose latest mutations are still only in
            // the flat table (folded in at the next entry()/verify).
            auto it = dir_.find(blk);
            IF_DBG_ASSERT((e == nullptr) == (it == dir_.end()) &&
                   "flat directory and map oracle disagree on presence");
            IF_DBG_ASSERT((!e || *e == it->second) &&
                   "flat directory diverged from the map oracle");
            static_cast<void>(it);
        }
#endif
    } else {
        auto it = dir_.find(blk);
        if (it != dir_.end())
            e = &it->second;
    }
    if (!e)
        return EntryView{};
    return EntryView{e->state, e->sharers, e->owner};
}

void
DirectorySlice::registerStats(StatRegistry& reg,
                              const std::string& prefix) const
{
    reg.registerStat(prefix + ".gets", &statGetS);
    reg.registerStat(prefix + ".getm", &statGetM);
    reg.registerStat(prefix + ".writebacks", &statWritebacks);
    reg.registerStat(prefix + ".invalidations_sent",
                     &statInvalidationsSent);
    reg.registerStat(prefix + ".mem_reads", &statMemReads);
    reg.registerStat(prefix + ".stale_writebacks", &statStaleWritebacks);
    reg.registerStat(prefix + ".queued_requests", &statQueuedRequests);
    reg.registerStat(prefix + ".dups_squashed", &statDupsSquashed);
}

void
DirectorySlice::dumpTransients(std::FILE* out) const
{
    home_.forEach([&](Addr block, const BlockHome& h) {
        if (!h.busy && !h.txnActive && h.waiting.empty())
            return;
        std::fprintf(out,
                     "  dir%u blk=%llx busy=%d active=%d waiting=%zu",
                     node_, static_cast<unsigned long long>(block),
                     h.busy ? 1 : 0, h.txnActive ? 1 : 0,
                     h.waiting.size());
        if (h.txnActive) {
            const Txn& t = h.txn;
            std::fprintf(out,
                         " txn{%s src=%u txn_id=%u acks=%u needMem=%d "
                         "memDone=%d needOwner=%d ownerDone=%d}",
                         msgTypeName(t.req.type).data(), t.req.src,
                         t.req.txnId, t.pendingAcks, t.needMem ? 1 : 0,
                         t.memDone ? 1 : 0, t.needOwnerData ? 1 : 0,
                         t.ownerDataDone ? 1 : 0);
        }
        std::fprintf(out, "\n");
    });
}

void
DirectorySlice::primeOwned(Addr block, NodeId owner)
{
    IF_DBG_ASSERT(homeMap_.homeOf(block) == node_);
    DirEntry& e = entry(block);
    e.state = DirState::Owned;
    e.owner = owner;
    e.sharers.reset();
}

void
DirectorySlice::primeShared(Addr block, const SharerSet& sharers)
{
    IF_DBG_ASSERT(homeMap_.homeOf(block) == node_);
    IF_DBG_ASSERT(sharers.any());
    DirEntry& e = entry(block);
    e.state = DirState::Shared;
    e.sharers = sharers;
    e.owner = 0;
}

void
DirectorySlice::deliver(const Msg& msg)
{
    IF_HOT;
    IF_DBG_ASSERT(homeMap_.homeOf(msg.blockAddr) == node_);
    if (!isRequest(msg.type)) {
        handleResponse(msg);
        return;
    }
    BlockHome& h = home(msg.blockAddr);
    if (h.busy) {
        h.waiting.push_back(msg);
        ++waitingTotal_;
        ++statQueuedRequests;
        return;
    }
    h.busy = true;
    ++busyBlocks_;
    eq_.schedule(params_.procLatency, [this, msg]() { startTxn(msg); });
}

void
DirectorySlice::startNextIfQueued(Addr block)
{
    BlockHome* h = home_.find(blockAlign(block));
    IF_DBG_ASSERT(h && h->busy && "finishing a transaction with no home state");
    if (h->waiting.empty()) {
        h->busy = false;
        --busyBlocks_;
        maybeRecycleHome(block);
        return;
    }
    const Msg next = h->waiting.front();
    h->waiting.pop_front();
    --waitingTotal_;
    eq_.schedule(params_.procLatency, [this, next]() { startTxn(next); });
}

void
DirectorySlice::startTxn(const Msg& req)
{
    // A tagged request whose transaction already completed is a
    // duplicate (injected, or a retry racing its original): squash with
    // no response. The original's response (or this agent's retry) is
    // what the requester acts on; answering again would double-grant.
    // Checked here, after dequeue, so duplicates that queued behind
    // their original are caught once the original's record exists.
    if (req.txnId != 0 && wasCompleted(req.src, req.txnId)) {
        ++statDupsSquashed;
        startNextIfQueued(req.blockAddr);
        return;
    }
    DirEntry& e = entry(req.blockAddr);
    switch (req.type) {
      case MsgType::PutM:
      case MsgType::PutE:
      case MsgType::PutS:
        handlePut(req, e);
        startNextIfQueued(req.blockAddr);
        return;
      default:
        break;
    }

    BlockHome& h = home(req.blockAddr);
    IF_DBG_ASSERT(!h.txnActive && "transaction already active on block");
    h.txnActive = true;
    ++activeTxns_;
    h.txn = Txn{};
    Txn& txn = h.txn;
    txn.req = req;

    if (req.type == MsgType::GetS) {
        ++statGetS;
        handleGetS(txn, e);
    } else {
        IF_DBG_ASSERT(req.type == MsgType::GetM);
        ++statGetM;
        handleGetM(txn, e);
    }
    maybeFinish(req.blockAddr);
}

void
DirectorySlice::handleGetS(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    switch (e.state) {
      case DirState::Idle:
      case DirState::Shared:
        txn.needMem = true;
        beginMemRead(txn.req.blockAddr);
        break;
      case DirState::Owned:
        if (e.owner == req && !params_.faultTolerant) {
            IF_PANIC("GetS from current owner %u blk=%llx", req,
                     static_cast<unsigned long long>(txn.req.blockAddr));
        }
        // owner == req can be legitimate under faults: the owner's Put
        // was dropped, so it no longer holds the block but we still
        // record its ownership. Forward to the owner as usual — the
        // agent serves the forward from its retained writeback data,
        // and the transaction completes normally.
        txn.needOwnerData = true;
        sendToAgent(e.owner, MsgType::FwdGetS, txn.req.blockAddr, nullptr,
                    false, req);
        break;
    }
}

void
DirectorySlice::handleGetM(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    switch (e.state) {
      case DirState::Idle:
        txn.needMem = true;
        beginMemRead(txn.req.blockAddr);
        break;
      case DirState::Shared: {
        txn.needMem = true;
        beginMemRead(txn.req.blockAddr);
        e.sharers.forEach([&](NodeId n) {
            if (n == req)
                return;
            sendToAgent(n, MsgType::Inv, txn.req.blockAddr, nullptr,
                        false, req);
            ++txn.pendingAcks;
            ++statInvalidationsSent;
        });
        break;
      }
      case DirState::Owned:
        if (e.owner == req && !params_.faultTolerant) {
            IF_PANIC("GetM from current owner %u blk=%llx", req,
                     static_cast<unsigned long long>(txn.req.blockAddr));
        }
        // owner == req: dropped-Put recovery; see the GetS twin above.
        txn.needOwnerData = true;
        sendToAgent(e.owner, MsgType::FwdGetM, txn.req.blockAddr, nullptr,
                    false, req);
        break;
    }
}

void
DirectorySlice::handlePut(const Msg& req, DirEntry& e)
{
    const NodeId src = req.src;
    ++statWritebacks;
    bool stale = false;
    switch (req.type) {
      case MsgType::PutM:
      case MsgType::PutE:
        if (e.state == DirState::Owned && e.owner == src &&
            !(req.txnId != 0 && e.grantTxn != 0 &&
              req.txnId <= e.grantTxn)) {
            // The tag comparison guards a fault-mode hazard owner==src
            // alone cannot catch: a retried Put (original dropped, so
            // no dedup record) arriving after this agent re-acquired
            // ownership with a NEWER Get. Its stale data must not reach
            // memory. Valid Puts always carry a tag issued after the
            // grant; ids are per-agent monotonic, so tag <= grantTxn
            // means "predates the current ownership".
            if (req.type == MsgType::PutM) {
                IF_DBG_ASSERT(req.hasData);
                mem_.writeBlock(req.blockAddr, req.data);
            }
            e.state = DirState::Idle;
            e.sharers.reset();
        } else {
            stale = true;
        }
        break;
      case MsgType::PutS:
        if (e.state == DirState::Shared && e.sharers.test(src)) {
            e.sharers.clear(src);
            if (e.sharers.none())
                e.state = DirState::Idle;
        } else {
            stale = true;
        }
        break;
      default:
        IF_PANIC("handlePut on %s", msgTypeName(req.type).data());
    }
    if (stale)
        ++statStaleWritebacks;
    // Stale Puts complete too (the ack IS the response): a duplicate of
    // either outcome must be squashed, not re-acked.
    recordCompleted(src, req.txnId);
    sendToAgent(src, stale ? MsgType::AckStale : MsgType::WbAck,
                req.blockAddr, nullptr, false, src);
}

void
DirectorySlice::beginMemRead(Addr block)
{
    ++statMemReads;
    eq_.schedule(params_.memLatency, [this, block]() {
        BlockHome* h = home_.find(blockAlign(block));
        if (!h || !h->txnActive)
            return;    // transaction satisfied by owner data instead
        Txn& txn = h->txn;
        txn.memDone = true;
        if (!txn.dataFromOwner) {
            txn.data = mem_.readBlock(block);
            txn.dataDirty = false;
        }
        maybeFinish(block);
    });
}

void
DirectorySlice::handleResponse(const Msg& msg)
{
    BlockHome* h = home_.find(blockAlign(msg.blockAddr));
    if (!h || !h->txnActive) {
        IF_PANIC("response %s with no active txn blk=%llx",
                 msgTypeName(msg.type).data(),
                 static_cast<unsigned long long>(msg.blockAddr));
    }
    Txn& txn = h->txn;
    switch (msg.type) {
      case MsgType::InvAck:
        IF_DBG_ASSERT(txn.pendingAcks > 0);
        --txn.pendingAcks;
        break;
      case MsgType::DataToHome:
        IF_DBG_ASSERT(txn.needOwnerData && msg.hasData);
        txn.ownerDataDone = true;
        txn.data = msg.data;
        txn.dataFromOwner = true;
        txn.dataDirty = msg.dirty;
        // Keep memory current: Shared implies the memory image is valid.
        mem_.writeBlock(msg.blockAddr, msg.data);
        break;
      default:
        IF_PANIC("unexpected response %s at directory",
                 msgTypeName(msg.type).data());
    }
    maybeFinish(msg.blockAddr);
}

void
DirectorySlice::maybeFinish(Addr block)
{
    BlockHome* h = home_.find(blockAlign(block));
    if (!h || !h->txnActive)
        return;
    Txn& txn = h->txn;
    if (txn.needMem && !txn.memDone && !txn.dataFromOwner)
        return;
    if (txn.pendingAcks > 0)
        return;
    if (txn.needOwnerData && !txn.ownerDataDone)
        return;

    DirEntry& e = entry(block);
    if (txn.req.type == MsgType::GetS)
        finishGetS(txn, e);
    else
        finishGetM(txn, e);
    h->txnActive = false;
    --activeTxns_;
    startNextIfQueued(block);
}

void
DirectorySlice::finishGetS(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    recordCompleted(req, txn.req.txnId);
    if (e.state == DirState::Idle) {
        // Grant Exclusive when no one else holds the block.
        e.state = DirState::Owned;
        e.owner = req;
        e.sharers.reset();
        e.grantTxn = txn.req.txnId;
        sendToAgent(req, MsgType::DataE, txn.req.blockAddr, &txn.data,
                    false, req);
    } else if (e.state == DirState::Shared) {
        e.sharers.set(req);
        sendToAgent(req, MsgType::DataS, txn.req.blockAddr, &txn.data,
                    false, req);
    } else {
        // Owner provided the data and downgraded itself to Shared.
        IF_DBG_ASSERT(txn.dataFromOwner);
        e.state = DirState::Shared;
        e.sharers = SharerSet::single(e.owner);
        e.sharers.set(req);
        sendToAgent(req, MsgType::DataS, txn.req.blockAddr, &txn.data,
                    false, req);
    }
}

void
DirectorySlice::finishGetM(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    recordCompleted(req, txn.req.txnId);
    e.state = DirState::Owned;
    e.owner = req;
    e.sharers.reset();
    e.grantTxn = txn.req.txnId;
    sendToAgent(req, MsgType::DataM, txn.req.blockAddr, &txn.data,
                txn.dataDirty, req);
}

void
DirectorySlice::sendToAgent(NodeId dst, MsgType type, Addr block,
                            const BlockData* data, bool dirty,
                            NodeId requester)
{
    Msg m;
    m.type = type;
    m.blockAddr = blockAlign(block);
    m.src = node_;
    m.dst = dst;
    m.dstUnit = Unit::Agent;
    m.requester = requester;
    if (data) {
        m.data = *data;
        m.hasData = true;
    }
    m.dirty = dirty;
    net_.send(m);
}

} // namespace invisifence
