#include "coh/directory.hh"

#include <cassert>

#include "sim/log.hh"

namespace invisifence {

DirectorySlice::DirectorySlice(NodeId node, std::uint32_t num_nodes,
                               Network& net, EventQueue& eq,
                               FunctionalMemory& mem,
                               const DirectoryParams& params)
    : node_(node), numNodes_(num_nodes), net_(net), eq_(eq), mem_(mem),
      params_(params)
{
    net_.attachDirectory(node_, this);
}

DirectorySlice::DirEntry&
DirectorySlice::entry(Addr block)
{
    return dir_[blockAlign(block)];
}

DirectorySlice::BlockHome&
DirectorySlice::home(Addr block)
{
    bool created = false;
    BlockHome& h = home_.getOrCreate(blockAlign(block), &created);
    if (created) {
        // Recycled entries carry stale fields; the queue's clear() keeps
        // its ring storage.
        h.busy = false;
        h.txnActive = false;
        h.waiting.clear();
    }
    return h;
}

void
DirectorySlice::maybeRecycleHome(Addr block)
{
    const Addr blk = blockAlign(block);
    if (const BlockHome* h = home_.find(blk)) {
        if (!h->busy && !h->txnActive && h->waiting.empty())
            home_.recycle(blk);
    }
}

DirectorySlice::EntryView
DirectorySlice::inspect(Addr block) const
{
    auto it = dir_.find(blockAlign(block));
    if (it == dir_.end())
        return EntryView{};
    return EntryView{it->second.state, it->second.sharers,
                     it->second.owner};
}

void
DirectorySlice::primeOwned(Addr block, NodeId owner)
{
    assert(homeOf(block, numNodes_) == node_);
    DirEntry& e = entry(block);
    e.state = DirState::Owned;
    e.owner = owner;
    e.sharers = 0;
}

void
DirectorySlice::primeShared(Addr block, std::uint32_t sharer_mask)
{
    assert(homeOf(block, numNodes_) == node_);
    assert(sharer_mask != 0);
    DirEntry& e = entry(block);
    e.state = DirState::Shared;
    e.sharers = sharer_mask;
    e.owner = 0;
}

void
DirectorySlice::deliver(const Msg& msg)
{
    assert(homeOf(msg.blockAddr, numNodes_) == node_);
    if (!isRequest(msg.type)) {
        handleResponse(msg);
        return;
    }
    BlockHome& h = home(msg.blockAddr);
    if (h.busy) {
        h.waiting.push_back(msg);
        ++waitingTotal_;
        ++statQueuedRequests;
        return;
    }
    h.busy = true;
    ++busyBlocks_;
    eq_.schedule(params_.procLatency, [this, msg]() { startTxn(msg); });
}

void
DirectorySlice::startNextIfQueued(Addr block)
{
    BlockHome* h = home_.find(blockAlign(block));
    assert(h && h->busy && "finishing a transaction with no home state");
    if (h->waiting.empty()) {
        h->busy = false;
        --busyBlocks_;
        maybeRecycleHome(block);
        return;
    }
    const Msg next = h->waiting.front();
    h->waiting.pop_front();
    --waitingTotal_;
    eq_.schedule(params_.procLatency, [this, next]() { startTxn(next); });
}

void
DirectorySlice::startTxn(const Msg& req)
{
    DirEntry& e = entry(req.blockAddr);
    switch (req.type) {
      case MsgType::PutM:
      case MsgType::PutE:
      case MsgType::PutS:
        handlePut(req, e);
        startNextIfQueued(req.blockAddr);
        return;
      default:
        break;
    }

    BlockHome& h = home(req.blockAddr);
    assert(!h.txnActive && "transaction already active on block");
    h.txnActive = true;
    ++activeTxns_;
    h.txn = Txn{};
    Txn& txn = h.txn;
    txn.req = req;

    if (req.type == MsgType::GetS) {
        ++statGetS;
        handleGetS(txn, e);
    } else {
        assert(req.type == MsgType::GetM);
        ++statGetM;
        handleGetM(txn, e);
    }
    maybeFinish(req.blockAddr);
}

void
DirectorySlice::handleGetS(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    switch (e.state) {
      case DirState::Idle:
      case DirState::Shared:
        txn.needMem = true;
        beginMemRead(txn.req.blockAddr);
        break;
      case DirState::Owned:
        if (e.owner == req) {
            IF_PANIC("GetS from current owner %u blk=%llx", req,
                     static_cast<unsigned long long>(txn.req.blockAddr));
        }
        txn.needOwnerData = true;
        sendToAgent(e.owner, MsgType::FwdGetS, txn.req.blockAddr, nullptr,
                    false, req);
        break;
    }
}

void
DirectorySlice::handleGetM(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    switch (e.state) {
      case DirState::Idle:
        txn.needMem = true;
        beginMemRead(txn.req.blockAddr);
        break;
      case DirState::Shared: {
        txn.needMem = true;
        beginMemRead(txn.req.blockAddr);
        for (NodeId n = 0; n < numNodes_; ++n) {
            if (n == req || !(e.sharers & (1u << n)))
                continue;
            sendToAgent(n, MsgType::Inv, txn.req.blockAddr, nullptr,
                        false, req);
            ++txn.pendingAcks;
            ++statInvalidationsSent;
        }
        break;
      }
      case DirState::Owned:
        if (e.owner == req) {
            IF_PANIC("GetM from current owner %u blk=%llx", req,
                     static_cast<unsigned long long>(txn.req.blockAddr));
        }
        txn.needOwnerData = true;
        sendToAgent(e.owner, MsgType::FwdGetM, txn.req.blockAddr, nullptr,
                    false, req);
        break;
    }
}

void
DirectorySlice::handlePut(const Msg& req, DirEntry& e)
{
    const NodeId src = req.src;
    ++statWritebacks;
    bool stale = false;
    switch (req.type) {
      case MsgType::PutM:
      case MsgType::PutE:
        if (e.state == DirState::Owned && e.owner == src) {
            if (req.type == MsgType::PutM) {
                assert(req.hasData);
                mem_.writeBlock(req.blockAddr, req.data);
            }
            e.state = DirState::Idle;
            e.sharers = 0;
        } else {
            stale = true;
        }
        break;
      case MsgType::PutS:
        if (e.state == DirState::Shared && (e.sharers & (1u << src))) {
            e.sharers &= ~(1u << src);
            if (e.sharers == 0)
                e.state = DirState::Idle;
        } else {
            stale = true;
        }
        break;
      default:
        IF_PANIC("handlePut on %s", msgTypeName(req.type).data());
    }
    if (stale)
        ++statStaleWritebacks;
    sendToAgent(src, stale ? MsgType::AckStale : MsgType::WbAck,
                req.blockAddr, nullptr, false, src);
}

void
DirectorySlice::beginMemRead(Addr block)
{
    ++statMemReads;
    eq_.schedule(params_.memLatency, [this, block]() {
        BlockHome* h = home_.find(blockAlign(block));
        if (!h || !h->txnActive)
            return;    // transaction satisfied by owner data instead
        Txn& txn = h->txn;
        txn.memDone = true;
        if (!txn.dataFromOwner) {
            txn.data = mem_.readBlock(block);
            txn.dataDirty = false;
        }
        maybeFinish(block);
    });
}

void
DirectorySlice::handleResponse(const Msg& msg)
{
    BlockHome* h = home_.find(blockAlign(msg.blockAddr));
    if (!h || !h->txnActive) {
        IF_PANIC("response %s with no active txn blk=%llx",
                 msgTypeName(msg.type).data(),
                 static_cast<unsigned long long>(msg.blockAddr));
    }
    Txn& txn = h->txn;
    switch (msg.type) {
      case MsgType::InvAck:
        assert(txn.pendingAcks > 0);
        --txn.pendingAcks;
        break;
      case MsgType::DataToHome:
        assert(txn.needOwnerData && msg.hasData);
        txn.ownerDataDone = true;
        txn.data = msg.data;
        txn.dataFromOwner = true;
        txn.dataDirty = msg.dirty;
        // Keep memory current: Shared implies the memory image is valid.
        mem_.writeBlock(msg.blockAddr, msg.data);
        break;
      default:
        IF_PANIC("unexpected response %s at directory",
                 msgTypeName(msg.type).data());
    }
    maybeFinish(msg.blockAddr);
}

void
DirectorySlice::maybeFinish(Addr block)
{
    BlockHome* h = home_.find(blockAlign(block));
    if (!h || !h->txnActive)
        return;
    Txn& txn = h->txn;
    if (txn.needMem && !txn.memDone && !txn.dataFromOwner)
        return;
    if (txn.pendingAcks > 0)
        return;
    if (txn.needOwnerData && !txn.ownerDataDone)
        return;

    DirEntry& e = entry(block);
    if (txn.req.type == MsgType::GetS)
        finishGetS(txn, e);
    else
        finishGetM(txn, e);
    h->txnActive = false;
    --activeTxns_;
    startNextIfQueued(block);
}

void
DirectorySlice::finishGetS(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    if (e.state == DirState::Idle) {
        // Grant Exclusive when no one else holds the block.
        e.state = DirState::Owned;
        e.owner = req;
        e.sharers = 0;
        sendToAgent(req, MsgType::DataE, txn.req.blockAddr, &txn.data,
                    false, req);
    } else if (e.state == DirState::Shared) {
        e.sharers |= (1u << req);
        sendToAgent(req, MsgType::DataS, txn.req.blockAddr, &txn.data,
                    false, req);
    } else {
        // Owner provided the data and downgraded itself to Shared.
        assert(txn.dataFromOwner);
        e.state = DirState::Shared;
        e.sharers = (1u << e.owner) | (1u << req);
        sendToAgent(req, MsgType::DataS, txn.req.blockAddr, &txn.data,
                    false, req);
    }
}

void
DirectorySlice::finishGetM(Txn& txn, DirEntry& e)
{
    const NodeId req = txn.req.src;
    e.state = DirState::Owned;
    e.owner = req;
    e.sharers = 0;
    sendToAgent(req, MsgType::DataM, txn.req.blockAddr, &txn.data,
                txn.dataDirty, req);
}

void
DirectorySlice::sendToAgent(NodeId dst, MsgType type, Addr block,
                            const BlockData* data, bool dirty,
                            NodeId requester)
{
    Msg m;
    m.type = type;
    m.blockAddr = blockAlign(block);
    m.src = node_;
    m.dst = dst;
    m.dstUnit = Unit::Agent;
    m.requester = requester;
    if (data) {
        m.data = *data;
        m.hasData = true;
    }
    m.dirty = dirty;
    net_.send(m);
}

} // namespace invisifence
