/**
 * @file
 * 2D torus interconnect (Figure 6: 4x4 torus, 25 ns per hop).
 *
 * Latency-only model: delivery delay is hops(src, dst) * per-hop latency,
 * with a floor of one cycle for node-local traffic. Because the delay
 * between a fixed (src, dst) pair is constant and the event queue preserves
 * insertion order at equal ticks, delivery is FIFO per pair — an ordering
 * property the directory protocol relies on (an agent's PutM can never be
 * overtaken by its own later GetM).
 *
 * Delivery is devirtualized: endpoints are a flat dispatch table of typed
 * pointers (CacheAgent / DirectorySlice, whose deliver() members are
 * called directly), not per-endpoint std::function sinks, and send()
 * moves the Msg once into the event queue's pooled slot instead of
 * copying it into a heap-allocated closure. A std::function fallback
 * remains for tests that attach custom sinks.
 */

#ifndef INVISIFENCE_COH_NETWORK_HH
#define INVISIFENCE_COH_NETWORK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "coh/message.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace invisifence {

class CacheAgent;
class DirectorySlice;
class FaultInjector;

/**
 * Parameters of the torus. Dimensions of 0 are derived from the node
 * count at construction (near-square factorization, see torusDims);
 * explicit dimensions must tile the node count exactly.
 */
struct NetworkParams
{
    std::uint32_t dimX = 0;      //!< 0 = derive from the node count
    std::uint32_t dimY = 0;      //!< 0 = derive from the node count
    Cycle perHopLatency = 100;   //!< 25 ns at 4 GHz
    Cycle localLatency = 1;      //!< node-local unit-to-unit latency
};

/** The torus dimensions (x, y) that @p params yields for @p num_nodes.
 *  Unspecified (zero) dimensions are derived: both zero picks the
 *  near-square factorization (16 -> 4x4, 64 -> 8x8, 12 -> 4x3); one
 *  zero divides the other out. A non-rectangular combination
 *  (dimX * dimY != num_nodes) is a fatal configuration error — the old
 *  coordinate math silently computed wrong distances for it. */
struct TorusDims
{
    std::uint32_t x = 0;
    std::uint32_t y = 0;
};
TorusDims torusDims(const NetworkParams& params, std::uint32_t num_nodes);

/**
 * Message fabric connecting cache agents and directory slices.
 *
 * Endpoints register themselves per (node, unit); send() computes the
 * topological delay and schedules a pooled message-delivery event on the
 * shared event queue.
 */
class Network
{
  public:
    // iflint:allow(std-function) test-only fallback sink: production traffic dispatches through the typed endpoint table below; attach() is never on the steady-state path.
    using Sink = std::function<void(const Msg&)>;

    Network(EventQueue& eq, const NetworkParams& params,
            std::uint32_t num_nodes);

    /** @{ Register the receiver for (node, unit): direct dispatch. */
    void attachAgent(NodeId node, CacheAgent* agent);
    void attachDirectory(NodeId node, DirectorySlice* dir);
    /** @} */

    /** Register a custom std::function sink (tests only; slower path). */
    void attach(NodeId node, Unit unit, Sink sink);

    /** Send @p msg; delivery is scheduled after the topological delay. */
    void send(const Msg& msg);

    /**
     * Divert every subsequent send() through @p f (deterministic fault
     * injection; see sim/fault.hh). Null detaches. With no injector
     * attached — the default — the hook costs one never-taken branch.
     */
    void setFaultInjector(FaultInjector* f) { faults_ = f; }

    /** Minimal torus hop count between two nodes. */
    std::uint32_t hops(NodeId a, NodeId b) const;

    /** Delivery delay for a message from @p a to @p b. */
    Cycle delay(NodeId a, NodeId b) const;

    /** @{ Resolved torus dimensions (derived when the params were 0). */
    std::uint32_t dimX() const { return params_.dimX; }
    std::uint32_t dimY() const { return params_.dimY; }
    /** @} */

    std::uint64_t statMessages = 0;
    std::uint64_t statDataMessages = 0;
    std::uint64_t statTotalHops = 0;

  private:
    /** One dispatch-table slot: exactly one of the members is set. */
    struct Endpoint
    {
        CacheAgent* agent = nullptr;
        DirectorySlice* dir = nullptr;
        Sink fn;   //!< test-only fallback

        bool
        attached() const
        {
            return agent != nullptr || dir != nullptr ||
                   static_cast<bool>(fn);
        }
    };

    /** EventQueue message dispatcher: direct endpoint call. */
    static void dispatchThunk(void* ctx, std::uint32_t sink_idx,
                              const Msg& msg);
    void dispatch(std::uint32_t sink_idx, const Msg& msg);

    EventQueue& eq_;
    NetworkParams params_;
    std::uint32_t numNodes_;
    std::vector<Endpoint> endpoints_;   //!< indexed by node * 2 + unit
    FaultInjector* faults_ = nullptr;   //!< optional; see setFaultInjector
};

} // namespace invisifence

#endif // INVISIFENCE_COH_NETWORK_HH
