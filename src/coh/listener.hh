/**
 * @file
 * Interface by which the consistency implementation observes coherence.
 *
 * The cache agent consults its listener before serving external requests
 * that conflict with speculatively-accessed blocks (Section 3.2, violation
 * detection) and when a speculative block would otherwise be evicted. It
 * also reports applied invalidations so conventional implementations can
 * snoop their load queues (in-window speculation, Section 2.1).
 */

#ifndef INVISIFENCE_COH_LISTENER_HH
#define INVISIFENCE_COH_LISTENER_HH

#include "sim/types.hh"

namespace invisifence {

/** Consistency-side hooks invoked by the CacheAgent. */
class CoherenceListener
{
  public:
    virtual ~CoherenceListener() = default;

    /** Verdict for an external request conflicting with speculation. */
    enum class ExtAction
    {
        Proceed,   //!< conflict resolved (e.g., aborted); serve the request
        Defer,     //!< park the request (commit-on-violate); the listener
                   //!< will call CacheAgent::serveDeferred() later
    };

    /**
     * An external coherence request targets a block whose speculative
     * bits conflict: any external request to a speculatively-written
     * block, or an external write (@p wants_write) to a speculatively-
     * read block.
     */
    virtual ExtAction onSpecConflict(Addr block, bool wants_write) = 0;

    /**
     * A block with speculative bits set would have to leave the L1
     * (capacity or conflict). The listener commits all speculation if
     * the commit conditions hold and returns true; otherwise it returns
     * false and the agent defers the fill while the store buffer drains
     * (Section 4.1: on cache overflow the processor waits for the store
     * buffer to drain before committing).
     */
    virtual bool resolveSpecEviction(Addr block) = 0;

    /**
     * Deferred-fill fallback: the fill has waited too long (e.g., the
     * drain is itself blocked); the listener must abort so no
     * speculative bits remain set. Guarantees forward progress.
     */
    virtual void resolveSpecEvictionHard(Addr block) = 0;

    /**
     * The block was invalidated (external write or local L2 eviction) or
     * downgraded. Conventional implementations and INVISIFENCE-SELECTIVE
     * snoop the load queue here; INVISIFENCE-CONTINUOUS does not need to.
     */
    virtual void onInvalidateApplied(Addr block) = 0;

    /**
     * @p block became (or was refreshed as) L1-resident via installL1 —
     * the only transition that can turn a non-writable block writable.
     * Store-buffer drains that go dormant while a write fetch is in
     * flight resume probing from here; the default no-op keeps
     * implementations that never go dormant unchanged.
     */
    virtual void onL1Install(Addr block) { static_cast<void>(block); }
};

} // namespace invisifence

#endif // INVISIFENCE_COH_LISTENER_HH
