/**
 * @file
 * Fixed-capacity sharer bitset for directory entries.
 *
 * The directory used to track sharers in a bare std::uint32_t with
 * `1u << n` arithmetic — undefined behavior and silent truncation the
 * moment a node id reaches 32. SharerSet is the drop-in replacement:
 * an inline multi-word bitset sized for the largest machine the
 * simulator builds (256 nodes), with bounds-checked mutation, popcount
 * and ascending-order iteration helpers. It is trivially copyable and
 * value-initializes to empty, so it slots into FlatAddrMap lanes and
 * the debug map oracle exactly like the old integer did.
 */

#ifndef INVISIFENCE_COH_SHARER_SET_HH
#define INVISIFENCE_COH_SHARER_SET_HH

#include <bit>
#include "sim/annotations.hh"
#include <cstdint>

#include "sim/log.hh"
#include "sim/types.hh"

namespace invisifence {

/** Set of sharer node ids, capacity SharerSet::kMaxNodes. */
class SharerSet
{
  public:
    /** Largest node id + 1 the simulator supports anywhere. */
    static constexpr std::uint32_t kMaxNodes = 256;

    constexpr SharerSet() = default;

    /** The singleton set {n}. */
    static SharerSet
    single(NodeId n)
    {
        SharerSet s;
        s.set(n);
        return s;
    }

    /** The set {0, 1, ..., n-1} (the "everyone shares" warm mask). */
    static SharerSet
    firstN(std::uint32_t n)
    {
        checkNode(n == 0 ? 0 : n - 1);
        SharerSet s;
        for (std::uint32_t w = 0; n > 0; ++w) {
            const std::uint32_t take = n < 64 ? n : 64;
            s.w_[w] = take == 64 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << take) - 1;
            n -= take;
        }
        return s;
    }

    /** Add node @p n (fatal when n >= kMaxNodes, in every build). */
    void
    set(NodeId n)
    {
        checkNode(n);
        w_[n >> 6] |= std::uint64_t{1} << (n & 63);
    }

    /** Remove node @p n (fatal when n >= kMaxNodes, in every build). */
    void
    clear(NodeId n)
    {
        checkNode(n);
        w_[n >> 6] &= ~(std::uint64_t{1} << (n & 63));
    }

    /** True when node @p n is in the set. */
    bool
    test(NodeId n) const
    {
        IF_DBG_ASSERT(n < kMaxNodes);
        return (w_[n >> 6] >> (n & 63)) & 1;
    }

    /** Number of sharers. */
    std::uint32_t
    count() const
    {
        std::uint32_t c = 0;
        for (const std::uint64_t w : w_)
            c += static_cast<std::uint32_t>(std::popcount(w));
        return c;
    }

    bool
    any() const
    {
        for (const std::uint64_t w : w_) {
            if (w != 0)
                return true;
        }
        return false;
    }

    bool none() const { return !any(); }

    /** Remove every node. */
    void
    reset()
    {
        for (std::uint64_t& w : w_)
            w = 0;
    }

    /**
     * Call @p fn(NodeId) for every member in ascending order. The
     * directory's invalidation fan-out iterates through here, and
     * ascending order keeps its message emission order — and therefore
     * the committed goldens — identical to the old 0..N-1 mask scan.
     */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (std::uint32_t wi = 0; wi < kWords; ++wi) {
            std::uint64_t w = w_[wi];
            while (w != 0) {
                const auto bit =
                    static_cast<std::uint32_t>(std::countr_zero(w));
                fn(static_cast<NodeId>(wi * 64 + bit));
                w &= w - 1;
            }
        }
    }

    bool operator==(const SharerSet&) const = default;

  private:
    static void
    checkNode(NodeId n)
    {
        if (n >= kMaxNodes)
            IF_FATAL("sharer node %u exceeds SharerSet capacity %u", n,
                     kMaxNodes);
    }

    static constexpr std::uint32_t kWords = kMaxNodes / 64;
    std::uint64_t w_[kWords] = {};
};

} // namespace invisifence

#endif // INVISIFENCE_COH_SHARER_SET_HH
