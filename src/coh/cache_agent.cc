#include "coh/cache_agent.hh"

#include "sim/annotations.hh"
#include <algorithm>

#include "sim/log.hh"

namespace invisifence {

namespace {

/** Borrow a recycled scratch vector from @p pool (empty, with the
 *  capacity of its last use). Scratch vectors trade storage with MSHR
 *  waiter lists via swap, so every vector entering the circulation
 *  starts with working capacity: the swap dance then keeps all
 *  participants at or above it, and the steady state never grows a
 *  vector one push at a time. */
/** Pool-miss slow path of takeScratch (cold allocation frontier). */
template <typename T>
IF_COLD_FN std::vector<T>
freshScratch()
{
    IF_COLD_ALLOC("scratch-pool miss: a fresh vector is built only "
                  "until the pool covers peak drain reentrancy; every "
                  "vector is returned via putScratch with capacity "
                  "intact");
    std::vector<T> v;
    v.reserve(16);
    return v;
}

template <typename T>
std::vector<T>
takeScratch(std::vector<std::vector<T>>& pool)
{
    if (pool.empty())
        return freshScratch<T>();
    std::vector<T> v = std::move(pool.back());
    pool.pop_back();
    return v;
}

/** Return a scratch vector to @p pool, keeping its capacity. */
template <typename T>
void
putScratch(std::vector<std::vector<T>>& pool, std::vector<T> v)
{
    v.clear();
    pool.push_back(std::move(v));
}

} // namespace

CacheAgent::CacheAgent(NodeId node, const HomeMap& home_map, Network& net,
                       EventQueue& eq, const AgentParams& params)
    : node_(node), homeMap_(home_map), net_(net), eq_(eq),
      params_(params),
      l1_(params.l1Size, params.l1Ways,
          "node" + std::to_string(node) + ".l1d"),
      l2_(params.l2Size, params.l2Ways,
          "node" + std::to_string(node) + ".l2"),
      vc_(params.victimEntries), mshrs_(params.mshrs + 64)
{
    net_.attachAgent(node_, this);
    // Prime the local-fill batch pool past any realistic number of
    // concurrently pending local fills (events live ~l2Latency ticks),
    // so the steady-state hot path never allocates; demand beyond the
    // preallocation still works, each extra slot allocating once.
    localBatches_.reserve(128);
    freeBatch_ = 0;
    for (std::uint32_t s = 0; s < 128; ++s) {
        LocalFillBatch& b = localBatches_.emplace_back();
        b.waiters.reserve(4);
        b.nextFree = s + 1 < 128 ? s + 1 : ~std::uint32_t{0};
    }
}

CacheAgent::Where
CacheAgent::probe(Addr addr) const
{
    if (l1_.lookup(addr))
        return Where::L1;
    if (vc_.contains(addr) || l2_.lookup(addr))
        return Where::Local;
    return Where::Remote;
}

bool
CacheAgent::l1Present(Addr addr) const
{
    return static_cast<bool>(l1_.lookup(addr));
}

bool
CacheAgent::l1Readable(Addr addr) const
{
    if (!l1_.lookup(addr))
        return false;
    return static_cast<bool>(l2_.lookup(addr));
}

bool
CacheAgent::l1Writable(Addr addr) const
{
    if (!l1_.lookup(addr))
        return false;
    const CacheArray::Line l2line = l2_.lookup(addr);
    return l2line && isWritable(l2line.state());
}

bool
CacheAgent::l1Dirty(Addr addr) const
{
    const CacheArray::Line l1line = l1_.lookup(addr);
    return l1line && l1line.dirty();
}

bool
CacheAgent::l1SpecWritten(Addr addr) const
{
    const CacheArray::Line l1line = l1_.lookup(addr);
    return l1line && l1line.specWrittenAny();
}

bool
CacheAgent::tryReadL1(Addr addr, std::uint64_t* value) const
{
    const CacheArray::Line l1line = l1_.lookup(addr);
    if (!l1line || !l2_.lookup(addr))
        return false;
    *value = l1line.data().readWord(blockOffset(wordAlign(addr)));
    return true;
}

bool
CacheAgent::fetchOutstanding(Addr addr) const
{
    return const_cast<MshrFile&>(mshrs_).lookup(addr, Mshr::Kind::Fetch) !=
           nullptr;
}

bool
CacheAgent::request(Addr addr, bool write, FillWaiter cb)
{
    const Addr block = blockAlign(addr);

    // Merge into an outstanding fetch for the same block.
    if (Mshr* m = mshrs_.lookup(block, Mshr::Kind::Fetch)) {
        if (write) {
            m->wantWrite = true;
            if (cb)
                mshrs_.pushWaiter(m->writeWaiters, cb);
        } else if (cb) {
            mshrs_.pushWaiter(m->readWaiters, cb);
        }
        return true;
    }

    CacheArray::Line l2line = l2_.lookup(block);
    if (l2line) {
        if (!write || isWritable(l2line.state())) {
            // Local fill: data and permission both available.
            const bool vc_hit = vc_.contains(block);
            const Cycle lat =
                vc_hit ? params_.victimLatency : params_.l2Latency;
            if (vc_hit)
                vc_.extract(block, nullptr);
            const Cycle due = eq_.now() + lat;
            // Merge into the just-scheduled local fill for this block
            // when nothing else entered the queue since (the two
            // events would be adjacent in the same-tick FIFO, so
            // appending to the batch is unobservable; see
            // localBatches_ in the header).
            if (mshrs_.indexEnabled() &&
                lastLocalSeqAfter_ == eq_.scheduledCount() &&
                lastLocalBlock_ == block && lastLocalDue_ == due) {
                hotPush(localBatches_[lastLocalSlot_].waiters, cb);
                return true;
            }
            std::uint32_t slot;
            if (freeBatch_ != ~std::uint32_t{0}) {
                slot = freeBatch_;
                freeBatch_ = localBatches_[slot].nextFree;
            } else {
                slot = static_cast<std::uint32_t>(localBatches_.size());
                localBatches_.emplace_back();
            }
            LocalFillBatch& b = localBatches_[slot];
            b.block = block;
            hotPush(b.waiters, cb);
            eq_.schedule(lat, [this, slot]() {
                runLocalFillBatch(slot);
            }, node_);
            lastLocalBlock_ = block;
            lastLocalDue_ = due;
            lastLocalSlot_ = slot;
            lastLocalSeqAfter_ = eq_.scheduledCount();
            return true;
        }
        // Upgrade: data present (Shared) but write permission missing.
        if (fetchCount_ >= params_.mshrs)
            return false;
        Mshr* m = mshrs_.allocate(block, Mshr::Kind::Fetch);
        ++fetchCount_;
        m->wantWrite = true;
        m->issuedWrite = true;
        if (cb)
            mshrs_.pushWaiter(m->writeWaiters, cb);
        ++statUpgrades;
        sendRequest(m, MsgType::GetM, nullptr, false);
        return true;
    }

    // Full miss.
    if (fetchCount_ >= params_.mshrs)
        return false;
    Mshr* m = mshrs_.allocate(block, Mshr::Kind::Fetch);
    ++fetchCount_;
    m->wantWrite = write;
    m->issuedWrite = write;
    if (cb) {
        if (write)
            mshrs_.pushWaiter(m->writeWaiters, cb);
        else
            mshrs_.pushWaiter(m->readWaiters, cb);
    }
    sendRequest(m, write ? MsgType::GetM : MsgType::GetS, nullptr, false);
    return true;
}

std::uint64_t
CacheAgent::readWordL1(Addr addr) const
{
    const CacheArray::Line l1line = l1_.lookup(addr);
    IF_DBG_ASSERT(l1line && "readWordL1 of absent block");
    return l1line.data().readWord(blockOffset(wordAlign(addr)));
}

void
CacheAgent::writeWordL1(Addr addr, std::uint64_t value, bool speculative,
                        std::uint32_t ctx)
{
    writeWordL1(resolveBlock(addr), addr, value, speculative, ctx);
}

void
CacheAgent::writeWordL1(const BlockView& view, Addr addr,
                        std::uint64_t value, bool speculative,
                        std::uint32_t ctx)
{
    MaskedBlock mb;
    mb.write(blockOffset(wordAlign(addr)), kWordBytes, value);
    writeMaskedL1(view, mb, speculative, ctx);
}

void
CacheAgent::writeMaskedL1(Addr block_addr, const MaskedBlock& data,
                          bool speculative, std::uint32_t ctx)
{
    writeMaskedL1(resolveBlock(block_addr), data, speculative, ctx);
}

void
CacheAgent::writeMaskedL1(const BlockView& view, const MaskedBlock& data,
                          bool speculative, std::uint32_t ctx)
{
    const CacheArray::Line l1line = view.l1;
    const CacheArray::Line l2line = view.l2;
    IF_DBG_ASSERT(l1line && l2line && isWritable(l2line.state()) &&
           "write to non-writable block");
    if (speculative) {
        // The cleaning writeback must already have preserved the
        // pre-speculative value of a dirty block (Section 3.2).
        IF_DBG_ASSERT(!(l1line.dirty() && !l1line.specWrittenAny()) &&
               "speculative write to unclean non-speculative dirty block");
        IF_DBG_ASSERT(ctx < kMaxCheckpoints);
        if (!l1line.speculative())
            ++specLines_;
        l1line.setSpecWritten(ctx);
    }
    data.applyTo(l1line.data());
    l1line.setDirty(true);
    l2line.setState(CoherenceState::Modified);
    l1_.touch(l1line);
}

void
CacheAgent::setSpecRead(Addr addr, std::uint32_t ctx)
{
    const CacheArray::Line l1line = l1_.lookup(addr);
    IF_DBG_ASSERT(l1line && "setSpecRead of absent block");
    IF_DBG_ASSERT(ctx < kMaxCheckpoints);
    if (!l1line.speculative())
        ++specLines_;
    l1line.setSpecRead(ctx);
}

bool
CacheAgent::markSpecReadIfPresent(Addr addr, std::uint32_t ctx)
{
    const CacheArray::Line l1line = l1_.lookup(addr);
    if (!l1line)
        return false;
    IF_DBG_ASSERT(ctx < kMaxCheckpoints);
    if (!l1line.speculative())
        ++specLines_;
    l1line.setSpecRead(ctx);
    return true;
}

bool
CacheAgent::cleanWriteback(Addr addr, FillCallback cb)
{
    const Addr block = blockAlign(addr);
    const CacheArray::Line l1line = l1_.lookup(block);
    if (!l1line || !l1line.dirty())
        return false;
    ++statCleanWritebacks;
    eq_.schedule(params_.l2Latency, [this, block, cb]() mutable {
        const CacheArray::Line line = l1_.lookup(block);
        if (line && line.dirty() && !line.specWrittenAny())
            syncL2FromL1(line, l2_.lookup(block));
        cb();
    }, node_);
    return true;
}

void
CacheAgent::flashCommit(std::uint32_t ctx)
{
    l1_.flashClearSpecBits(ctx);
    specLines_ = l1_.countSpeculative(0) + l1_.countSpeculative(1);
}

void
CacheAgent::flashAbort(std::uint32_t ctx)
{
    l1_.flashInvalidateSpecWritten(ctx);
    specLines_ = l1_.countSpeculative(0) + l1_.countSpeculative(1);
}

std::uint32_t
CacheAgent::specBlockCount(std::uint32_t ctx) const
{
    return l1_.countSpeculative(ctx);
}

void
CacheAgent::primeBlock(Addr block, CoherenceState state,
                       const BlockData& data)
{
    installL2(blockAlign(block), data, state);
}

bool
CacheAgent::tryInstantL1Install(Addr addr)
{
    const Addr block = blockAlign(addr);
    CacheArray::Line l2line = l2_.lookup(block);
    if (!l2line)
        return false;
    vc_.extract(block, nullptr);
    return static_cast<bool>(installL1(block, l2line));
}

void
CacheAgent::setExternalBlocked(bool blocked)
{
    const bool was = externalBlocked_;
    externalBlocked_ = blocked;
    if (was && !blocked)
        serveDeferred();
}

void
CacheAgent::deliver(const Msg& msg)
{
    IF_HOT;
    switch (msg.type) {
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
        handleFill(msg);
        return;
      case MsgType::FwdGetS:
      case MsgType::FwdGetM:
      case MsgType::Inv:
        handleExternal(msg);
        return;
      case MsgType::WbAck:
      case MsgType::AckStale:
        handleWbAck(msg);
        return;
      default:
        IF_PANIC("agent %u: unexpected message %s", node_,
                 msgTypeName(msg.type).data());
    }
}

void
CacheAgent::completeLocalFill(Addr block, FillWaiter cb, int attempt)
{
    // Revalidate: an external request may have taken the block away
    // while the fill was pending.
    CacheArray::Line l2line = l2_.lookup(block);
    if (l2line) {
        if (!installL1(block, l2line)) {
            // Speculative overflow: wait for the store buffer to drain
            // and the speculation to commit (bounded by a hard abort).
            ++statDeferredFills;
            if (attempt >= 200 && listener_)
                listener_->resolveSpecEvictionHard(block);
            eq_.schedule(10, [this, block, cb, attempt]() {
                completeLocalFill(block, cb, attempt + 1);
            }, node_);
            return;
        }
        ++statL1FillsLocal;
    }
    if (cb)
        cb();
}

void
CacheAgent::runLocalFillBatch(std::uint32_t slot)
{
    // Move the waiters out first: a waiter can re-enter request() and
    // grow localBatches_, invalidating references into the slab.
    const Addr block = localBatches_[slot].block;
    std::vector<FillWaiter> waiters =
        std::move(localBatches_[slot].waiters);
    // Each waiter revalidates/defers independently, exactly as the N
    // adjacent per-waiter events it replaces would have.
    for (const FillWaiter& cb : waiters)
        completeLocalFill(block, cb, 0);
    waiters.clear();
    LocalFillBatch& b = localBatches_[slot];
    b.waiters = std::move(waiters);   // recycle the capacity
    b.nextFree = freeBatch_;
    freeBatch_ = slot;
}

void
CacheAgent::handleFill(const Msg& msg)
{
    Mshr* m = mshrs_.lookup(msg.blockAddr, Mshr::Kind::Fetch);
    if (!m) {
        IF_PANIC("agent %u: fill %s with no MSHR blk=%llx", node_,
                 msgTypeName(msg.type).data(),
                 static_cast<unsigned long long>(msg.blockAddr));
    }
    IF_DBG_ASSERT(msg.hasData);

    CoherenceState state = CoherenceState::Shared;
    if (msg.type == MsgType::DataE || msg.type == MsgType::DataM)
        state = CoherenceState::Exclusive;

    installL2(msg.blockAddr, msg.data, state);
    ++statL1FillsRemote;
    finishFill(msg.blockAddr, 0);
}

void
CacheAgent::finishFill(Addr block, int attempt)
{
    Mshr* m = mshrs_.lookup(block, Mshr::Kind::Fetch);
    if (!m)
        return;

    CacheArray::Line l2line = l2_.lookup(block);
    if (!l2line) {
        // Stolen while the install was deferred: reissue the fetch; the
        // next data response restarts this path.
        m->issuedWrite = m->wantWrite;
        sendRequest(m, m->wantWrite ? MsgType::GetM : MsgType::GetS,
                    nullptr, false);
        return;
    }

    if (!installL1(block, l2line)) {
        // Speculative overflow (Section 4.1): defer the fill while the
        // store buffer drains so the speculation can commit, with a
        // bounded fallback to abort for forward progress.
        ++statDeferredFills;
        if (attempt >= 200 && listener_)
            listener_->resolveSpecEvictionHard(block);
        eq_.schedule(10, [this, block, attempt]() {
            finishFill(block, attempt + 1);
        }, node_);
        return;
    }

    const bool writable = isWritable(l2line.state());

    // Wake readers unconditionally; they only need a valid copy. The
    // chain is detached before running (callbacks may re-enter the
    // agent and push fresh waiters onto the MSHR) and each node is
    // recycled into the shared slab before its callback executes.
    std::uint32_t reader = mshrs_.takeWaiters(m->readWaiters);
    while (reader != kNoWaiter) {
        FillWaiter fn = mshrs_.takeWaiterAndAdvance(reader);
        fn();
    }

    if (m->wantWrite) {
        if (writable) {
            // free() audit: both chains are provably empty here — the
            // read chain was detached above and the write chain is
            // detached now, before the free; the reader wakes between
            // them bind/replay ROB entries without re-entering
            // request() on this block.
            std::uint32_t writer = mshrs_.takeWaiters(m->writeWaiters);
            mshrs_.free(m);
            --fetchCount_;
            while (writer != kNoWaiter) {
                FillWaiter fn = mshrs_.takeWaiterAndAdvance(writer);
                fn();
            }
        } else if (!m->issuedWrite) {
            // GetS answered with a Shared copy but a writer is waiting:
            // upgrade with a follow-on GetM.
            m->issuedWrite = true;
            ++statUpgrades;
            sendRequest(m, MsgType::GetM, nullptr, false);
        }
        // else: a GetM is already in flight; its fill finishes the job.
    } else {
        // free() audit: !wantWrite means no write waiter was ever
        // pushed, and the read chain was detached above — both chains
        // are empty.
        mshrs_.free(m);
        --fetchCount_;
    }
}

void
CacheAgent::handleExternal(const Msg& msg)
{
    if (externalBlocked_) {
        ++statExternalDeferred;
        deferred_.push_back(msg);
        return;
    }
    const Addr block = msg.blockAddr;
    const bool wants_write =
        msg.type == MsgType::FwdGetM || msg.type == MsgType::Inv;

    const CacheArray::Line l1line = l1_.lookup(block);
    // Pin the resolution BEFORE consulting the listener: an abort
    // flash-invalidates the frame and bumps its generation, which is
    // exactly what the revalidation in serveExternal must observe.
    const CacheArray::Handle l1h =
        l1line ? l1line.handle() : CacheArray::Handle{};
    const bool conflict =
        l1line && (l1line.specWrittenAny() ||
                   (wants_write && l1line.specReadAny()));
    if (conflict && listener_) {
        const auto action = listener_->onSpecConflict(block, wants_write);
        if (action == CoherenceListener::ExtAction::Defer) {
            ++statExternalDeferred;
            deferred_.push_back(msg);
            return;
        }
        // The listener committed or aborted; all speculative bits that
        // conflicted are resolved now and serving is safe.
    }
    serveExternal(msg, l1h);
}

void
CacheAgent::serveExternal(const Msg& msg, CacheArray::Handle l1h)
{
    const Addr block = msg.blockAddr;
    ++statExternalServed;
    CacheArray::Line l2line = l2_.lookup(block);
    // O(1) revalidation of the caller's resolution: an abort may have
    // flash-invalidated the frame (generation mismatch -> null), but
    // nothing between resolution and service can *install* the block.
    CacheArray::Line l1line = l1_.resolve(l1h);
    IF_DBG_ASSERT(l1line == l1_.lookup(block) &&
           "revalidated handle disagrees with a fresh lookup");
    IF_DBG_ASSERT(!(l1line && l1line.specWrittenAny()) &&
           "serving external request from speculatively-written block");

    switch (msg.type) {
      case MsgType::FwdGetS: {
        if (l2line) {
            syncL2FromL1(l1line, l2line);
            const bool dirty = l2line.state() == CoherenceState::Modified;
            sendToHome(MsgType::DataToHome, block, &l2line.data(), dirty);
            // Home writes memory; our retained copy becomes a clean
            // Shared one.
            l2line.setState(CoherenceState::Shared);
        } else if (Mshr* wb = mshrs_.lookup(block, Mshr::Kind::Writeback)) {
            sendToHome(MsgType::DataToHome, block, &wb->wbData,
                       wb->wbDirty);
            if (params_.faultTolerant) {
                // The home's transaction just consumed the retained
                // data, so our in-flight Put is moot: free the MSHR now
                // (stopping its retry timer). The original Put either
                // arrives stale (AckStale, orphan-counted) or was
                // dropped (nothing outstanding).
                mshrs_.free(wb);
            } else {
                wb->ownershipLost = true;
            }
        } else {
            IF_PANIC("agent %u: FwdGetS for absent block %llx", node_,
                     static_cast<unsigned long long>(block));
        }
        break;
      }
      case MsgType::FwdGetM: {
        if (l2line) {
            syncL2FromL1(l1line, l2line);
            const bool dirty = l2line.state() == CoherenceState::Modified;
            sendToHome(MsgType::DataToHome, block, &l2line.data(), dirty);
            if (l1line)
                l1line.invalidate();
            vc_.invalidate(block);
            l2line.invalidate();
        } else if (Mshr* wb = mshrs_.lookup(block, Mshr::Kind::Writeback)) {
            sendToHome(MsgType::DataToHome, block, &wb->wbData,
                       wb->wbDirty);
            if (params_.faultTolerant) {
                mshrs_.free(wb);   // see the FwdGetS twin above
            } else {
                wb->ownershipLost = true;
            }
        } else {
            IF_PANIC("agent %u: FwdGetM for absent block %llx", node_,
                     static_cast<unsigned long long>(block));
        }
        if (listener_)
            listener_->onInvalidateApplied(block);
        break;
      }
      case MsgType::Inv: {
        if (l1line)
            l1line.invalidate();
        vc_.invalidate(block);
        if (l2line)
            l2line.invalidate();
        sendToHome(MsgType::InvAck, block, nullptr, false);
        if (listener_)
            listener_->onInvalidateApplied(block);
        break;
      }
      default:
        IF_PANIC("serveExternal on %s", msgTypeName(msg.type).data());
    }
}

void
CacheAgent::serveDeferred()
{
    if (externalBlocked_ || deferred_.empty())
        return;
    // Drain into recycled scratch first: handleExternal may re-defer
    // (CoV windows) or re-enter serveDeferred via an abort.
    auto pending = takeScratch(msgScratchPool_);
    for (const Msg& msg : deferred_)
        hotPush(pending, msg);
    deferred_.clear();
    for (const Msg& msg : pending)
        handleExternal(msg);
    putScratch(msgScratchPool_, std::move(pending));
}

void
CacheAgent::handleWbAck(const Msg& msg)
{
    Mshr* wb = mshrs_.lookup(msg.blockAddr, Mshr::Kind::Writeback);
    if (!wb) {
        if (params_.faultTolerant) {
            // Ack for a writeback already resolved another way: a
            // forward consumed the data (early free above), the retry
            // path abandoned it, or a duplicated Put drew two acks.
            ++statOrphanWbAcks;
            return;
        }
        IF_PANIC("agent %u: %s with no writeback MSHR", node_,
                 msgTypeName(msg.type).data());
    }
    // free() audit: waiter chains exist only on Fetch-kind MSHRs
    // (request() pushes them); a writeback MSHR's chains stay empty.
    mshrs_.free(wb);
}

void
CacheAgent::registerStats(StatRegistry& reg,
                          const std::string& prefix) const
{
    reg.registerStat(prefix + ".l1_fills_local", &statL1FillsLocal);
    reg.registerStat(prefix + ".l1_fills_remote", &statL1FillsRemote);
    reg.registerStat(prefix + ".upgrades", &statUpgrades);
    reg.registerStat(prefix + ".external_served", &statExternalServed);
    reg.registerStat(prefix + ".external_deferred",
                     &statExternalDeferred);
    reg.registerStat(prefix + ".clean_writebacks",
                     &statCleanWritebacks);
    reg.registerStat(prefix + ".forced_spec_evictions",
                     &statForcedSpecEvictions);
    reg.registerStat(prefix + ".deferred_fills", &statDeferredFills);
    reg.registerStat(prefix + ".l2_evictions", &statL2Evictions);
    reg.registerStat(prefix + ".mshr.allocations",
                     &mshrs_.statAllocations);
    reg.registerStat(prefix + ".mshr.full_stalls",
                     &mshrs_.statFullStalls);
    reg.registerStat(prefix + ".mshr.waiter_dedups",
                     &mshrs_.statWaiterDedups);
    reg.registerStat(prefix + ".retries", &statRetries);
    reg.registerStat(prefix + ".orphan_wb_acks", &statOrphanWbAcks);
    reg.registerStat(prefix + ".wb_abandoned", &statWbAbandoned);
    reg.registerStat(prefix + ".retry_backoff_max",
                     &statRetryBackoffMax);
}

CacheArray::Line
CacheAgent::installL2(Addr block, const BlockData& data,
                      CoherenceState state)
{
    if (CacheArray::Line existing = l2_.lookup(block)) {
        existing.data() = data;
        existing.setState(state);
        l2_.touch(existing);
        return existing;
    }

    bool forced = false;
    const auto avoid = [this](const CacheArray::Line& line) {
        const CacheArray::Line l1line = l1_.lookup(line.blockAddr());
        return l1line && l1line.speculative();
    };
    CacheArray::Line victim = l2_.findVictim(block, avoid, &forced);
    if (forced) {
        IF_DBG_ASSERT(listener_);
        ++statForcedSpecEvictions;
        if (!listener_->resolveSpecEviction(victim.blockAddr()))
            listener_->resolveSpecEvictionHard(victim.blockAddr());
        victim = l2_.findVictim(block, avoid, &forced);
        IF_DBG_ASSERT(!forced && "speculation unresolved after forced eviction");
    }
    if (victim.valid())
        evictL2Line(victim);

    victim.install(block, state);
    victim.data() = data;
    l2_.touch(victim);
    return victim;
}

CacheArray::Line
CacheAgent::installL1(Addr block, CacheArray::Line l2line)
{
    IF_DBG_ASSERT(l2line && l2line.valid() &&
           "L1 install without L2 backing (inclusion violated)");

    if (CacheArray::Line existing = l1_.lookup(block)) {
        // Refresh data from the L2 only when the L1 copy is clean;
        // a dirty L1 copy is newer than the L2's.
        if (!existing.dirty())
            existing.data() = l2line.data();
        existing.setState(l2line.state());
        l1_.touch(existing);
        if (listener_)
            listener_->onL1Install(block);
        return existing;
    }

    bool forced = false;
    const auto avoid = [](const CacheArray::Line& line) {
        return line.speculative();
    };
    CacheArray::Line victim = l1_.findVictim(block, avoid, &forced);
    if (forced) {
        IF_DBG_ASSERT(listener_);
        ++statForcedSpecEvictions;
        if (!listener_->resolveSpecEviction(victim.blockAddr()))
            return {};   // caller defers the fill and retries
        victim = l1_.findVictim(block, avoid, &forced);
        IF_DBG_ASSERT(!forced && "speculation unresolved after forced eviction");
    }
    if (victim.valid()) {
        // Non-speculative L1 victim: propagate dirty data to the L2 and
        // keep a clean low-latency copy in the victim cache.
        IF_DBG_ASSERT(!victim.speculative());
        if (victim.dirty())
            syncL2FromL1(victim, l2_.lookup(victim.blockAddr()));
        vc_.insertFrom(victim.blockAddr(), victim.state(),
                       victim.data());
        victim.invalidate();
    }

    victim.install(block, l2line.state());
    victim.data() = l2line.data();
    l1_.touch(victim);
    if (listener_)
        listener_->onL1Install(block);
    return victim;
}

void
CacheAgent::syncL2FromL1(Addr block)
{
    syncL2FromL1(l1_.lookup(block), l2_.lookup(block));
}

void
CacheAgent::syncL2FromL1(CacheArray::Line l1line, CacheArray::Line l2line)
{
    if (!l1line || !l1line.dirty())
        return;
    IF_DBG_ASSERT(l2line && isWritable(l2line.state()) &&
           "dirty L1 line without writable L2 backing");
    l2line.data() = l1line.data();
    l2line.setState(CoherenceState::Modified);
    l1line.setDirty(false);
}

void
CacheAgent::evictL2Line(CacheArray::Line line)
{
    const Addr block = line.blockAddr();
    ++statL2Evictions;

    // Inclusion: purge the L1 copy (speculative lines were resolved by
    // the avoidance logic in installL2) and the victim cache copy.
    if (CacheArray::Line l1line = l1_.lookup(block)) {
        IF_DBG_ASSERT(!l1line.speculative());
        if (l1line.dirty()) {
            line.data() = l1line.data();
            line.setState(CoherenceState::Modified);
        }
        l1line.invalidate();
    }
    vc_.invalidate(block);
    if (listener_)
        listener_->onInvalidateApplied(block);

    // The data is retained in a writeback MSHR until the home
    // acknowledges, so crossing forwards can still be served.
    Mshr* wb = mshrs_.allocate(block, Mshr::Kind::Writeback);
    if (!wb) {
        IF_PANIC("agent %u: MSHR pool exhausted for writeback of %llx",
                 node_, static_cast<unsigned long long>(block));
    }
    wb->wbData = line.data();
    wb->wbDirty = line.state() == CoherenceState::Modified;

    switch (line.state()) {
      case CoherenceState::Modified:
        wb->wbType = MsgType::PutM;
        sendRequest(wb, MsgType::PutM, &wb->wbData, true);
        break;
      case CoherenceState::Exclusive:
        wb->wbType = MsgType::PutE;
        sendRequest(wb, MsgType::PutE, nullptr, false);
        break;
      case CoherenceState::Shared:
        wb->wbType = MsgType::PutS;
        sendRequest(wb, MsgType::PutS, nullptr, false);
        break;
      case CoherenceState::Invalid:
        IF_PANIC("evicting invalid L2 line");
    }
    line.invalidate();
}

void
CacheAgent::sendToHome(MsgType type, Addr block, const BlockData* data,
                       bool dirty, std::uint32_t txn_id)
{
    Msg m;
    m.type = type;
    m.blockAddr = blockAlign(block);
    m.src = node_;
    m.dst = homeMap_.homeOf(block);
    m.dstUnit = Unit::Directory;
    m.requester = node_;
    m.txnId = txn_id;
    if (data) {
        m.data = *data;
        m.hasData = true;
    }
    m.dirty = dirty;
    net_.send(m);
}

void
CacheAgent::sendRequest(Mshr* m, MsgType type, const BlockData* data,
                        bool dirty)
{
    if (params_.faultTolerant) {
        // Fresh id per (re)issued request: reissues open a *new*
        // directory transaction, so they must not collide with the
        // dedup record of the one they replace.
        m->txnId = nextTxnId_++;
        m->retryAttempt = 0;
        if (params_.retryTimeout != 0)
            armRetry(m->blockAddr, m->kind, m->txnId, 0);
    }
    sendToHome(type, m->blockAddr, data, dirty, m->txnId);
}

Cycle
CacheAgent::backoffFor(std::uint32_t attempt) const
{
    // Exponential backoff: timeout * 2^attempt, capped. bitOf keeps the
    // shift width-checked; the exponent is clamped far below 64 anyway.
    const Cycle raw =
        params_.retryTimeout *
        static_cast<Cycle>(bitOf<std::uint64_t>(std::min(attempt, 16u)));
    const Cycle cap = std::max(params_.retryBackoffCap,
                               params_.retryTimeout);
    return std::min(raw, cap);
}

void
CacheAgent::armRetry(Addr block, Mshr::Kind kind, std::uint32_t txn,
                     std::uint32_t attempt)
{
    const Cycle backoff = backoffFor(attempt);
    statRetryBackoffMax = std::max(statRetryBackoffMax,
                                   static_cast<std::uint64_t>(backoff));
    // No wake tag: the deadline only inspects MSHRs and (re)sends
    // messages; it never touches the core. The closure is a bounded
    // trivially-copyable capture living in the pooled event slot — no
    // per-timeout heap allocation.
    eq_.schedule(backoff, [this, block, kind, txn, attempt]() {
        onRetryTimer(block, kind, txn, attempt);
    });
}

void
CacheAgent::onRetryTimer(Addr block, Mshr::Kind kind, std::uint32_t txn,
                         std::uint32_t attempt)
{
    Mshr* m = mshrs_.lookup(block, kind);
    if (!m || m->txnId != txn)
        return;   // completed or superseded since arming: stale timer
    if (kind == Mshr::Kind::Writeback) {
        if (mshrs_.lookup(block, Mshr::Kind::Fetch)) {
            // A fetch for the same block is in flight; its resolution
            // decides this writeback's fate (the home may forward it
            // back to us for the retained data). Check again later, at
            // the same attempt — the fetch has its own retry bound.
            armRetry(block, kind, txn, attempt);
            return;
        }
        if (l2_.lookup(block)) {
            // We own/share the block again (the home re-granted it
            // after the original Put, or a duplicate resolved the
            // eviction): the directory's state is consistent with our
            // possession, so retransmitting the Put would corrupt it —
            // e.g. a stale PutS clearing a live sharer bit. Abandon.
            ++statWbAbandoned;
            mshrs_.free(m);
            return;
        }
    }
    if (attempt >= params_.retryMax) {
        IF_PANIC("agent %u: request blk=%llx txn=%u still unanswered "
                 "after %u retries (unrecoverable loss?)",
                 node_, static_cast<unsigned long long>(block), txn,
                 attempt);
    }
    m->retryAttempt = attempt + 1;
    ++statRetries;
    if (kind == Mshr::Kind::Writeback) {
        const bool has_data = m->wbType == MsgType::PutM;
        sendToHome(m->wbType, block, has_data ? &m->wbData : nullptr,
                   has_data && m->wbDirty, txn);
    } else {
        sendToHome(m->issuedWrite ? MsgType::GetM : MsgType::GetS, block,
                   nullptr, false, txn);
    }
    armRetry(block, kind, txn, attempt + 1);
}

} // namespace invisifence
