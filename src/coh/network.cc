#include "coh/network.hh"

#include <cassert>
#include <cstdlib>

#include "sim/log.hh"

namespace invisifence {

Network::Network(EventQueue& eq, const NetworkParams& params,
                 std::uint32_t num_nodes)
    : eq_(eq), params_(params), numNodes_(num_nodes)
{
    if (params_.dimX * params_.dimY < num_nodes)
        IF_FATAL("torus %ux%u too small for %u nodes", params_.dimX,
                 params_.dimY, num_nodes);
    sinks_.resize(static_cast<std::size_t>(num_nodes) * 2);
}

void
Network::attach(NodeId node, Unit unit, Sink sink)
{
    assert(node < numNodes_);
    sinks_[node * 2 + static_cast<std::size_t>(unit)] = std::move(sink);
}

std::uint32_t
Network::hops(NodeId a, NodeId b) const
{
    const auto torus_dist = [](std::uint32_t p, std::uint32_t q,
                               std::uint32_t dim) {
        const std::uint32_t d = p > q ? p - q : q - p;
        return d < dim - d ? d : dim - d;
    };
    const std::uint32_t ax = a % params_.dimX, ay = a / params_.dimX;
    const std::uint32_t bx = b % params_.dimX, by = b / params_.dimX;
    return torus_dist(ax, bx, params_.dimX) +
           torus_dist(ay, by, params_.dimY);
}

Cycle
Network::delay(NodeId a, NodeId b) const
{
    const std::uint32_t h = hops(a, b);
    if (h == 0)
        return params_.localLatency;
    return static_cast<Cycle>(h) * params_.perHopLatency;
}

void
Network::send(const Msg& msg)
{
    assert(msg.src < numNodes_ && msg.dst < numNodes_);
    ++statMessages;
    if (msg.hasData)
        ++statDataMessages;
    statTotalHops += hops(msg.src, msg.dst);
    const std::size_t idx =
        msg.dst * 2 + static_cast<std::size_t>(msg.dstUnit);
    assert(sinks_[idx] && "message sent to unattached endpoint");
    IF_TRACE("net: %s blk=%llx %u->%u", msgTypeName(msg.type).data(),
             static_cast<unsigned long long>(msg.blockAddr), msg.src,
             msg.dst);
    // Deliveries to a cache agent can synchronously touch its core
    // (fill callbacks, invalidation snoops, speculation aborts), so they
    // carry the destination node as a wake tag; directory-bound messages
    // only mutate directory state and send further (tagged) messages.
    const std::uint32_t wake =
        msg.dstUnit == Unit::Agent ? msg.dst : kNoWakeNode;
    eq_.schedule(delay(msg.src, msg.dst),
                 [this, idx, msg]() { sinks_[idx](msg); }, wake);
}

} // namespace invisifence
