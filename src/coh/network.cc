#include "coh/network.hh"

#include "sim/annotations.hh"
#include <cstdlib>

#include "coh/cache_agent.hh"
#include "coh/directory.hh"
#include "sim/fault.hh"
#include "sim/log.hh"

namespace invisifence {

TorusDims
torusDims(const NetworkParams& params, std::uint32_t num_nodes)
{
    if (num_nodes == 0)
        IF_FATAL("torus with zero nodes");
    std::uint32_t x = params.dimX;
    std::uint32_t y = params.dimY;
    if (x == 0 && y == 0) {
        // Near-square factorization: the largest divisor <= sqrt(n)
        // becomes the Y extent. Every count has the trivial n x 1
        // fallback, so derivation never fails.
        std::uint32_t best = 1;
        for (std::uint32_t d = 2; d * d <= num_nodes; ++d) {
            if (num_nodes % d == 0)
                best = d;
        }
        y = best;
        x = num_nodes / best;
    } else if (x == 0) {
        x = num_nodes / y;
    } else if (y == 0) {
        y = num_nodes / x;
    }
    if (x == 0 || y == 0 || x * y != num_nodes)
        IF_FATAL("torus %ux%u does not tile %u nodes", params.dimX,
                 params.dimY, num_nodes);
    return TorusDims{x, y};
}

Network::Network(EventQueue& eq, const NetworkParams& params,
                 std::uint32_t num_nodes)
    : eq_(eq), params_(params), numNodes_(num_nodes)
{
    const TorusDims dims = torusDims(params, num_nodes);
    params_.dimX = dims.x;
    params_.dimY = dims.y;
    endpoints_.resize(static_cast<std::size_t>(num_nodes) * 2);
    eq_.setMsgDispatcher(&Network::dispatchThunk, this);
}

void
Network::attachAgent(NodeId node, CacheAgent* agent)
{
    IF_DBG_ASSERT(node < numNodes_ && agent);
    Endpoint& ep =
        endpoints_[node * 2 + static_cast<std::size_t>(Unit::Agent)];
    ep = Endpoint{};
    ep.agent = agent;
}

void
Network::attachDirectory(NodeId node, DirectorySlice* dir)
{
    IF_DBG_ASSERT(node < numNodes_ && dir);
    Endpoint& ep =
        endpoints_[node * 2 + static_cast<std::size_t>(Unit::Directory)];
    ep = Endpoint{};
    ep.dir = dir;
}

void
Network::attach(NodeId node, Unit unit, Sink sink)
{
    // A late attach() replaces whatever was registered (tests intercept
    // traffic on endpoints whose agent/directory self-registered at
    // construction), so the typed pointers are cleared too.
    IF_DBG_ASSERT(node < numNodes_);
    Endpoint& ep = endpoints_[node * 2 + static_cast<std::size_t>(unit)];
    ep = Endpoint{};
    ep.fn = std::move(sink);
}

std::uint32_t
Network::hops(NodeId a, NodeId b) const
{
    const auto torus_dist = [](std::uint32_t p, std::uint32_t q,
                               std::uint32_t dim) {
        const std::uint32_t d = p > q ? p - q : q - p;
        return d < dim - d ? d : dim - d;
    };
    const std::uint32_t ax = a % params_.dimX, ay = a / params_.dimX;
    const std::uint32_t bx = b % params_.dimX, by = b / params_.dimX;
    return torus_dist(ax, bx, params_.dimX) +
           torus_dist(ay, by, params_.dimY);
}

Cycle
Network::delay(NodeId a, NodeId b) const
{
    const std::uint32_t h = hops(a, b);
    if (h == 0)
        return params_.localLatency;
    return static_cast<Cycle>(h) * params_.perHopLatency;
}

void
Network::dispatchThunk(void* ctx, std::uint32_t sink_idx, const Msg& msg)
{
    static_cast<Network*>(ctx)->dispatch(sink_idx, msg);
}

void
Network::dispatch(std::uint32_t sink_idx, const Msg& msg)
{
    Endpoint& ep = endpoints_[sink_idx];
    if (ep.agent) {
        ep.agent->deliver(msg);
    } else if (ep.dir) {
        ep.dir->deliver(msg);
    } else {
        IF_DBG_ASSERT(ep.fn && "message dispatched to unattached endpoint");
        ep.fn(msg);
    }
}

void
Network::send(const Msg& msg)
{
    IF_HOT;
    IF_DBG_ASSERT(msg.src < numNodes_ && msg.dst < numNodes_);
    ++statMessages;
    if (msg.hasData)
        ++statDataMessages;
    statTotalHops += hops(msg.src, msg.dst);
    const std::uint32_t idx = static_cast<std::uint32_t>(
        msg.dst * 2 + static_cast<std::uint32_t>(msg.dstUnit));
    IF_DBG_ASSERT(endpoints_[idx].attached() &&
           "message sent to unattached endpoint");
    IF_TRACE("net: %s blk=%llx %u->%u", msgTypeName(msg.type).data(),
             static_cast<unsigned long long>(msg.blockAddr), msg.src,
             msg.dst);
    // Deliveries to a cache agent can synchronously touch its core
    // (fill callbacks, invalidation snoops, speculation aborts), so they
    // carry the destination node as a wake tag; directory-bound messages
    // only mutate directory state and send further (tagged) messages.
    const std::uint32_t wake =
        msg.dstUnit == Unit::Agent ? msg.dst : kNoWakeNode;
    if (faults_ != nullptr) [[unlikely]] {
        // Fault-injection detour: the injector decides this message's
        // fate (drop / extra delay / duplicate) and schedules whatever
        // deliveries survive, FIFO-clamped per pair.
        faults_->route(msg, idx, wake, delay(msg.src, msg.dst));
        return;
    }
    // One copy, parameter -> pooled event slot (the old path copied the
    // Msg a second time into a heap-allocated closure, node-local
    // deliveries included).
    eq_.scheduleMsg(delay(msg.src, msg.dst), idx, msg, wake);
}

} // namespace invisifence
