/**
 * @file
 * Per-node cache agent: private inclusive L1D + L2 pair, victim cache,
 * MSHRs, and the node's side of the directory protocol.
 *
 * The agent is the coherence endpoint for its node. The L2 line holds the
 * node's global MESI state; the L1 holds presence, an L1-vs-L2 dirty bit,
 * block data, and InvisiFence's speculatively-read/written bits. Blocks
 * with speculative bits never leave the L1 (their eviction forces the
 * listener to resolve the speculation), so external-request conflict
 * checks against L1 bits detect every ordering violation (Section 3.2).
 *
 * Protocol steps that need both levels of one block resolve them once
 * into a BlockView and pass that view (or a generation-stamped handle)
 * down, instead of re-running the tag scan at every layer.
 */

#ifndef INVISIFENCE_COH_CACHE_AGENT_HH
#define INVISIFENCE_COH_CACHE_AGENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coh/directory.hh"
#include "coh/listener.hh"
#include "coh/message.hh"
#include "coh/network.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "mem/victim_cache.hh"
#include "sim/event_queue.hh"
#include "sim/inplace_fn.hh"
#include "sim/ring_deque.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace invisifence {

/** Cache hierarchy parameters (Figure 6 defaults). */
struct AgentParams
{
    std::uint64_t l1Size = 64 * 1024;
    std::uint32_t l1Ways = 2;
    Cycle l1Latency = 2;          //!< load-to-use
    std::uint64_t l2Size = 2 * 1024 * 1024;
    std::uint32_t l2Ways = 8;
    Cycle l2Latency = 25;
    std::uint32_t victimEntries = 16;
    Cycle victimLatency = 3;
    std::uint32_t mshrs = 32;

    /** @{ Fault-tolerance knobs (see sim/fault.hh). A nonzero
     *  retryTimeout arms a retransmit deadline per outstanding request
     *  (exponential backoff, bounded attempts). faultTolerant is
     *  derived by the System — set whenever faults or retries are
     *  enabled — and turns on transaction-id tagging plus the tolerant
     *  receive paths (orphan acks, owner-self forwards). Both default
     *  off: the clean-run protocol paths are byte-identical. */
    Cycle retryTimeout = 0;          //!< retransmit deadline, 0 = off
    std::uint32_t retryMax = 10;     //!< timeouts before declaring loss
    Cycle retryBackoffCap = 65536;   //!< ceiling on the backoff delay
    bool faultTolerant = false;
    /** @} */
};

/** Coherence endpoint and two-level private cache hierarchy of one node. */
class CacheAgent
{
  public:
    CacheAgent(NodeId node, const HomeMap& home_map, Network& net,
               EventQueue& eq, const AgentParams& params);

    void setListener(CoherenceListener* l) { listener_ = l; }

    /** Where a block currently lives, for hit/miss latency accounting. */
    enum class Where { L1, Local, Remote };
    Where probe(Addr addr) const;

    /**
     * Both levels of one block, resolved once per protocol step.
     * A view is a pair of lightweight Line accessors — reads through it
     * always see the current line contents; it must not be held across
     * simulated time (take a Handle for that).
     */
    struct BlockView
    {
        CacheArray::Line l1;   //!< null when not L1-resident
        CacheArray::Line l2;   //!< null when not L2-resident

        /** Same predicate as l1Writable(): present + writable state. */
        bool
        writable() const
        {
            return l1 && l2 && isWritable(l2.state());
        }
    };

    /**
     * Resolve @p addr's block for the write/routing paths. The L2 tag
     * scan runs only when the L1 holds the block (writability needs
     * both; every other consumer of the view checks `l1` first), so
     * the common pending-miss probe touches one tag lane, not two.
     */
    BlockView
    resolveBlock(Addr addr)
    {
        BlockView v;
        v.l1 = l1_.lookup(addr);
        if (v.l1)
            v.l2 = l2_.lookup(addr);
        return v;
    }

    /** @{ Presence and permission probes (L2 state is authoritative). */
    bool l1Present(Addr addr) const;
    bool l1Readable(Addr addr) const;
    bool l1Writable(Addr addr) const;
    bool l1Dirty(Addr addr) const;
    bool l1SpecWritten(Addr addr) const;
    /** @} */

    /**
     * Combined l1Readable + readWordL1: one resolution. True and the
     * word stored to @p value when the block is readable in the L1.
     */
    bool tryReadL1(Addr addr, std::uint64_t* value) const;

    /**
     * Bring the block into the L1 with (at least) the requested
     * permission; @p cb runs when it is usable. Returns false when the
     * fetch MSHRs are exhausted (caller retries later; see the
     * full-stall episode accounting in Core/SpeculativeImpl). @p cb is
     * a typed {fn, owner, arg} record (FillWaiter) stored inline in
     * the MSHR / pooled event, never on the heap; omit it for pure
     * prefetch/permission requests (a null callback is not queued at
     * all, so retry-heavy drain loops don't grow the waiter lists).
     * Identical records merge: same-block requests carrying the same
     * record share one waiter node, and same-tick local fills to one
     * block share one scheduled event (a waiter batch).
     */
    bool request(Addr addr, bool write, FillWaiter cb = {});

    /** True when a fetch for this block is already outstanding. */
    bool fetchOutstanding(Addr addr) const;

    /** @{ L1 data access; block must be present (and writable to write). */
    std::uint64_t readWordL1(Addr addr) const;
    void writeWordL1(Addr addr, std::uint64_t value, bool speculative,
                     std::uint32_t ctx);
    void writeWordL1(const BlockView& view, Addr addr,
                     std::uint64_t value, bool speculative,
                     std::uint32_t ctx);
    void writeMaskedL1(Addr block_addr, const MaskedBlock& data,
                       bool speculative, std::uint32_t ctx);
    void writeMaskedL1(const BlockView& view, const MaskedBlock& data,
                       bool speculative, std::uint32_t ctx);
    /** @} */

    /** Mark the block speculatively read in context @p ctx. */
    void setSpecRead(Addr addr, std::uint32_t ctx);

    /**
     * Combined l1Present + setSpecRead: one resolution. False (and no
     * marking) when the block is not L1-resident.
     */
    bool markSpecReadIfPresent(Addr addr, std::uint32_t ctx);

    /**
     * Pull a locally-resident (L2/VC) block back into the L1 immediately.
     * Used when a retiring speculative load must mark its block but the
     * line slipped into the victim cache between execute and retire.
     * Returns false when the block is not locally resident.
     */
    bool tryInstantL1Install(Addr addr);

    /**
     * While blocked, all arriving external requests are parked on the
     * deferred queue (ASO's commit drain disables the cache's external
     * interface). serveDeferred() runs automatically on unblock.
     */
    void setExternalBlocked(bool blocked);
    bool externalBlocked() const { return externalBlocked_; }

    /**
     * Clean-writeback: copy the L1's dirty data down to the L2 so the
     * pre-speculative value survives an abort (Section 3.2, speculative
     * stores). @p cb runs when the copy completes. Returns false when the
     * block is not dirty in L1 (no cleaning needed; @p cb not called).
     */
    bool cleanWriteback(Addr addr, FillCallback cb);

    /** Commit context @p ctx: flash-clear its speculative bits. */
    void flashCommit(std::uint32_t ctx);

    /**
     * Abort context @p ctx: flash-invalidate speculatively-written blocks
     * and clear the context's bits (Figure 3 conditional clear).
     */
    void flashAbort(std::uint32_t ctx);

    /** Number of L1 lines with speculative bits in @p ctx (O(1)). */
    std::uint32_t specBlockCount(std::uint32_t ctx) const;

    /** O(1) count of L1 lines holding any speculative bit. */
    std::uint32_t specFootprint() const { return specLines_; }

    /**
     * Warm-start utility: install a block directly into the L2 with the
     * given state (the matching directory entry must be primed too).
     * Models the warm caches of the paper's sampling methodology.
     */
    void primeBlock(Addr block, CoherenceState state,
                    const BlockData& data);

    /** Network sink for this node's agent unit. */
    void deliver(const Msg& msg);

    /** Re-process external requests parked by a Defer verdict. */
    void serveDeferred();
    bool hasDeferred() const { return !deferred_.empty(); }

    /** @{ Test access. */
    CacheArray& l1() { return l1_; }
    CacheArray& l2() { return l2_; }
    VictimCache& victimCache() { return vc_; }
    MshrFile& mshrs() { return mshrs_; }
    const MshrFile& mshrs() const { return mshrs_; }
    NodeId node() const { return node_; }
    const AgentParams& params() const { return params_; }
    /** @} */

    /** Register this agent's (and its MSHR file's) statistics. */
    void registerStats(StatRegistry& reg, const std::string& prefix) const;

    std::uint64_t statL1FillsLocal = 0;
    std::uint64_t statL1FillsRemote = 0;
    std::uint64_t statUpgrades = 0;
    std::uint64_t statExternalServed = 0;
    std::uint64_t statExternalDeferred = 0;
    std::uint64_t statCleanWritebacks = 0;
    std::uint64_t statForcedSpecEvictions = 0;
    std::uint64_t statDeferredFills = 0;
    std::uint64_t statL2Evictions = 0;

    /** @{ Fault-tolerance counters (all zero with the knobs off). */
    std::uint64_t statRetries = 0;          //!< requests retransmitted
    std::uint64_t statOrphanWbAcks = 0;     //!< acks with no wb MSHR
    std::uint64_t statWbAbandoned = 0;      //!< writebacks made moot
    std::uint64_t statRetryBackoffMax = 0;  //!< largest backoff armed
    /** @} */

  private:
    void handleFill(const Msg& msg);
    void handleExternal(const Msg& msg);
    /**
     * Serve an external request. @p l1h is the generation-stamped
     * handle of the L1 line handleExternal resolved (null when absent);
     * revalidated in O(1) — conflict resolution may have invalidated
     * the frame between resolution and service.
     */
    void serveExternal(const Msg& msg, CacheArray::Handle l1h);
    void handleWbAck(const Msg& msg);

    /** Install/update a block in the L2 (may evict; sends writebacks). */
    CacheArray::Line installL2(Addr block, const BlockData& data,
                               CoherenceState state);
    /**
     * Copy the L2-resident block @p l2line into the L1 (may evict to
     * the VC). Returns a null Line when every candidate way holds
     * speculative state and the listener cannot commit yet; the caller
     * defers and retries while the store buffer drains (Section 4.1,
     * cache overflow).
     */
    CacheArray::Line installL1(Addr block, CacheArray::Line l2line);
    /** Retry loop for network fills blocked on speculative eviction. */
    void finishFill(Addr block, int attempt);
    /** Retry loop for L2/VC-local fills (same deferral rules). */
    void completeLocalFill(Addr block, FillWaiter cb, int attempt);
    /** Run one batch of merged same-(block, due) local-fill waiters. */
    void runLocalFillBatch(std::uint32_t slot);
    void evictL2Line(CacheArray::Line line);
    void sendToHome(MsgType type, Addr block, const BlockData* data,
                    bool dirty, std::uint32_t txn_id = 0);
    /**
     * Send the request that MSHR @p m tracks. In fault-tolerant mode
     * this tags the message with a fresh transaction id (the home's
     * dedup key) and arms the retransmit timer; otherwise it is exactly
     * sendToHome. Reissues (stolen block, upgrade follow-on) get a
     * fresh id too — they open a new directory transaction.
     */
    void sendRequest(Mshr* m, MsgType type, const BlockData* data,
                     bool dirty);
    /** Schedule the retry deadline for (@p block, @p kind, @p txn). */
    void armRetry(Addr block, Mshr::Kind kind, std::uint32_t txn,
                  std::uint32_t attempt);
    /** Retry deadline elapsed: retransmit, re-arm, or abandon. */
    void onRetryTimer(Addr block, Mshr::Kind kind, std::uint32_t txn,
                      std::uint32_t attempt);
    /** Backoff delay before attempt @p attempt's deadline. */
    Cycle backoffFor(std::uint32_t attempt) const;
    /** Propagate dirty L1 data into the L2 line. */
    void syncL2FromL1(Addr block);
    void syncL2FromL1(CacheArray::Line l1line, CacheArray::Line l2line);
    /** Number of fetch-kind MSHRs in use. */
    std::uint32_t fetchCount() const { return fetchCount_; }

    NodeId node_;
    HomeMap homeMap_;
    Network& net_;
    EventQueue& eq_;
    AgentParams params_;
    CoherenceListener* listener_ = nullptr;

    CacheArray l1_;
    CacheArray l2_;
    VictimCache vc_;
    MshrFile mshrs_;
    std::uint32_t fetchCount_ = 0;
    std::uint32_t nextTxnId_ = 1;   //!< 0 is the "untagged" sentinel
    std::uint32_t specLines_ = 0;   //!< L1 lines with speculative bits
    RingDeque<Msg> deferred_;
    bool externalBlocked_ = false;
    /** Recycled scratch buffers for deferred-request drains: swap-out
     *  iteration without per-call vector churn. A pool, not a single
     *  member, because drains can re-enter (abort paths). */
    std::vector<std::vector<Msg>> msgScratchPool_;

    /**
     * Local-fill event batching: N same-tick requests hitting one
     * locally resident block used to schedule N identical
     * completeLocalFill events; now the first schedules a batch event
     * and the rest append their waiter to it. A request merges IFF
     * nothing else was scheduled since the batch (lastLocalSeqAfter_
     * still matches the queue's scheduled count) and (block, due)
     * match: the merged events would have been adjacent in the
     * same-tick FIFO, so running their waiters back-to-back inside one
     * event is unobservable. Slots are free-listed; waiter vectors
     * keep their capacity across reuse (steady state allocates
     * nothing). Off with the MSHR-index escape hatch.
     */
    struct LocalFillBatch
    {
        Addr block = 0;
        std::vector<FillWaiter> waiters;
        std::uint32_t nextFree = ~std::uint32_t{0};
    };
    std::vector<LocalFillBatch> localBatches_;
    std::uint32_t freeBatch_ = ~std::uint32_t{0};
    /** @{ Fingerprint of the most recently scheduled batch. */
    Addr lastLocalBlock_ = ~Addr{0};
    Cycle lastLocalDue_ = 0;
    std::uint32_t lastLocalSlot_ = ~std::uint32_t{0};
    std::uint64_t lastLocalSeqAfter_ = ~std::uint64_t{0};
    /** @} */
};

} // namespace invisifence

#endif // INVISIFENCE_COH_CACHE_AGENT_HH
