#include "core/invisifence.hh"

#include <algorithm>
#include "sim/annotations.hh"

#include "sim/log.hh"

namespace invisifence {

SpecConfig
SpecConfig::selective(Model m, std::uint32_t ckpts)
{
    SpecConfig c;
    c.model = m;
    c.continuous = false;
    c.numCheckpoints = ckpts;
    c.sbEntries = ckpts >= 2 ? 32 : 8;
    return c;
}

SpecConfig
SpecConfig::continuousMode(bool cov)
{
    SpecConfig c;
    c.model = Model::SC;    // continuous chunks enforce any model
    c.continuous = true;
    c.numCheckpoints = 2;
    c.sbEntries = 32;
    c.commitOnViolate = cov;
    c.maxWindowInsts = 0;   // chunking already bounds window length
    return c;
}

SpecConfig
SpecConfig::aso()
{
    SpecConfig c;
    c.model = Model::SC;
    c.continuous = false;
    c.numCheckpoints = 2;
    c.sbEntries = 0xffffff;     // SSB: no practical capacity limit
    c.unboundedSb = true;
    c.commitDrainPerStore = 1;  // drain one store per cycle into the L2
    c.nameOverride = "aso_sc";
    return c;
}

std::string
SpecConfig::name() const
{
    if (!nameOverride.empty())
        return nameOverride;
    if (continuous)
        return commitOnViolate ? "invisi_cont_cov" : "invisi_cont";
    std::string n = std::string("invisi_") + modelName(model);
    if (numCheckpoints >= 2)
        n += "_2ckpt";
    if (commitOnViolate)
        n += "_cov";
    return n;
}

SpeculativeImpl::SpeculativeImpl(const SpecConfig& cfg, Core& core,
                                 CacheAgent& agent)
    : ConsistencyImpl(cfg.name(), core, agent), cfg_(cfg),
      sb_(cfg.sbEntries)
{
    IF_DBG_ASSERT(cfg_.numCheckpoints >= 1 &&
           cfg_.numCheckpoints <= kMaxCheckpoints);
    if (cfg_.continuous)
        IF_DBG_ASSERT(cfg_.numCheckpoints == 2);
}

// ---------------------------------------------------------------------
// Checkpoint bookkeeping
// ---------------------------------------------------------------------

bool
SpeculativeImpl::hasOpenCkpt() const
{
    return !order_.empty() && !ckpts_[order_.back()].closed;
}

std::uint32_t
SpeculativeImpl::openCtx() const
{
    IF_DBG_ASSERT(hasOpenCkpt());
    return order_.back();
}

std::uint32_t
SpeculativeImpl::freeSlot() const
{
    for (std::uint32_t c = 0; c < cfg_.numCheckpoints; ++c) {
        if (!ckpts_[c].active)
            return c;
    }
    return kNoSpecCtx;
}

void
SpeculativeImpl::openCkpt()
{
    const std::uint32_t c = freeSlot();
    IF_DBG_ASSERT(c != kNoSpecCtx && "no free checkpoint slot");
    Ckpt& k = ckpts_[c];
    k = Ckpt{};
    k.active = true;
    k.snap = core_.retiredSnapshot();
    k.boundarySeq = core_.lastRetiredSeq();
    k.startedAt = core_.now();
    hotPush(order_, c);
    ++statSpeculations;
    core_.noteWork();
}

void
SpeculativeImpl::maybeCloseChunk()
{
    if (!speculating() || cfg_.numCheckpoints < 2)
        return;
    Ckpt& k = ckpts_[order_.back()];
    if (k.closed || k.retiredInsts < cfg_.minChunkSize)
        return;
    if (freeSlot() == kNoSpecCtx)
        return;
    k.closed = true;
    openCkpt();
}

// ---------------------------------------------------------------------
// Store routing (Section 3.2: speculative stores)
// ---------------------------------------------------------------------

SpeculativeImpl::StoreRoute
SpeculativeImpl::routeStore(Addr addr, bool spec, std::uint32_t ctx,
                            CacheAgent::BlockView* view_out) const
{
    const Addr blk = blockAlign(addr);
    const std::uint32_t label = spec ? ctx : kNonSpecCtx;

    // One resolution serves the held-entry scan, the writability check,
    // and (via view_out) doStore's direct hit.
    const CacheAgent::BlockView view =
        const_cast<CacheAgent&>(agent_).resolveBlock(blk);
    if (view_out)
        *view_out = view;

    bool any_block_entry = false;
    for (const auto& e : sb_.entries()) {
        if (e.blockAddr != blk)
            continue;
        if (e.speculative == spec && e.ctx == label)
            return StoreRoute::Merge;
        any_block_entry = true;
    }

    // Would a fresh entry need to be held behind an older checkpoint's
    // write to the same block?
    bool held = false;
    const CacheArray::Line line = view.l1;
    if (spec && line) {
        for (std::uint32_t o = 0; o < cfg_.numCheckpoints; ++o) {
            if (o != ctx && ckpts_[o].active && line.specWritten(o))
                held = true;
        }
    }

    if (any_block_entry) {
        if (sb_.full())
            return StoreRoute::Full;
        return held ? StoreRoute::NewEntryHeld : StoreRoute::NewEntry;
    }

    if (view.writable()) {
        const bool dirty_nonspec =
            line && line.dirty() && !line.specWrittenAny();
        if (spec && (dirty_nonspec || held)) {
            // First speculative store to a dirty block goes to the SB
            // while the cleaning writeback preserves the old value; a
            // second-checkpoint store to a first-checkpoint block waits
            // in the SB for the older commit.
            if (sb_.full())
                return StoreRoute::Full;
            return held ? StoreRoute::NewEntryHeld : StoreRoute::NewEntry;
        }
        return StoreRoute::DirectHit;
    }

    return sb_.full() ? StoreRoute::Full : StoreRoute::NewEntry;
}

RetireCheck
SpeculativeImpl::checkStoreCapacity(Addr addr, bool spec,
                                    std::uint32_t ctx, bool memoize,
                                    InstSeq seq)
{
    CacheAgent::BlockView view;
    const StoreRoute route = routeStore(addr, spec, ctx, &view);
    if (route == StoreRoute::Full)
        return {false, StallKind::SbFull};
    if (memoize) {
        routeMemoSeq_ = seq;
        routeMemoSpec_ = spec;
        routeMemoCtx_ = ctx;
        routeMemoRoute_ = route;
        routeMemoView_ = view;
    }
    return {true, StallKind::None};
}

void
SpeculativeImpl::doStore(Addr addr, std::uint64_t value, bool spec,
                         std::uint32_t ctx, InstSeq seq)
{
    CacheAgent::BlockView view;
    StoreRoute route;
    if (routeMemoSeq_ == seq && routeMemoSpec_ == spec &&
        routeMemoCtx_ == ctx) {
        route = routeMemoRoute_;
        view = routeMemoView_;
        IF_DBG_ASSERT(route == routeStore(addr, spec, ctx) &&
               "memoized store route drifted from a fresh resolution");
    } else {
        route = routeStore(addr, spec, ctx, &view);
    }
    routeMemoSeq_ = 0;
    const std::uint32_t label = spec ? ctx : kNonSpecCtx;
    switch (route) {
      case StoreRoute::DirectHit:
        agent_.writeWordL1(view, addr, value, spec, spec ? ctx : 0);
        break;
      case StoreRoute::Merge:
      case StoreRoute::NewEntry:
      case StoreRoute::NewEntryHeld: {
        const auto res =
            sb_.store(addr, kWordBytes, value, spec, label, seq);
        IF_DBG_ASSERT(res != CoalescingStoreBuffer::StoreResult::Full);
        (void)res;
        if (route == StoreRoute::NewEntryHeld) {
            for (auto& e : sb_.entries()) {
                if (e.blockAddr == blockAlign(addr) &&
                    e.speculative == spec && e.ctx == label) {
                    e.held = true;
                }
            }
        }
        break;
      }
      case StoreRoute::Full:
        IF_PANIC("store routed to a full store buffer");
    }
    if (spec)
        ++ckpts_[ctx].storeCount;
}

// ---------------------------------------------------------------------
// Retirement rules
// ---------------------------------------------------------------------

RetireCheck
SpeculativeImpl::conventionalCanRetire(RobEntry& entry)
{
    const Addr addr = entry.inst.addr;
    switch (entry.inst.type) {
      case OpType::Alu:
      case OpType::Nop:
      case OpType::Halt:
        return {true, StallKind::None};

      case OpType::Load:
        if (cfg_.model == Model::SC && !sb_.empty())
            return {false, StallKind::SbDrain};
        return {true, StallKind::None};

      case OpType::Store:
        if (cfg_.model != Model::RMO) {
            // The coalescing SB is unordered: under SC/TSO a store may
            // only retire non-speculatively when no older store is
            // pending (this is exactly the paper's speculation trigger).
            if (!sb_.empty())
                return {false, StallKind::SbDrain};
            return {true, StallKind::None};
        }
        // RMO: stores are unordered; only capacity can stall them.
        if (sb_.containsBlock(addr) || agent_.l1Writable(addr) ||
            !sb_.full()) {
            return {true, StallKind::None};
        }
        return {false, StallKind::SbFull};

      case OpType::Cas:
      case OpType::FetchAdd: {
        const bool order_ok =
            cfg_.model == Model::RMO ? !sb_.containsBlock(addr)
                                     : sb_.empty();
        if (!order_ok)
            return {false, StallKind::SbDrain};
        if (!agent_.l1Writable(addr)) {
            if (!agent_.fetchOutstanding(addr))
                agent_.request(addr, true);
            return {false, StallKind::SbDrain};
        }
        return {true, StallKind::None};
      }

      case OpType::Fence:
        if (cfg_.model == Model::SC)
            return {true, StallKind::None};
        if (cfg_.model == Model::TSO && !entry.inst.fullFence)
            return {true, StallKind::None};
        if (!sb_.empty())
            return {false, StallKind::SbDrain};
        return {true, StallKind::None};
    }
    return {true, StallKind::None};
}

RetireCheck
SpeculativeImpl::canRetire(RobEntry& entry)
{
    const Addr addr = entry.inst.addr;

    // Forward progress after an abort: complete one instruction under
    // the strictest non-speculative rules before speculating again.
    if (needNonSpecProgress_) {
        IF_DBG_ASSERT(!speculating());
        switch (entry.inst.type) {
          case OpType::Alu:
          case OpType::Nop:
          case OpType::Halt:
            return {true, StallKind::None};
          case OpType::Load:
          case OpType::Fence:
            if (!sb_.empty())
                return {false, StallKind::SbDrain};
            return {true, StallKind::None};
          case OpType::Store:
          case OpType::Cas:
          case OpType::FetchAdd:
            if (!sb_.empty())
                return {false, StallKind::SbDrain};
            if (!agent_.l1Writable(addr)) {
                if (!agent_.fetchOutstanding(addr))
                    agent_.request(addr, true);
                return {false, StallKind::SbDrain};
            }
            return {true, StallKind::None};
        }
    }

    const bool will_write =
        entry.inst.type == OpType::Store ||
        entry.inst.type == OpType::FetchAdd ||
        (entry.inst.type == OpType::Cas &&
         entry.result == entry.inst.expect);

    if (commitPressure_ && speculating()) {
        // A deferred fill needs the speculation gone: stall retirement
        // until the drain completes and the commit fires.
        return {false, StallKind::SbDrain};
    }

    // Only a plain store may memoize its route: nothing runs between
    // its capacity check here and doStore in onRetire (atomics run
    // mark_read first, which can install lines and change the route).
    const bool memo_ok = entry.inst.type == OpType::Store;

    if (cfg_.continuous || speculating()) {
        // Everything retires into the current speculation.
        if (!hasOpenCkpt()) {
            if (freeSlot() == kNoSpecCtx)
                return {false, StallKind::SbDrain};  // commit backpressure
            openCkpt();
        }
        if (will_write) {
            return checkStoreCapacity(addr, true, openCtx(), memo_ok,
                                      entry.seq);
        }
        return {true, StallKind::None};
    }

    // Selective, not currently speculating: conventional rules; an
    // ordering stall initiates speculation instead (Section 4.1).
    // RMO plain stores shortcut through the route computation, which
    // answers exactly the conventional question (ok unless no merge
    // target, no write permission, and no free entry — i.e. Full; RMO
    // stores never stall for ordering) and memoizes the resolution for
    // doStore.
    if (memo_ok && cfg_.model == Model::RMO)
        return checkStoreCapacity(addr, false, kNonSpecCtx, true,
                                  entry.seq);
    RetireCheck conv = conventionalCanRetire(entry);
    if (conv.ok)
        return conv;
    if (conv.stall == StallKind::SbDrain) {
        openCkpt();
        if (will_write) {
            return checkStoreCapacity(addr, true, openCtx(), memo_ok,
                                      entry.seq);
        }
        return {true, StallKind::None};
    }
    return conv;   // SB-full capacity stalls gain nothing from speculating
}

void
SpeculativeImpl::onRetire(RobEntry& entry)
{
    const bool spec = speculating();
    const std::uint32_t ctx = spec ? openCtx() : kNonSpecCtx;
    const Addr addr = entry.inst.addr;

    // Selective mode marks speculatively-read bits at retirement; the
    // block is local (any invalidation would have squashed the load via
    // the load-queue snoop), but it may have slipped into the victim
    // cache, in which case it is pulled back instantly.
    const auto mark_read = [&]() {
        if (!spec)
            return true;
        // Continuous mode normally marked the bit at execution; loads
        // that executed before a chunk was open retire unmarked and
        // must be marked here, or the violation would go undetected.
        if (cfg_.continuous && entry.specMarked)
            return true;
        if (agent_.markSpecReadIfPresent(addr, ctx))
            return true;
        if (!agent_.tryInstantL1Install(addr)) {
            ++statMarkFallbacks;
            abortAll();
            return false;
        }
        agent_.setSpecRead(addr, ctx);
        return true;
    };

    switch (entry.inst.type) {
      case OpType::Load:
        if (!mark_read())
            return;
        break;
      case OpType::Store:
        doStore(addr, entry.inst.value, spec, ctx, entry.seq);
        break;
      case OpType::Cas:
        if (!mark_read())
            return;
        if (entry.result == entry.inst.expect) {
            if (spec)
                doStore(addr, entry.inst.value, true, ctx, entry.seq);
            else
                agent_.writeWordL1(addr, entry.inst.value, false, 0);
        }
        break;
      case OpType::FetchAdd:
        if (!mark_read())
            return;
        if (spec) {
            doStore(addr, entry.result + entry.inst.value, true, ctx,
                    entry.seq);
        } else {
            agent_.writeWordL1(addr, entry.result + entry.inst.value,
                               false, 0);
        }
        break;
      default:
        break;
    }

    if (spec) {
        ++ckpts_[ctx].retiredInsts;
        maybeCloseChunk();
        // Bounded windows: once the speculation is long enough (or its
        // L1 footprint large enough) and no further checkpoint is
        // available, push it toward commit before it overflows the L1.
        const bool too_long =
            cfg_.maxWindowInsts != 0 && hasOpenCkpt() &&
            ckpts_[openCtx()].retiredInsts >= cfg_.maxWindowInsts;
        const bool too_big =
            cfg_.specFootprintCap != 0 &&
            agent_.specFootprint() >= cfg_.specFootprintCap;
        if ((too_long || too_big) && freeSlot() == kNoSpecCtx) {
            commitPressure_ = true;
            for (const std::uint32_t c : order_)
                ckpts_[c].closed = true;
        }
    } else {
        needNonSpecProgress_ = false;
    }
}

std::optional<std::uint64_t>
SpeculativeImpl::forwardStore(Addr addr) const
{
    return sb_.forward(addr);
}

void
SpeculativeImpl::onLoadExecuted(RobEntry& entry)
{
    // Continuous mode marks speculatively-read bits at execution
    // (Section 4.2), which subsumes load-queue snooping. Loads whose
    // value came from the store buffer (block absent) need no bit: their
    // producing store is part of the same atomic commit.
    if (!cfg_.continuous)
        return;
    // Open the first chunk lazily so even the earliest loads execute
    // inside a speculation (the paper's continuous chunks start at
    // cycle zero); when no slot is free the retirement-time backstop
    // in onRetire marks the bit instead.
    if (!hasOpenCkpt()) {
        if (needNonSpecProgress_ || commitPressure_ ||
            freeSlot() == kNoSpecCtx) {
            return;
        }
        openCkpt();
    }
    const Addr addr = entry.inst.addr;
    const std::uint32_t ctx = openCtx();
    if (!agent_.markSpecReadIfPresent(addr, ctx))
        return;
    entry.specMarked = true;
    entry.specCtx = ctx;
}

bool
SpeculativeImpl::routeCycles(StallKind kind, std::uint64_t n)
{
    if (!speculating())
        return false;
    ckpts_[order_.back()].pendingAcct.add(kind, n);
    return true;
}

void
SpeculativeImpl::onIdle()
{
    for (const std::uint32_t c : order_) {
        if (!ckpts_[c].closed) {
            ckpts_[c].closed = true;
            core_.noteWork();
        }
    }
}

Cycle
SpeculativeImpl::nextWorkAt() const
{
    // A CoV deferral window re-probes the deferred external requests
    // (bumping conflict/deferral counters) every cycle: never skip while
    // armed. Everything else is either event-driven or waits on the ASO
    // commit-drain deadline.
    if (covArmed_)
        return core_.now() + 1;
    if (!order_.empty()) {
        const Ckpt& k = ckpts_[order_.front()];
        if (k.committing) {
            return k.commitDoneAt <= core_.now() ? core_.now() + 1
                                                 : k.commitDoneAt;
        }
    }
    return kNeverCycle;
}

void
SpeculativeImpl::accrueQuiescentCycles(std::uint64_t n)
{
    if (speculating())
        statCyclesSpeculating += n;
}

bool
SpeculativeImpl::quiesced() const
{
    return !speculating() && sb_.empty() && cleaningPending_.empty();
}

void
SpeculativeImpl::dumpLiveness(std::FILE* out) const
{
    std::fprintf(out,
                 "    impl %s sb=%zu/%u ckpts=%zu cleaning=%zu "
                 "commitPressure=%d covArmed=%d\n",
                 name_.c_str(), sb_.size(), sb_.capacity(), order_.size(),
                 cleaningPending_.size(), commitPressure_ ? 1 : 0,
                 covArmed_ ? 1 : 0);
    for (const std::uint32_t ctx : order_) {
        const Ckpt& k = ckpts_[ctx];
        std::fprintf(out,
                     "      ckpt ctx=%u closed=%d committing=%d "
                     "stores=%llu startedAt=%llu\n",
                     ctx, k.closed ? 1 : 0, k.committing ? 1 : 0,
                     static_cast<unsigned long long>(k.storeCount),
                     static_cast<unsigned long long>(k.startedAt));
    }
    for (std::size_t i = 0; i < sb_.entries().size(); ++i) {
        const CoalescingStoreBuffer::Entry& e = sb_.entries()[i];
        std::fprintf(out,
                     "      sb[%zu] blk=%llx spec=%d ctx=%u "
                     "fillRequested=%d held=%d waitingFill=%d\n",
                     i, static_cast<unsigned long long>(e.blockAddr),
                     e.speculative ? 1 : 0, e.ctx, e.fillRequested ? 1 : 0,
                     e.held ? 1 : 0, e.waitingFill ? 1 : 0);
    }
}

// ---------------------------------------------------------------------
// Drain, commit, abort
// ---------------------------------------------------------------------

bool
SpeculativeImpl::anyNonSpecSbEntry() const
{
    for (const auto& e : sb_.entries()) {
        if (!e.speculative)
            return true;
    }
    return false;
}

bool
SpeculativeImpl::robHasMarkedLoads(std::uint32_t ctx) const
{
    // Only continuous mode marks speculatively-read bits at execution
    // (onLoadExecuted returns early otherwise), so the selective modes
    // can skip the window scan on every commit attempt outright.
    if (!cfg_.continuous)
        return false;
    const Rob& rob = core_.rob();
    for (std::size_t i = 0; i < rob.size(); ++i) {
        const RobEntry& e = rob.at(i);
        if (e.specMarked && e.specCtx == ctx)
            return true;
    }
    return false;
}

bool
SpeculativeImpl::commitConditionsMet(std::uint32_t ctx,
                                     bool ignore_closed) const
{
    const Ckpt& k = ckpts_[ctx];
    if (cfg_.continuous && !k.closed && !ignore_closed)
        return false;
    if (anyNonSpecSbEntry())
        return false;   // older (pre-speculation) stores must complete
    if (!sb_.emptyOfCtx(ctx))
        return false;
    if (robHasMarkedLoads(ctx))
        return false;   // continuous: all the chunk's loads must retire
    return true;
}

bool
SpeculativeImpl::tryCommitOldest(bool force_close)
{
    const std::uint32_t c = order_.front();
    Ckpt& k = ckpts_[c];

    if (k.committing) {
        // ASO: the SSB drain into the L2 is in progress; the external
        // interface stays blocked until it finishes. Commit first, THEN
        // unblock: the replayed external requests must observe the
        // committed state (and may abort the remaining checkpoints).
        if (core_.now() < k.commitDoneAt)
            return false;
        finishCommit(c);
        agent_.setExternalBlocked(false);
        return true;
    }

    if (!commitConditionsMet(c, force_close))
        return false;

    if (cfg_.commitDrainPerStore > 0 && k.storeCount > 0) {
        k.committing = true;
        k.commitDoneAt =
            core_.now() + k.storeCount * cfg_.commitDrainPerStore;
        agent_.setExternalBlocked(true);
        core_.noteWork();
        return false;
    }

    // INVISIFENCE: constant-time commit by flash-clearing the bits.
    finishCommit(c);
    return true;
}

void
SpeculativeImpl::finishCommit(std::uint32_t ctx)
{
    Ckpt& k = ckpts_[ctx];
    agent_.flashCommit(ctx);
    core_.breakdown().merge(k.pendingAcct);
    statSpecRetired += k.retiredInsts;
    ++statCommits;
    k = Ckpt{};
    IF_DBG_ASSERT(!order_.empty() && order_.front() == ctx);
    order_.erase(order_.begin());
    for (auto& e : sb_.entries())
        e.held = false;
    core_.noteWork();
}

void
SpeculativeImpl::abortAll()
{
    IF_DBG_ASSERT(speculating());
    ++statAborts;
    const ProgSnapshot snap = ckpts_[order_.front()].snap;
    const InstSeq boundary = ckpts_[order_.front()].boundarySeq;
    bool was_blocked = false;
    for (const std::uint32_t c : order_) {
        Ckpt& k = ckpts_[c];
        was_blocked |= k.committing;
        agent_.flashAbort(c);
        core_.breakdown().violation += k.pendingAcct.total();
        statAbortedRetired += k.retiredInsts;
        k = Ckpt{};
    }
    order_.clear();
    sb_.flashInvalidateSpeculative();
    cleaningPending_.clear();
    core_.rollbackTo(snap, boundary);
    needNonSpecProgress_ = true;
    covArmed_ = false;
    commitPressure_ = false;
    // Unblock only after all speculative state is gone: the replayed
    // external requests must not re-enter the abort path.
    if (was_blocked)
        agent_.setExternalBlocked(false);
    agent_.serveDeferred();
}

bool
SpeculativeImpl::cleaningPendingContains(Addr block) const
{
    return std::find(cleaningPending_.begin(), cleaningPending_.end(),
                     block) != cleaningPending_.end();
}

void
SpeculativeImpl::cleaningPendingErase(Addr block)
{
    auto it = std::find(cleaningPending_.begin(), cleaningPending_.end(),
                        block);
    if (it != cleaningPending_.end()) {
        *it = cleaningPending_.back();
        cleaningPending_.pop_back();
    }
}

void
SpeculativeImpl::onL1Install(Addr block)
{
    // A dormant store-buffer entry (waitingFill) skips its per-tick
    // writability probe; this hook is the only transition that can
    // make its block writable, so wake matching entries here. The SB
    // is small (paper: 8 entries), so the scan is cheaper than the
    // tag probes it saves.
    for (auto& e : sb_.entries()) {
        if (e.waitingFill && e.blockAddr == block)
            e.waitingFill = false;
    }
}

void
SpeculativeImpl::drainStoreBuffer()
{
    int drained = 0;
    drainSeen_.clear();   // capacity retained; the SB is small
    auto& entries = sb_.entries();
    for (std::size_t i = 0; i < entries.size();) {
        auto& e = entries[i];
        // Only the oldest entry per block may drain (checkpoint order).
        const bool first = std::find(drainSeen_.begin(), drainSeen_.end(),
                                     e.blockAddr) == drainSeen_.end();
        if (first)
            hotPush(drainSeen_, e.blockAddr);
        if (!first || e.held || e.waitingFill) {
            ++i;
            continue;
        }
        // One resolution per entry serves the writability check, the
        // cleaning-writeback predicate, and the final masked write.
        const CacheAgent::BlockView view =
            agent_.resolveBlock(e.blockAddr);
        if (!view.writable()) {
            // Issue the write fetch; re-issue if another core stole the
            // permission before this entry drained.
            if (!e.fillRequested ||
                !agent_.fetchOutstanding(e.blockAddr)) {
                if (agent_.request(e.blockAddr, true)) {
                    e.fillRequested = true;
                    e.fullStallNoted = false;
                    core_.noteWork();
                } else if (!e.fullStallNoted) {
                    // MSHRs exhausted: count the stall once per
                    // episode, not per retry (fast-forward skips the
                    // retry cycles the legacy loop burns).
                    e.fullStallNoted = true;
                    ++agent_.mshrs().statFullStalls;
                }
            }
            // While a fetch is in flight the per-tick probe is dead
            // weight: only installL1 can make the block writable, and
            // its onL1Install hook wakes the entry that same event.
            // (A pending local fill keeps probing: the legacy loop
            // re-requests it every tick, which touches LRU state.)
            if (e.fillRequested && agent_.fetchOutstanding(e.blockAddr))
                e.waitingFill = true;
            ++i;
            continue;
        }
        if (e.speculative) {
            const CacheArray::Line line = view.l1;
            if (line && line.dirty() && !line.specWrittenAny()) {
                // Preserve the pre-speculative value before the first
                // speculative byte lands in the L1 (Section 3.2).
                if (!cleaningPendingContains(e.blockAddr)) {
                    hotPush(cleaningPending_, e.blockAddr);
                    ++statCleanings;
                    core_.noteWork();
                    const Addr blk = e.blockAddr;
                    agent_.cleanWriteback(blk, [this, blk]() {
                        cleaningPendingErase(blk);
                    });
                }
                ++i;
                continue;
            }
            if (cleaningPendingContains(e.blockAddr)) {
                ++i;
                continue;
            }
        }
        if (drained >= 2) {
            ++i;
            continue;
        }
        agent_.writeMaskedL1(view, e.data, e.speculative,
                             e.speculative ? e.ctx : 0);
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
        ++drained;
        core_.noteWork();
    }
}

void
SpeculativeImpl::tick()
{
    IF_HOT;
    if (speculating())
        ++statCyclesSpeculating;

    drainStoreBuffer();

    if (covArmed_ && core_.now() >= covDeadline_) {
        ++statCovTimeouts;
        if (speculating()) {
            abortAll();
        } else {
            covArmed_ = false;
            agent_.serveDeferred();
        }
        return;
    }

    while (speculating() && tryCommitOldest(covArmed_ || commitPressure_)) {
    }
    if (commitPressure_ && !speculating()) {
        // Behavior-relevant transition (continuous mode may open chunks
        // again): visible to the fast-forward quiescence detector.
        commitPressure_ = false;
        core_.noteWork();
    }

    if (covArmed_) {
        agent_.serveDeferred();
        if (!agent_.hasDeferred()) {
            covArmed_ = false;
            ++statCovCommits;
        }
    }
}

// ---------------------------------------------------------------------
// Coherence listener
// ---------------------------------------------------------------------

ConsistencyImpl::ExtAction
SpeculativeImpl::onSpecConflict(Addr block, bool wants_write)
{
    (void)block;
    (void)wants_write;
    ++statConflicts;
    if (!speculating()) {
        // Bits can linger only transiently; treat as resolved.
        return ExtAction::Proceed;
    }
    if (cfg_.commitOnViolate) {
        if (!covArmed_) {
            covArmed_ = true;
            covDeadline_ = core_.now() + cfg_.covTimeout;
            ++statCovDeferrals;
        }
        return ExtAction::Defer;
    }
    abortAll();
    return ExtAction::Proceed;
}

bool
SpeculativeImpl::resolveSpecEviction(Addr block)
{
    (void)block;
    ++statForcedEvictions;
    if (!speculating())
        return true;   // stale bits cannot exist; nothing to resolve
    // Commit everything if every active checkpoint could commit right
    // now; otherwise the agent defers the fill while the store buffer
    // drains (Section 4.1: wait for the drain, then commit).
    bool all_ready = !anyNonSpecSbEntry();
    for (const std::uint32_t c : order_) {
        if (!sb_.emptyOfCtx(c) || robHasMarkedLoads(c))
            all_ready = false;
    }
    if (!all_ready) {
        commitPressure_ = true;
        for (const std::uint32_t c : order_)
            ckpts_[c].closed = true;
        core_.noteWork();
        return false;
    }
    while (speculating())
        finishCommit(order_.front());
    return true;
}

void
SpeculativeImpl::resolveSpecEvictionHard(Addr block)
{
    (void)block;
    if (speculating())
        abortAll();
}

Breakdown
SpeculativeImpl::pendingBreakdown() const
{
    Breakdown b;
    for (const std::uint32_t c : order_)
        b.merge(ckpts_[c].pendingAcct);
    return b;
}

void
SpeculativeImpl::registerStats(StatRegistry& reg,
                               const std::string& prefix) const
{
    reg.registerStat(prefix + ".speculations", &statSpeculations);
    reg.registerStat(prefix + ".commits", &statCommits);
    reg.registerStat(prefix + ".aborts", &statAborts);
    reg.registerStat(prefix + ".cycles_speculating",
                     &statCyclesSpeculating);
    reg.registerStat(prefix + ".spec_retired", &statSpecRetired);
    reg.registerStat(prefix + ".aborted_retired", &statAbortedRetired);
    reg.registerStat(prefix + ".conflicts", &statConflicts);
    reg.registerStat(prefix + ".cov_deferrals", &statCovDeferrals);
    reg.registerStat(prefix + ".cov_commits", &statCovCommits);
    reg.registerStat(prefix + ".cov_timeouts", &statCovTimeouts);
    reg.registerStat(prefix + ".forced_evictions", &statForcedEvictions);
    reg.registerStat(prefix + ".cleanings", &statCleanings);
}

} // namespace invisifence
