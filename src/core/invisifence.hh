/**
 * @file
 * INVISIFENCE: post-retirement speculation for memory ordering
 * (Sections 3 and 4 of the paper), plus the ASO baseline as a
 * configuration preset.
 *
 * The engine implements:
 *  - register checkpoints (program snapshots), one or two in flight;
 *  - speculatively-read/written bits in the L1 with flash commit/abort;
 *  - the coalescing store buffer discipline, including the no-coalesce
 *    rule across speculative/non-speculative and checkpoint boundaries,
 *    cleaning writebacks of dirty blocks, and held second-checkpoint
 *    entries;
 *  - INVISIFENCE-SELECTIVE triggers for SC/TSO/RMO (Section 4.1) with
 *    constant-time opportunistic commit;
 *  - INVISIFENCE-CONTINUOUS chunked execution with a minimum chunk size
 *    and pipelined two-checkpoint commit (Section 4.2), marking read bits
 *    at execute and subsuming load-queue snooping;
 *  - the commit-on-violate (CoV) policy with a bounded timeout
 *    (Section 3.2, violation detection);
 *  - an ASO-like baseline (Section 5/6.4): unbounded per-store buffer,
 *    multiple checkpoints, and a commit that drains one store per cycle
 *    into the L2 while the cache's external interface is blocked.
 */

#ifndef INVISIFENCE_CORE_INVISIFENCE_HH
#define INVISIFENCE_CORE_INVISIFENCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/consistency.hh"
#include "cpu/core.hh"
#include "mem/store_buffer.hh"
#include "sim/types.hh"

namespace invisifence {

/** Configuration of one speculative consistency implementation. */
struct SpecConfig
{
    Model model = Model::SC;       //!< enforced consistency model
    bool continuous = false;       //!< continuous (chunk) speculation
    std::uint32_t numCheckpoints = 1;
    std::uint32_t sbEntries = 8;   //!< 32 with two checkpoints (Fig. 6)
    std::uint32_t minChunkSize = 100;
    bool commitOnViolate = false;
    Cycle covTimeout = 4000;
    /** ASO: cycles per store drained at commit (0 = flash commit). */
    Cycle commitDrainPerStore = 0;
    /** ASO: per-store SSB with no practical capacity limit. */
    bool unboundedSb = false;
    /**
     * Bound on a single-checkpoint speculation's length (instructions).
     * When exceeded, the engine stops extending the window so the store
     * buffer drains and the commit fires — the same periodic-commit idea
     * as ASO's checkpoints, and it keeps the speculative footprint well
     * inside the L1 (0 = unbounded). Swept by bench/abl_window.
     */
    std::uint64_t maxWindowInsts = 0;
    /**
     * Commit pressure starts once this many L1 lines carry speculative
     * bits: keeping the footprint well below the L1's capacity avoids
     * forced-eviction stalls/aborts (the paper's cache-overflow commit,
     * applied proactively). Swept by bench/abl_window.
     */
    std::uint32_t specFootprintCap = 320;
    std::string nameOverride;

    /** INVISIFENCE-SELECTIVE for @p m (Invisi_sc / _tso / _rmo). */
    static SpecConfig selective(Model m, std::uint32_t ckpts = 1);
    /** INVISIFENCE-CONTINUOUS (optionally with commit-on-violate). */
    static SpecConfig continuousMode(bool cov);
    /** ASO baseline enforcing SC (ASOsc in Section 6.4). */
    static SpecConfig aso();

    std::string name() const;
};

/** The unified post-retirement speculation engine. */
class SpeculativeImpl : public ConsistencyImpl
{
  public:
    SpeculativeImpl(const SpecConfig& cfg, Core& core, CacheAgent& agent);

    void tick() override;
    RetireCheck canRetire(RobEntry& entry) override;
    void onRetire(RobEntry& entry) override;
    std::optional<std::uint64_t> forwardStore(Addr addr) const override;
    bool speculating() const override { return !order_.empty(); }
    void onLoadExecuted(RobEntry& entry) override;
    bool routeCycles(StallKind kind, std::uint64_t n) override;
    void onIdle() override;
    bool quiesced() const override;
    Cycle nextWorkAt() const override;
    void accrueQuiescentCycles(std::uint64_t n) override;
    void dumpLiveness(std::FILE* out) const override;

    ExtAction onSpecConflict(Addr block, bool wants_write) override;
    bool resolveSpecEviction(Addr block) override;
    void resolveSpecEvictionHard(Addr block) override;
    void onL1Install(Addr block) override;

    const SpecConfig& config() const { return cfg_; }
    const CoalescingStoreBuffer& storeBuffer() const { return sb_; }

    /** Register engine statistics under @p prefix. */
    void registerStats(StatRegistry& reg, const std::string& prefix) const;

    /** Cycles accrued by still-active checkpoints (not yet folded). */
    Breakdown pendingBreakdown() const;

    std::uint64_t statSpeculations = 0;
    std::uint64_t statCommits = 0;
    std::uint64_t statAborts = 0;
    std::uint64_t statCyclesSpeculating = 0;
    std::uint64_t statSpecRetired = 0;       //!< committed spec instrs
    std::uint64_t statAbortedRetired = 0;    //!< discarded spec instrs
    std::uint64_t statConflicts = 0;
    std::uint64_t statCovDeferrals = 0;
    std::uint64_t statCovCommits = 0;
    std::uint64_t statCovTimeouts = 0;
    std::uint64_t statForcedEvictions = 0;
    std::uint64_t statCleanings = 0;
    std::uint64_t statMarkFallbacks = 0;

  private:
    /** One checkpoint context. */
    struct Ckpt
    {
        bool active = false;
        bool closed = false;      //!< no longer accepts instructions
        bool committing = false;  //!< ASO drain in progress
        Cycle commitDoneAt = 0;
        ProgSnapshot snap{};
        InstSeq boundarySeq = 0;  //!< last retired seq at checkpoint time
        Cycle startedAt = 0;
        std::uint64_t retiredInsts = 0;
        std::uint64_t storeCount = 0;
        Breakdown pendingAcct{};
    };

    /** Where a retiring store's data goes. */
    enum class StoreRoute
    {
        DirectHit,     //!< write straight into the L1
        Merge,         //!< coalesce into a compatible SB entry
        NewEntry,      //!< allocate a fresh SB entry
        NewEntryHeld,  //!< fresh entry held until the older ckpt commits
        Full,          //!< no room: SB-full stall
    };
    /**
     * Classify a store. Resolves the block's L1/L2 lines once; when
     * @p view_out is non-null the resolution is returned so the caller
     * (doStore's direct-hit path) can write through it without another
     * tag scan.
     */
    StoreRoute routeStore(Addr addr, bool spec, std::uint32_t ctx,
                          CacheAgent::BlockView* view_out = nullptr) const;
    void doStore(Addr addr, std::uint64_t value, bool spec,
                 std::uint32_t ctx, InstSeq seq);
    /**
     * Capacity check for a retiring write. For a plain store (@p
     * memoize), the computed route and block resolution are remembered
     * keyed by @p seq: nothing can run between canRetire's check and
     * onRetire's doStore for that instruction, so doStore reuses them
     * instead of re-running routeStore (debug builds re-derive and
     * assert equality).
     */
    RetireCheck checkStoreCapacity(Addr addr, bool spec,
                                   std::uint32_t ctx, bool memoize,
                                   InstSeq seq);

    /** Conventional-mode retirement rules for the target model. */
    RetireCheck conventionalCanRetire(RobEntry& entry);
    /** Would the conventional rules stall this entry for ordering? */
    bool wouldTriggerSpeculation(const RobEntry& entry) const;

    bool hasOpenCkpt() const;
    std::uint32_t openCtx() const;
    std::uint32_t freeSlot() const;
    void openCkpt();
    void maybeCloseChunk();

    bool anyNonSpecSbEntry() const;
    bool robHasMarkedLoads(std::uint32_t ctx) const;
    bool commitConditionsMet(std::uint32_t ctx, bool ignore_closed) const;
    /** Advance the oldest checkpoint toward commit; true if it retired. */
    bool tryCommitOldest(bool force_close);
    void finishCommit(std::uint32_t ctx);
    void abortAll();
    void drainStoreBuffer();

    SpecConfig cfg_;
    CoalescingStoreBuffer sb_;
    Ckpt ckpts_[kMaxCheckpoints];
    std::vector<std::uint32_t> order_;   //!< active ckpts, oldest first
    bool needNonSpecProgress_ = false;
    /** A deferred fill is waiting: stop extending speculation so the
     *  store buffer drains and the commit can fire (Section 4.1). */
    bool commitPressure_ = false;
    bool covArmed_ = false;
    Cycle covDeadline_ = 0;
    /** Blocks with a cleaning writeback in flight. A small flat vector
     *  (bounded by the SB size), not a node-based set: insert/erase per
     *  cleaned store must not touch the heap. */
    std::vector<Addr> cleaningPending_;
    bool cleaningPendingContains(Addr block) const;
    void cleaningPendingErase(Addr block);
    /** Per-tick "first entry per block" scratch for drainStoreBuffer
     *  (reused; a per-call unordered_set allocated every tick). */
    std::vector<Addr> drainSeen_;
    /** @{ Route memo from checkStoreCapacity to doStore (seq 0 = none). */
    InstSeq routeMemoSeq_ = 0;
    bool routeMemoSpec_ = false;
    std::uint32_t routeMemoCtx_ = 0;
    StoreRoute routeMemoRoute_ = StoreRoute::Full;
    CacheAgent::BlockView routeMemoView_{};
    /** @} */
};

} // namespace invisifence

#endif // INVISIFENCE_CORE_INVISIFENCE_HH
