#include "harness/table.hh"

#include <algorithm>
#include <cstdio>

namespace invisifence {

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::pct(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
    return buf;
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    os << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "" : "  ");
            os.width(static_cast<std::streamsize>(widths[i]));
            os << (i == 0 ? std::left : std::right);
            os << row[i];
        }
        os << "\n";
    };
    os << std::left;
    print_row(header_);
    std::string rule;
    for (std::size_t i = 0; i < widths.size(); ++i)
        rule += std::string(widths[i], '-') + (i + 1 < widths.size()
                                                   ? "  "
                                                   : "");
    os << rule << "\n";
    for (const auto& row : rows_)
        print_row(row);
    os << "\n";
}

} // namespace invisifence
