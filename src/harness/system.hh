/**
 * @file
 * Whole-system builder: N nodes of {core, cache agent, directory slice}
 * on a torus, one consistency implementation per core.
 *
 * Default parameters reproduce Figure 6 (16 nodes, 4-wide OoO cores,
 * 64 KB L1, private L2, 4x4 torus at 25 ns/hop, 40 ns memory).
 */

#ifndef INVISIFENCE_HARNESS_SYSTEM_HH
#define INVISIFENCE_HARNESS_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coh/cache_agent.hh"
#include "coh/directory.hh"
#include "coh/network.hh"
#include "core/invisifence.hh"
#include "cpu/consistency.hh"
#include "cpu/core.hh"
#include "mem/functional_mem.hh"
#include "sim/annotations.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"

namespace invisifence {

/** Every consistency implementation evaluated in the paper. */
enum class ImplKind
{
    ConvSC,          //!< conventional SC (Figures 1, 8, 9, 12)
    ConvTSO,         //!< conventional TSO
    ConvRMO,         //!< conventional RMO
    InvisiSC,        //!< INVISIFENCE-SELECTIVE enforcing SC
    InvisiTSO,       //!< INVISIFENCE-SELECTIVE enforcing TSO
    InvisiRMO,       //!< INVISIFENCE-SELECTIVE enforcing RMO
    InvisiSC2Ckpt,   //!< selective SC with two checkpoints (Figure 11)
    Continuous,      //!< INVISIFENCE-CONTINUOUS, abort-immediately
    ContinuousCoV,   //!< INVISIFENCE-CONTINUOUS with commit-on-violate
    Aso,             //!< ASOsc baseline (Figure 11)
};

const char* implKindName(ImplKind k);

/** System-wide parameters (Figure 6 defaults). */
struct SystemParams
{
    std::uint32_t numCores = 16;
    CoreParams core{};
    AgentParams agent{};
    DirectoryParams dir{};
    NetworkParams net{};
    /** Override for speculative configs (0 = preset default). */
    std::uint32_t specSbEntries = 0;
    std::uint32_t minChunkSize = 100;
    Cycle covTimeout = 4000;
    /** Apply commit-on-violate to selective variants too (Section 6.6). */
    bool selectiveCov = false;
    /** Override for the engine's speculative footprint cap (0 = keep). */
    std::uint32_t specFootprintCap = 0;
    /**
     * Block-hash home placement (HomeMap::hashed): shards directory
     * homes uniformly instead of by the low block-address bits. Changes
     * traffic patterns, so it is opt-in; the default preserves the
     * committed 16-core goldens.
     */
    bool dirHashHome = false;
    /**
     * Quiescence-aware cycle skipping: -1 = follow INVISIFENCE_FASTFWD
     * (default on), 0 = legacy per-cycle loop, 1 = force on. Both modes
     * produce bit-identical RunResults (see tests/fastforward_test.cc).
     */
    int fastForward = -1;
    /**
     * Fault-injection plan for the coherence fabric (see sim/fault.hh).
     * Default-constructed = inject nothing, and the network hook is not
     * even attached, so clean runs stay byte-identical to the goldens.
     * Any active plan (or a nonzero agent.retryTimeout) switches the
     * agents and directory slices into fault-tolerant mode.
     */
    FaultPlan fault{};
    /**
     * Liveness watchdog: if this many cycles pass with work pending but
     * no progress signal (no event scheduled or executed, no
     * instruction retired), dump every in-flight transaction and fail
     * fast instead of spinning to the cycle budget. 0 = off (default).
     */
    Cycle watchdog = 0;

    /** The paper's full configuration (8 MB L2). */
    static SystemParams paper();
    /** Same timing, 2 MB L2 (footprints fit either way; saves memory). */
    static SystemParams bench();
    /** Tiny deterministic system for unit tests. */
    static SystemParams small(std::uint32_t cores);
};

/** A complete simulated multiprocessor. */
class System
{
  public:
    /**
     * Build a system where core @c i runs @p programs[i] under the
     * implementation @p kind.
     */
    System(const SystemParams& params,
           std::vector<std::unique_ptr<ThreadProgram>> programs,
           ImplKind kind);

    /** Run for @p cycles more cycles. */
    void run(Cycle cycles);

    /**
     * Run until every core's program halted and drained AND the event
     * queue is empty (no in-flight coherence traffic), or @p max_cycles
     * elapse. Returns true when the whole system finished.
     */
    bool runUntilDone(Cycle max_cycles);

    /** @{ Quiescence-aware fast-forward control and introspection. */
    void setFastForward(bool on);
    bool fastForwardEnabled() const { return fastForward_; }
    /** Cycles skipped (bulk-accrued) instead of ticked. */
    std::uint64_t statFastForwardedCycles = 0;
    /** Number of fast-forward jumps taken. */
    std::uint64_t statFastForwards = 0;
    /** Whole-shard visits skipped because every member was dormant. */
    std::uint64_t statShardSkips = 0;
    /** @} */

    Cycle now() const { return now_; }
    std::uint32_t numCores() const { return params_.numCores; }

    Core& core(std::uint32_t i) { return *cores_[i]; }
    CacheAgent& agent(std::uint32_t i) { return *agents_[i]; }
    DirectorySlice& directory(std::uint32_t i) { return *dirs_[i]; }
    ConsistencyImpl& impl(std::uint32_t i) { return *impls_[i]; }
    FunctionalMemory& memory() { return mem_; }
    EventQueue& eventQueue() { return eq_; }
    Network& network() { return net_; }
    StatRegistry& stats() { return stats_; }
    ImplKind kind() const { return kind_; }
    /** Block-to-home placement shared by every agent and slice. */
    const HomeMap& homeMap() const { return homeMap_; }

    /** Sum of all cores' cycle breakdowns. */
    Breakdown totalBreakdown() const;
    /** Total retired instructions across cores. */
    std::uint64_t totalRetired() const;
    /** Total cycles spent speculating across cores (Figure 10). */
    std::uint64_t totalSpeculatingCycles() const;
    /** Sum of core cycles (numCores * elapsed). */
    std::uint64_t totalCoreCycles() const;
    /** @{ System-wide memory/directory accounting totals (JSON v2). */
    std::uint64_t totalMshrFullStalls() const;
    std::uint64_t totalDirStaleWritebacks() const;
    std::uint64_t totalDirQueuedRequests() const;
    /** @} */
    /** @{ Fault-tolerance totals (JSON v3): request retransmissions,
     *  injected request drops (each one recovered by a retry in a run
     *  that completes), duplicate requests the directory squashed, and
     *  the largest backoff interval any agent reached. */
    std::uint64_t totalRetries() const;
    std::uint64_t totalDropsInjected() const;
    std::uint64_t totalDupsSquashed() const;
    std::uint64_t maxRetryBackoff() const;
    /** @} */

  private:
    /**
     * Tick every due core at cycle @p now. With fast-forward on, a core
     * whose tick made no state change (work version unchanged, nothing
     * scheduled) goes dormant until its own time threshold
     * (Core::nextWorkAt) or until an event tagged with its node is about
     * to execute; its skipped cycles are bulk-accrued on wake.
     */
    void tickCores(Cycle now);
    /** Accrue core @p i's dormant stall cycles up to @p upto. */
    void settleCore(std::uint32_t i, Cycle upto);
    /** Settle every core's accounting up to @p upto (run boundaries). */
    void settleAll(Cycle upto);
    /** Event-queue wake hook: settle and wake @p node for @p when. */
    void onEventWake(std::uint32_t node, Cycle when);
    /** Advance now_ to just before the next due event/wake, <= @p end. */
    void maybeJump(Cycle end);

    /**
     * Hierarchical quiescence: cores group into shards of
     * 2^kShardShift, and shardWake_[s] holds the exact minimum of its
     * members' wakeAt_. tickCores skips a whole dormant shard with one
     * compare, and maybeJump scans numShards slots instead of numCores
     * — the difference between usable and unusable kcyc/s when most of
     * a 256-core machine is idle. The minima are maintained exactly
     * (lowered by onEventWake, recomputed after a shard ticks), so
     * observable behavior is bit-identical to the per-core scan.
     */
    static constexpr std::uint32_t kShardShift = 4;
    static constexpr std::uint32_t kShardSize = 1u << kShardShift;
    void recomputeShardWake(std::uint32_t shard);

    /**
     * Liveness watchdog step, run once per loop iteration when enabled.
     * Progress signature = events scheduled + events executed + total
     * retired instructions: any protocol step or core commit moves it.
     * When it sits still for watchdog cycles with work pending,
     * watchdogFire() dumps every in-flight MSHR, directory transient,
     * and store-buffer entry, then aborts the run.
     */
    void checkWatchdog();
    [[noreturn]] IF_COLD_FN void watchdogFire();

    SystemParams params_;
    ImplKind kind_;
    HomeMap homeMap_;
    EventQueue eq_;
    FunctionalMemory mem_;
    Network net_;
    std::vector<std::unique_ptr<ThreadProgram>> programs_;
    /** Attached to net_ only when params_.fault is active. */
    std::unique_ptr<FaultInjector> faults_;
    std::vector<std::unique_ptr<DirectorySlice>> dirs_;
    std::vector<std::unique_ptr<CacheAgent>> agents_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<ConsistencyImpl>> impls_;
    StatRegistry stats_;
    Cycle now_ = 0;
    bool fastForward_ = true;
    std::vector<Cycle> wakeAt_;      //!< next cycle each core must tick
    std::vector<Cycle> lastTicked_;  //!< last ticked/settled cycle
    std::vector<Cycle> shardWake_;   //!< exact per-shard min of wakeAt_
    /** @{ Watchdog state: threshold (0 = off), the cycle of the last
     *  observed progress, and the signature it was observed at. */
    Cycle wdThreshold_ = 0;
    Cycle wdLastProgress_ = 0;
    std::uint64_t wdLastSig_ = 0;
    /** @} */
    /** INVISIFENCE_MAX_CYCLES, sampled once at construction (benchEnv
     *  holds a std::string, so consulting it from the hot run loop
     *  would put an allocation edge under an IF_HOT root). 0 = off. */
    Cycle maxCyclesCap_ = 0;
};

/** Build the consistency implementation @p kind for one core. */
std::unique_ptr<ConsistencyImpl> makeImpl(ImplKind kind,
                                          const SystemParams& params,
                                          Core& core, CacheAgent& agent);

} // namespace invisifence

#endif // INVISIFENCE_HARNESS_SYSTEM_HH
