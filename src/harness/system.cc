#include "harness/system.hh"

#include <cassert>

#include "core/invisifence.hh"
#include "sim/log.hh"

namespace invisifence {

const char*
implKindName(ImplKind k)
{
    switch (k) {
      case ImplKind::ConvSC: return "sc";
      case ImplKind::ConvTSO: return "tso";
      case ImplKind::ConvRMO: return "rmo";
      case ImplKind::InvisiSC: return "Invisi_sc";
      case ImplKind::InvisiTSO: return "Invisi_tso";
      case ImplKind::InvisiRMO: return "Invisi_rmo";
      case ImplKind::InvisiSC2Ckpt: return "Invisi_sc-2ckpt";
      case ImplKind::Continuous: return "Invisi_cont";
      case ImplKind::ContinuousCoV: return "Invisi_cont_CoV";
      case ImplKind::Aso: return "ASOsc";
    }
    return "?";
}

SystemParams
SystemParams::paper()
{
    SystemParams p;
    p.agent.l2Size = 8 * 1024 * 1024;
    return p;
}

SystemParams
SystemParams::bench()
{
    SystemParams p;
    p.agent.l2Size = 2 * 1024 * 1024;
    // Gentler interconnect than the paper's board-level 25 ns/hop so
    // synthetic workloads land in a plausible IPC regime; the ordering
    // mechanisms under study are latency-shape invariant.
    p.net.perHopLatency = 30;
    return p;
}

SystemParams
SystemParams::small(std::uint32_t cores)
{
    SystemParams p;
    p.numCores = cores;
    p.net.dimX = cores;
    p.net.dimY = 1;
    p.agent.l1Size = 4 * 1024;
    p.agent.l2Size = 64 * 1024;
    p.net.perHopLatency = 20;
    p.dir.memLatency = 40;
    // Unit tests observe ordering stalls directly; store prefetching
    // would hide the misses they rely on.
    p.core.storePrefetch = false;
    return p;
}

std::unique_ptr<ConsistencyImpl>
makeImpl(ImplKind kind, const SystemParams& params, Core& core,
         CacheAgent& agent)
{
    const auto speculative = [&](SpecConfig cfg) {
        if (params.specSbEntries != 0 && !cfg.unboundedSb)
            cfg.sbEntries = params.specSbEntries;
        cfg.minChunkSize = params.minChunkSize;
        cfg.covTimeout = params.covTimeout;
        if (params.specFootprintCap != 0)
            cfg.specFootprintCap = params.specFootprintCap;
        return std::make_unique<SpeculativeImpl>(cfg, core, agent);
    };
    switch (kind) {
      case ImplKind::ConvSC:
        return makeConventional(Model::SC, core, agent);
      case ImplKind::ConvTSO:
        return makeConventional(Model::TSO, core, agent);
      case ImplKind::ConvRMO:
        return makeConventional(Model::RMO, core, agent);
      case ImplKind::InvisiSC: {
        SpecConfig c = SpecConfig::selective(Model::SC);
        c.commitOnViolate = params.selectiveCov;
        return speculative(c);
      }
      case ImplKind::InvisiTSO: {
        SpecConfig c = SpecConfig::selective(Model::TSO);
        c.commitOnViolate = params.selectiveCov;
        return speculative(c);
      }
      case ImplKind::InvisiRMO: {
        SpecConfig c = SpecConfig::selective(Model::RMO);
        c.commitOnViolate = params.selectiveCov;
        return speculative(c);
      }
      case ImplKind::InvisiSC2Ckpt:
        return speculative(SpecConfig::selective(Model::SC, 2));
      case ImplKind::Continuous:
        return speculative(SpecConfig::continuousMode(false));
      case ImplKind::ContinuousCoV:
        return speculative(SpecConfig::continuousMode(true));
      case ImplKind::Aso:
        return speculative(SpecConfig::aso());
    }
    return nullptr;
}

System::System(const SystemParams& params,
               std::vector<std::unique_ptr<ThreadProgram>> programs,
               ImplKind kind)
    : params_(params), kind_(kind),
      net_(eq_, params.net, params.numCores),
      programs_(std::move(programs))
{
    if (programs_.size() != params_.numCores) {
        IF_FATAL("system needs %u programs, got %zu", params_.numCores,
                 programs_.size());
    }
    for (NodeId n = 0; n < params_.numCores; ++n) {
        dirs_.push_back(std::make_unique<DirectorySlice>(
            n, params_.numCores, net_, eq_, mem_, params_.dir));
        agents_.push_back(std::make_unique<CacheAgent>(
            n, params_.numCores, net_, eq_, params_.agent));
    }
    for (NodeId n = 0; n < params_.numCores; ++n) {
        cores_.push_back(std::make_unique<Core>(n, params_.core,
                                                *agents_[n],
                                                *programs_[n]));
        impls_.push_back(makeImpl(kind, params_, *cores_[n],
                                  *agents_[n]));
        cores_[n]->setConsistency(impls_[n].get());
        const std::string prefix = "core" + std::to_string(n);
        cores_[n]->registerStats(stats_, prefix);
        if (auto* spec = dynamic_cast<SpeculativeImpl*>(impls_[n].get()))
            spec->registerStats(stats_, prefix + ".spec");
    }
}

void
System::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        ++now_;
        eq_.advanceTo(now_);
        for (auto& core : cores_)
            core->tick(now_);
    }
}

bool
System::runUntilDone(Cycle max_cycles)
{
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
        ++now_;
        eq_.advanceTo(now_);
        bool all_done = true;
        for (auto& core : cores_) {
            core->tick(now_);
            all_done &= core->done();
        }
        if (all_done)
            return true;
    }
    return false;
}

Breakdown
System::totalBreakdown() const
{
    Breakdown b;
    for (const auto& core : cores_)
        b.merge(core->breakdown());
    // Include cycles still pending inside active speculations so that
    // every elapsed cycle is accounted somewhere at sampling time.
    for (const auto& impl : impls_) {
        if (const auto* spec =
                dynamic_cast<const SpeculativeImpl*>(impl.get())) {
            b.merge(spec->pendingBreakdown());
        }
    }
    return b;
}

std::uint64_t
System::totalRetired() const
{
    std::uint64_t n = 0;
    for (const auto& core : cores_)
        n += core->statRetired;
    return n;
}

std::uint64_t
System::totalSpeculatingCycles() const
{
    std::uint64_t n = 0;
    for (const auto& impl : impls_) {
        if (const auto* spec =
                dynamic_cast<const SpeculativeImpl*>(impl.get())) {
            n += spec->statCyclesSpeculating;
        }
    }
    return n;
}

std::uint64_t
System::totalCoreCycles() const
{
    std::uint64_t n = 0;
    for (const auto& core : cores_)
        n += core->statCycles;
    return n;
}

} // namespace invisifence
