#include "harness/system.hh"

#include <algorithm>
#include "sim/annotations.hh"
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/invisifence.hh"
#include "harness/runner.hh"
#include "sim/log.hh"

namespace invisifence {

namespace {

/**
 * INVISIFENCE_FASTFWD, parsed once per process (thread-safe magic
 * static, so sweep workers never touch getenv): default on, "0" =
 * legacy per-cycle loop. Anything else is a configuration error.
 */
bool
fastForwardEnvDefault()
{
    static const bool on = [] {
        const char* text = std::getenv("INVISIFENCE_FASTFWD");
        if (!text || std::strcmp(text, "1") == 0)
            return true;
        if (std::strcmp(text, "0") == 0)
            return false;
        IF_FATAL("INVISIFENCE_FASTFWD='%s' must be 0 or 1", text);
    }();
    return on;
}

} // namespace

const char*
implKindName(ImplKind k)
{
    switch (k) {
      case ImplKind::ConvSC: return "sc";
      case ImplKind::ConvTSO: return "tso";
      case ImplKind::ConvRMO: return "rmo";
      case ImplKind::InvisiSC: return "Invisi_sc";
      case ImplKind::InvisiTSO: return "Invisi_tso";
      case ImplKind::InvisiRMO: return "Invisi_rmo";
      case ImplKind::InvisiSC2Ckpt: return "Invisi_sc-2ckpt";
      case ImplKind::Continuous: return "Invisi_cont";
      case ImplKind::ContinuousCoV: return "Invisi_cont_CoV";
      case ImplKind::Aso: return "ASOsc";
    }
    return "?";
}

SystemParams
SystemParams::paper()
{
    SystemParams p;
    p.agent.l2Size = 8 * 1024 * 1024;
    return p;
}

SystemParams
SystemParams::bench()
{
    SystemParams p;
    p.agent.l2Size = 2 * 1024 * 1024;
    // Gentler interconnect than the paper's board-level 25 ns/hop so
    // synthetic workloads land in a plausible IPC regime; the ordering
    // mechanisms under study are latency-shape invariant.
    p.net.perHopLatency = 30;
    return p;
}

SystemParams
SystemParams::small(std::uint32_t cores)
{
    SystemParams p;
    p.numCores = cores;
    p.net.dimX = cores;
    p.net.dimY = 1;
    p.agent.l1Size = 4 * 1024;
    p.agent.l2Size = 64 * 1024;
    p.net.perHopLatency = 20;
    p.dir.memLatency = 40;
    // Unit tests observe ordering stalls directly; store prefetching
    // would hide the misses they rely on.
    p.core.storePrefetch = false;
    return p;
}

std::unique_ptr<ConsistencyImpl>
makeImpl(ImplKind kind, const SystemParams& params, Core& core,
         CacheAgent& agent)
{
    const auto speculative = [&](SpecConfig cfg) {
        if (params.specSbEntries != 0 && !cfg.unboundedSb)
            cfg.sbEntries = params.specSbEntries;
        cfg.minChunkSize = params.minChunkSize;
        cfg.covTimeout = params.covTimeout;
        if (params.specFootprintCap != 0)
            cfg.specFootprintCap = params.specFootprintCap;
        return std::make_unique<SpeculativeImpl>(cfg, core, agent);
    };
    switch (kind) {
      case ImplKind::ConvSC:
        return makeConventional(Model::SC, core, agent);
      case ImplKind::ConvTSO:
        return makeConventional(Model::TSO, core, agent);
      case ImplKind::ConvRMO:
        return makeConventional(Model::RMO, core, agent);
      case ImplKind::InvisiSC: {
        SpecConfig c = SpecConfig::selective(Model::SC);
        c.commitOnViolate = params.selectiveCov;
        return speculative(c);
      }
      case ImplKind::InvisiTSO: {
        SpecConfig c = SpecConfig::selective(Model::TSO);
        c.commitOnViolate = params.selectiveCov;
        return speculative(c);
      }
      case ImplKind::InvisiRMO: {
        SpecConfig c = SpecConfig::selective(Model::RMO);
        c.commitOnViolate = params.selectiveCov;
        return speculative(c);
      }
      case ImplKind::InvisiSC2Ckpt: {
        // Section 6.6 applies commit-on-violate uniformly to every
        // selective variant; the two-checkpoint one is no exception.
        SpecConfig c = SpecConfig::selective(Model::SC, 2);
        c.commitOnViolate = params.selectiveCov;
        return speculative(c);
      }
      case ImplKind::Continuous:
        return speculative(SpecConfig::continuousMode(false));
      case ImplKind::ContinuousCoV:
        return speculative(SpecConfig::continuousMode(true));
      case ImplKind::Aso:
        return speculative(SpecConfig::aso());
    }
    return nullptr;
}

System::System(const SystemParams& params,
               std::vector<std::unique_ptr<ThreadProgram>> programs,
               ImplKind kind)
    : params_(params), kind_(kind),
      homeMap_(params.numCores, params.dirHashHome),
      net_(eq_, params.net, params.numCores),
      programs_(std::move(programs)),
      fastForward_(params.fastForward < 0 ? fastForwardEnvDefault()
                                          : params.fastForward != 0)
{
    if (params_.numCores == 0 ||
        params_.numCores > SharerSet::kMaxNodes) {
        IF_FATAL("numCores=%u outside [1, %u]", params_.numCores,
                 SharerSet::kMaxNodes);
    }
    if (programs_.size() != params_.numCores) {
        IF_FATAL("system needs %u programs, got %zu", params_.numCores,
                 programs_.size());
    }
    // Fault tolerance is derived, not set per component: an active
    // injection plan or a request-retry timeout switches BOTH the
    // agents (retry/orphan handling) and the directory slices (dedup,
    // owner-self recovery) together — a retrying agent against a strict
    // directory would trip the directory's protocol panics. Must happen
    // before the construction loops below copy params_.agent/.dir.
    if (params_.fault.any() || params_.agent.retryTimeout != 0) {
        params_.agent.faultTolerant = true;
        params_.dir.faultTolerant = true;
    }
    for (NodeId n = 0; n < params_.numCores; ++n) {
        dirs_.push_back(std::make_unique<DirectorySlice>(
            n, homeMap_, net_, eq_, mem_, params_.dir));
        agents_.push_back(std::make_unique<CacheAgent>(
            n, homeMap_, net_, eq_, params_.agent));
    }
    for (NodeId n = 0; n < params_.numCores; ++n) {
        cores_.push_back(std::make_unique<Core>(n, params_.core,
                                                *agents_[n],
                                                *programs_[n]));
        impls_.push_back(makeImpl(kind, params_, *cores_[n],
                                  *agents_[n]));
        cores_[n]->setConsistency(impls_[n].get());
        const std::string prefix = "core" + std::to_string(n);
        cores_[n]->registerStats(stats_, prefix);
        if (auto* spec = dynamic_cast<SpeculativeImpl*>(impls_[n].get()))
            spec->registerStats(stats_, prefix + ".spec");
        agents_[n]->registerStats(stats_, prefix + ".agent");
        dirs_[n]->registerStats(stats_, prefix + ".dir");
    }
    stats_.registerStat("system.fastfwd.cycles", &statFastForwardedCycles);
    stats_.registerStat("system.fastfwd.jumps", &statFastForwards);
    stats_.registerStat("system.fastfwd.shard_skips", &statShardSkips);
    if (params_.fault.any()) {
        faults_ = std::make_unique<FaultInjector>(params_.fault,
                                                  params_.numCores, eq_);
        net_.setFaultInjector(faults_.get());
        stats_.registerStat("system.fault.drops", &faults_->statDrops);
        stats_.registerStat("system.fault.dups", &faults_->statDups);
        stats_.registerStat("system.fault.delays", &faults_->statDelays);
        stats_.registerStat("system.fault.delay_cycles",
                            &faults_->statDelayCycles);
    }
    wdThreshold_ = params_.watchdog;
    maxCyclesCap_ = benchEnv().maxCycles;
    wakeAt_.assign(params_.numCores, 0);
    lastTicked_.assign(params_.numCores, 0);
    shardWake_.assign((params_.numCores + kShardSize - 1) / kShardSize, 0);
    eq_.setWakeHook(
        [](void* ctx, std::uint32_t node, Cycle when) {
            static_cast<System*>(ctx)->onEventWake(node, when);
        },
        this);
}

void
System::setFastForward(bool on)
{
    // Turning fast-forward on after a stretch of per-cycle ticking must
    // not trust stale dormancy info: wake everything for the next cycle
    // (spurious ticks are harmless; missed ones are not).
    if (on && !fastForward_) {
        std::fill(wakeAt_.begin(), wakeAt_.end(), Cycle{0});
        std::fill(shardWake_.begin(), shardWake_.end(), Cycle{0});
    }
    fastForward_ = on;
}

void
System::recomputeShardWake(std::uint32_t shard)
{
    const std::uint32_t lo = shard << kShardShift;
    const std::uint32_t hi =
        std::min<std::uint32_t>(lo + kShardSize, params_.numCores);
    Cycle min = kNeverCycle;
    for (std::uint32_t i = lo; i < hi; ++i) {
        if (wakeAt_[i] < min)
            min = wakeAt_[i];
    }
    shardWake_[shard] = min;
}

void
System::settleCore(std::uint32_t i, Cycle upto)
{
    if (upto <= lastTicked_[i])
        return;
    const std::uint64_t n = upto - lastTicked_[i];
    cores_[i]->accrueStallCycles(n);
    cores_[i]->syncTime(upto);
    lastTicked_[i] = upto;
    statFastForwardedCycles += n;
}

void
System::settleAll(Cycle upto)
{
    for (std::uint32_t i = 0; i < cores_.size(); ++i)
        settleCore(i, upto);
}

void
System::onEventWake(std::uint32_t node, Cycle when)
{
    // Settle the dormant core's accounting BEFORE the event mutates its
    // state (an abort reclassifies pending cycles; the per-cycle loop
    // would have accrued them under the pre-event stall kind), and make
    // it tick this cycle, as it would have in the per-cycle loop.
    if (!fastForward_)
        return;
    IF_DBG_ASSERT(node < cores_.size());
    if (when > 0)
        settleCore(node, when - 1);
    if (wakeAt_[node] > when)
        wakeAt_[node] = when;
    const std::uint32_t shard = node >> kShardShift;
    if (shardWake_[shard] > when)
        shardWake_[shard] = when;
}

void
System::tickCores(Cycle now)
{
    IF_HOT;
    const std::uint32_t shards =
        static_cast<std::uint32_t>(shardWake_.size());
    for (std::uint32_t s = 0; s < shards; ++s) {
        if (fastForward_ && shardWake_[s] > now) {
            // Every member is dormant: one compare instead of a walk
            // over the shard's cores.
            ++statShardSkips;
            continue;
        }
        const std::uint32_t lo = s << kShardShift;
        const std::uint32_t hi = std::min<std::uint32_t>(
            lo + kShardSize, static_cast<std::uint32_t>(cores_.size()));
        for (std::uint32_t i = lo; i < hi; ++i) {
            if (fastForward_ && wakeAt_[i] > now)
                continue;   // dormant: nothing but stall accounting
            settleCore(i, now - 1);
            Core& core = *cores_[i];
            const std::uint64_t version = core.workVersion();
            const std::uint64_t scheduled = eq_.scheduledCount();
            core.tick(now);
            lastTicked_[i] = now;
            if (!fastForward_)
                continue;
            // A tick that changed no state and scheduled nothing would
            // only repeat the same stall accounting next cycle: sleep
            // until the core's own time threshold or an event wake.
            if (core.workVersion() != version ||
                eq_.scheduledCount() != scheduled) {
                wakeAt_[i] = now + 1;
                continue;
            }
            const Cycle at = core.nextWorkAt();
            wakeAt_[i] = at <= now ? now + 1 : at;
        }
        if (fastForward_)
            recomputeShardWake(s);
    }
}

void
System::maybeJump(Cycle end)
{
    IF_HOT;
    if (!fastForward_)
        return;
    Cycle next = kNeverCycle;
    for (const Cycle at : shardWake_) {
        if (at < next)
            next = at;
    }
    if (!eq_.empty() && eq_.nextEventTick() < next)
        next = eq_.nextEventTick();
    if (next <= now_ + 1)
        return;
    Cycle target = next - 1 < end ? next - 1 : end;
    // The watchdog must get a chance to observe the stall: never jump
    // past the cycle where the no-progress threshold would trip. (A
    // wedged system has a drained queue and all-dormant cores, so
    // without this cap the jump would sail straight to `end`.)
    if (wdThreshold_ != 0 && target > wdLastProgress_ + wdThreshold_)
        target = wdLastProgress_ + wdThreshold_;
    if (target <= now_)
        return;
    // Core accounting is settled lazily on wake; only the clocks move.
    now_ = target;
    eq_.advanceTo(now_);   // no events <= target: just syncs eq time
    ++statFastForwards;
}

void
System::run(Cycle cycles)
{
    IF_HOT;
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        ++now_;
        eq_.advanceTo(now_);
        tickCores(now_);
        if (wdThreshold_ != 0) [[unlikely]]
            checkWatchdog();
        maybeJump(end);
    }
    settleAll(end);
}

bool
System::runUntilDone(Cycle max_cycles)
{
    IF_HOT;
    Cycle end = now_ + max_cycles;
    // INVISIFENCE_MAX_CYCLES is an absolute hard budget on the global
    // clock: exhausting it is a fatal runaway diagnosis (a CI backstop
    // against silent multi-hour hangs), not a quiet `false` return.
    const Cycle cap = maxCyclesCap_;
    const bool capped = cap != 0 && cap < end;
    if (capped)
        end = cap;
    while (now_ < end) {
        ++now_;
        eq_.advanceTo(now_);
        tickCores(now_);
        bool all_done = true;
        for (const auto& core : cores_)
            all_done &= core->done();
        // Completion additionally requires a drained event queue:
        // coherence traffic scheduled after the last core quiesced
        // (writebacks, acks) must land before stats are sampled, or a
        // follow-up run() would replay stale in-flight messages.
        if (all_done && eq_.empty()) {
            settleAll(now_);
            return true;
        }
        if (wdThreshold_ != 0) [[unlikely]]
            checkWatchdog();
        maybeJump(end);
    }
    settleAll(end);
    if (capped) {
        IF_FATAL("INVISIFENCE_MAX_CYCLES=%llu exhausted with work still "
                 "pending (requested budget was %llu cycles)",
                 static_cast<unsigned long long>(cap),
                 static_cast<unsigned long long>(max_cycles));
    }
    return false;
}

void
System::checkWatchdog()
{
    // Any protocol step, event, or instruction commit moves this sum;
    // scheduled/executed counters are monotonic, so a quiet system
    // holds it exactly still (no ABA).
    const std::uint64_t sig =
        eq_.scheduledCount() + eq_.executedCount() + totalRetired();
    if (sig != wdLastSig_) {
        wdLastSig_ = sig;
        wdLastProgress_ = now_;
        return;
    }
    if (now_ - wdLastProgress_ <= wdThreshold_)
        return;
    bool all_done = true;
    for (const auto& core : cores_)
        all_done &= core->done();
    if (all_done && eq_.empty()) {
        // Quiet because finished, not stuck: run(cycles) legitimately
        // idles out its remaining budget after programs halt.
        wdLastProgress_ = now_;
        return;
    }
    watchdogFire();
}

void
System::watchdogFire()
{
    IF_COLD_ALLOC("fatal-path diagnostic dump: stdio formatting may "
                  "allocate; the process exits immediately after");
    std::fprintf(stderr,
                 "=== LIVENESS WATCHDOG: no progress for %llu cycles "
                 "(now=%llu, last progress at %llu) ===\n",
                 static_cast<unsigned long long>(now_ - wdLastProgress_),
                 static_cast<unsigned long long>(now_),
                 static_cast<unsigned long long>(wdLastProgress_));
    for (std::uint32_t i = 0; i < params_.numCores; ++i) {
        std::fprintf(stderr,
                     "  core%u done=%d retired=%llu wakeAt=%llu "
                     "nextWorkAt=%llu\n",
                     i, cores_[i]->done() ? 1 : 0,
                     static_cast<unsigned long long>(cores_[i]->statRetired),
                     static_cast<unsigned long long>(wakeAt_[i]),
                     static_cast<unsigned long long>(cores_[i]->nextWorkAt()));
        impls_[i]->dumpLiveness(stderr);
        agents_[i]->mshrs().forEachLive([&](const Mshr& m) {
            std::fprintf(stderr,
                         "  agent%u mshr blk=%llx kind=%s wantWrite=%d "
                         "issuedWrite=%d txn=%u retries=%u\n",
                         i, static_cast<unsigned long long>(m.blockAddr),
                         m.kind == Mshr::Kind::Fetch ? "fetch" : "wb",
                         m.wantWrite ? 1 : 0, m.issuedWrite ? 1 : 0,
                         m.txnId, m.retryAttempt);
        });
    }
    for (std::uint32_t i = 0; i < params_.numCores; ++i)
        dirs_[i]->dumpTransients(stderr);
    IF_FATAL("liveness watchdog fired at cycle %llu: the system is "
             "wedged (see transaction dump above)",
             static_cast<unsigned long long>(now_));
}

Breakdown
System::totalBreakdown() const
{
    Breakdown b;
    for (const auto& core : cores_)
        b.merge(core->breakdown());
    // Include cycles still pending inside active speculations so that
    // every elapsed cycle is accounted somewhere at sampling time.
    for (const auto& impl : impls_) {
        if (const auto* spec =
                dynamic_cast<const SpeculativeImpl*>(impl.get())) {
            b.merge(spec->pendingBreakdown());
        }
    }
    return b;
}

std::uint64_t
System::totalRetired() const
{
    std::uint64_t n = 0;
    for (const auto& core : cores_)
        n += core->statRetired;
    return n;
}

std::uint64_t
System::totalSpeculatingCycles() const
{
    std::uint64_t n = 0;
    for (const auto& impl : impls_) {
        if (const auto* spec =
                dynamic_cast<const SpeculativeImpl*>(impl.get())) {
            n += spec->statCyclesSpeculating;
        }
    }
    return n;
}

std::uint64_t
System::totalCoreCycles() const
{
    std::uint64_t n = 0;
    for (const auto& core : cores_)
        n += core->statCycles;
    return n;
}

std::uint64_t
System::totalMshrFullStalls() const
{
    std::uint64_t n = 0;
    for (const auto& agent : agents_)
        n += agent->mshrs().statFullStalls;
    return n;
}

std::uint64_t
System::totalDirStaleWritebacks() const
{
    std::uint64_t n = 0;
    for (const auto& dir : dirs_)
        n += dir->statStaleWritebacks;
    return n;
}

std::uint64_t
System::totalDirQueuedRequests() const
{
    std::uint64_t n = 0;
    for (const auto& dir : dirs_)
        n += dir->statQueuedRequests;
    return n;
}

std::uint64_t
System::totalRetries() const
{
    std::uint64_t n = 0;
    for (const auto& agent : agents_)
        n += agent->statRetries;
    return n;
}

std::uint64_t
System::totalDropsInjected() const
{
    return faults_ ? faults_->statDrops : 0;
}

std::uint64_t
System::totalDupsSquashed() const
{
    std::uint64_t n = 0;
    for (const auto& dir : dirs_)
        n += dir->statDupsSquashed;
    return n;
}

std::uint64_t
System::maxRetryBackoff() const
{
    std::uint64_t n = 0;
    for (const auto& agent : agents_)
        n = std::max(n, agent->statRetryBackoffMax);
    return n;
}

} // namespace invisifence
