/**
 * @file
 * Fixed-width ASCII table printer for the benchmark harness output.
 */

#ifndef INVISIFENCE_HARNESS_TABLE_HH
#define INVISIFENCE_HARNESS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace invisifence {

/** Column-aligned table with a title, header row, and data rows. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Format @p v with @p decimals digits after the point. */
    static std::string num(double v, int decimals = 2);
    /** Format @p v as a percentage with one decimal ("12.3%"). */
    static std::string pct(double v);

    void print(std::ostream& os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace invisifence

#endif // INVISIFENCE_HARNESS_TABLE_HH
