#include "harness/runner.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "core/invisifence.hh"
#include "workload/synthetic.hh"

namespace invisifence {

RunConfig
RunConfig::fromEnv()
{
    RunConfig cfg;
    if (const char* env = std::getenv("INVISIFENCE_BENCH_CYCLES")) {
        const long long v = std::atoll(env);
        if (v > 0) {
            cfg.measureCycles = static_cast<Cycle>(v);
            cfg.warmupCycles = static_cast<Cycle>(v) / 6;
        }
    }
    if (const char* env = std::getenv("INVISIFENCE_BENCH_SEED")) {
        const long long v = std::atoll(env);
        if (v > 0)
            cfg.seed = static_cast<std::uint64_t>(v);
    }
    return cfg;
}

namespace {

std::uint64_t
clampedDelta(std::uint64_t after, std::uint64_t before)
{
    // Aborts reclassify in-flight cycles as Violation, so a category can
    // shrink slightly across the window; clamp instead of wrapping.
    return after >= before ? after - before : 0;
}

Breakdown
minus(const Breakdown& a, const Breakdown& b)
{
    Breakdown d;
    d.busy = clampedDelta(a.busy, b.busy);
    d.other = clampedDelta(a.other, b.other);
    d.sbFull = clampedDelta(a.sbFull, b.sbFull);
    d.sbDrain = clampedDelta(a.sbDrain, b.sbDrain);
    d.violation = clampedDelta(a.violation, b.violation);
    return d;
}

struct Counters
{
    std::uint64_t retired = 0;
    std::uint64_t abortedRetired = 0;
    std::uint64_t coreCycles = 0;
    Breakdown breakdown{};
    std::uint64_t speculating = 0;
    std::uint64_t aborts = 0;
    std::uint64_t commits = 0;
};

Counters
sample(System& sys)
{
    Counters c;
    c.retired = sys.totalRetired();
    c.coreCycles = sys.totalCoreCycles();
    c.breakdown = sys.totalBreakdown();
    c.speculating = sys.totalSpeculatingCycles();
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        if (auto* spec = dynamic_cast<SpeculativeImpl*>(&sys.impl(i))) {
            c.aborts += spec->statAborts;
            c.commits += spec->statCommits;
            c.abortedRetired += spec->statAbortedRetired;
        }
    }
    return c;
}

} // namespace

void
warmSystem(System& sys, const SyntheticParams& params)
{
    const std::uint32_t n = sys.numCores();
    const std::uint32_t all_mask =
        n >= 32 ? ~0u : ((1u << n) - 1);
    const BlockData zero{};
    // Never prime more than fits comfortably: overflowing the L2 here
    // would trigger an eviction storm before the run even starts.
    const std::uint32_t l2_blocks = static_cast<std::uint32_t>(
        sys.agent(0).params().l2Size / kBlockBytes);
    const std::uint32_t priv_cap = l2_blocks / 2;
    const std::uint32_t shared_cap = l2_blocks / 4;

    const auto prime_shared_everywhere = [&](Addr block) {
        for (std::uint32_t t = 0; t < n; ++t)
            sys.agent(t).primeBlock(block, CoherenceState::Shared, zero);
        sys.directory(homeOf(block, n)).primeShared(block, all_mask);
    };

    // Private working sets: Exclusive at their owning core.
    const std::uint32_t priv =
        std::min<std::uint32_t>(params.privateBlocks, priv_cap);
    for (std::uint32_t t = 0; t < n; ++t) {
        const Addr base = kPrivateRegion + t * kPrivateStride;
        for (std::uint32_t b = 0; b < priv; ++b) {
            const Addr block = base + static_cast<Addr>(b) * kBlockBytes;
            sys.agent(t).primeBlock(block, CoherenceState::Exclusive,
                                    zero);
            sys.directory(homeOf(block, n)).primeOwned(block, t);
        }
    }

    // Shared region and lock words: Shared everywhere.
    const std::uint32_t shared =
        std::min<std::uint32_t>(params.sharedBlocks, shared_cap);
    for (std::uint32_t b = 0; b < shared; ++b)
        prime_shared_everywhere(kSharedRegion +
                                static_cast<Addr>(b) * kBlockBytes);
    const std::uint32_t locks =
        std::min<std::uint32_t>(params.numLocks, l2_blocks / 16);
    for (std::uint32_t l = 0; l < locks; ++l)
        prime_shared_everywhere(lockAddr(l));

    // Lock-protected data: migratory; start at a round-robin owner.
    for (std::uint32_t l = 0; l < locks; ++l) {
        const NodeId owner = l % n;
        const Addr base = kLockDataRegion +
                          static_cast<Addr>(l) * params.lockDataBlocks *
                              kBlockBytes;
        for (std::uint32_t b = 0; b < params.lockDataBlocks; ++b) {
            const Addr block = base + static_cast<Addr>(b) * kBlockBytes;
            sys.agent(owner).primeBlock(block, CoherenceState::Exclusive,
                                        zero);
            sys.directory(homeOf(block, n)).primeOwned(block, owner);
        }
    }
}

RunResult
runExperiment(const Workload& workload, ImplKind kind,
              const RunConfig& cfg)
{
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (std::uint32_t t = 0; t < cfg.system.numCores; ++t) {
        programs.push_back(std::make_unique<SyntheticProgram>(
            workload.params, t, cfg.seed));
    }
    System sys(cfg.system, std::move(programs), kind);
    if (cfg.warmStart)
        warmSystem(sys, workload.params);

    sys.run(cfg.warmupCycles);
    const Counters before = sample(sys);
    sys.run(cfg.measureCycles);
    const Counters after = sample(sys);

    RunResult r;
    r.workload = workload.name;
    r.impl = implKindName(kind);
    // Committed instructions only: retirements discarded by an abort are
    // re-executed and would otherwise be double counted. Clamp: an abort
    // right after the sample can discard work retired before it.
    const std::uint64_t committed_after =
        after.retired >= after.abortedRetired
            ? after.retired - after.abortedRetired
            : 0;
    const std::uint64_t committed_before =
        before.retired >= before.abortedRetired
            ? before.retired - before.abortedRetired
            : 0;
    r.retired = committed_after >= committed_before
                    ? committed_after - committed_before
                    : 0;
    r.coreCycles = after.coreCycles - before.coreCycles;
    r.breakdown = minus(after.breakdown, before.breakdown);
    r.speculatingCycles = after.speculating - before.speculating;
    r.aborts = after.aborts - before.aborts;
    r.commits = after.commits - before.commits;
    return r;
}

BreakdownShares
shares(const RunResult& r)
{
    BreakdownShares s;
    const double total = static_cast<double>(r.coreCycles);
    if (total <= 0)
        return s;
    s.busy = static_cast<double>(r.breakdown.busy) / total;
    s.other = static_cast<double>(r.breakdown.other) / total;
    s.sbFull = static_cast<double>(r.breakdown.sbFull) / total;
    s.sbDrain = static_cast<double>(r.breakdown.sbDrain) / total;
    s.violation = static_cast<double>(r.breakdown.violation) / total;
    return s;
}

BreakdownShares
normalizedShares(const RunResult& r, const RunResult& baseline)
{
    BreakdownShares s = shares(r);
    const double thr = r.throughput();
    if (thr <= 0)
        return s;
    const double scale = baseline.throughput() / thr;
    s.busy *= scale;
    s.other *= scale;
    s.sbFull *= scale;
    s.sbDrain *= scale;
    s.violation *= scale;
    return s;
}

} // namespace invisifence
