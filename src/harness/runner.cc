#include "harness/runner.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>

#include "core/invisifence.hh"
#include "sim/log.hh"
#include "workload/synthetic.hh"

namespace invisifence {

namespace {

/** Strictly parse @p text as an integer in [lo, hi]; fatal otherwise. */
std::uint64_t
parseEnvInt(const char* name, const char* text, std::uint64_t lo,
            std::uint64_t hi)
{
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    // Demand a bare digit up front: strtoull itself would skip leading
    // whitespace and wrap a '-' sign to a huge unsigned value.
    if (text[0] < '0' || text[0] > '9' || end == text ||
        *end != '\0' || errno == ERANGE || v < lo || v > hi) {
        IF_FATAL("%s='%s' is not an integer in [%llu, %llu]", name, text,
                 static_cast<unsigned long long>(lo),
                 static_cast<unsigned long long>(hi));
    }
    return v;
}

/** Value of env var @p name, or @p unset when absent. */
std::uint64_t
envOr(const char* name, std::uint64_t unset, std::uint64_t lo,
      std::uint64_t hi)
{
    const char* text = std::getenv(name);
    return text ? parseEnvInt(name, text, lo, hi) : unset;
}

/** Strictly parse @p text as a real number in [@p lo, @p hi]. */
double
parseEnvFrac(const char* name, const char* text, double lo, double hi)
{
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (text[0] == '\0' || (text[0] != '.' && (text[0] < '0' ||
        text[0] > '9')) || end == text || *end != '\0' ||
        errno == ERANGE || v < lo || v > hi) {
        IF_FATAL("%s='%s' is not a number in [%g, %g]", name, text, lo,
                 hi);
    }
    return v;
}

BenchEnv
parseBenchEnv()
{
    BenchEnv e;
    e.measureCycles = static_cast<Cycle>(
        envOr("INVISIFENCE_BENCH_CYCLES", 0, 1, 100'000'000'000ull));
    e.seed = envOr("INVISIFENCE_BENCH_SEED", 0, 1, ~0ull);
    e.seeds = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_BENCH_SEEDS", 1, 1, 10'000));
    e.jobs = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_JOBS", 0, 1, 4096));
    e.fuzzPrograms = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_FUZZ_PROGRAMS", 200, 1, 1'000'000));
    if (const char* path = std::getenv("INVISIFENCE_BENCH_JSON"))
        e.jsonPath = path;
    if (const char* frac = std::getenv("INVISIFENCE_WARM_SHARERS")) {
        e.warmSharers =
            parseEnvFrac("INVISIFENCE_WARM_SHARERS", frac, 0.0, 1.0);
    }
    e.numCores = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_NUM_CORES", 0, 1, SharerSet::kMaxNodes));
    e.dimX = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_DIM_X", 0, 1, SharerSet::kMaxNodes));
    e.dimY = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_DIM_Y", 0, 1, SharerSet::kMaxNodes));
    e.hopLatency = static_cast<Cycle>(
        envOr("INVISIFENCE_HOP_LATENCY", 0, 1, 1'000'000));
    e.dirHash =
        static_cast<int>(envOr("INVISIFENCE_DIR_HASH", std::uint64_t(-1),
                               0, 1));
    e.maxCycles = static_cast<Cycle>(
        envOr("INVISIFENCE_MAX_CYCLES", 0, 1, ~0ull));
    e.faultSeed = envOr("INVISIFENCE_FAULT_SEED", 0, 1, ~0ull);
    e.faultDrop = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_FAULT_DROP", 0, 0, 65536));
    e.faultDelay = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_FAULT_DELAY", 0, 0, 65536));
    e.faultDup = static_cast<std::uint32_t>(
        envOr("INVISIFENCE_FAULT_DUP", 0, 0, 65536));
    e.watchdog = static_cast<Cycle>(
        envOr("INVISIFENCE_WATCHDOG", 0, 1, ~0ull));
    return e;
}

} // namespace

const BenchEnv&
benchEnv()
{
    static const BenchEnv env = parseBenchEnv();
    return env;
}

RunConfig
RunConfig::fromEnv()
{
    const BenchEnv& env = benchEnv();
    RunConfig cfg;
    if (env.measureCycles > 0) {
        cfg.measureCycles = env.measureCycles;
        cfg.warmupCycles = env.measureCycles / 6;
    }
    if (env.seed > 0)
        cfg.seed = env.seed;
    if (env.numCores > 0)
        cfg.system.numCores = env.numCores;
    if (env.dimX > 0)
        cfg.system.net.dimX = env.dimX;
    if (env.dimY > 0)
        cfg.system.net.dimY = env.dimY;
    if (env.hopLatency > 0)
        cfg.system.net.perHopLatency = env.hopLatency;
    if (env.dirHash >= 0)
        cfg.system.dirHashHome = env.dirHash != 0;
    if (env.faultSeed != 0)
        cfg.system.fault.seed = env.faultSeed;
    if (env.faultDrop != 0 || env.faultDelay != 0 || env.faultDup != 0) {
        cfg.system.fault.dropPer64k = env.faultDrop;
        cfg.system.fault.delayPer64k = env.faultDelay;
        cfg.system.fault.dupPer64k = env.faultDup;
        // Dropped requests without retries would simply wedge the run:
        // arm a default request timeout sitting well above the
        // worst-case clean round trip of the bench torus.
        if (cfg.system.agent.retryTimeout == 0)
            cfg.system.agent.retryTimeout = 3000;
    }
    if (env.watchdog != 0)
        cfg.system.watchdog = env.watchdog;
    return cfg;
}

namespace {

std::uint64_t
clampedDelta(std::uint64_t after, std::uint64_t before)
{
    // Aborts reclassify in-flight cycles as Violation, so a category can
    // shrink slightly across the window; clamp instead of wrapping.
    return after >= before ? after - before : 0;
}

Breakdown
minus(const Breakdown& a, const Breakdown& b)
{
    Breakdown d;
    d.busy = clampedDelta(a.busy, b.busy);
    d.other = clampedDelta(a.other, b.other);
    d.sbFull = clampedDelta(a.sbFull, b.sbFull);
    d.sbDrain = clampedDelta(a.sbDrain, b.sbDrain);
    d.violation = clampedDelta(a.violation, b.violation);
    return d;
}

struct Counters
{
    std::uint64_t retired = 0;
    std::uint64_t abortedRetired = 0;
    std::uint64_t coreCycles = 0;
    Breakdown breakdown{};
    std::uint64_t speculating = 0;
    std::uint64_t aborts = 0;
    std::uint64_t commits = 0;
    std::uint64_t mshrFullStalls = 0;
    std::uint64_t dirStaleWritebacks = 0;
    std::uint64_t dirQueuedRequests = 0;
    std::uint64_t retries = 0;
    std::uint64_t dropsInjected = 0;
    std::uint64_t dupsSquashed = 0;
    std::uint64_t retryBackoffMax = 0;
};

Counters
sample(System& sys)
{
    Counters c;
    c.retired = sys.totalRetired();
    c.coreCycles = sys.totalCoreCycles();
    c.breakdown = sys.totalBreakdown();
    c.speculating = sys.totalSpeculatingCycles();
    c.mshrFullStalls = sys.totalMshrFullStalls();
    c.dirStaleWritebacks = sys.totalDirStaleWritebacks();
    c.dirQueuedRequests = sys.totalDirQueuedRequests();
    c.retries = sys.totalRetries();
    c.dropsInjected = sys.totalDropsInjected();
    c.dupsSquashed = sys.totalDupsSquashed();
    c.retryBackoffMax = sys.maxRetryBackoff();
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        if (auto* spec = dynamic_cast<SpeculativeImpl*>(&sys.impl(i))) {
            c.aborts += spec->statAborts;
            c.commits += spec->statCommits;
            c.abortedRetired += spec->statAbortedRetired;
        }
    }
    return c;
}

} // namespace

SharerSet
warmSharerMask(Addr block, std::uint32_t num_nodes, double sharer_fraction)
{
    if (sharer_fraction <= 0.0 || sharer_fraction >= 1.0)
        return SharerSet::firstN(num_nodes);
    // ceil(fraction * n), clamped to [1, n]: at least one sharer, and a
    // fraction of 1.0 degenerates to the legacy everywhere set above.
    std::uint32_t k = static_cast<std::uint32_t>(
        sharer_fraction * num_nodes + 0.999999);
    if (k < 1)
        k = 1;
    if (k > num_nodes)
        k = num_nodes;
    // Deterministic, block-dependent subset: k consecutive nodes
    // starting at the block's hash. Consecutive is a fine stand-in for
    // the sparse sharer sets a real warm checkpoint would record; what
    // matters for the Inv storm is the count, not the identity.
    const std::uint32_t start =
        static_cast<std::uint32_t>(block >> kBlockShift) % num_nodes;
    SharerSet sharers;
    for (std::uint32_t i = 0; i < k; ++i)
        sharers.set((start + i) % num_nodes);
    return sharers;
}

void
warmSystem(System& sys, const SyntheticParams& params,
           double sharer_fraction)
{
    const std::uint32_t n = sys.numCores();
    const BlockData zero{};
    // Never prime more than fits comfortably: overflowing the L2 here
    // would trigger an eviction storm before the run even starts.
    const std::uint32_t l2_blocks = static_cast<std::uint32_t>(
        sys.agent(0).params().l2Size / kBlockBytes);
    const std::uint32_t priv_cap = l2_blocks / 2;
    const std::uint32_t shared_cap = l2_blocks / 4;

    const HomeMap& homes = sys.homeMap();
    const auto prime_shared = [&](Addr block) {
        const SharerSet sharers =
            warmSharerMask(block, n, sharer_fraction);
        sharers.forEach([&](NodeId t) {
            sys.agent(t).primeBlock(block, CoherenceState::Shared, zero);
        });
        sys.directory(homes.homeOf(block)).primeShared(block, sharers);
    };

    // Private working sets: Exclusive at their owning core.
    const std::uint32_t priv =
        std::min<std::uint32_t>(params.privateBlocks, priv_cap);
    for (std::uint32_t t = 0; t < n; ++t) {
        const Addr base = kPrivateRegion + t * kPrivateStride;
        for (std::uint32_t b = 0; b < priv; ++b) {
            const Addr block = base + static_cast<Addr>(b) * kBlockBytes;
            sys.agent(t).primeBlock(block, CoherenceState::Exclusive,
                                    zero);
            sys.directory(homes.homeOf(block)).primeOwned(block, t);
        }
    }

    // Shared region and lock words: Shared at the (full or
    // sharer-precise) warm sharer set.
    const std::uint32_t shared =
        std::min<std::uint32_t>(params.sharedBlocks, shared_cap);
    for (std::uint32_t b = 0; b < shared; ++b)
        prime_shared(kSharedRegion + static_cast<Addr>(b) * kBlockBytes);
    const std::uint32_t locks =
        std::min<std::uint32_t>(params.numLocks, l2_blocks / 16);
    for (std::uint32_t l = 0; l < locks; ++l)
        prime_shared(lockAddr(l));

    // Lock-protected data: migratory; start at a round-robin owner.
    for (std::uint32_t l = 0; l < locks; ++l) {
        const NodeId owner = l % n;
        const Addr base = kLockDataRegion +
                          static_cast<Addr>(l) * params.lockDataBlocks *
                              kBlockBytes;
        for (std::uint32_t b = 0; b < params.lockDataBlocks; ++b) {
            const Addr block = base + static_cast<Addr>(b) * kBlockBytes;
            sys.agent(owner).primeBlock(block, CoherenceState::Exclusive,
                                        zero);
            sys.directory(homes.homeOf(block)).primeOwned(block, owner);
        }
    }
}

RunResult
runExperiment(const Workload& workload, ImplKind kind,
              const RunConfig& cfg)
{
    std::vector<std::unique_ptr<ThreadProgram>> programs;
    for (std::uint32_t t = 0; t < cfg.system.numCores; ++t) {
        programs.push_back(std::make_unique<SyntheticProgram>(
            workload.params, t, cfg.seed));
    }
    System sys(cfg.system, std::move(programs), kind);
    if (cfg.warmStart)
        warmSystem(sys, workload.params, benchEnv().warmSharers);

    sys.run(cfg.warmupCycles);
    const Counters before = sample(sys);
    sys.run(cfg.measureCycles);
    const Counters after = sample(sys);

    RunResult r;
    r.workload = workload.name;
    r.impl = implKindName(kind);
    r.seed = cfg.seed;
    // Committed instructions only: retirements discarded by an abort are
    // re-executed and would otherwise be double counted. Clamp: an abort
    // right after the sample can discard work retired before it.
    const std::uint64_t committed_after =
        after.retired >= after.abortedRetired
            ? after.retired - after.abortedRetired
            : 0;
    const std::uint64_t committed_before =
        before.retired >= before.abortedRetired
            ? before.retired - before.abortedRetired
            : 0;
    r.retired = committed_after >= committed_before
                    ? committed_after - committed_before
                    : 0;
    r.coreCycles = after.coreCycles - before.coreCycles;
    r.breakdown = minus(after.breakdown, before.breakdown);
    r.speculatingCycles = after.speculating - before.speculating;
    r.aborts = after.aborts - before.aborts;
    r.commits = after.commits - before.commits;
    r.mshrFullStalls = after.mshrFullStalls - before.mshrFullStalls;
    r.dirStaleWritebacks =
        after.dirStaleWritebacks - before.dirStaleWritebacks;
    r.dirQueuedRequests =
        after.dirQueuedRequests - before.dirQueuedRequests;
    r.retries = after.retries - before.retries;
    r.dropsRecovered = after.dropsInjected - before.dropsInjected;
    r.dupsSquashed = after.dupsSquashed - before.dupsSquashed;
    // A high-water mark, not a rate: report the absolute maximum the
    // run ever reached rather than a meaningless window difference.
    r.timeoutBackoffMax = after.retryBackoffMax;
    return r;
}

BreakdownShares
shares(const RunResult& r)
{
    BreakdownShares s;
    const double total = static_cast<double>(r.coreCycles);
    if (total <= 0)
        return s;
    s.busy = static_cast<double>(r.breakdown.busy) / total;
    s.other = static_cast<double>(r.breakdown.other) / total;
    s.sbFull = static_cast<double>(r.breakdown.sbFull) / total;
    s.sbDrain = static_cast<double>(r.breakdown.sbDrain) / total;
    s.violation = static_cast<double>(r.breakdown.violation) / total;
    return s;
}

BreakdownShares
normalizedShares(const RunResult& r, const RunResult& baseline)
{
    BreakdownShares s = shares(r);
    const double thr = r.throughput();
    if (thr <= 0)
        return s;
    const double scale = baseline.throughput() / thr;
    s.busy *= scale;
    s.other *= scale;
    s.sbFull *= scale;
    s.sbDrain *= scale;
    s.violation *= scale;
    return s;
}

} // namespace invisifence
