/**
 * @file
 * Experiment runner: one (workload, implementation) measurement, plus
 * the derived metrics the paper's figures report.
 *
 * Runs are fixed-length with a warmup prefix excluded from measurement.
 * Throughput (retired instructions per core-cycle) stands in for the
 * inverse of runtime: all configurations execute statistically identical
 * work, so speedup(X over Y) = throughput_X / throughput_Y, and a
 * configuration's "runtime normalized to SC" (Figure 9/11/12) is
 * throughput_SC / throughput_X with the cycle-category shares scaled by
 * the same factor.
 */

#ifndef INVISIFENCE_HARNESS_RUNNER_HH
#define INVISIFENCE_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/accounting.hh"
#include "harness/system.hh"
#include "workload/workloads.hh"

namespace invisifence {

/**
 * Process-wide benchmark environment. Parsed exactly once per process
 * (thread-safe magic static, so sweep workers never touch getenv) and
 * validated strictly: a malformed or out-of-range value is a fatal
 * configuration error, not a silent fallback.
 */
struct BenchEnv
{
    Cycle measureCycles = 0;   //!< INVISIFENCE_BENCH_CYCLES (0 = unset)
    std::uint64_t seed = 0;    //!< INVISIFENCE_BENCH_SEED (0 = unset)
    std::uint32_t seeds = 1;   //!< INVISIFENCE_BENCH_SEEDS per point
    std::uint32_t jobs = 0;    //!< INVISIFENCE_JOBS (0 = hw concurrency)
    std::uint32_t fuzzPrograms = 200;   //!< INVISIFENCE_FUZZ_PROGRAMS
    std::string jsonPath;      //!< INVISIFENCE_BENCH_JSON (empty = off)
    /** INVISIFENCE_WARM_SHARERS in [0,1]: prime shared/lock blocks at
     *  only that fraction of the nodes instead of Shared-everywhere
     *  (0 = off, the default — preserves the committed goldens; 1 is
     *  equivalent to off, i.e. every node shares). */
    double warmSharers = 0.0;
    /** @{ Machine-scale knobs (0/-1 = unset, keep the config default):
     *  INVISIFENCE_NUM_CORES, INVISIFENCE_DIM_X / _DIM_Y (0 also means
     *  "derive from the core count", see torusDims),
     *  INVISIFENCE_HOP_LATENCY in cycles, and INVISIFENCE_DIR_HASH for
     *  block-hash home placement. */
    std::uint32_t numCores = 0;
    std::uint32_t dimX = 0;
    std::uint32_t dimY = 0;
    Cycle hopLatency = 0;
    int dirHash = -1;
    /** @} */
    /** @{ Fault-injection and liveness knobs (0 = unset/off):
     *  INVISIFENCE_MAX_CYCLES is an absolute hard cycle budget for
     *  System::runUntilDone — exhausting it is fatal, a CI backstop
     *  against silent hangs; INVISIFENCE_FAULT_SEED seeds the fault
     *  Rng; INVISIFENCE_FAULT_DROP / _DELAY / _DUP are per-65536
     *  message rates (requests only for drop/dup, see sim/fault.hh);
     *  INVISIFENCE_WATCHDOG is the liveness watchdog's no-progress
     *  threshold in cycles. */
    Cycle maxCycles = 0;
    std::uint64_t faultSeed = 0;
    std::uint32_t faultDrop = 0;
    std::uint32_t faultDelay = 0;
    std::uint32_t faultDup = 0;
    Cycle watchdog = 0;
    /** @} */
};

/** The parsed environment (first call parses; later calls are free). */
const BenchEnv& benchEnv();

/** Measurement knobs. */
struct RunConfig
{
    Cycle warmupCycles = 12000;
    Cycle measureCycles = 50000;
    std::uint64_t seed = 1;
    bool warmStart = true;   //!< prime caches/directory (warm sampling)
    SystemParams system = SystemParams::bench();

    /** Defaults with the benchEnv() cycle/seed overrides applied. */
    static RunConfig fromEnv();
};

/**
 * Prime caches and directory with the workload's steady-state working
 * set: private regions Exclusive at their owner, the shared region and
 * lock words Shared at every node, lock-data chunks at a round-robin
 * owner. Stands in for the warm checkpoints of the SimFlex methodology.
 *
 * @p sharer_fraction selects the sharer-precise variant: with a value
 * in (0, 1], each shared/lock block is primed Shared at only
 * ceil(fraction * nodes) nodes — a deterministic, block-dependent
 * subset approximating the sparse sharer sets a real warm checkpoint
 * would record — which cuts the per-store Inv/InvAck storm that
 * Shared-everywhere priming provokes. 0 (default) keeps the legacy
 * everywhere-shared behavior and the committed goldens byte-identical.
 * Opt in globally via INVISIFENCE_WARM_SHARERS (see BenchEnv).
 */
void warmSystem(System& sys, const SyntheticParams& params,
                double sharer_fraction = 0.0);

/**
 * Sharer set for @p block under sharer-precise warming: the
 * deterministic subset of @p num_nodes nodes (never empty, at most all)
 * that warmSystem primes when @p sharer_fraction is in (0, 1]. Works at
 * any node count up to SharerSet::kMaxNodes — the old uint32_t mask
 * silently capped warm sharers at 32 nodes.
 */
SharerSet warmSharerMask(Addr block, std::uint32_t num_nodes,
                         double sharer_fraction);

/** Result of one measured run. */
struct RunResult
{
    std::string workload;
    std::string impl;
    std::uint64_t seed = 0;            //!< RunConfig::seed of this run
    std::uint64_t retired = 0;         //!< instructions in the window
    std::uint64_t coreCycles = 0;      //!< cores * measured cycles
    Breakdown breakdown{};             //!< measured-window breakdown
    std::uint64_t speculatingCycles = 0;
    std::uint64_t aborts = 0;
    std::uint64_t commits = 0;
    /** @{ Measured-window memory/directory accounting (JSON schema v2):
     *  MSHR-full stall episodes, writebacks that raced an invalidation
     *  or forward (arrived stale at the home), and requests that queued
     *  behind a busy block. */
    std::uint64_t mshrFullStalls = 0;
    std::uint64_t dirStaleWritebacks = 0;
    std::uint64_t dirQueuedRequests = 0;
    /** @} */
    /** @{ Fault-tolerance accounting (JSON schema v3; all zero in
     *  clean runs): request retransmissions taken, injected request
     *  drops (each recovered by a retry in a run that completes),
     *  duplicate requests the directory's dedup record squashed, and
     *  the largest retry-backoff interval any agent reached — a
     *  high-water mark sampled after the window, not a delta. */
    std::uint64_t retries = 0;
    std::uint64_t dropsRecovered = 0;
    std::uint64_t dupsSquashed = 0;
    std::uint64_t timeoutBackoffMax = 0;
    /** @} */

    double throughput() const
    {
        return coreCycles == 0
                   ? 0.0
                   : static_cast<double>(retired) /
                         static_cast<double>(coreCycles);
    }

    /** Fraction of core cycles in speculation (Figure 10). */
    double specFraction() const
    {
        return coreCycles == 0
                   ? 0.0
                   : static_cast<double>(speculatingCycles) /
                         static_cast<double>(coreCycles);
    }
};

/** Run @p workload under @p kind and measure. */
RunResult runExperiment(const Workload& workload, ImplKind kind,
                        const RunConfig& cfg);

/** Category shares of the breakdown, as fractions summing to ~1. */
struct BreakdownShares
{
    double busy = 0, other = 0, sbFull = 0, sbDrain = 0, violation = 0;
};
BreakdownShares shares(const RunResult& r);

/** Shares scaled to a runtime normalized against @p baseline. */
BreakdownShares normalizedShares(const RunResult& r,
                                 const RunResult& baseline);

} // namespace invisifence

#endif // INVISIFENCE_HARNESS_RUNNER_HH
