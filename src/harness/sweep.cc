#include "harness/sweep.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "sim/log.hh"

// Global-state audit (why one simulator per worker thread is safe):
// every System owns its event queue, functional memory, network, cores,
// agents, directories and stat registry by value or unique_ptr; the only
// function-scope statics in src/ are immutable-after-init tables
// (workloadSuite(), parameter presets, benchEnv()) whose initialization
// C++11 magic statics serialize. Logging goes through single fprintf
// calls (atomic at the libc level), and the progress line below is one
// fprintf for the same reason. Nothing else is shared, so grid points
// are pure functions of (workload, kind, cfg) — which sweep_test pins
// down by diffing parallel against serial output bit-for-bit.

namespace invisifence {

std::vector<SweepPoint>
sweepGrid(const std::vector<Workload>& workloads,
          const std::vector<ImplKind>& kinds, const RunConfig& base,
          std::uint32_t numSeeds)
{
    if (numSeeds == 0)
        IF_FATAL("sweepGrid: numSeeds must be at least 1");
    std::vector<SweepPoint> grid;
    grid.reserve(workloads.size() * kinds.size() * numSeeds);
    for (const Workload& wl : workloads) {
        for (const ImplKind kind : kinds) {
            for (std::uint32_t s = 0; s < numSeeds; ++s) {
                SweepPoint p;
                p.workload = wl;
                p.kind = kind;
                p.cfg = base;
                p.cfg.seed = base.seed + s;
                grid.push_back(std::move(p));
            }
        }
    }
    return grid;
}

namespace {

/** Two-tailed 95% Student-t quantile for @p df degrees of freedom. */
double
tQuantile95(std::uint32_t df)
{
    static constexpr double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    constexpr std::uint32_t kRows = sizeof(kTable) / sizeof(kTable[0]);
    if (df == 0)
        return 0;
    return df <= kRows ? kTable[df - 1] : 1.960;
}

} // namespace

Estimate
estimateOf(const std::vector<double>& samples)
{
    Estimate e;
    e.n = static_cast<std::uint32_t>(samples.size());
    if (e.n == 0)
        return e;
    double sum = 0;
    for (const double x : samples)
        sum += x;
    e.mean = sum / e.n;
    if (e.n < 2)
        return e;
    double sq = 0;
    for (const double x : samples)
        sq += (x - e.mean) * (x - e.mean);
    e.stddev = std::sqrt(sq / (e.n - 1));
    e.ci95 = tQuantile95(e.n - 1) * e.stddev / std::sqrt(e.n);
    return e;
}

Estimate
SweepStats::throughput() const
{
    std::vector<double> xs;
    xs.reserve(runs.size());
    for (const RunResult& r : runs)
        xs.push_back(r.throughput());
    return estimateOf(xs);
}

Estimate
SweepStats::specFraction() const
{
    std::vector<double> xs;
    xs.reserve(runs.size());
    for (const RunResult& r : runs)
        xs.push_back(r.specFraction());
    return estimateOf(xs);
}

SweepRunner::SweepRunner(std::uint32_t jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

std::uint32_t
SweepRunner::defaultJobs()
{
    if (benchEnv().jobs > 0)
        return benchEnv().jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepPoint>& grid, bool progress) const
{
    std::atomic<std::size_t> done{0};
    return map(grid.size(), [&](std::size_t i) {
        const SweepPoint& p = grid[i];
        RunResult r = runExperiment(p.workload, p.kind, p.cfg);
        if (progress) {
            const std::size_t k =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            std::fprintf(stderr, "  [%zu/%zu] %s/%s seed=%" PRIu64 "\n",
                         k, grid.size(), r.workload.c_str(),
                         r.impl.c_str(), r.seed);
        }
        return r;
    });
}

std::vector<SweepStats>
SweepRunner::runStats(const std::vector<Workload>& workloads,
                      const std::vector<ImplKind>& kinds,
                      const RunConfig& base, std::uint32_t numSeeds,
                      bool progress) const
{
    const std::vector<SweepPoint> grid =
        sweepGrid(workloads, kinds, base, numSeeds);
    std::vector<RunResult> results = run(grid, progress);
    std::vector<SweepStats> stats;
    stats.reserve(workloads.size() * kinds.size());
    std::size_t i = 0;
    for (const Workload& wl : workloads) {
        for (const ImplKind kind : kinds) {
            SweepStats s;
            s.workload = wl.name;
            s.impl = implKindName(kind);
            for (std::uint32_t n = 0; n < numSeeds; ++n)
                s.runs.push_back(std::move(results[i++]));
            stats.push_back(std::move(s));
        }
    }
    return stats;
}

namespace {

/** Shortest %g form that round-trips a double (deterministic). */
std::string
jsonNum(double v)
{
    return strformat("%.17g", v);
}

void
writeEstimate(std::ostream& os, const Estimate& e)
{
    os << "{\"mean\": " << jsonNum(e.mean)
       << ", \"stddev\": " << jsonNum(e.stddev)
       << ", \"ci95\": " << jsonNum(e.ci95) << ", \"n\": " << e.n << "}";
}

void
writeRun(std::ostream& os, const RunResult& r, std::uint32_t schema)
{
    os << "{\"seed\": " << r.seed << ", \"retired\": " << r.retired
       << ", \"core_cycles\": " << r.coreCycles
       << ", \"speculating_cycles\": " << r.speculatingCycles
       << ", \"aborts\": " << r.aborts << ", \"commits\": " << r.commits;
    if (schema >= 2) {
        os << ", \"mshr_full_stalls\": " << r.mshrFullStalls
           << ", \"dir_stale_writebacks\": " << r.dirStaleWritebacks
           << ", \"dir_queued_requests\": " << r.dirQueuedRequests;
    }
    if (schema >= 3) {
        os << ", \"retries\": " << r.retries
           << ", \"drops_recovered\": " << r.dropsRecovered
           << ", \"dups_squashed\": " << r.dupsSquashed
           << ", \"timeout_backoff_max\": " << r.timeoutBackoffMax;
    }
    os << ", \"breakdown\": {\"busy\": " << r.breakdown.busy
       << ", \"other\": " << r.breakdown.other
       << ", \"sb_full\": " << r.breakdown.sbFull
       << ", \"sb_drain\": " << r.breakdown.sbDrain
       << ", \"violation\": " << r.breakdown.violation << "}}";
}

} // namespace

void
writeSweepJson(std::ostream& os, const std::vector<SweepStats>& stats,
               const RunConfig& base, std::uint32_t numSeeds,
               std::uint32_t schema)
{
    os << "{\n"
       << "  \"schema\": \"invisifence-sweep-v"
       << schema << "\",\n"
       << "  \"config\": {\"warmup_cycles\": " << base.warmupCycles
       << ", \"measure_cycles\": " << base.measureCycles
       << ", \"base_seed\": " << base.seed
       << ", \"seeds\": " << numSeeds
       << ", \"num_cores\": " << base.system.numCores;
    if (schema >= 2) {
        // Machine topology (v2 only: the v1 goldens are byte-frozen).
        const TorusDims dims =
            torusDims(base.system.net, base.system.numCores);
        os << ", \"dim_x\": " << dims.x << ", \"dim_y\": " << dims.y
           << ", \"dir_hash\": "
           << (base.system.dirHashHome ? "true" : "false");
    }
    os << ", \"warm_start\": " << (base.warmStart ? "true" : "false")
       << "},\n"
       << "  \"points\": [\n";
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const SweepStats& s = stats[i];
        os << "    {\"workload\": \"" << s.workload << "\", \"impl\": \""
           << s.impl << "\",\n"
           << "     \"throughput\": ";
        writeEstimate(os, s.throughput());
        os << ",\n     \"spec_fraction\": ";
        writeEstimate(os, s.specFraction());
        os << ",\n     \"runs\": [";
        for (std::size_t r = 0; r < s.runs.size(); ++r) {
            if (r > 0)
                os << ",\n              ";
            writeRun(os, s.runs[r], schema);
        }
        os << "]}" << (i + 1 < stats.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace invisifence
