/**
 * @file
 * SweepRunner: parallel sharded execution of experiment grids.
 *
 * A sweep is a declarative list of (workload, implementation, config)
 * points. The runner shards the points across a std::thread pool (one
 * fully isolated simulator instance per point — the simulator has no
 * global mutable state, see the audit note in sweep.cc) and reassembles
 * the results in grid order, so parallel output is bit-identical to a
 * serial run of the same grid. On top of the raw runner sit multi-seed
 * statistics (mean/stddev/95% CI per point) and a machine-readable JSON
 * emitter, which together turn every figure bench into a statistical,
 * embarrassingly-parallel reproduction in the SimFlex sampling spirit.
 *
 * Knobs: INVISIFENCE_JOBS caps the worker count (default:
 * hardware_concurrency); INVISIFENCE_BENCH_SEEDS widens each point to
 * that many seeds (default 1).
 */

#ifndef INVISIFENCE_HARNESS_SWEEP_HH
#define INVISIFENCE_HARNESS_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "harness/runner.hh"
#include "workload/workloads.hh"

namespace invisifence {

/** One point of a sweep grid: run @c workload under @c kind with @c cfg. */
struct SweepPoint
{
    Workload workload;
    ImplKind kind = ImplKind::ConvSC;
    RunConfig cfg;
};

/**
 * Dense grid in deterministic order: workload-major, then implementation,
 * then seed (cfg.seed = base.seed + s for s in [0, numSeeds)).
 */
std::vector<SweepPoint> sweepGrid(const std::vector<Workload>& workloads,
                                  const std::vector<ImplKind>& kinds,
                                  const RunConfig& base,
                                  std::uint32_t numSeeds = 1);

/** Sample statistics of one scalar metric across seeds. */
struct Estimate
{
    double mean = 0;
    double stddev = 0;   //!< sample standard deviation (n-1 divisor)
    double ci95 = 0;     //!< Student-t 95% confidence half-width
    std::uint32_t n = 0;
};

/** Mean/stddev/95% CI of @p samples (t-distribution for small n). */
Estimate estimateOf(const std::vector<double>& samples);

/** Multi-seed results and statistics for one (workload, impl) point. */
struct SweepStats
{
    std::string workload;
    std::string impl;
    std::vector<RunResult> runs;   //!< seed order, at least one entry

    /** The first-seed run; equals the single RunResult when seeds == 1. */
    const RunResult& primary() const { return runs.front(); }

    Estimate throughput() const;
    Estimate specFraction() const;
};

/**
 * Shards independent experiment points across a worker pool and returns
 * results in submission order. Construction with jobs == 0 resolves the
 * worker count from INVISIFENCE_JOBS, falling back to
 * hardware_concurrency.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(std::uint32_t jobs = 0);

    std::uint32_t jobs() const { return jobs_; }

    /** INVISIFENCE_JOBS override, else hardware_concurrency, else 1. */
    static std::uint32_t defaultJobs();

    /**
     * Generic deterministic fan-out: computes fn(i) for i in [0, n) on
     * the pool and returns the results indexed by i. Results are
     * independent of scheduling; the first exception thrown by any task
     * is rethrown on the calling thread after the pool drains.
     */
    template <typename Fn>
    auto map(std::size_t n, Fn&& fn) const
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        static_assert(!std::is_same_v<R, bool>,
                      "map() workers write results[i] concurrently; "
                      "std::vector<bool> packs bits and would race — "
                      "return a wrapper struct instead");
        std::vector<R> results(n);
        const std::size_t workers =
            std::min<std::size_t>(jobs_, n);
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex error_mu;
        const auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n || failed.load(std::memory_order_relaxed))
                    return;
                try {
                    results[i] = fn(i);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mu);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto& t : pool)
            t.join();
        if (error)
            std::rethrow_exception(error);
        return results;
    }

    /**
     * Run every grid point (each in its own simulator instance) and
     * return the RunResults in grid order — bit-identical to calling
     * runExperiment serially over the same grid.
     */
    std::vector<RunResult> run(const std::vector<SweepPoint>& grid,
                               bool progress = false) const;

    /**
     * Full statistical sweep: widen (workloads x kinds) by @p numSeeds
     * seeds, run the grid, and fold the per-seed runs into one
     * SweepStats per point, in workload-major order.
     */
    std::vector<SweepStats>
    runStats(const std::vector<Workload>& workloads,
             const std::vector<ImplKind>& kinds, const RunConfig& base,
             std::uint32_t numSeeds = 1, bool progress = false) const;

  private:
    std::uint32_t jobs_;
};

/**
 * Machine-readable sweep results: one JSON object with the run
 * configuration and, per point, the raw per-seed counters plus
 * throughput/spec-fraction estimates. Output is deterministic for a
 * fixed grid and seed (goldens diff byte-for-byte). @p schema selects
 * the emitted revision: 1 ("invisifence-sweep-v1", the default — keeps
 * committed goldens byte-identical), 2, which adds the per-run
 * mshr_full_stalls / dir_stale_writebacks / dir_queued_requests
 * counters plus the machine topology (dim_x / dim_y / dir_hash) in the
 * config object, or 3, which further adds the fault-tolerance counters
 * (retries / drops_recovered / dups_squashed / timeout_backoff_max; the
 * v2 golden fig_scale64_small.json is byte-frozen, so the new fields
 * ride a new revision).
 */
void writeSweepJson(std::ostream& os, const std::vector<SweepStats>& stats,
                    const RunConfig& base, std::uint32_t numSeeds,
                    std::uint32_t schema = 1);

} // namespace invisifence

#endif // INVISIFENCE_HARNESS_SWEEP_HH
