/**
 * @file
 * iflint — the in-tree invariant analyzer. Library interface; the CLI
 * in iflint_main.cc and the gtest suite both drive these entry points.
 *
 * Pass 1 (source rules) lexes C++ sources (comments and string
 * literals blanked, so prose never trips a rule) and enforces the
 * determinism/discipline rules the simulator's hot-path work depends
 * on. Every rule supports an explicit suppression:
 *
 *     code();            // iflint:allow(<rule>) <justification>
 *     // iflint:allow(<rule>) <justification>   (covers the next line)
 *     // iflint:begin-allow(<rule>) <justification>
 *     ...region...
 *     // iflint:end-allow(<rule>)
 *
 * Missing justifications, unknown rule names, unmatched begin/end and
 * suppressions that suppress nothing are themselves violations, so the
 * set of exceptions stays exact and greppable.
 *
 * Pass 2 (binary hot-path allocation proof) recovers IF_HOT /
 * IF_COLD_ALLOC markers (src/sim/annotations.hh) from Release-object
 * symbol tables, builds the static call graph from objdump
 * disassembly, and reports every path from a hot root to
 * operator new / the malloc family / __cxa_throw that does not cross
 * a declared allocation frontier.
 */

#ifndef IFLINT_LIB_HH
#define IFLINT_LIB_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace iflint {

// ---------------------------------------------------------------- pass 1

/** Rule identifiers; suppression comments must name one of these. */
extern const std::vector<std::string> kRules;

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;    // one of kRules, or "bad-suppression"
    std::string detail;
};

/** Result of lexing one file: code with comments/strings blanked
 *  (newlines preserved so offsets map to lines) plus the comments. */
struct FileLex {
    struct Comment {
        int lineBegin = 0;
        int lineEnd = 0;
        std::string text;
    };
    std::string code;
    std::vector<Comment> comments;
};
FileLex lexFile(const std::string& text);

struct Token {
    enum Kind { Ident, Num, Punct };
    Kind kind;
    std::string text;
    int line = 0;
};
std::vector<Token> tokenize(const std::string& code);

/** Phase A: record identifiers declared with an unordered container
 *  type (including `using X = std::unordered_map<...>` aliases) into
 *  `names` / `aliases`. Called over every file before any file is
 *  rule-checked so member iteration in a .cc is caught even when the
 *  member is declared in the header. */
void collectUnorderedNames(const std::vector<Token>& toks,
                           std::set<std::string>& names,
                           std::set<std::string>& aliases);

struct Pass1FileResult {
    std::vector<Finding> findings;   // violations surviving suppression
    int suppressionsHonored = 0;
};

/** Phase B: run all rules on one file and apply its suppressions. */
Pass1FileResult analyzeFile(const std::string& path,
                            const std::string& text,
                            const std::set<std::string>& unorderedNames,
                            const std::set<std::string>& unorderedAliases);

struct Pass1Result {
    std::vector<Finding> findings;
    int filesScanned = 0;
    int suppressionsHonored = 0;
};

/** Scan files/directories (recursing into dirs for .hh/.cc/.h/.cpp). */
Pass1Result runPass1(const std::vector<std::string>& paths);

// ---------------------------------------------------------------- pass 2

struct CallGraph {
    std::map<std::string, std::vector<std::string>> calls; // mangled
    std::set<std::string> defined;      // functions with bodies seen
    std::map<std::string, int> indirect; // per-function indirect calls
    std::set<std::string> hotRoots;     // mangled enclosing functions
    std::set<std::string> coldCuts;
};

/** Feed `objdump -t` output: collects IF_HOT/IF_COLD_ALLOC markers. */
void parseSymtab(const std::string& text, CallGraph& g);
/** Feed `objdump -dr` output: collects functions and call edges
 *  (relocation lines override the disassembler's guessed targets). */
void parseDisasm(const std::string& text, CallGraph& g);

struct AllowEntry {
    std::string pattern;        // substring of mangled or demangled name
    std::string justification;
    int hits = 0;
};
/** Parse "pattern | justification" lines; '#' comments and blanks are
 *  skipped. Entries without a justification land in `errors`. */
std::vector<AllowEntry> loadAllowFile(const std::string& text,
                                      std::vector<std::string>& errors);

struct Violation {
    std::string root;
    std::string badSym;
    std::vector<std::string> path;  // root ... badSym (mangled)
};

struct Pass2Result {
    std::vector<Violation> violations;
    std::vector<std::string> missingRoots; // marker seen, no body found
    std::vector<std::string> coldCutsHit;  // cold frontiers traversed into
    std::vector<std::string> errors;
    int rootsFound = 0;
    int functions = 0;
    int edges = 0;
    long indirectCalls = 0;
};

Pass2Result analyzeGraph(const CallGraph& g, std::vector<AllowEntry>& allow);

/** End-to-end: run objdump over the given .o files (directories are
 *  globbed recursively for *.o), parse, analyze. */
Pass2Result runPass2(const std::vector<std::string>& objectsOrDirs,
                     const std::string& allowFilePath);

/** True for operator new/new[], the malloc family, and the C++ throw
 *  machinery (incl. libstdc++ __throw_* helpers). */
bool isKillSymbol(const std::string& mangled);

/** __cxa_demangle wrapper; returns the input on failure. */
std::string demangle(const std::string& sym);

} // namespace iflint

#endif // IFLINT_LIB_HH
