/**
 * @file
 * iflint test suite.
 *
 * Three tiers:
 *   - pure library tests (lexer, tokenizer, allow-file parser, graph
 *     analysis over synthetic call graphs, objdump-output parsers over
 *     canned text) that need no fixtures at all;
 *   - pass-1 fixture tests driven by the good/bad source pairs under
 *     fixtures/pass1/, located via the IFLINT_FIXTURE_DIR environment
 *     variable set by the ctest registration;
 *   - pass-2 integration tests over fixture objects compiled by CMake
 *     at -O2 -DNDEBUG (IFLINT_PASS2_{BAD,GOOD,CUT}_DIR), proving the
 *     binary walk really catches a planted `new` under an IF_HOT root
 *     and really honors IF_COLD_ALLOC frontiers.
 */

#include "iflint_lib.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

using iflint::Finding;

std::string
envPath(const char* var)
{
    const char* v = std::getenv(var);
    return v && *v ? std::string(v) : std::string();
}

/** Run pass 1 over exactly one fixture file (each fixture is
 *  self-contained: unordered-name collection sees only that file, so
 *  fixtures cannot contaminate each other's alias sets). */
iflint::Pass1Result
lintFixture(const std::string& name)
{
    const std::string dir = envPath("IFLINT_FIXTURE_DIR");
    EXPECT_FALSE(dir.empty()) << "IFLINT_FIXTURE_DIR not set";
    return iflint::runPass1({dir + "/" + name});
}

std::vector<std::string>
rulesOf(const iflint::Pass1Result& r)
{
    std::vector<std::string> out;
    out.reserve(r.findings.size());
    for (const Finding& f : r.findings)
        out.push_back(f.rule);
    return out;
}

// ------------------------------------------------------------------ lexer

TEST(Lexer, BlanksCommentsAndStringsButKeepsLineStructure)
{
    const std::string src =
        "int a; // trailing comment with assert(\n"
        "const char* s = \"assert(rand())\";\n"
        "/* block\n"
        "   assert( */ int b;\n";
    const iflint::FileLex lex = iflint::lexFile(src);

    // Newlines survive so token line numbers stay meaningful.
    EXPECT_EQ(std::count(lex.code.begin(), lex.code.end(), '\n'),
              std::count(src.begin(), src.end(), '\n'));
    // Neither the comment text nor the literal text remains in code.
    EXPECT_EQ(lex.code.find("trailing"), std::string::npos);
    EXPECT_EQ(lex.code.find("rand"), std::string::npos);
    EXPECT_NE(lex.code.find("int a;"), std::string::npos);
    EXPECT_NE(lex.code.find("int b;"), std::string::npos);

    // Comments are captured with their line spans.
    ASSERT_EQ(lex.comments.size(), 2u);
    EXPECT_EQ(lex.comments[0].lineBegin, 1);
    EXPECT_EQ(lex.comments[1].lineBegin, 3);
    EXPECT_EQ(lex.comments[1].lineEnd, 4);
}

TEST(Lexer, CharLiteralsAndEscapesDoNotConfuseStringScanning)
{
    const std::string src =
        "char q = '\"';\n"
        "const char* t = \"a\\\"b\"; int after = 1;\n";
    const iflint::FileLex lex = iflint::lexFile(src);
    EXPECT_NE(lex.code.find("int after = 1;"), std::string::npos);
    EXPECT_TRUE(lex.comments.empty());
}

TEST(Tokenizer, ClassifiesIdentifiersNumbersAndPunctuation)
{
    const std::vector<iflint::Token> toks =
        iflint::tokenize("foo42 << 1u;\nbar(0x1f);");
    ASSERT_GE(toks.size(), 8u);
    EXPECT_EQ(toks[0].kind, iflint::Token::Ident);
    EXPECT_EQ(toks[0].text, "foo42");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].kind, iflint::Token::Punct);
    EXPECT_EQ(toks[1].text, "<<");
    EXPECT_EQ(toks[2].kind, iflint::Token::Num);
    EXPECT_EQ(toks[2].text, "1u");
    // Second line gets line number 2.
    const auto bar = std::find_if(toks.begin(), toks.end(),
                                  [](const iflint::Token& t) {
                                      return t.text == "bar";
                                  });
    ASSERT_NE(bar, toks.end());
    EXPECT_EQ(bar->line, 2);
}

TEST(Tokenizer, CollectsUnorderedContainerNamesAndAliases)
{
    const auto toks = iflint::tokenize(
        "std::unordered_map<int, int> table;\n"
        "using AliasMap = std::unordered_map<long, long>;\n"
        "AliasMap byAlias;\n"
        "std::map<int, int> ordered;\n");
    std::set<std::string> names, aliases;
    iflint::collectUnorderedNames(toks, names, aliases);
    EXPECT_TRUE(names.count("table"));
    EXPECT_TRUE(aliases.count("AliasMap"));
    EXPECT_TRUE(names.count("byAlias"));
    EXPECT_FALSE(names.count("ordered"));
}

// ------------------------------------------------------- pass 1 fixtures

struct RuleFixtureCase {
    const char* bad;
    const char* good;
    const char* rule;
    int expected;   // findings in the bad fixture
};

class Pass1RuleFixtures : public testing::TestWithParam<RuleFixtureCase> {};

TEST_P(Pass1RuleFixtures, BadTripsExactlyItsRuleGoodIsClean)
{
    const RuleFixtureCase& c = GetParam();

    const iflint::Pass1Result bad = lintFixture(c.bad);
    EXPECT_EQ(static_cast<int>(bad.findings.size()), c.expected)
        << "unexpected finding count in " << c.bad;
    for (const Finding& f : bad.findings)
        EXPECT_EQ(f.rule, c.rule) << f.file << ":" << f.line << " "
                                  << f.detail;

    const iflint::Pass1Result good = lintFixture(c.good);
    EXPECT_TRUE(good.findings.empty())
        << c.good << " tripped: [" << good.findings[0].rule << "] "
        << good.findings[0].detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, Pass1RuleFixtures,
    testing::Values(
        RuleFixtureCase{"bad_unordered_iter.cc", "good_unordered_iter.cc",
                        "unordered-iter", 3},
        RuleFixtureCase{"bad_nondet.cc", "good_nondet.cc",
                        "nondet-source", 4},
        RuleFixtureCase{"bad_ptr_hash.cc", "good_ptr_hash.cc",
                        "ptr-hash", 2},
        RuleFixtureCase{"bad_raw_shift.cc", "good_raw_shift.cc",
                        "raw-shift", 2},
        RuleFixtureCase{"bad_raw_assert.cc", "good_raw_assert.cc",
                        "raw-assert", 1},
        RuleFixtureCase{"sim/bad_std_function.cc",
                        "sim/good_std_function.cc", "std-function", 1}),
    [](const testing::TestParamInfo<RuleFixtureCase>& pinfo) {
        std::string n = pinfo.param.rule;
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

TEST(Pass1Suppressions, AllThreeShapesAreHonoredWhenJustified)
{
    const iflint::Pass1Result r = lintFixture("suppress_ok.cc");
    EXPECT_TRUE(r.findings.empty())
        << "[" << r.findings[0].rule << "] " << r.findings[0].detail;
    EXPECT_GE(r.suppressionsHonored, 3);
}

TEST(Pass1Suppressions, MissingJustificationIsItselfAViolation)
{
    const iflint::Pass1Result r = lintFixture("suppress_missing_just.cc");
    const auto rules = rulesOf(r);
    EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-suppression"),
              rules.end());
}

TEST(Pass1Suppressions, UnknownRuleNameIsItselfAViolation)
{
    const iflint::Pass1Result r = lintFixture("suppress_unknown_rule.cc");
    const auto rules = rulesOf(r);
    EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-suppression"),
              rules.end());
}

TEST(Pass1Suppressions, SuppressionThatSuppressesNothingIsAViolation)
{
    const iflint::Pass1Result r = lintFixture("suppress_unused.cc");
    const auto rules = rulesOf(r);
    EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-suppression"),
              rules.end());
}

TEST(Pass1Suppressions, UnmatchedBeginAllowIsAViolation)
{
    const iflint::Pass1Result r = lintFixture("suppress_unmatched.cc");
    const auto rules = rulesOf(r);
    EXPECT_NE(std::find(rules.begin(), rules.end(), "bad-suppression"),
              rules.end());
}

TEST(Pass1, HotDirScopingOnlyAppliesStdFunctionRuleUnderHotPaths)
{
    // The same std::function member is clean outside the hot dirs...
    const std::set<std::string> none;
    const std::string src = "#include <functional>\n"
                            "struct H { std::function<void()> cb; };\n";
    EXPECT_TRUE(iflint::analyzeFile("tools/util.hh", src, none, none)
                    .findings.empty());
    // ...and a finding inside them.
    const auto hot = iflint::analyzeFile("src/coh/agent.hh", src, none,
                                         none);
    ASSERT_EQ(hot.findings.size(), 1u);
    EXPECT_EQ(hot.findings[0].rule, "std-function");
}

// --------------------------------------------------------- allow file

TEST(AllowFile, ParsesPatternsSkipsCommentsFlagsMissingJustification)
{
    std::vector<std::string> errors;
    const auto entries = iflint::loadAllowFile(
        "# header comment\n"
        "\n"
        "_M_realloc_insert | vector growth, bounded by warmup\n"
        "bare_pattern_without_bar\n",
        errors);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].pattern, "_M_realloc_insert");
    EXPECT_EQ(entries[0].justification, "vector growth, bounded by warmup");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("justification"), std::string::npos);
}

// ------------------------------------------------------ graph analysis

TEST(KillSymbols, AllocatorsThrowMachineryYesOrdinaryCodeNo)
{
    EXPECT_TRUE(iflint::isKillSymbol("_Znwm"));
    EXPECT_TRUE(iflint::isKillSymbol("_ZnamRKSt9nothrow_t"));
    EXPECT_TRUE(iflint::isKillSymbol("malloc"));
    EXPECT_TRUE(iflint::isKillSymbol("posix_memalign"));
    EXPECT_TRUE(iflint::isKillSymbol("__cxa_throw"));
    EXPECT_TRUE(iflint::isKillSymbol(
        "_ZSt20__throw_length_errorPKc"));
    EXPECT_FALSE(iflint::isKillSymbol("_ZN3sim4tickEv"));
    EXPECT_FALSE(iflint::isKillSymbol("memcpy"));
    EXPECT_FALSE(iflint::isKillSymbol("free"));
}

TEST(Demangle, RoundTripsAndPassesThroughNonMangledNames)
{
    EXPECT_EQ(iflint::demangle("_ZN3sim4tickEv"), "sim::tick()");
    EXPECT_EQ(iflint::demangle("malloc"), "malloc");
}

TEST(Symtab, RecoversHotRootsAndColdCutsFromMarkerSymbols)
{
    iflint::CallGraph g;
    iflint::parseSymtab(
        "0000000000000000 l     O .bss\t0000000000000001 "
        "_ZZN3sim4tickEvE11if_hot_root\n"
        "0000000000000000 l     O .bss\t0000000000000001 "
        "_ZZN3sim4growEvE11if_cold_cut\n"
        "0000000000000000 l     O .bss\t0000000000000001 "
        "_ZZN3sim5tick2EvE11if_hot_root_0\n"
        "0000000000000000 g     F .text\t0000000000000010 "
        "_ZN3sim4tickEv\n",
        g);
    EXPECT_TRUE(g.hotRoots.count("_ZN3sim4tickEv"));
    EXPECT_TRUE(g.hotRoots.count("_ZN3sim5tick2Ev"));
    EXPECT_TRUE(g.coldCuts.count("_ZN3sim4growEv"));
    EXPECT_EQ(g.hotRoots.size(), 2u);
}

TEST(Disasm, RelocationLinesOverrideGuessedCallTargets)
{
    iflint::CallGraph g;
    iflint::parseDisasm(
        "0000000000000000 <_ZN3sim4tickEv>:\n"
        "   0:\te8 00 00 00 00       \tcall   5 <_ZN3sim4tickEv+0x5>\n"
        "\t\t\t1: R_X86_64_PLT32\t_Znwm-0x4\n"
        "   5:\tff d0                \tcall   *%rax\n"
        "   7:\te9 00 00 00 00       \tjmp    c <_ZN3sim4tickEv+0xc>\n"
        "\t\t\t8: R_X86_64_PLT32\t_ZN3sim4nextEv-0x4\n"
        "   c:\tc3                   \tret\n",
        g);
    ASSERT_TRUE(g.defined.count("_ZN3sim4tickEv"));
    const auto& calls = g.calls.at("_ZN3sim4tickEv");
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0], "_Znwm");          // reloc overrode the self-guess
    EXPECT_EQ(calls[1], "_ZN3sim4nextEv"); // tail jump counts as an edge
    EXPECT_EQ(g.indirect.at("_ZN3sim4tickEv"), 1);
}

TEST(Disasm, ColdOutlinedFragmentsAttributeToTheirParentFunction)
{
    // GCC outlines [[unlikely]] branches as `foo.cold` in
    // .text.unlikely; calls made there must count as calls of foo.
    iflint::CallGraph g;
    iflint::parseDisasm(
        "0000000000000000 <_ZN3sim4tickEv>:\n"
        "   0:\t0f 84 00 00 00 00    \tje     6 <_ZN3sim4tickEv+0x6>\n"
        "\t\t\t2: R_X86_64_PC32\t.text.unlikely+0xf8\n"
        "   6:\tc3                   \tret\n"
        "\n"
        "00000000000000f8 <_ZN3sim4tickEv.cold>:\n"
        "  f8:\te8 00 00 00 00       \tcall   fd <_ZN3sim4tickEv.cold"
        "+0x5>\n"
        "\t\t\tf9: R_X86_64_PLT32\t_Znwm-0x4\n",
        g);
    ASSERT_TRUE(g.calls.count("_ZN3sim4tickEv"));
    const auto& calls = g.calls.at("_ZN3sim4tickEv");
    EXPECT_NE(std::find(calls.begin(), calls.end(), "_Znwm"),
              calls.end())
        << "allocation inside the .cold fragment was not attributed "
           "to the parent";
    EXPECT_FALSE(g.calls.count("_ZN3sim4tickEv.cold"));
}

iflint::CallGraph
syntheticGraph()
{
    iflint::CallGraph g;
    g.defined = {"root", "helper"};
    g.calls["root"] = {"helper"};
    g.calls["helper"] = {"_Znwm"};
    g.hotRoots = {"root"};
    return g;
}

TEST(GraphAnalysis, ReportsFullPathFromRootToAllocator)
{
    iflint::CallGraph g = syntheticGraph();
    std::vector<iflint::AllowEntry> allow;
    const iflint::Pass2Result r = iflint::analyzeGraph(g, allow);
    ASSERT_EQ(r.violations.size(), 1u);
    EXPECT_EQ(r.violations[0].root, "root");
    EXPECT_EQ(r.violations[0].badSym, "_Znwm");
    const std::vector<std::string> want = {"root", "helper", "_Znwm"};
    EXPECT_EQ(r.violations[0].path, want);
    EXPECT_EQ(r.rootsFound, 1);
}

TEST(GraphAnalysis, ColdCutSeversTraversalAndIsReported)
{
    iflint::CallGraph g = syntheticGraph();
    g.coldCuts = {"helper"};
    std::vector<iflint::AllowEntry> allow;
    const iflint::Pass2Result r = iflint::analyzeGraph(g, allow);
    EXPECT_TRUE(r.violations.empty());
    ASSERT_EQ(r.coldCutsHit.size(), 1u);
    EXPECT_EQ(r.coldCutsHit[0], "helper");
}

TEST(GraphAnalysis, AllowPatternSeversTraversalAndCountsHits)
{
    iflint::CallGraph g = syntheticGraph();
    std::vector<iflint::AllowEntry> allow = {
        {"helper", "bounded by construction", 0}};
    const iflint::Pass2Result r = iflint::analyzeGraph(g, allow);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(allow[0].hits, 1);
}

TEST(GraphAnalysis, TerminalSinksAreNotViolations)
{
    iflint::CallGraph g;
    g.defined = {"root"};
    g.calls["root"] = {"abort", "__assert_fail",
                       "_ZN11invisifence9panicImplEv"};
    g.hotRoots = {"root"};
    std::vector<iflint::AllowEntry> allow;
    const iflint::Pass2Result r = iflint::analyzeGraph(g, allow);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(r.rootsFound, 1);
}

TEST(GraphAnalysis, MarkerWithoutBodyIsFlaggedAsMissingRoot)
{
    iflint::CallGraph g;
    g.hotRoots = {"ghost"};
    std::vector<iflint::AllowEntry> allow;
    const iflint::Pass2Result r = iflint::analyzeGraph(g, allow);
    EXPECT_EQ(r.rootsFound, 0);
    ASSERT_EQ(r.missingRoots.size(), 1u);
    EXPECT_EQ(r.missingRoots[0], "ghost");
}

// ------------------------------------------------- pass 2 integration

/** Objects for these live under the build tree; the ctest registration
 *  points the env vars at the fixture OBJECT-library output dirs. */
iflint::Pass2Result
lintObjects(const char* var)
{
    const std::string dir = envPath(var);
    EXPECT_FALSE(dir.empty()) << var << " not set";
    return iflint::runPass2({dir}, "");
}

TEST(Pass2Integration, PlantedAllocationUnderHotRootIsCaught)
{
    const iflint::Pass2Result r = lintObjects("IFLINT_PASS2_BAD_DIR");
    ASSERT_TRUE(r.errors.empty()) << r.errors[0];
    EXPECT_GE(r.rootsFound, 1);
    ASSERT_FALSE(r.violations.empty())
        << "planted `new` under IF_HOT was not detected";
    const iflint::Violation& v = r.violations[0];
    EXPECT_NE(iflint::demangle(v.root).find("hotEntryBad"),
              std::string::npos);
    EXPECT_TRUE(iflint::isKillSymbol(v.badSym)) << v.badSym;
}

TEST(Pass2Integration, AllocationFreeHotRootProvesClean)
{
    const iflint::Pass2Result r = lintObjects("IFLINT_PASS2_GOOD_DIR");
    ASSERT_TRUE(r.errors.empty()) << r.errors[0];
    EXPECT_EQ(r.rootsFound, 1);
    EXPECT_TRUE(r.violations.empty())
        << r.violations[0].root << " -> " << r.violations[0].badSym;
}

TEST(Pass2Integration, ColdAllocFrontierPassesAndReportsTheCut)
{
    const iflint::Pass2Result r = lintObjects("IFLINT_PASS2_CUT_DIR");
    ASSERT_TRUE(r.errors.empty()) << r.errors[0];
    EXPECT_EQ(r.rootsFound, 1);
    EXPECT_TRUE(r.violations.empty())
        << r.violations[0].root << " -> " << r.violations[0].badSym;
    ASSERT_EQ(r.coldCutsHit.size(), 1u);
    EXPECT_NE(iflint::demangle(r.coldCutsHit[0]).find("growPoolOnce"),
              std::string::npos);
}

} // namespace
