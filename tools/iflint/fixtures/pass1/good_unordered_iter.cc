// Fixture: unordered containers used for lookup only — no findings.
#include <map>
#include <unordered_map>

namespace fixture {

std::unordered_map<unsigned long, int> table;
std::map<unsigned long, int> sortedView;

int
lookupOnly(unsigned long key)
{
    auto it = table.find(key);        // OK: .end() is a lookup sentinel
    return it == table.end() ? 0 : it->second;
}

int
orderedIteration()
{
    int sum = 0;
    for (const auto& [key, value] : sortedView)   // OK: std::map is ordered
        sum += value;
    return sum;
}

} // namespace fixture
