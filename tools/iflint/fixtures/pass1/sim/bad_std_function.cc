// Fixture (hot-path dir): must trip std-function (and only that).
#include <functional>

namespace fixture {

struct Dispatcher {
    std::function<void(int)> sink;   // BAD: type-erased, heap-backed
};

void
fire(Dispatcher& d, int payload)
{
    if (d.sink)
        d.sink(payload);
}

} // namespace fixture
