// Fixture (hot-path dir): devirtualized hooks — no findings.

namespace fixture {

struct Dispatcher {
    // OK: function pointer + context, the setMsgDispatcher idiom.
    using Hook = void (*)(void* ctx, int payload);
    Hook hook = nullptr;
    void* ctx = nullptr;
};

void
fire(Dispatcher& d, int payload)
{
    if (d.hook)
        d.hook(d.ctx, payload);
}

} // namespace fixture
