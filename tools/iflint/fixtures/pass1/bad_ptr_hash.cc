// Fixture: must trip ptr-hash (and only ptr-hash).
#include <cstddef>
#include <functional>

namespace fixture {

struct Node {
    int payload = 0;
};

std::size_t
hashByAddress(Node* n)
{
    return std::hash<Node*>{}(n);          // BAD: pointer-value hash
}

bool
orderByAddress(Node* a, Node* b)
{
    return std::less<const Node*>{}(a, b); // BAD: pointer-value ordering
}

} // namespace fixture
