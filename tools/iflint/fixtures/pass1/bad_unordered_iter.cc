// Fixture: must trip unordered-iter (and only unordered-iter).
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::unordered_map<unsigned long, int> table;
std::unordered_set<int> members;
using AliasMap = std::unordered_map<int, int>;

int
sumAll()
{
    int sum = 0;
    for (const auto& [key, value] : table)   // BAD: range-for
        sum += value;
    for (auto it = members.begin(); it != members.end(); ++it)  // BAD
        sum += *it;
    return sum;
}

int
aliasLoop(const AliasMap& m)
{
    int sum = 0;
    for (const auto& kv : m)   // BAD: range-for over aliased unordered type
        sum += kv.second;
    return sum;
}

} // namespace fixture
