// Fixture: naming a rule that does not exist is itself an error.

namespace fixture {

// iflint:allow(made-up-rule) this rule name is not in kRules
int
f(int i)
{
    return i;
}

} // namespace fixture
