// Fixture: must trip nondet-source (and only nondet-source).
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

unsigned
seedFromEntropy()
{
    std::random_device rd;            // BAD: hardware entropy
    return rd();
}

int
diceRoll()
{
    return rand() % 6;                // BAD: global C PRNG
}

long
wallClock()
{
    auto t = std::chrono::steady_clock::now();   // BAD: wall-clock time
    return t.time_since_epoch().count();
}

long
epochSeconds()
{
    return std::time(nullptr);        // BAD: std::time call
}

} // namespace fixture
