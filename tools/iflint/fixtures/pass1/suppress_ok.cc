// Fixture: every violation below carries a justified suppression, in
// each supported shape — expect zero findings.
#include <cassert>
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> table;

int
sameLine(int i)
{
    assert(i >= 0);   // iflint:allow(raw-assert) fixture: same-line suppression shape
    return i;
}

int
nextLine(int i)
{
    // iflint:allow(raw-assert) fixture: next-line suppression shape
    assert(i >= 0);
    return i;
}

int
blockForm()
{
    int sum = 0;
    // iflint:begin-allow(unordered-iter) fixture: block suppression shape
    for (const auto& [key, value] : table)
        sum += value;
    for (const auto& [key, value] : table)
        sum -= value;
    // iflint:end-allow(unordered-iter)
    return sum;
}

} // namespace fixture
