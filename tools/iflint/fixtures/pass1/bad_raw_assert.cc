// Fixture: must trip raw-assert (and only raw-assert).
#include <cassert>

namespace fixture {

int
checkedIndex(int i, int bound)
{
    assert(i >= 0 && i < bound);   // BAD: raw assert
    return i;
}

} // namespace fixture
