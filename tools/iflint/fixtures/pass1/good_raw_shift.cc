// Fixture: compile-time and width-checked shifts — no findings.
#include <cstdint>

namespace fixture {

constexpr std::uint32_t kShardShift = 6;

std::uint64_t
fixedMask()
{
    return 1u << 13;                      // OK: literal shift count
}

std::uint64_t
namedConstantMask()
{
    return 1u << kShardShift;             // OK: kConst-style constant
}

std::uint64_t
typeWidthMask()
{
    return 1ull << sizeof(std::uint32_t); // OK: sizeof expression
}

std::uint64_t
streamInsert(std::uint64_t a, std::uint64_t b)
{
    return a << b;                        // OK: LHS is not the literal 1
}

} // namespace fixture
