// Fixture: value-keyed hashing and ordering — no findings.
#include <cstddef>
#include <functional>

namespace fixture {

std::size_t
hashByValue(unsigned long block_addr)
{
    return std::hash<unsigned long>{}(block_addr);   // OK: value key
}

bool
orderByValue(unsigned long a, unsigned long b)
{
    return std::less<unsigned long>{}(a, b);         // OK: value key
}

} // namespace fixture
