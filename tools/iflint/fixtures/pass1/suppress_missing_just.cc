// Fixture: a suppression without a justification is itself an error.
#include <cassert>

namespace fixture {

int
f(int i)
{
    assert(i >= 0);   // iflint:allow(raw-assert)
    return i;
}

} // namespace fixture
