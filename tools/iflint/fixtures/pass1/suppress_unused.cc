// Fixture: a suppression that suppresses nothing is itself an error.

namespace fixture {

// iflint:allow(raw-assert) fixture: nothing on the next line to suppress
int
f(int i)
{
    return i;
}

} // namespace fixture
