// Fixture: begin-allow with no matching end-allow is itself an error.
#include <cassert>

namespace fixture {

// iflint:begin-allow(raw-assert) fixture: block never closed
int
f(int i)
{
    assert(i >= 0);
    return i;
}

} // namespace fixture
