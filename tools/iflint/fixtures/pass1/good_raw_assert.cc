// Fixture: sanctioned assert spellings — no findings.

// The fixture corpus is lexed, not compiled, so a local stand-in for
// sim/annotations.hh keeps the file self-contained.
#define IF_DBG_ASSERT(...) ((void)0)
#define IF_FATAL(...) ((void)0)

namespace fixture {

int
checkedIndex(int i, int bound)
{
    IF_DBG_ASSERT(i >= 0 && i < bound);   // OK: sanctioned debug macro
    if (i < 0 || i >= bound)
        IF_FATAL("index %d out of [0, %d)", i, bound);   // OK: always-on
    static_assert(sizeof(int) >= 4);      // OK: compile-time assert
    return i;
}

} // namespace fixture
