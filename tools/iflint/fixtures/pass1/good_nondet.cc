// Fixture: seeded determinism and benign homonyms — no findings.

namespace fixture {

struct Rng {
    unsigned long state;
    explicit Rng(unsigned long seed) : state(seed) {}
    unsigned long next() { return state = state * 6364136223846793005ul + 1; }
};

struct Timer {
    unsigned long ticks = 0;
    unsigned long time() const { return ticks; }    // OK: member definition
    unsigned long clock() const { return ticks; }   // OK: member definition
};

unsigned long
seededDraw(unsigned long seed)
{
    Rng rng(seed);                  // OK: all randomness flows from the seed
    return rng.next();
}

unsigned long
simulatedTime(const Timer& t)
{
    return t.time() + t.clock();    // OK: member calls on a sim object
}

} // namespace fixture
