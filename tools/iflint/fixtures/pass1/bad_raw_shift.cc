// Fixture: must trip raw-shift (and only raw-shift).
#include <cstdint>

namespace fixture {

std::uint64_t
nodeMask(std::uint32_t node)
{
    return 1u << node;                    // BAD: runtime shift, no width check
}

std::uint8_t
ctxMask(std::uint32_t ctx)
{
    return static_cast<std::uint8_t>(1 << ctx);   // BAD: truncating shift
}

} // namespace fixture
