// Pass-2 fixture: a hot root whose only allocation sits behind an
// IF_COLD_ALLOC frontier. iflint pass 2 must pass and report the cut.
#include <vector>

#include "sim/annotations.hh"

namespace fixture {

std::vector<int> pool;

IF_COLD_FN void
growPoolOnce(int v)
{
    IF_COLD_ALLOC("fixture: pool growth happens once during warmup by "
                  "construction of the test");
    pool.push_back(v);
}

void
hotEntryCut(int v)
{
    IF_HOT;
    if (pool.empty())
        growPoolOnce(v);
}

} // namespace fixture
