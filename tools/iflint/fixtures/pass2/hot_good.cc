// Pass-2 fixture: an allocation-free hot root with a helper call chain.
// iflint pass 2 over this object must report zero violations.
#include "sim/annotations.hh"

namespace fixture {

unsigned long accumulator = 0;

unsigned long
mix(unsigned long x)
{
    return x * 6364136223846793005ul + 1442695040888963407ul;
}

void
hotEntryGood(unsigned long v)
{
    IF_HOT;
    accumulator = mix(accumulator ^ v);
}

} // namespace fixture
