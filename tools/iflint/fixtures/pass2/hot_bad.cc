// Pass-2 fixture: a hot root with a planted allocation. iflint pass 2
// over this object MUST report a violation (hotEntryBad -> operator new).
#include "sim/annotations.hh"

namespace fixture {

int* planted_sink = nullptr;

void
hotEntryBad(int v)
{
    IF_HOT;
    planted_sink = new int(v);   // planted: reachable allocation
}

} // namespace fixture
