/**
 * @file
 * iflint CLI.
 *
 *   iflint pass1 <file-or-dir>...
 *       Source rules over the given trees (see iflint_lib.hh for the
 *       rule list and suppression syntax). Exit 1 on any violation.
 *
 *   iflint pass2 [--allow FILE] <object-or-dir>...
 *       Hot-path allocation proof over Release objects: walks the
 *       static call graph from every IF_HOT root and fails if
 *       operator new / the malloc family / __cxa_throw is reachable
 *       outside IF_COLD_ALLOC cuts and --allow frontier patterns.
 *       Exit 1 on violations (or if no roots were found: a proof over
 *       zero roots is vacuous and almost certainly a wiring bug).
 *
 * Exit codes: 0 clean, 1 violations, 2 usage or I/O error.
 */

#include "iflint_lib.hh"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: iflint pass1 <file-or-dir>...\n"
                 "       iflint pass2 [--allow FILE] <object-or-dir>...\n");
    return 2;
}

int
runPass1Cli(const std::vector<std::string>& paths)
{
    const iflint::Pass1Result r = iflint::runPass1(paths);
    for (const auto& f : r.findings)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.detail.c_str());
    std::fprintf(stderr,
                 "iflint pass1: %d files, %zu violation(s), "
                 "%d justified suppression(s)\n",
                 r.filesScanned, r.findings.size(), r.suppressionsHonored);
    return r.findings.empty() ? 0 : 1;
}

int
runPass2Cli(const std::vector<std::string>& args)
{
    std::string allowFile;
    std::vector<std::string> objects;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--allow") {
            if (i + 1 >= args.size())
                return usage();
            allowFile = args[++i];
        } else {
            objects.push_back(args[i]);
        }
    }
    if (objects.empty())
        return usage();

    iflint::Pass2Result r = iflint::runPass2(objects, allowFile);
    bool hardError = false;
    for (const std::string& e : r.errors) {
        std::fprintf(stderr, "iflint pass2: %s\n", e.c_str());
        if (e.compare(0, 8, "warning:") != 0)
            hardError = true;
    }
    if (hardError)
        return 2;

    for (const auto& v : r.violations) {
        std::fprintf(stderr,
                     "iflint pass2: allocation reachable from hot root "
                     "%s:\n",
                     iflint::demangle(v.root).c_str());
        for (const std::string& s : v.path)
            std::fprintf(stderr, "    -> %s\n",
                         iflint::demangle(s).c_str());
    }
    for (const std::string& m : r.missingRoots)
        std::fprintf(stderr,
                     "iflint pass2: warning: IF_HOT marker for %s has no "
                     "body in the analyzed objects (fully inlined or not "
                     "compiled here)\n",
                     iflint::demangle(m).c_str());
    for (const std::string& c : r.coldCutsHit)
        std::fprintf(stderr, "iflint pass2: cold cut: %s\n",
                     iflint::demangle(c).c_str());
    std::fprintf(stderr,
                 "iflint pass2: %d hot root(s), %d function(s), %d "
                 "edge(s), %ld indirect call site(s), %zu cold cut(s), "
                 "%zu violation(s)\n",
                 r.rootsFound, r.functions, r.edges, r.indirectCalls,
                 r.coldCutsHit.size(), r.violations.size());
    if (r.rootsFound == 0) {
        std::fprintf(stderr,
                     "iflint pass2: no IF_HOT roots found — vacuous "
                     "proof, failing\n");
        return 1;
    }
    return r.violations.empty() ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() < 2)
        return usage();
    const std::string mode = args[0];
    args.erase(args.begin());
    if (mode == "pass1")
        return runPass1Cli(args);
    if (mode == "pass2")
        return runPass2Cli(args);
    return usage();
}
