#include "iflint_lib.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cxxabi.h>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace iflint {

const std::vector<std::string> kRules = {
    "unordered-iter", "nondet-source", "ptr-hash",
    "raw-shift",      "raw-assert",    "std-function",
};

// ===================================================================
// Pass 1: lexing
// ===================================================================

FileLex
lexFile(const std::string& text)
{
    FileLex out;
    out.code.reserve(text.size());
    enum State { Code, LineComment, BlockComment, Str, Chr, RawStr };
    State st = Code;
    int line = 1;
    int commentBegin = 0;
    std::string commentText;
    std::string rawDelim;          // raw-string closing delimiter ")foo"
    const std::size_t n = text.size();

    auto flushComment = [&](int endLine) {
        out.comments.push_back({commentBegin, endLine, commentText});
        commentText.clear();
    };

    for (std::size_t i = 0; i < n; ++i) {
        const char c = text[i];
        const char nx = i + 1 < n ? text[i + 1] : '\0';
        switch (st) {
          case Code:
            if (c == '/' && nx == '/') {
                st = LineComment;
                commentBegin = line;
                out.code += "  ";
                ++i;
            } else if (c == '/' && nx == '*') {
                st = BlockComment;
                commentBegin = line;
                out.code += "  ";
                ++i;
            } else if (c == '"') {
                // Raw string literal?  R"delim( ... )delim"
                bool raw = false;
                if (i > 0 && text[i - 1] == 'R') {
                    std::size_t j = i + 1;
                    std::string d;
                    while (j < n && text[j] != '(' && d.size() < 16)
                        d += text[j++];
                    if (j < n && text[j] == '(') {
                        raw = true;
                        rawDelim = ")" + d + "\"";
                        st = RawStr;
                        for (std::size_t k = i; k <= j; ++k)
                            out.code += text[k] == '\n' ? '\n' : ' ';
                        i = j;
                    }
                }
                if (!raw) {
                    st = Str;
                    out.code += ' ';
                }
            } else if (c == '\'') {
                // Distinguish char literals from digit separators
                // (1'000'000): a separator follows an alnum.
                if (i > 0 && (std::isalnum(static_cast<unsigned char>(
                                  text[i - 1])) ||
                              text[i - 1] == '_')) {
                    out.code += ' ';
                } else {
                    st = Chr;
                    out.code += ' ';
                }
            } else {
                out.code += c;
            }
            break;
          case LineComment:
            if (c == '\n') {
                flushComment(line);
                st = Code;
                out.code += '\n';
            } else {
                commentText += c;
            }
            break;
          case BlockComment:
            if (c == '*' && nx == '/') {
                flushComment(line);
                st = Code;
                out.code += "  ";
                ++i;
            } else {
                commentText += c;
                out.code += c == '\n' ? '\n' : ' ';
            }
            break;
          case Str:
            if (c == '\\' && nx) {
                out.code += nx == '\n' ? " \n" : "  ";
                if (nx == '\n')
                    ++line;
                ++i;
            } else if (c == '"') {
                st = Code;
                out.code += ' ';
            } else {
                out.code += c == '\n' ? '\n' : ' ';
            }
            break;
          case Chr:
            if (c == '\\' && nx) {
                out.code += "  ";
                ++i;
            } else if (c == '\'') {
                st = Code;
                out.code += ' ';
            } else {
                out.code += c == '\n' ? '\n' : ' ';
            }
            break;
          case RawStr:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (std::size_t k = 0; k < rawDelim.size(); ++k)
                    out.code += ' ';
                i += rawDelim.size() - 1;
                st = Code;
            } else {
                out.code += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        if (c == '\n' && st != Str)
            ++line;
        else if (c == '\n' && st == Str)
            ++line;
    }
    if (st == LineComment || st == BlockComment)
        flushComment(line);
    return out;
}

std::vector<Token>
tokenize(const std::string& code)
{
    std::vector<Token> toks;
    int line = 1;
    const std::size_t n = code.size();
    std::size_t i = 0;
    auto isIdent0 = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto isIdentC = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while (i < n) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (isIdent0(c)) {
            std::size_t j = i;
            while (j < n && isIdentC(code[j]))
                ++j;
            toks.push_back({Token::Ident, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n && (isIdentC(code[j]) || code[j] == '.'))
                ++j;
            toks.push_back({Token::Num, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Multi-char punctuators we care about, longest match first.
        static const char* kMulti[] = {"<<=", ">>=", "::", "->", "<<",
                                       ">>",  "==",  "!=", "<=", ">=",
                                       "&&",  "||",  "+=", "-=", "|=",
                                       "&=",  "^=",  "++", "--"};
        bool matched = false;
        for (const char* m : kMulti) {
            const std::size_t len = std::strlen(m);
            if (code.compare(i, len, m) == 0) {
                toks.push_back({Token::Punct, m, line});
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched) {
            toks.push_back({Token::Punct, std::string(1, c), line});
            ++i;
        }
    }
    return toks;
}

// ===================================================================
// Pass 1: rules
// ===================================================================

namespace {

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/** `.begin()` starts a traversal; `.end()` alone is only a lookup
 *  sentinel (`it == m.end()`), so it is deliberately not listed. */
const std::set<std::string> kIterMethods = {"begin", "cbegin", "rbegin"};

/** Identifiers that read like compile-time constants: kCamelCase or
 *  ALL_CAPS. A shift by one of these is width-auditable at the
 *  declaration, unlike a shift by a runtime node/way/context value. */
bool
isConstStyle(const std::string& s)
{
    if (s.size() >= 2 && s[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(s[1])))
        return true;
    bool sawAlpha = false;
    for (char c : s) {
        if (std::islower(static_cast<unsigned char>(c)))
            return false;
        if (std::isalpha(static_cast<unsigned char>(c)))
            sawAlpha = true;
    }
    return sawAlpha;
}

bool
isHotPath(const std::string& path)
{
    for (const char* d : {"/sim/", "/coh/", "/mem/", "/core/"}) {
        if (path.find(d) != std::string::npos)
            return true;
        // Also match when the path *starts* with the component.
        if (path.compare(0, std::strlen(d) - 1, d + 1) == 0)
            return true;
    }
    return false;
}

/** Skip a balanced template-argument list; toks[i] must be "<".
 *  Returns the index one past the closing ">". */
std::size_t
skipTemplateArgs(const std::vector<Token>& toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        const std::string& t = toks[i].text;
        if (t == "<")
            ++depth;
        else if (t == ">")
            --depth;
        else if (t == ">>")
            depth -= 2;
        else if (t == "(" || t == ";")
            break;  // malformed / not a template after all
        if (depth <= 0)
            return i + 1;
    }
    return i;
}

std::string
numNorm(const std::string& s)
{
    std::string out;
    for (char c : s)
        if (c != 'u' && c != 'U' && c != 'l' && c != 'L' && c != '\'')
            out += c;
    return out;
}

const std::set<std::string> kCallContextKeywords = {
    "return", "case", "throw", "else", "do", "while", "if", "for",
    "co_return", "co_yield"};

} // namespace

void
collectUnorderedNames(const std::vector<Token>& toks,
                      std::set<std::string>& names,
                      std::set<std::string>& aliases)
{
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Ident)
            continue;
        const bool direct = kUnorderedTypes.count(toks[i].text) != 0;
        const bool viaAlias = aliases.count(toks[i].text) != 0;
        if (!direct && !viaAlias)
            continue;
        // `using A = [std::]unordered_map<...>` records the alias A.
        if (direct) {
            std::size_t b = i;
            if (b >= 2 && toks[b - 1].text == "::" &&
                toks[b - 2].text == "std")
                b -= 2;
            if (b >= 3 && toks[b - 1].text == "=" &&
                toks[b - 2].kind == Token::Ident &&
                toks[b - 3].text == "using") {
                aliases.insert(toks[b - 2].text);
            }
        }
        // Declaration:  type<...> [*&const]* name
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].text == "<")
            j = skipTemplateArgs(toks, j);
        while (j < toks.size() &&
               (toks[j].text == "*" || toks[j].text == "&" ||
                toks[j].text == "&&" || toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].kind == Token::Ident &&
            toks[j].text != "const")
            names.insert(toks[j].text);
    }
}

namespace {

void
runRules(const std::string& path, const std::vector<Token>& toks,
         const std::set<std::string>& unorderedNames,
         const std::set<std::string>& unorderedAliases,
         std::vector<Finding>& out)
{
    const bool hot = isHotPath(path);
    auto text = [&](std::size_t i) -> const std::string& {
        static const std::string empty;
        return i < toks.size() ? toks[i].text : empty;
    };
    auto isUnordered = [&](const std::string& s) {
        return kUnorderedTypes.count(s) || unorderedNames.count(s) ||
               unorderedAliases.count(s);
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind == Token::Punct) {
            // ---- raw-shift: 1 << <runtime expr> ------------------
            if (t.text == "<<" && i >= 1 && toks[i - 1].kind == Token::Num &&
                numNorm(toks[i - 1].text) == "1" &&
                !(i >= 2 && toks[i - 2].text == "<<")) {
                const Token* rhs = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
                const bool ok =
                    rhs && (rhs->kind == Token::Num ||
                            (rhs->kind == Token::Ident &&
                             (isConstStyle(rhs->text) ||
                              rhs->text == "sizeof")));
                if (!ok)
                    out.push_back({path, t.line, "raw-shift",
                                   "literal 1 shifted by runtime "
                                   "expression '" +
                                       (rhs ? rhs->text : "") +
                                       "'; use SharerSet or "
                                       "bitOf<T>() (width-checked)"});
            }
            continue;
        }
        if (t.kind != Token::Ident)
            continue;
        const std::string& prev = i >= 1 ? toks[i - 1].text : "";
        const std::string& prev2 = i >= 2 ? toks[i - 2].text : "";
        const std::string& next = text(i + 1);

        // ---- raw-assert --------------------------------------------
        if (t.text == "assert" && next == "(") {
            out.push_back({path, t.line, "raw-assert",
                           "raw assert(); use IF_DBG_ASSERT for "
                           "debug-only checks or IF_FATAL/IF_PANIC for "
                           "always-on bounds"});
            continue;
        }

        // ---- std-function (hot directories only) -------------------
        if (hot && t.text == "function" && prev == "::" && prev2 == "std") {
            out.push_back({path, t.line, "std-function",
                           "std::function in a hot-path directory; use "
                           "InplaceFn (owning, bounded) or FunctionRef "
                           "(borrowing)"});
            continue;
        }

        // ---- nondet-source -----------------------------------------
        static const std::set<std::string> kNondetAlways = {
            "random_device", "steady_clock", "system_clock",
            "high_resolution_clock"};
        static const std::set<std::string> kNondetCalls = {
            "rand",    "srand",   "rand_r",       "drand48", "lrand48",
            "mrand48", "random",  "gettimeofday", "time",    "clock",
            "clock_gettime"};
        if (kNondetAlways.count(t.text)) {
            out.push_back({path, t.line, "nondet-source",
                           "'" + t.text +
                               "' is a nondeterminism source; results "
                               "must derive from the run seed (sim/rng.hh)"});
            continue;
        }
        if (kNondetCalls.count(t.text) && next == "(") {
            bool flag;
            if (prev == "::")
                flag = prev2 == "std";  // std::time(...); Foo::time() is
                                        // a member definition, skip it
            else if (prev == "." || prev == "->")
                flag = false;           // member call on some object
            else if (i >= 1 && toks[i - 1].kind == Token::Ident)
                // `Cycle time(...)` declaration unless the preceding
                // identifier is a statement keyword (`return rand()`).
                flag = kCallContextKeywords.count(prev) != 0;
            else
                flag = true;
            if (flag) {
                out.push_back({path, t.line, "nondet-source",
                               "call to '" + t.text +
                                   "()'; results must derive from the "
                                   "run seed (sim/rng.hh)"});
                continue;
            }
        }

        // ---- ptr-hash: std::hash/std::less over a pointer type -----
        if ((t.text == "hash" || t.text == "less") && prev == "::" &&
            prev2 == "std" && next == "<") {
            int depth = 0;
            bool sawPtr = false;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                const std::string& s = toks[j].text;
                if (s == "<")
                    ++depth;
                else if (s == ">")
                    --depth;
                else if (s == ">>")
                    depth -= 2;
                else if (s == "*" && depth >= 1)
                    sawPtr = true;
                else if (s == "(" || s == ";")
                    break;
                if (depth <= 0)
                    break;
            }
            if (sawPtr) {
                out.push_back({path, t.line, "ptr-hash",
                               "std::" + t.text +
                                   " over a pointer type: pointer values "
                                   "vary run to run, so any ordering or "
                                   "hash layout derived from them is "
                                   "nondeterministic"});
                continue;
            }
        }

        // ---- unordered-iter ----------------------------------------
        if (t.text == "for" && next == "(") {
            // Find a ':' at depth 1 (range-for), then check the range
            // expression for unordered names.
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                const std::string& s = toks[j].text;
                if (s == "(")
                    ++depth;
                else if (s == ")") {
                    --depth;
                    if (depth == 0) {
                        close = j;
                        break;
                    }
                } else if (s == ":" && depth == 1 && !colon)
                    colon = j;
                else if (s == ";" && depth == 1)
                    break;  // classic for loop
            }
            if (colon && close) {
                for (std::size_t j = colon + 1; j < close; ++j) {
                    if (toks[j].kind == Token::Ident &&
                        isUnordered(toks[j].text)) {
                        out.push_back(
                            {path, t.line, "unordered-iter",
                             "range-for over unordered container '" +
                                 toks[j].text +
                                 "': iteration order depends on hash "
                                 "layout; use FlatAddrMap/RecyclingMap "
                                 "or a sorted snapshot"});
                        break;
                    }
                }
            }
            continue;
        }
        if (unorderedNames.count(t.text) &&
            (next == "." || next == "->") && i + 2 < toks.size() &&
            toks[i + 2].kind == Token::Ident &&
            kIterMethods.count(toks[i + 2].text) &&
            text(i + 3) == "(") {
            out.push_back({path, t.line, "unordered-iter",
                           "iterator traversal of unordered container '" +
                               t.text +
                               "': iteration order depends on hash "
                               "layout; use FlatAddrMap/RecyclingMap or "
                               "a sorted snapshot"});
            continue;
        }
    }
}

// ---------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------

struct LineAllow {
    int line = 0;  // directive line; covers this line and the next
    std::string rule;
    bool used = false;
};

struct BlockAllow {
    int begin = 0, end = 0;
    std::string rule;
    bool used = false;
};

struct SuppressionSet {
    std::vector<LineAllow> lines;
    std::vector<BlockAllow> blocks;
    std::vector<Finding> errors;
};

SuppressionSet
parseSuppressions(const std::string& path, const FileLex& lex)
{
    SuppressionSet out;
    struct OpenBlock {
        int line;
        std::string rule;
    };
    std::vector<OpenBlock> open;

    for (const auto& com : lex.comments) {
        std::size_t pos = 0;
        while ((pos = com.text.find("iflint:", pos)) != std::string::npos) {
            const int dline =
                com.lineBegin +
                static_cast<int>(std::count(com.text.begin(),
                                            com.text.begin() +
                                                static_cast<long>(pos),
                                            '\n'));
            std::size_t p = pos + 7;
            const std::size_t paren = com.text.find('(', p);
            if (paren == std::string::npos) {
                out.errors.push_back({path, dline, "bad-suppression",
                                      "malformed iflint directive "
                                      "(missing '(')"});
                pos = p;
                continue;
            }
            std::string verb = com.text.substr(p, paren - p);
            while (!verb.empty() && std::isspace(static_cast<unsigned char>(
                                        verb.back())))
                verb.pop_back();
            const std::size_t closep = com.text.find(')', paren);
            if (closep == std::string::npos) {
                out.errors.push_back({path, dline, "bad-suppression",
                                      "malformed iflint directive "
                                      "(missing ')')"});
                pos = p;
                continue;
            }
            const std::string rule =
                com.text.substr(paren + 1, closep - paren - 1);
            std::size_t jbeg = closep + 1;
            std::size_t jend = com.text.find('\n', jbeg);
            if (jend == std::string::npos)
                jend = com.text.size();
            std::string just = com.text.substr(jbeg, jend - jbeg);
            auto trim = [](std::string& s) {
                while (!s.empty() && std::isspace(static_cast<unsigned char>(
                                         s.front())))
                    s.erase(s.begin());
                while (!s.empty() && std::isspace(static_cast<unsigned char>(
                                         s.back())))
                    s.pop_back();
            };
            trim(just);
            pos = closep;

            if (std::find(kRules.begin(), kRules.end(), rule) ==
                kRules.end()) {
                out.errors.push_back({path, dline, "bad-suppression",
                                      "unknown rule '" + rule + "'"});
                continue;
            }
            if (verb == "allow" || verb == "begin-allow") {
                if (just.empty()) {
                    out.errors.push_back(
                        {path, dline, "bad-suppression",
                         "iflint:" + verb + "(" + rule +
                             ") needs a written justification"});
                    continue;
                }
            }
            if (verb == "allow") {
                out.lines.push_back({dline, rule, false});
            } else if (verb == "begin-allow") {
                open.push_back({dline, rule});
            } else if (verb == "end-allow") {
                bool found = false;
                for (std::size_t k = open.size(); k-- > 0;) {
                    if (open[k].rule == rule) {
                        out.blocks.push_back(
                            {open[k].line, dline, rule, false});
                        open.erase(open.begin() + static_cast<long>(k));
                        found = true;
                        break;
                    }
                }
                if (!found)
                    out.errors.push_back(
                        {path, dline, "bad-suppression",
                         "iflint:end-allow(" + rule +
                             ") without a matching begin-allow"});
            } else {
                out.errors.push_back({path, dline, "bad-suppression",
                                      "unknown iflint directive '" +
                                          verb + "'"});
            }
        }
    }
    for (const auto& ob : open)
        out.errors.push_back({path, ob.line, "bad-suppression",
                              "iflint:begin-allow(" + ob.rule +
                                  ") never closed by end-allow"});
    return out;
}

} // namespace

Pass1FileResult
analyzeFile(const std::string& path, const std::string& text,
            const std::set<std::string>& unorderedNames,
            const std::set<std::string>& unorderedAliases)
{
    Pass1FileResult out;
    const FileLex lex = lexFile(text);
    const std::vector<Token> toks = tokenize(lex.code);

    std::vector<Finding> raw;
    runRules(path, toks, unorderedNames, unorderedAliases, raw);
    SuppressionSet supp = parseSuppressions(path, lex);

    for (const Finding& f : raw) {
        bool suppressed = false;
        for (auto& la : supp.lines) {
            if (la.rule == f.rule &&
                (f.line == la.line || f.line == la.line + 1)) {
                la.used = true;
                suppressed = true;
            }
        }
        for (auto& ba : supp.blocks) {
            if (ba.rule == f.rule && f.line >= ba.begin && f.line <= ba.end) {
                ba.used = true;
                suppressed = true;
            }
        }
        if (suppressed)
            ++out.suppressionsHonored;
        else
            out.findings.push_back(f);
    }
    for (const auto& la : supp.lines)
        if (!la.used)
            out.findings.push_back({path, la.line, "bad-suppression",
                                    "iflint:allow(" + la.rule +
                                        ") suppresses nothing; delete it"});
    for (const auto& ba : supp.blocks)
        if (!ba.used)
            out.findings.push_back(
                {path, ba.begin, "bad-suppression",
                 "iflint:begin-allow(" + ba.rule +
                     ") block suppresses nothing; delete it"});
    for (const Finding& e : supp.errors)
        out.findings.push_back(e);
    std::sort(out.findings.begin(), out.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return a.line < b.line;
              });
    return out;
}

namespace {

std::vector<std::string>
collectSourceFiles(const std::vector<std::string>& paths,
                   std::vector<std::string>& errors)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    auto wanted = [](const fs::path& p) {
        const std::string e = p.extension().string();
        return e == ".hh" || e == ".cc" || e == ".h" || e == ".cpp";
    };
    for (const std::string& p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 it != fs::recursive_directory_iterator(); ++it)
                if (it->is_regular_file(ec) && wanted(it->path()))
                    files.push_back(it->path().string());
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            errors.push_back("no such file or directory: " + p);
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool
readFile(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

Pass1Result
runPass1(const std::vector<std::string>& paths)
{
    Pass1Result out;
    std::vector<std::string> errors;
    const std::vector<std::string> files = collectSourceFiles(paths, errors);
    for (const std::string& e : errors)
        out.findings.push_back({e, 0, "bad-suppression", "scan error"});

    std::map<std::string, std::vector<Token>> tokens;
    std::set<std::string> names, aliases;
    for (const std::string& f : files) {
        std::string text;
        if (!readFile(f, text)) {
            out.findings.push_back({f, 0, "bad-suppression",
                                    "cannot read file"});
            continue;
        }
        tokens[f] = tokenize(lexFile(text).code);
    }
    // Two rounds so aliases declared in later files still resolve
    // declarations in earlier ones.
    for (int round = 0; round < 2; ++round)
        for (const auto& [f, toks] : tokens)
            collectUnorderedNames(toks, names, aliases);

    for (const std::string& f : files) {
        if (!tokens.count(f))
            continue;
        std::string text;
        readFile(f, text);
        Pass1FileResult r = analyzeFile(f, text, names, aliases);
        ++out.filesScanned;
        out.suppressionsHonored += r.suppressionsHonored;
        out.findings.insert(out.findings.end(), r.findings.begin(),
                            r.findings.end());
    }
    return out;
}

// ===================================================================
// Pass 2: binary hot-path allocation proof
// ===================================================================

namespace {

const char* const kHotMarker = "E11if_hot_root";
const char* const kColdMarker = "E11if_cold_cut";

/** _ZZ<func-encoding>E11if_hot_root[_N]  ->  _Z<func-encoding> */
bool
deriveMarkedFunction(const std::string& sym, const char* marker,
                     std::string& fn)
{
    if (sym.compare(0, 3, "_ZZ") != 0)
        return false;
    const std::size_t mlen = std::strlen(marker);
    const std::size_t pos = sym.rfind(marker);
    if (pos == std::string::npos || pos < 3)
        return false;
    std::size_t t = pos + mlen;
    if (t < sym.size()) {
        if (sym[t] != '_')
            return false;
        for (++t; t < sym.size(); ++t)
            if (!std::isdigit(static_cast<unsigned char>(sym[t])))
                return false;
    }
    fn = "_Z" + sym.substr(3, pos - 3);
    return true;
}

std::string
stripSymbolDecor(std::string s)
{
    const std::size_t at = s.find('@');
    if (at != std::string::npos)
        s.resize(at);
    // Relocation operands carry an addend:  _Znwm-0x4 / foo+0x10
    const std::size_t add = s.find_last_of("+-");
    if (add != std::string::npos && add > 0 &&
        s.compare(add + 1, 2, "0x") == 0)
        s.resize(add);
    return s;
}

/** foo.cold / foo.part.3 are compiler-outlined fragments of foo (GCC
 *  moves [[unlikely]] branch bodies to .text.unlikely); attribute
 *  their call sites — and calls targeting them — to foo itself, or
 *  the fragments form disconnected graph nodes and allocations inside
 *  cold-outlined branches escape the proof. */
std::string
canonicalFunction(std::string s)
{
    for (;;) {
        if (s.size() > 5 && s.compare(s.size() - 5, 5, ".cold") == 0) {
            s.resize(s.size() - 5);
            continue;
        }
        const std::size_t p = s.rfind(".part.");
        if (p != std::string::npos && p + 6 < s.size()) {
            bool digits = true;
            for (std::size_t i = p + 6; i < s.size(); ++i)
                if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
                    digits = false;
                    break;
                }
            if (digits) {
                s.resize(p);
                continue;
            }
        }
        return s;
    }
}

bool
isTerminalSink(const std::string& sym)
{
    if (sym == "abort" || sym == "exit" || sym == "_exit" ||
        sym == "_Exit" || sym == "__assert_fail" ||
        sym == "__stack_chk_fail")
        return true;
    // invisifence::panicImpl / fatalImpl are [[noreturn]] diagnostic
    // sinks; whatever they do on the way to abort()/exit() never
    // returns to the steady-state loop.
    return sym.find("panicImpl") != std::string::npos ||
           sym.find("fatalImpl") != std::string::npos;
}

} // namespace

bool
isKillSymbol(const std::string& m)
{
    if (m.compare(0, 4, "_Znw") == 0 || m.compare(0, 4, "_Zna") == 0)
        return true;
    static const std::set<std::string> kAllocFns = {
        "malloc",        "calloc",  "realloc",       "aligned_alloc",
        "posix_memalign", "memalign", "valloc",      "pvalloc",
        "strdup",        "strndup", "asprintf",      "vasprintf",
        "reallocarray"};
    if (kAllocFns.count(m))
        return true;
    if (m.find("__cxa_throw") != std::string::npos ||
        m.find("__cxa_allocate_exception") != std::string::npos ||
        m.find("__cxa_rethrow") != std::string::npos)
        return true;
    if (m.find("__throw_") != std::string::npos)
        return true;
    return false;
}

std::string
demangle(const std::string& sym)
{
    int status = 0;
    char* d = abi::__cxa_demangle(sym.c_str(), nullptr, nullptr, &status);
    if (status == 0 && d) {
        std::string out(d);
        std::free(d);
        return out;
    }
    std::free(d);
    return sym;
}

void
parseSymtab(const std::string& text, CallGraph& g)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t sp = line.find_last_of(" \t");
        if (sp == std::string::npos || sp + 1 >= line.size())
            continue;
        const std::string name = line.substr(sp + 1);
        std::string fn;
        if (deriveMarkedFunction(name, kHotMarker, fn))
            g.hotRoots.insert(fn);
        else if (deriveMarkedFunction(name, kColdMarker, fn))
            g.coldCuts.insert(fn);
    }
}

void
parseDisasm(const std::string& text, CallGraph& g)
{
    std::istringstream in(text);
    std::string line;
    std::string cur;
    bool pending = false;          // last line was a patchable call/jmp
    std::size_t pendingIdx = 0;    // index into g.calls[cur]

    auto isHex = [](const std::string& s) {
        if (s.empty())
            return false;
        for (char c : s)
            if (!std::isxdigit(static_cast<unsigned char>(c)))
                return false;
        return true;
    };

    while (std::getline(in, line)) {
        if (line.empty()) {
            pending = false;
            continue;
        }
        // Function header:  0000000000000000 <mangled>:
        if (std::isxdigit(static_cast<unsigned char>(line[0]))) {
            const std::size_t sp = line.find(' ');
            const std::size_t lt = line.find('<');
            if (sp != std::string::npos && lt != std::string::npos &&
                line.back() == ':' && isHex(line.substr(0, sp))) {
                cur = canonicalFunction(
                    line.substr(lt + 1, line.size() - lt - 3));
                g.defined.insert(cur);
                pending = false;
                continue;
            }
        }
        // Everything else of interest is indented.
        std::size_t i = line.find_first_not_of(" \t");
        if (i == std::string::npos) {
            pending = false;
            continue;
        }
        // "<addr>:" prefix common to instruction and relocation lines.
        std::size_t colon = line.find(':', i);
        if (colon == std::string::npos || !isHex(line.substr(i, colon - i))) {
            pending = false;
            continue;
        }
        std::size_t j = line.find_first_not_of(" \t", colon + 1);
        if (j == std::string::npos) {
            pending = false;
            continue;
        }
        // Relocation line:  <addr>: R_X86_64_PLT32  symbol-0x4
        if (line.compare(j, 2, "R_") == 0) {
            const std::size_t symBeg = line.find_last_of(" \t");
            if (pending && !cur.empty() && symBeg != std::string::npos) {
                const std::string sym = canonicalFunction(
                    stripSymbolDecor(line.substr(symBeg + 1)));
                if (!sym.empty())
                    g.calls[cur][pendingIdx] = sym;
            }
            pending = false;
            continue;
        }
        // Instruction line: addr: <bytes> \t mnemonic operands
        pending = false;
        const std::size_t tab = line.find('\t', j);
        if (tab == std::string::npos)
            continue;  // bytes-only continuation line
        const std::size_t mbeg = line.find_first_not_of(" \t", tab);
        if (mbeg == std::string::npos)
            continue;
        std::size_t mend = line.find_first_of(" \t", mbeg);
        if (mend == std::string::npos)
            mend = line.size();
        const std::string mnem = line.substr(mbeg, mend - mbeg);
        const bool isCall = mnem == "call" || mnem == "callq";
        const bool isJump = !isCall && !mnem.empty() && mnem[0] == 'j';
        if ((!isCall && !isJump) || cur.empty())
            continue;
        const std::string ops =
            mend < line.size() ? line.substr(mend) : std::string();
        if (ops.find('*') != std::string::npos &&
            ops.find('<') == std::string::npos) {
            if (isCall)
                ++g.indirect[cur];
            continue;
        }
        const std::size_t lt = ops.find('<');
        std::string base;
        if (lt != std::string::npos) {
            const std::size_t gt = ops.find('>', lt);
            if (gt != std::string::npos) {
                base = ops.substr(lt + 1, gt - lt - 1);
                const std::size_t plus = base.find('+');
                if (plus != std::string::npos)
                    base.resize(plus);
                base = canonicalFunction(stripSymbolDecor(base));
            }
        }
        // Always patchable: the <target> objdump guesses for a
        // not-yet-relocated call OR TAIL JUMP is the enclosing symbol
        // itself, so a self-target is only a placeholder until the
        // next line proves otherwise. Genuine intra-function jumps
        // (loops, branches) get no relocation line and their
        // placeholders are dropped below.
        g.calls[cur].push_back(base == cur ? std::string() : base);
        pendingIdx = g.calls[cur].size() - 1;
        pending = true;
    }
    // Drop unresolved intra-function call placeholders.
    for (auto& [fn, callees] : g.calls)
        callees.erase(std::remove(callees.begin(), callees.end(),
                                  std::string()),
                      callees.end());
}

std::vector<AllowEntry>
loadAllowFile(const std::string& text, std::vector<std::string>& errors)
{
    std::vector<AllowEntry> out;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t h = line.find('#');
        if (h != std::string::npos)
            line.resize(h);
        auto trim = [](std::string& s) {
            while (!s.empty() &&
                   std::isspace(static_cast<unsigned char>(s.front())))
                s.erase(s.begin());
            while (!s.empty() &&
                   std::isspace(static_cast<unsigned char>(s.back())))
                s.pop_back();
        };
        trim(line);
        if (line.empty())
            continue;
        const std::size_t bar = line.find('|');
        std::string pat =
            bar == std::string::npos ? line : line.substr(0, bar);
        std::string just =
            bar == std::string::npos ? std::string() : line.substr(bar + 1);
        trim(pat);
        trim(just);
        if (pat.empty() || just.empty()) {
            errors.push_back("alloc allow line " + std::to_string(lineno) +
                             ": need 'pattern | justification'");
            continue;
        }
        out.push_back({pat, just, 0});
    }
    return out;
}

Pass2Result
analyzeGraph(const CallGraph& g, std::vector<AllowEntry>& allow)
{
    Pass2Result out;
    out.functions = static_cast<int>(g.defined.size());
    for (const auto& [fn, callees] : g.calls)
        out.edges += static_cast<int>(callees.size());
    for (const auto& [fn, n] : g.indirect)
        out.indirectCalls += n;

    std::set<std::string> coldHit;
    std::set<std::pair<std::string, std::string>> reported;

    auto matchAllow = [&](const std::string& sym) -> bool {
        const std::string dem = demangle(sym);
        for (auto& a : allow) {
            if (sym.find(a.pattern) != std::string::npos ||
                dem.find(a.pattern) != std::string::npos) {
                ++a.hits;
                return true;
            }
        }
        return false;
    };

    for (const std::string& root : g.hotRoots) {
        if (!g.defined.count(root)) {
            out.missingRoots.push_back(root);
            continue;
        }
        ++out.rootsFound;
        std::map<std::string, std::string> parent;
        std::set<std::string> visited = {root};
        std::vector<std::string> queue = {root};
        while (!queue.empty()) {
            const std::string u = queue.back();
            queue.pop_back();
            auto it = g.calls.find(u);
            if (it == g.calls.end())
                continue;
            for (const std::string& v : it->second) {
                if (isKillSymbol(v)) {
                    if (reported.insert({root, v}).second) {
                        Violation viol;
                        viol.root = root;
                        viol.badSym = v;
                        std::vector<std::string> chain;
                        for (std::string w = u; !w.empty();) {
                            chain.push_back(w);
                            auto p = parent.find(w);
                            w = p == parent.end() ? std::string()
                                                  : p->second;
                        }
                        std::reverse(chain.begin(), chain.end());
                        chain.push_back(v);
                        viol.path = std::move(chain);
                        out.violations.push_back(std::move(viol));
                    }
                    continue;
                }
                if (isTerminalSink(v))
                    continue;
                if (g.coldCuts.count(v)) {
                    coldHit.insert(v);
                    continue;
                }
                if (matchAllow(v))
                    continue;
                if (visited.insert(v).second) {
                    parent[v] = u;
                    if (g.defined.count(v))
                        queue.push_back(v);
                }
            }
        }
    }
    out.coldCutsHit.assign(coldHit.begin(), coldHit.end());
    return out;
}

namespace {

std::string
shellQuote(const std::string& s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

bool
runCommand(const std::string& cmd, std::string& output)
{
    FILE* p = popen(cmd.c_str(), "r");
    if (!p)
        return false;
    char buf[4096];
    std::size_t got;
    while ((got = fread(buf, 1, sizeof(buf), p)) > 0)
        output.append(buf, got);
    return pclose(p) == 0;
}

} // namespace

Pass2Result
runPass2(const std::vector<std::string>& objectsOrDirs,
         const std::string& allowFilePath)
{
    namespace fs = std::filesystem;
    Pass2Result out;

    std::vector<std::string> objects;
    for (const std::string& p : objectsOrDirs) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 it != fs::recursive_directory_iterator(); ++it)
                if (it->is_regular_file(ec) &&
                    it->path().extension() == ".o")
                    objects.push_back(it->path().string());
        } else if (fs::is_regular_file(p, ec)) {
            objects.push_back(p);
        } else {
            out.errors.push_back("no such object or directory: " + p);
        }
    }
    std::sort(objects.begin(), objects.end());
    if (objects.empty()) {
        out.errors.push_back("no object files to analyze");
        return out;
    }

    const char* od = std::getenv("IFLINT_OBJDUMP");
    const std::string objdump = od && *od ? od : "objdump";

    CallGraph g;
    for (const std::string& obj : objects) {
        std::string sym, dis;
        if (!runCommand(objdump + " -t " + shellQuote(obj) + " 2>/dev/null",
                        sym) ||
            !runCommand(objdump + " -dr " + shellQuote(obj) +
                            " 2>/dev/null",
                        dis)) {
            out.errors.push_back("objdump failed on " + obj);
            continue;
        }
        parseSymtab(sym, g);
        parseDisasm(dis, g);
    }

    std::vector<AllowEntry> allow;
    if (!allowFilePath.empty()) {
        std::string text;
        if (!readFile(allowFilePath, text)) {
            out.errors.push_back("cannot read allow file: " +
                                 allowFilePath);
            return out;
        }
        allow = loadAllowFile(text, out.errors);
    }
    if (!out.errors.empty())
        return out;

    Pass2Result r = analyzeGraph(g, allow);
    r.errors = out.errors;
    for (const AllowEntry& a : allow)
        if (a.hits == 0)
            r.errors.push_back("warning: unused allow pattern '" +
                               a.pattern + "'");
    return r;
}

} // namespace iflint
